// Benchmark harness regenerating every experiment in EXPERIMENTS.md.
// One benchmark per paper artifact:
//
//	E1 Fig. 4  BenchmarkScenarioUnderstanding   chat-based graph understanding
//	E2 Fig. 5  BenchmarkScenarioComparison      chat-based graph comparison
//	E3 Fig. 6  BenchmarkScenarioCleaning        chat-based graph cleaning
//	E4 Fig. 7  BenchmarkScenarioMonitoring      chain confirmation + monitoring
//	E5 §II-D   BenchmarkANN*                    τ-MG vs MRNG vs NSW vs brute force
//	E6 §II-B   BenchmarkPathCover               path-cover size/coverage
//	E7 §II-C   BenchmarkRollouts                rollout-search ablation
//	E8 Fig. 1  BenchmarkAPIRetrieval            retrieval hit rate
//
// Quality numbers (recall, hit rate, loss) are attached to the -bench output
// via b.ReportMetric, so one `go test -bench=. -benchmem` run yields both
// latency and quality columns.
package chatgraph_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chatgraph/internal/ann"
	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/executor"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
	"chatgraph/internal/retrieve"
	"chatgraph/internal/seq"
)

// benchSession is shared across scenario benchmarks: model training is the
// expensive part and is not what the scenarios measure.
var (
	benchOnce sync.Once
	benchSess *core.Session
	benchEnv  *apis.Env
)

func sharedSession(b *testing.B) *core.Session {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv = &apis.Env{}
		reg := apis.Default(benchEnv)
		core.SeedMoleculeDB(benchEnv, 1000, rand.New(rand.NewSource(77)))
		var err error
		benchSess, err = core.NewSession(core.Config{Registry: reg, Env: benchEnv, TrainSeed: 77})
		if err != nil {
			panic(err)
		}
	})
	return benchSess
}

// --- E1: chat-based graph understanding (Fig. 4) ---

func BenchmarkScenarioUnderstanding(b *testing.B) {
	s := sharedSession(b)
	rng := rand.New(rand.NewSource(1))
	social := graph.PlantedCommunities(4, 25, 0.4, 0.01, rng)
	mol := graph.Molecule(24, rng)
	b.Run("social_report", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Ask(context.Background(), "Write a brief report for G", social, core.AskOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("molecule_report", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Ask(context.Background(), "Write a brief report for this molecule", mol, core.AskOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E2: chat-based graph comparison (Fig. 5) ---

func BenchmarkScenarioComparison(b *testing.B) {
	s := sharedSession(b)
	rng := rand.New(rand.NewSource(2))
	query := graph.Molecule(16, rng)
	b.ReportAllocs()
	top1Similarity := 0.0
	for i := 0; i < b.N; i++ {
		turn, err := s.Ask(context.Background(), "What molecules are similar to G", query, core.AskOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = turn
	}
	// Quality: best similarity in the DB for this query.
	if ms := benchEnv.MolDB.Search(query, 1); len(ms) > 0 {
		top1Similarity = ms[0].Similarity
	}
	b.ReportMetric(top1Similarity, "top1-similarity")
}

// --- E3: chat-based graph cleaning (Fig. 6) ---

func BenchmarkScenarioCleaning(b *testing.B) {
	s := sharedSession(b)
	rng := rand.New(rand.NewSource(3))
	base := graph.KnowledgeGraph(60, 150, rng)
	corrupt := base.Clone()
	corruption := injectForBench(corrupt, rng)
	b.ReportAllocs()
	var cleaned int
	for i := 0; i < b.N; i++ {
		g := corrupt.Clone()
		if _, err := s.Ask(context.Background(), "Clean G", g, core.AskOptions{}); err != nil {
			b.Fatal(err)
		}
		cleaned = corruption - countIncorrect(s, g)
	}
	b.ReportMetric(float64(cleaned)/float64(corruption), "incorrect-removed-frac")
}

func injectForBench(g *graph.Graph, rng *rand.Rand) int {
	// Inline noise injection mirroring internal/kg.InjectNoise's wrong-edge
	// half, kept local so the bench controls exactly what it scores.
	rels := []string{"born_in", "works_for", "spouse_of"}
	sigs := graph.KGRelationTypes()
	injected := 0
	n := g.NumNodes()
	for injected < 12 {
		rel := rels[rng.Intn(len(rels))]
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		sig := sigs[rel]
		if from == to || g.HasEdge(from, to) {
			continue
		}
		if g.Node(from).Attrs["type"] == sig[0] && g.Node(to).Attrs["type"] == sig[1] {
			continue
		}
		if err := g.AddEdgeLabeled(from, to, rel, 1); err == nil {
			injected++
		}
	}
	return injected
}

func countIncorrect(s *core.Session, g *graph.Graph) int {
	return len(s.Env().Detector.DetectIncorrect(g))
}

// --- E4: chain confirmation and monitoring (Fig. 7) ---

func BenchmarkScenarioMonitoring(b *testing.B) {
	s := sharedSession(b)
	rng := rand.New(rand.NewSource(4))
	g := graph.PlantedCommunities(3, 15, 0.5, 0.02, rng)
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		turn, err := s.Ask(context.Background(), "Write a brief report for G", g, core.AskOptions{
			Confirm: func(c chain.Chain) (chain.Chain, bool) { return nil, true },
			OnEvent: func(executor.Event) { events++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = turn
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// --- E5: τ-MG vs baselines (§II-D) ---

const (
	annN   = 3000
	annDim = 48
	annK   = 10
)

func annData() ([][]float32, [][]float32) {
	rng := rand.New(rand.NewSource(5))
	return ann.ClusteredVectors(annN, annDim, 16, 0.3, rng),
		ann.ClusteredVectors(200, annDim, 16, 0.3, rng)
}

func benchIndex(b *testing.B, build func(vecs [][]float32) ann.Index) {
	b.Helper()
	vecs, queries := annData()
	idx := build(vecs)
	exact := ann.NewBruteForce(vecs)
	ev := ann.Evaluate(idx, exact, queries, annK, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(queries[i%len(queries)], annK)
	}
	b.ReportMetric(ev.RecallAtK, "recall@10")
	b.ReportMetric(ev.AvgHops, "hops")
	b.ReportMetric(ev.AvgDistComps, "distcomps")
}

func BenchmarkANNBruteForce(b *testing.B) {
	benchIndex(b, func(vecs [][]float32) ann.Index { return ann.NewBruteForce(vecs) })
}

func BenchmarkANNTauMG(b *testing.B) {
	for _, tau := range []float32{0.05, 0.15} {
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			benchIndex(b, func(vecs [][]float32) ann.Index {
				idx, err := ann.NewTauMG(vecs, ann.TauMGConfig{Tau: tau})
				if err != nil {
					b.Fatal(err)
				}
				return idx
			})
		})
	}
}

func BenchmarkANNMRNG(b *testing.B) {
	benchIndex(b, func(vecs [][]float32) ann.Index {
		idx, err := ann.NewMRNG(vecs, 32, 64)
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

func BenchmarkANNNSW(b *testing.B) {
	benchIndex(b, func(vecs [][]float32) ann.Index {
		idx, err := ann.NewNSW(vecs, ann.NSWConfig{})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

func BenchmarkANNIVFFlat(b *testing.B) {
	benchIndex(b, func(vecs [][]float32) ann.Index {
		idx, err := ann.NewIVFFlat(vecs, ann.IVFConfig{Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

func BenchmarkANNHNSW(b *testing.B) {
	benchIndex(b, func(vecs [][]float32) ann.Index {
		idx, err := ann.NewHNSW(vecs, ann.HNSWConfig{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		return idx
	})
}

// BenchmarkANNSearchBatch is the E10 ANN side: the one-query-at-a-time
// Search loop versus SearchBatch's worker-pool fan-out over one shared
// index. On multi-core hosts the batch path approaches loop-qps × cores;
// b.ReportAllocs makes the ~0 allocs/op of the scratch-pooled graph search
// visible in the same table.
func BenchmarkANNSearchBatch(b *testing.B) {
	vecs, queries := annData()
	idx, err := ann.NewTauMG(vecs, ann.TauMGConfig{Tau: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	idx.SearchBatch(queries, annK) // warm the scratch/worker pools
	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				idx.Search(q, annK)
			}
		}
		b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.SearchBatch(queries, annK)
		}
		b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkRetrievalBatch measures the full batched retrieval path —
// EmbedBatch + SearchBatch + ranking — against the sequential TopAPIs loop
// over the same queries.
func BenchmarkRetrievalBatch(b *testing.B) {
	reg := apis.Default(nil)
	ix, err := retrieve.New(reg, retrieve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	queries := []string{
		"find the communities of the social network",
		"who is the most influential node",
		"how toxic is this molecule",
		"find similar molecules in the database",
		"clean the knowledge graph noise",
		"shortest path between two nodes",
		"count the triangles of the network",
		"what is the molecular formula",
	}
	ix.TopAPIsBatch(queries, 5) // warm the pools
	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				ix.TopAPIs(q, 5)
			}
		}
		b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.TopAPIsBatch(queries, 5)
		}
		b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkANNGreedyRouting compares the paper's single-path greedy routing
// across proximity graphs — τ-MG's selling point is fewer routing hops at
// equal accuracy. The τ-MG monotonicity guarantee applies to queries whose
// nearest neighbor lies within τ, so queries are small perturbations of
// base vectors, and the degree budget is widened (truncating non-occluded
// edges would void the guarantee).
func BenchmarkANNGreedyRouting(b *testing.B) {
	rng := rand.New(rand.NewSource(55))
	vecs := ann.RandomVectors(2000, 16, rng)
	exact := ann.NewBruteForce(vecs)
	// τ is calibrated to a tenth of the mean nearest-neighbor distance.
	var meanNN float32
	for i := 0; i < 50; i++ {
		meanNN += exact.Search(vecs[i], 2)[1].Dist
	}
	meanNN /= 50
	tau := 0.1 * meanNN
	queries := make([][]float32, 200)
	for i := range queries {
		base := vecs[rng.Intn(len(vecs))]
		q := make([]float32, len(base))
		for j := range q {
			q[j] = base[j] + float32(rng.NormFloat64())*tau/8
		}
		queries[i] = q
	}
	for _, cfg := range []struct {
		name string
		tau  float32
	}{{"mrng", 0}, {"tau-mg", tau}} {
		b.Run(cfg.name, func(b *testing.B) {
			idx, err := ann.NewTauMG(vecs, ann.TauMGConfig{Tau: cfg.tau, MaxDegree: 64, CandidatePool: 192})
			if err != nil {
				b.Fatal(err)
			}
			var hops, correct float64
			for _, q := range queries {
				r, st := idx.GreedyRoute(q)
				hops += float64(st.Hops)
				if truth := exact.Search(q, 1); len(truth) > 0 && truth[0].ID == r.ID {
					correct++
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.GreedyRoute(queries[i%len(queries)])
			}
			b.ReportMetric(hops/float64(len(queries)), "hops")
			b.ReportMetric(correct/float64(len(queries)), "exact-nn-rate")
		})
	}
}

// --- E6: length-constrained path cover (§II-B) ---

func BenchmarkPathCover(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := graph.BarabasiAlbert(300, 2, rng)
	for _, l := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			var paths []seq.Path
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				paths = seq.PathCover(g, l, 0)
			}
			b.ReportMetric(float64(len(paths)), "paths")
			b.ReportMetric(float64(len(paths))/float64(g.NumNodes()), "paths/node")
		})
	}
}

// TestPathCoverBound is the E6 correctness side: the covering property holds
// and the count stays polynomial, at every l.
func TestPathCoverBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.BarabasiAlbert(120, 2, rng)
	for _, l := range []int{1, 2, 3} {
		paths := seq.PathCover(g, l, 0)
		if !seq.CoverageOK(g, paths, l) {
			t.Fatalf("coverage violated at l=%d", l)
		}
		if n := g.NumNodes(); len(paths) > n*n*l {
			t.Fatalf("path count %d exceeds n²·l at l=%d", len(paths), l)
		}
	}
}

// --- E7: rollout-search ablation (§II-C) ---

func BenchmarkRollouts(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ds := finetune.GenerateDataset(200, rng)
	vocab := apis.Default(nil).Names()
	m := finetune.Train(vocab, ds, finetune.TrainConfig{Epochs: 0, Seed: 9})
	tests := finetune.GenerateDataset(60, rng)
	for _, r := range []int{0, 1, 4, 16} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var totalLoss, exact float64
			evalRng := rand.New(rand.NewSource(10))
			for _, ex := range tests {
				pred := finetune.SearchPredict(m, ex.Question, ex.Kind, ex.Truths, finetune.SearchConfig{Rollouts: r}, evalRng)
				l, _ := chain.MinLoss(pred, ex.Truths, 0.5)
				totalLoss += l
				if l == 0 {
					exact++
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := tests[i%len(tests)]
				finetune.SearchPredict(m, ex.Question, ex.Kind, ex.Truths, finetune.SearchConfig{Rollouts: r}, evalRng)
			}
			b.ReportMetric(totalLoss/float64(len(tests)), "mean-loss")
			b.ReportMetric(exact/float64(len(tests)), "exact-rate")
		})
	}
}

// BenchmarkChainPrediction measures end-to-end trained-model decoding
// quality: exact match and GED on a held-out split.
func BenchmarkChainPrediction(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	ds := finetune.GenerateDataset(400, rng)
	train, test := finetune.SplitDataset(ds, 0.25, rng)
	vocab := apis.Default(nil).Names()
	m := finetune.Train(vocab, train, finetune.TrainConfig{Epochs: 2, Search: finetune.SearchConfig{Rollouts: 4}, Seed: 12})
	res := finetune.Evaluate(m, test, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := test[i%len(test)]
		m.Decode(ex.Question, ex.Kind, 8)
	}
	b.ReportMetric(res.ExactMatch, "exact-match")
	b.ReportMetric(res.MeanGED, "mean-ged")
}

// BenchmarkDecodingStrategies is the greedy-vs-beam ablation on the trained
// model: exact match and latency per decode width.
func BenchmarkDecodingStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	ds := finetune.GenerateDataset(400, rng)
	train, test := finetune.SplitDataset(ds, 0.25, rng)
	vocab := apis.Default(nil).Names()
	m := finetune.Train(vocab, train, finetune.TrainConfig{Epochs: 2, Search: finetune.SearchConfig{Rollouts: 4}, Seed: 14})
	for _, width := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("beam=%d", width), func(b *testing.B) {
			res := finetune.EvaluateBeam(m, test, 0.5, width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := test[i%len(test)]
				m.DecodeBeam(ex.Question, ex.Kind, 8, width)
			}
			b.ReportMetric(res.ExactMatch, "exact-match")
			b.ReportMetric(res.MeanGED, "mean-ged")
		})
	}
}

// --- E8: API retrieval quality (Fig. 1 / Fig. 3) ---

func BenchmarkAPIRetrieval(b *testing.B) {
	reg := apis.Default(nil)
	ix, err := retrieve.New(reg, retrieve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Paraphrased queries with their expected API.
	cases := []struct{ query, want string }{
		{"find the communities of the social network", "community.detect"},
		{"detect clusters in this graph", "community.detect"},
		{"who is the most influential node", "centrality.pagerank"},
		{"is the graph connected", "connectivity.components"},
		{"how toxic is this molecule", "molecule.toxicity"},
		{"will this compound dissolve in water", "molecule.solubility"},
		{"what is the molecular formula", "molecule.formula"},
		{"find similar molecules in the database", "similarity.search"},
		{"clean the knowledge graph noise", "kg.detect_all"},
		{"infer missing facts from the triples", "kg.detect_missing"},
		{"shortest path between two nodes", "path.shortest"},
		{"count the triangles of the network", "structure.triangles"},
	}
	hits := 0
	for _, c := range cases {
		for _, name := range ix.Names(c.query, 5) {
			if name == c.want {
				hits++
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopAPIs(cases[i%len(cases)].query, 5)
	}
	b.ReportMetric(float64(hits)/float64(len(cases)), "hit@5")
}
