module chatgraph

go 1.22
