// Molecule comparison (paper Fig. 5, scenario 2): a molecule database is
// populated, the user uploads a query molecule, and ChatGraph invokes the
// similarity-search API to return the top-2 most similar molecules — the
// virtual-filtering workflow from drug design.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"chatgraph/internal/apis"
	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	env := &apis.Env{}
	reg := apis.Default(env)
	// Fill the molecule database (the paper's curated collection).
	core.SeedMoleculeDB(env, 300, rng)

	// Plant a near-duplicate of the query so the top hit is meaningful.
	query := graph.Molecule(16, rng)
	query.Name = "candidate_drug"
	env.MolDB.Add("reference_compound", query.Clone())

	eng, err := core.NewEngine(core.Config{Registry: reg, Env: env, TrainSeed: 11})
	if err != nil {
		log.Fatal(err)
	}
	sess := eng.NewSession()

	turn, err := sess.Ask(context.Background(), "What molecules are similar to G?", query, core.AskOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kind  : %s\n", turn.Kind)
	fmt.Printf("chain : %s\n", turn.Chain)
	fmt.Printf("answer: %s\n", turn.Answer)
}
