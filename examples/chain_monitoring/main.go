// Chain monitoring (paper Fig. 7, scenario 4): the user reviews and edits
// the generated API chain before execution, then watches per-step progress
// events while the chain runs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/executor"
	"chatgraph/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(31))
	g := graph.PlantedCommunities(3, 15, 0.5, 0.02, rng)
	g.Name = "monitored_graph"

	eng, err := core.NewEngine(core.Config{TrainSeed: 31})
	if err != nil {
		log.Fatal(err)
	}
	sess := eng.NewSession()

	turn, err := sess.Ask(context.Background(), "Write a brief report for G", g, core.AskOptions{
		// The user edits the chain before approving: centrality analysis
		// is appended ahead of the report step.
		Confirm: func(c chain.Chain) (chain.Chain, bool) {
			fmt.Printf("generated chain : %s\n", c)
			edited := c.Clone()
			if last := len(edited) - 1; last >= 0 && edited[last].API == "report.compose" {
				edited = append(edited[:last:last],
					chain.NewStep("centrality.pagerank", "top", "3"), edited[last])
			}
			fmt.Printf("edited chain    : %s\n\n", edited)
			return edited, true
		},
		// Live progress, as in the monitoring panel.
		OnEvent: func(e executor.Event) {
			switch e.Type {
			case executor.EventStepStart:
				fmt.Printf("[%7.2fms] ▶ step %d %s\n", ms(e), e.StepIndex+1, e.Step)
			case executor.EventStepDone:
				fmt.Printf("[%7.2fms] ✓ step %d\n", ms(e), e.StepIndex+1)
			case executor.EventChainDone:
				fmt.Printf("[%7.2fms] chain complete\n\n", ms(e))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(turn.Answer)
}

func ms(e executor.Event) float64 { return float64(e.Elapsed.Microseconds()) / 1000 }
