// HTTP LLM backend: runs ChatGraph against an OpenAI-style chat-completions
// endpoint instead of the built-in simulated model. To stay runnable
// offline, this example starts an in-process mock server that answers every
// completion request with a fixed API chain — exactly the wire exchange a
// real endpoint (vLLM/FastChat serving the paper's Vicuna) would have.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"chatgraph/internal/config"
	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

func main() {
	// Mock endpoint: always proposes the social-report chain.
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Model    string `json:"model"`
			Messages []struct {
				Role    string `json:"role"`
				Content string `json:"content"`
			} `json:"messages"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Printf("mock LLM got %d message(s) for model %q\n", len(req.Messages), req.Model)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"choices": []map[string]any{{
				"message": map[string]string{
					"role":    "assistant",
					"content": "graph.classify -> community.detect -> report.compose",
				},
			}},
		})
	}))
	defer mock.Close()

	// Build the engine from a Fig. 3-style config with the HTTP backend.
	fc := config.Default()
	fc.LLM.Backend = "http"
	fc.LLM.BaseURL = mock.URL
	fc.LLM.Model = "vicuna-13b"
	fc.Finetune.Examples = 50 // retrieval still needs a (small) model-free setup

	eng, err := core.NewEngineFromConfig(fc, nil, nil, 99)
	if err != nil {
		log.Fatal(err)
	}
	sess := eng.NewSession()

	g := graph.PlantedCommunities(3, 12, 0.5, 0.02, rand.New(rand.NewSource(99)))
	turn, err := sess.Ask(context.Background(), "Write a brief report for G", g, core.AskOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchain (from HTTP LLM): %s\n\n%s\n", turn.Chain, turn.Answer)
}
