// Quickstart: build a ChatGraph session, upload a small graph, and ask one
// question. This is the minimal end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

func main() {
	// A tiny friendship network.
	g := graph.New()
	g.Name = "friends"
	names := []string{"ann", "bob", "cat", "dan", "eve"}
	for _, n := range names {
		g.AddNode(n)
	}
	edges := [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// A default engine: built-in API registry, simulated LLM trained on
	// the synthetic finetuning dataset. The engine is the expensive shared
	// part; sessions minted from it are cheap per-conversation objects.
	eng, err := core.NewEngine(core.Config{TrainSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sess := eng.NewSession()

	turn, err := sess.Ask(context.Background(), "Write a brief report for G", g, core.AskOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("question : %s\n", turn.Question)
	fmt.Printf("kind     : %s\n", turn.Kind)
	fmt.Printf("chain    : %s\n", turn.Chain)
	fmt.Printf("answer   :\n%s\n", turn.Answer)
}
