// Knowledge-graph cleaning (paper Fig. 6, scenario 3): noise is injected
// into a knowledge graph, the user asks ChatGraph to clean it, the detected
// issues are shown for confirmation, and the confirmed edits are applied.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/graph"
	"chatgraph/internal/kg"
)

func main() {
	rng := rand.New(rand.NewSource(23))
	g := graph.KnowledgeGraph(50, 120, rng)
	g.Name = "company_kg"
	corruption := kg.InjectNoise(g, 8, 4, rng)
	fmt.Printf("injected %d wrong edges, dropped %d true edges (started from %d clean triples)\n\n",
		len(corruption.AddedWrong), len(corruption.RemovedTrue), corruption.CleanTriples)

	eng, err := core.NewEngine(core.Config{TrainSeed: 23})
	if err != nil {
		log.Fatal(err)
	}
	sess := eng.NewSession()

	// Score detection against the known corruption before cleaning.
	precision, recall := kg.Score(kg.NewDetector().DetectIncorrect(g), corruption)
	fmt.Printf("incorrect-edge detection: precision %.2f, recall %.2f\n\n", precision, recall)

	before := g.NumEdges()
	turn, err := sess.Ask(context.Background(), "Clean G", g, core.AskOptions{
		// The confirmation hook shows the chain the LLM proposes — the
		// user presses "approve" here.
		Confirm: func(c chain.Chain) (chain.Chain, bool) {
			fmt.Printf("proposed chain: %s\napproved.\n\n", c)
			return nil, true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer: %s\n\n", turn.Answer)
	fmt.Printf("edges before cleaning: %d, after: %d (missing-edge inference adds edges)\n", before, g.NumEdges())

	// After cleaning, every injected incorrect edge should be gone.
	remaining := kg.NewDetector().DetectIncorrect(g)
	fmt.Printf("incorrect edges remaining after cleaning: %d\n", len(remaining))
}
