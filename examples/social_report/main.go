// Social report (paper Fig. 4, scenario 1): a social network with planted
// communities is uploaded and ChatGraph is asked for a report; the routed
// chain invokes social-specific APIs (community detection, connectivity)
// before composing the report.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := graph.PlantedCommunities(4, 20, 0.45, 0.01, rng)
	g.Name = "campus_network"

	eng, err := core.NewEngine(core.Config{TrainSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	sess := eng.NewSession()

	for _, q := range []string{
		"Write a brief report for G",
		"What communities are in this network?",
		"Who are the most influential nodes?",
	} {
		turn, err := sess.Ask(context.Background(), q, g, core.AskOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\nchain: %s\nA: %s\n\n", q, turn.Chain, turn.Answer)
	}
}
