// Package chatgraph is the root of the ChatGraph reproduction — an LLM-based
// framework for interacting with graphs through natural language (ICDE 2024
// demo). The implementation lives under internal/: see internal/core for the
// Engine/Session orchestrator, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The root package
// holds only the benchmark harness (bench_test.go) that regenerates every
// experiment.
package chatgraph
