// Command evalchains regenerates experiments E7–E11 as printed tables: the
// rollout-search ablation, the greedy-vs-beam decoding comparison, the
// per-task accuracy breakdown of the finetuned model, the API-retrieval hit
// rate, the multi-session engine throughput scaling, the batched retrieval
// throughput, and the graph-kernel table (cold vs cached executor
// invocations, serial vs parallel eccentricities). It is the table-oriented
// companion to `go test -bench`.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/executor"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
	"chatgraph/internal/retrieve"
)

func main() {
	var (
		nTrain = flag.Int("train", 400, "training examples")
		nTest  = flag.Int("test", 100, "held-out examples for ablations")
		seed   = flag.Int64("seed", 1, "random seed")
		alpha  = flag.Float64("alpha", 0.5, "node-matching loss regularizer weight")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	vocab := apis.Default(nil).Names()

	fmt.Println("== E7a: rollout-search ablation (count-initialized model) ==")
	weak := finetune.Train(vocab, finetune.GenerateDataset(*nTrain/2, rng), finetune.TrainConfig{Epochs: 0, Seed: *seed})
	ablationSet := finetune.GenerateDataset(*nTest, rng)
	fmt.Printf("%-10s %12s %12s\n", "rollouts", "exact-rate", "mean-loss")
	for _, r := range []int{0, 1, 4, 16, 64} {
		evalRng := rand.New(rand.NewSource(*seed + 100))
		exact, totalLoss := 0.0, 0.0
		for _, ex := range ablationSet {
			pred := finetune.SearchPredict(weak, ex.Question, ex.Kind, ex.Truths,
				finetune.SearchConfig{Rollouts: r, Alpha: *alpha}, evalRng)
			l, _ := chain.MinLoss(pred, ex.Truths, *alpha)
			totalLoss += l
			if l == 0 {
				exact++
			}
		}
		n := float64(len(ablationSet))
		fmt.Printf("%-10d %12.3f %12.3f\n", r, exact/n, totalLoss/n)
	}

	fmt.Println("\n== E7b: trained model, greedy vs beam decoding ==")
	ds := finetune.GenerateDataset(*nTrain, rng)
	train, test := finetune.SplitDataset(ds, 0.25, rng)
	model := finetune.Train(vocab, train, finetune.TrainConfig{
		Epochs: 2, Search: finetune.SearchConfig{Rollouts: 4, Alpha: *alpha}, Seed: *seed,
	})
	fmt.Printf("%-10s %12s %12s\n", "beam", "exact-match", "mean-ged")
	for _, w := range []int{1, 2, 4, 8} {
		res := finetune.EvaluateBeam(model, test, *alpha, w)
		fmt.Printf("%-10d %12.3f %12.3f\n", w, res.ExactMatch, res.MeanGED)
	}

	fmt.Println("\n== E7c: per-task accuracy (greedy decoding) ==")
	byTask := finetune.EvaluateByTask(model, test, *alpha)
	tasks := make([]string, 0, len(byTask))
	for t := range byTask {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)
	fmt.Printf("%-18s %8s %12s %10s\n", "task", "examples", "exact-match", "mean-ged")
	for _, t := range tasks {
		res := byTask[t]
		fmt.Printf("%-18s %8d %12.3f %10.3f\n", t, res.Examples, res.ExactMatch, res.MeanGED)
	}

	fmt.Println("\n== E8: API retrieval hit rate ==")
	ix, err := retrieve.New(apis.Default(nil), retrieve.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalchains:", err)
		os.Exit(1)
	}
	queries := []struct{ query, want string }{
		{"find the communities of the social network", "community.detect"},
		{"who is the most influential node", "centrality.pagerank"},
		{"how toxic is this molecule", "molecule.toxicity"},
		{"find similar molecules in the database", "similarity.search"},
		{"clean the knowledge graph noise", "kg.detect_all"},
		{"shortest path between two nodes", "path.shortest"},
		{"which cliques exist in this graph", "structure.cliques"},
		{"what functional groups does the molecule contain", "molecule.substructure"},
	}
	fmt.Printf("%-52s %-22s %s\n", "query", "expected", "hit@5")
	hits := 0
	for _, q := range queries {
		got := ix.Names(q.query, 5)
		hit := false
		for _, name := range got {
			if name == q.want {
				hit = true
			}
		}
		if hit {
			hits++
		}
		fmt.Printf("%-52s %-22s %v\n", q.query, q.want, hit)
	}
	fmt.Printf("overall hit@5: %.3f\n", float64(hits)/float64(len(queries)))

	fmt.Println("\n== E9: multi-session engine throughput (concurrent Asks, one shared engine) ==")
	env := &apis.Env{}
	engine, err := core.NewEngine(core.Config{
		Registry:      apis.Default(env),
		Env:           env,
		TrainSeed:     *seed,
		TrainExamples: *nTrain / 2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalchains:", err)
		os.Exit(1)
	}
	const asksPerSession = 8
	fmt.Printf("%-10s %12s %12s\n", "sessions", "asks/sec", "wall-ms")
	for _, nSessions := range []int{1, 2, 4, 8} {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, nSessions)
		for i := 0; i < nSessions; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				sess := engine.NewSession()
				g := graph.PlantedCommunities(2, 10, 0.5, 0.05, rand.New(rand.NewSource(seed)))
				for j := 0; j < asksPerSession; j++ {
					if _, err := sess.Ask(context.Background(), "Write a brief report for G", g, core.AskOptions{}); err != nil {
						errs <- err
						return
					}
				}
			}(int64(i + 1))
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			fmt.Fprintln(os.Stderr, "evalchains:", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		total := float64(nSessions * asksPerSession)
		fmt.Printf("%-10d %12.1f %12.1f\n", nSessions, total/wall.Seconds(), float64(wall.Milliseconds()))
	}

	fmt.Println("\n== E10: batched retrieval throughput (TopAPIsBatch vs one-query-at-a-time loop) ==")
	// A padded registry pushes retrieval onto the τ-MG proximity-graph path
	// so the table measures the production index, not the tiny-registry
	// brute-force fallback.
	padded := apis.Default(nil)
	for i := 0; padded.Len() < 512; i++ {
		name := fmt.Sprintf("pad.api%d", i)
		if err := padded.Register(apis.API{
			Name:        name,
			Description: fmt.Sprintf("synthetic padding operation %d for batched retrieval scale testing", i),
			Category:    "util",
			Fn:          func(apis.Input) (apis.Output, error) { return apis.Output{Text: "pad"}, nil },
		}); err != nil {
			fmt.Fprintln(os.Stderr, "evalchains:", err)
			os.Exit(1)
		}
	}
	bix, err := retrieve.New(padded, retrieve.Config{ExactThreshold: 16, Tau: 0.05})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalchains:", err)
		os.Exit(1)
	}
	baseQueries := make([]string, 0, len(queries))
	for _, q := range queries {
		baseQueries = append(baseQueries, q.query)
	}
	bix.TopAPIsBatch(baseQueries, 5) // warm the scratch/worker pools
	fmt.Printf("%-10s %12s %12s %9s\n", "batch", "loop-qps", "batch-qps", "speedup")
	for _, batchSize := range []int{1, 8, 32, 128} {
		qs := make([]string, batchSize)
		for i := range qs {
			qs[i] = baseQueries[i%len(baseQueries)]
		}
		const rounds = 20
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, q := range qs {
				bix.TopAPIs(q, 5)
			}
		}
		loop := time.Since(start)
		start = time.Now()
		for r := 0; r < rounds; r++ {
			bix.TopAPIsBatch(qs, 5)
		}
		batched := time.Since(start)
		total := float64(rounds * batchSize)
		fmt.Printf("%-10d %12.0f %12.0f %8.2fx\n",
			batchSize, total/loop.Seconds(), total/batched.Seconds(), loop.Seconds()/batched.Seconds())
	}

	fmt.Println("\n== E11a: executor invocation cache (cold vs cached chain runs on one graph) ==")
	// Each row re-runs the same analysis chain against one unmutated graph:
	// "cold" bumps the graph version every run (full CSR freeze + recompute),
	// "cached" lets the Env invocation LRU and the frozen-view memos serve it.
	e11env := &apis.Env{}
	e11reg := apis.Default(e11env)
	exec := executor.New(e11reg, e11env)
	analysis := chain.Chain{
		{API: "graph.stats"},
		{API: "structure.kcore"},
		{API: "structure.center"},
	}
	const e11Rounds = 25
	fmt.Printf("%-10s %14s %14s %9s\n", "nodes", "cold-ms/run", "cached-ms/run", "speedup")
	for _, n := range []int{200, 800, 2000} {
		g := graph.BarabasiAlbert(n, 3, rand.New(rand.NewSource(*seed)))
		cold := time.Duration(0)
		for r := 0; r < e11Rounds; r++ {
			g.SetNodeLabel(0, "v") // version bump forces a full recompute
			start := time.Now()
			if _, err := exec.Run(context.Background(), g, analysis, executor.Options{}); err != nil {
				fmt.Fprintln(os.Stderr, "evalchains:", err)
				os.Exit(1)
			}
			cold += time.Since(start)
		}
		if _, err := exec.Run(context.Background(), g, analysis, executor.Options{}); err != nil { // warm the cache
			fmt.Fprintln(os.Stderr, "evalchains:", err)
			os.Exit(1)
		}
		start := time.Now()
		for r := 0; r < e11Rounds; r++ {
			if _, err := exec.Run(context.Background(), g, analysis, executor.Options{}); err != nil {
				fmt.Fprintln(os.Stderr, "evalchains:", err)
				os.Exit(1)
			}
		}
		cached := time.Since(start)
		fmt.Printf("%-10d %14.3f %14.3f %8.1fx\n", n,
			float64(cold.Microseconds())/1000/e11Rounds,
			float64(cached.Microseconds())/1000/e11Rounds,
			float64(cold)/float64(cached))
	}

	fmt.Println("\n== E11b: all-source eccentricities, serial vs parallel BFS sweeps ==")
	// parallel.ForEach clamps to GOMAXPROCS, so pinning it to 1 gives the
	// serial baseline; the speedup tracks core count (≈1x on one core).
	fmt.Printf("%-10s %14s %14s %9s  (GOMAXPROCS=%d)\n",
		"nodes", "serial-ms", "parallel-ms", "speedup", runtime.GOMAXPROCS(0))
	for _, n := range []int{500, 2000} {
		g := graph.BarabasiAlbert(n, 3, rand.New(rand.NewSource(*seed)))
		g.Freeze()
		graph.Eccentricities(g) // warm the scratch pool
		const reps = 5
		procs := runtime.GOMAXPROCS(1)
		start := time.Now()
		for r := 0; r < reps; r++ {
			graph.Eccentricities(g)
		}
		serial := time.Since(start)
		runtime.GOMAXPROCS(procs)
		start = time.Now()
		for r := 0; r < reps; r++ {
			graph.Eccentricities(g)
		}
		par := time.Since(start)
		fmt.Printf("%-10d %14.2f %14.2f %8.2fx\n", n,
			float64(serial.Microseconds())/1000/reps,
			float64(par.Microseconds())/1000/reps,
			float64(serial)/float64(par))
	}
}
