// Command benchann regenerates experiment E5: it sweeps dataset size and τ
// and prints a table comparing τ-MG against the MRNG and NSW baselines on
// recall, ε-approximation rate, routing hops, and distance computations —
// the quantitative backing for the paper's claim that τ-MG is the
// state-of-the-art proximity graph for the API-retrieval module.
//
// With -batch N it instead runs the batch-throughput mode: for every index
// it measures the one-query-at-a-time Search loop against SearchBatch in
// chunks of N (worker-pool fan-out over GOMAXPROCS cores) and prints
// queries/sec plus the speedup — the E10 evidence that the batched surface
// amortizes retrieval across cores.
//
// With -quantize it runs the E15 quantization sweep instead: for every
// dataset size and every rerank factor in -rerank-factor it builds f32 and
// int8 twins (brute force and τ-MG) and prints recall@k against exact
// search, queries/sec for both tiers, the resulting speedup, and the
// vector-store memory ratio — the recall-vs-speedup frontier of the
// two-stage quantized path.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"chatgraph/internal/ann"
	"chatgraph/internal/vecmath"
)

func main() {
	var (
		sizes    = flag.String("sizes", "1000,2000,5000", "comma-separated dataset sizes")
		dim      = flag.Int("dim", 64, "vector dimensionality")
		queries  = flag.Int("queries", 200, "queries per cell")
		k        = flag.Int("k", 10, "neighbors per query")
		taus     = flag.String("taus", "0,0.05,0.15", "comma-separated tau values")
		seed     = flag.Int64("seed", 1, "random seed")
		epsilon  = flag.Float64("epsilon", 0.05, "epsilon for the Definition 2 approximation rate")
		batch    = flag.Int("batch", 0, "batch size for the batch-throughput mode (0 disables)")
		quantize = flag.Bool("quantize", false, "run the quantization sweep (recall vs speedup per rerank factor)")
		rerank   = flag.String("rerank-factor", "1,2,4,8", "comma-separated rerank factors for the -quantize sweep")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	if *quantize {
		runQuantMode(rng, *sizes, *rerank, *dim, *queries, *k)
		return
	}
	if *batch > 0 {
		runBatchMode(rng, *sizes, *dim, *queries, *k, *batch)
		return
	}
	fmt.Printf("%-8s %-14s %9s %9s %9s %9s %9s %10s\n",
		"n", "index", "recall@1", "recall@k", "eps-ok", "hops", "dists", "build")
	for _, n := range parseSizes(*sizes) {
		vecs := ann.ClusteredVectors(n, *dim, 16, 0.3, rng)
		qs := ann.ClusteredVectors(*queries, *dim, 16, 0.3, rng)
		exact := ann.NewBruteForce(vecs)

		row := func(name string, idx ann.Index, build time.Duration) {
			ev := ann.Evaluate(idx, exact, qs, *k, *epsilon)
			fmt.Printf("%-8d %-14s %9.3f %9.3f %9.3f %9.1f %9.1f %10s\n",
				n, name, ev.RecallAt1, ev.RecallAtK, ev.EpsilonOK, ev.AvgHops, ev.AvgDistComps, build.Round(time.Millisecond))
		}
		row("bruteforce", exact, 0)
		for _, tStr := range strings.Split(*taus, ",") {
			var tau float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tStr), "%g", &tau); err != nil {
				fmt.Fprintf(os.Stderr, "benchann: bad tau %q\n", tStr)
				os.Exit(1)
			}
			start := time.Now()
			idx, err := ann.NewTauMG(vecs, ann.TauMGConfig{Tau: float32(tau)})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
				os.Exit(1)
			}
			name := fmt.Sprintf("tau-mg(%.2f)", tau)
			if tau == 0 {
				name = "mrng"
			}
			row(name, idx, time.Since(start))
		}
		start := time.Now()
		nsw, err := ann.NewNSW(vecs, ann.NSWConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
			os.Exit(1)
		}
		row("nsw", nsw, time.Since(start))
		fmt.Println()
	}
}

// parseSizes splits the -sizes flag into positive ints, exiting on garbage.
func parseSizes(sizes string) []int {
	var out []int
	for _, nStr := range strings.Split(sizes, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(nStr), "%d", &n); err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "benchann: bad size %q\n", nStr)
			os.Exit(1)
		}
		out = append(out, n)
	}
	return out
}

// runQuantMode prints the E15 quantization sweep: per dataset size, index
// family, and rerank factor, the recall@k of the two-stage int8 path against
// exact f32 search, sequential queries/sec for both tiers, the speedup, and
// the vector-store memory ratio.
func runQuantMode(rng *rand.Rand, sizes, reranks string, dim, nq, k int) {
	factors := parseSizes(reranks)
	fmt.Printf("quantization sweep: %d queries, k=%d, dim=%d (int8 scan + f32 rerank vs pure f32)\n\n", nq, k, dim)
	fmt.Printf("%-8s %-14s %7s %9s %12s %12s %9s %7s\n",
		"n", "index", "rerank", "recall@k", "f32-qps", "int8-qps", "speedup", "mem")
	for _, n := range parseSizes(sizes) {
		vecs := ann.ClusteredVectors(n, dim, 16, 0.3, rng)
		qs := ann.ClusteredVectors(nq, dim, 16, 0.3, rng)
		exact := ann.NewBruteForce(vecs)

		mat, err := vecmath.FromRows(vecs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
			os.Exit(1)
		}
		memRatio := float64(mat.Bytes()) / float64(vecmath.Quantize(mat).Bytes())

		families := []struct {
			name  string
			build func(q ann.QuantConfig) (ann.Index, error)
		}{
			{"bruteforce", func(q ann.QuantConfig) (ann.Index, error) {
				return ann.NewBruteForceQuant(vecs, q), nil
			}},
			{"tau-mg(0.05)", func(q ann.QuantConfig) (ann.Index, error) {
				return ann.NewTauMG(vecs, ann.TauMGConfig{Tau: 0.05, Quant: q})
			}},
		}
		for _, fam := range families {
			f32idx, err := fam.build(ann.QuantConfig{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
				os.Exit(1)
			}
			f32idx.Search(qs[0], k) // warm the scratch pool
			start := time.Now()
			for _, q := range qs {
				f32idx.Search(q, k)
			}
			f32QPS := float64(len(qs)) / time.Since(start).Seconds()

			for _, rf := range factors {
				qidx, err := fam.build(ann.QuantConfig{Enabled: true, RerankFactor: rf})
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
					os.Exit(1)
				}
				qidx.Search(qs[0], k)
				start := time.Now()
				for _, q := range qs {
					qidx.Search(q, k)
				}
				intQPS := float64(len(qs)) / time.Since(start).Seconds()
				ev := ann.Evaluate(qidx, exact, qs, k, 0.05)
				fmt.Printf("%-8d %-14s %7d %9.3f %12.0f %12.0f %8.2fx %6.2fx\n",
					n, fam.name, rf, ev.RecallAtK, f32QPS, intQPS, intQPS/f32QPS, memRatio)
			}
		}
		fmt.Println()
	}
}

// runBatchMode prints the E10 batch-throughput table: per index, queries/sec
// of the sequential Search loop versus SearchBatch over batchSize chunks.
func runBatchMode(rng *rand.Rand, sizes string, dim, nq, k, batchSize int) {
	if nq <= 0 {
		fmt.Fprintf(os.Stderr, "benchann: -batch mode needs -queries > 0 (got %d)\n", nq)
		os.Exit(1)
	}
	fmt.Printf("batch-throughput mode: %d queries, batch=%d, k=%d, GOMAXPROCS-bounded workers\n\n", nq, batchSize, k)
	fmt.Printf("%-8s %-14s %12s %12s %9s\n", "n", "index", "loop-qps", "batch-qps", "speedup")
	for _, n := range parseSizes(sizes) {
		vecs := ann.ClusteredVectors(n, dim, 16, 0.3, rng)
		qs := ann.ClusteredVectors(nq, dim, 16, 0.3, rng)
		indexes := []struct {
			name  string
			build func() (ann.Index, error)
		}{
			{"bruteforce", func() (ann.Index, error) { return ann.NewBruteForce(vecs), nil }},
			{"tau-mg(0.05)", func() (ann.Index, error) { return ann.NewTauMG(vecs, ann.TauMGConfig{Tau: 0.05}) }},
			{"hnsw", func() (ann.Index, error) { return ann.NewHNSW(vecs, ann.HNSWConfig{Seed: 1}) }},
			{"ivf", func() (ann.Index, error) { return ann.NewIVFFlat(vecs, ann.IVFConfig{Seed: 1}) }},
		}
		for _, spec := range indexes {
			idx, err := spec.build()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
				os.Exit(1)
			}
			// Warm the scratch pool so both paths measure steady state.
			idx.Search(qs[0], k)

			start := time.Now()
			for _, q := range qs {
				idx.Search(q, k)
			}
			loop := time.Since(start)

			start = time.Now()
			for base := 0; base < len(qs); base += batchSize {
				hi := base + batchSize
				if hi > len(qs) {
					hi = len(qs)
				}
				idx.SearchBatch(qs[base:hi], k)
			}
			batched := time.Since(start)

			loopQPS := float64(len(qs)) / loop.Seconds()
			batchQPS := float64(len(qs)) / batched.Seconds()
			fmt.Printf("%-8d %-14s %12.0f %12.0f %8.2fx\n", n, spec.name, loopQPS, batchQPS, batchQPS/loopQPS)
		}
		fmt.Println()
	}
}
