// Command benchann regenerates experiment E5: it sweeps dataset size and τ
// and prints a table comparing τ-MG against the MRNG and NSW baselines on
// recall, ε-approximation rate, routing hops, and distance computations —
// the quantitative backing for the paper's claim that τ-MG is the
// state-of-the-art proximity graph for the API-retrieval module.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"chatgraph/internal/ann"
)

func main() {
	var (
		sizes   = flag.String("sizes", "1000,2000,5000", "comma-separated dataset sizes")
		dim     = flag.Int("dim", 64, "vector dimensionality")
		queries = flag.Int("queries", 200, "queries per cell")
		k       = flag.Int("k", 10, "neighbors per query")
		taus    = flag.String("taus", "0,0.05,0.15", "comma-separated tau values")
		seed    = flag.Int64("seed", 1, "random seed")
		epsilon = flag.Float64("epsilon", 0.05, "epsilon for the Definition 2 approximation rate")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("%-8s %-14s %9s %9s %9s %9s %9s %10s\n",
		"n", "index", "recall@1", "recall@k", "eps-ok", "hops", "dists", "build")
	for _, nStr := range strings.Split(*sizes, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(nStr), "%d", &n); err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "benchann: bad size %q\n", nStr)
			os.Exit(1)
		}
		vecs := ann.ClusteredVectors(n, *dim, 16, 0.3, rng)
		qs := ann.ClusteredVectors(*queries, *dim, 16, 0.3, rng)
		exact := ann.NewBruteForce(vecs)

		row := func(name string, idx ann.Index, build time.Duration) {
			ev := ann.Evaluate(idx, exact, qs, *k, *epsilon)
			fmt.Printf("%-8d %-14s %9.3f %9.3f %9.3f %9.1f %9.1f %10s\n",
				n, name, ev.RecallAt1, ev.RecallAtK, ev.EpsilonOK, ev.AvgHops, ev.AvgDistComps, build.Round(time.Millisecond))
		}
		row("bruteforce", exact, 0)
		for _, tStr := range strings.Split(*taus, ",") {
			var tau float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tStr), "%g", &tau); err != nil {
				fmt.Fprintf(os.Stderr, "benchann: bad tau %q\n", tStr)
				os.Exit(1)
			}
			start := time.Now()
			idx, err := ann.NewTauMG(vecs, ann.TauMGConfig{Tau: float32(tau)})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
				os.Exit(1)
			}
			name := fmt.Sprintf("tau-mg(%.2f)", tau)
			if tau == 0 {
				name = "mrng"
			}
			row(name, idx, time.Since(start))
		}
		start := time.Now()
		nsw, err := ann.NewNSW(vecs, ann.NSWConfig{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchann: %v\n", err)
			os.Exit(1)
		}
		row("nsw", nsw, time.Since(start))
		fmt.Println()
	}
}
