// Command gendata emits artifacts for offline inspection: the synthetic
// finetuning dataset as JSON lines, or demo graphs in the upload wire
// format.
//
// Usage:
//
//	gendata -what dataset -n 500 > dataset.jsonl
//	gendata -what graph -kind molecule -size 24 > mol.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
)

func main() {
	var (
		what = flag.String("what", "dataset", "what to generate: dataset or graph")
		n    = flag.Int("n", 200, "dataset examples to generate")
		kind = flag.String("kind", "social", "graph kind: social, molecule, or knowledge")
		size = flag.Int("size", 30, "graph size (nodes)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	switch *what {
	case "dataset":
		enc := json.NewEncoder(os.Stdout)
		for _, ex := range finetune.GenerateDataset(*n, rng) {
			truths := make([]string, len(ex.Truths))
			for i, t := range ex.Truths {
				truths[i] = t.String()
			}
			if err := enc.Encode(map[string]any{
				"question": ex.Question,
				"kind":     ex.Kind.String(),
				"task":     ex.Task,
				"chains":   truths,
			}); err != nil {
				fatal(err)
			}
		}
	case "graph":
		var g *graph.Graph
		switch *kind {
		case "social":
			g = graph.PlantedCommunities(3, *size/3+1, 0.5, 0.02, rng)
		case "molecule":
			g = graph.Molecule(*size, rng)
		case "knowledge":
			g = graph.KnowledgeGraph(*size, *size*2, rng)
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data) //nolint:errcheck
		fmt.Println()
	default:
		fatal(fmt.Errorf("unknown -what %q", *what))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendata:", err)
	os.Exit(1)
}
