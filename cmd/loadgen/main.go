// Command loadgen drives a running chatgraphd over the v1 API and reports
// serving-layer performance: latency percentiles, throughput, error and
// shed rates, per operation and overall. It is the repeatable measurement
// tool behind BENCH_serving.json and the CI loadgen-smoke job.
//
// Two load models:
//
//   - closed loop (default): -concurrency workers each issue the next
//     request as soon as the previous one finishes — throughput follows
//     service rate, the classic saturation probe.
//   - open loop: requests are dispatched on a fixed schedule at -rate
//     req/s regardless of completions — the arrival process real users
//     produce, which is what exposes queueing collapse under overload.
//
// The operation mix interleaves chat (POST /v1/sessions/{id}/chat, session
// pool round-robin) and batched retrieval (POST /v1/retrieve) per
// -chat-frac. With -jobs-mix > 0 that fraction of operations instead goes
// through the async path: POST /v1/jobs, then poll GET /v1/jobs/{id} until
// the job settles — the recorded latency is submit-to-terminal, so the job
// row's percentiles are completion latencies, not request latencies. 429
// responses count as shed, not errors — shedding is the admission policy
// working as designed; any other non-2xx is an error.
// After the run, /healthz and /metrics are probed so the smoke job fails
// when observability breaks. -strict exits non-zero on any error or failed
// probe.
//
// -reupload (default true) is the E13 workload: every chat request carries
// the full graph JSON in its body, the way stateless clients actually
// behave — the scenario that scored 0% invoke-cache hits before graphs
// were content-addressed. -reupload=false sends question-only chats.
// Either way the report's "cache" block records the server-side invoke
// cache and graph-intern hit rates over the run, read as /metrics counter
// deltas, so the cache effectiveness of a workload is part of the checked
// in benchmark, not a separate observation.
//
// Scenario knobs turn the basic mix into a workload library:
//
//   - -tenant-keys "name=key,..." partitions the workers and the session
//     pool over named tenants; every request carries its tenant's
//     X-API-Key and the report gains a per-tenant breakdown, including
//     each tenant's admitted-throughput share — the number the fairness
//     CI gate compares against the configured weights.
//   - -hostile-tenants names tenants whose workers mix adversarial
//     requests (oversized uploads, malformed JSON, bad pinned IDs, probes
//     at other tenants' sessions) into their traffic. The expected 4xxs
//     land in a separate "rejected" column, not errors: a hostile tenant
//     being rejected is the server working as designed.
//   - -graphs > 1 draws each chat/job's graph from a zipf popularity
//     distribution over a pool of distinct graphs: the head of the
//     distribution exercises the intern and invoke caches the way popular
//     documents do, while the tail defeats them.
//   - -burst-every/-burst-len/-burst-mult modulate the open-loop schedule
//     into bursty arrivals — baseline -rate with periodic windows at a
//     multiple of it, the arrival shape that exposes admission behavior a
//     steady rate hides.
//
// Example:
//
//	chatgraphd -addr :8080 &
//	loadgen -addr http://localhost:8080 -duration 5s -concurrency 4 \
//	        -chat-frac 0.5 -json BENCH_serving.json -strict
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chatgraph/internal/graph"
)

func main() {
	var (
		addr         = flag.String("addr", "http://localhost:8080", "base URL of the chatgraphd (or chatgraph-router) to drive")
		targets      = flag.String("targets", "", "comma-separated base URLs to spread load across (cluster mode: sessions and ops are partitioned over the targets and the report breaks results down per backend); empty = just -addr")
		duration     = flag.Duration("duration", 5*time.Second, "how long to generate load")
		concurrency  = flag.Int("concurrency", 4, "closed-loop worker count (open loop: max outstanding requests)")
		mode         = flag.String("mode", "closed", "load model: closed (workers) or open (fixed arrival rate)")
		rate         = flag.Float64("rate", 50, "open-loop arrival rate in req/s")
		chatFrac     = flag.Float64("chat-frac", 0.5, "fraction of operations that are chats (the rest are retrieves)")
		sessions     = flag.Int("sessions", 0, "session pool size (0 = same as -concurrency)")
		k            = flag.Int("k", 5, "retrieval k per query")
		queries      = flag.Int("queries", 4, "queries per retrieve batch")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		seed         = flag.Int64("seed", 7, "workload RNG seed (graph shape, op mix)")
		reupload     = flag.Bool("reupload", true, "send the graph JSON with every chat request (the stateless-client workload); false sends question-only chats")
		jobsMix      = flag.Float64("jobs-mix", 0, "fraction of operations submitted as async jobs (POST /v1/jobs, polled to completion)")
		jobsProbe    = flag.Int("jobs-probe", 0, "after the run, burst this many job submissions without polling to measure queue-full shedding (accepted ones are cancelled)")
		jsonPath     = flag.String("json", "", "write the machine-readable report (BENCH_serving.json schema) to this file")
		strict       = flag.Bool("strict", false, "exit 1 on any transport/status error or failed healthz//metrics probe")
		readyWait    = flag.Duration("ready-wait", 0, "before the run, wait up to this long for GET /readyz to answer 200 (daemons without the endpoint count as ready)")
		restartGrace = flag.Duration("restart-grace", 0, "retry transport errors and 503s with backoff for up to this long per request — lets a run span a daemon restart; recoveries are reported as reconnects")
		tenantKeys   = flag.String("tenant-keys", "", "comma-separated name=key list; workers and the session pool are partitioned over the named tenants, every request carries its tenant's X-API-Key, and the report breaks results down per tenant")
		hostileList  = flag.String("hostile-tenants", "", "comma-separated tenant names (from -tenant-keys) whose workers mix adversarial requests into their traffic; their expected 4xxs count as rejected, not errors")
		hostileFrac  = flag.Float64("hostile-frac", 0.5, "fraction of a hostile tenant's operations that are adversarial")
		graphsN      = flag.Int("graphs", 1, "distinct-graph pool size; > 1 picks each op's graph from a zipf popularity distribution over the pool")
		burstEvery   = flag.Duration("burst-every", 0, "open loop: start an arrival burst this often (0 = steady arrivals)")
		burstLen     = flag.Duration("burst-len", 500*time.Millisecond, "open loop: how long each burst lasts")
		burstMult    = flag.Int("burst-mult", 5, "open loop: arrival-rate multiplier inside a burst")
	)
	flag.Parse()
	if *mode != "closed" && *mode != "open" {
		log.Fatalf("loadgen: -mode must be closed or open, got %q", *mode)
	}
	if *chatFrac < 0 || *chatFrac > 1 {
		log.Fatalf("loadgen: -chat-frac must be in [0,1], got %g", *chatFrac)
	}
	if *jobsMix < 0 || *jobsMix > 1 {
		log.Fatalf("loadgen: -jobs-mix must be in [0,1], got %g", *jobsMix)
	}
	if *hostileFrac < 0 || *hostileFrac > 1 {
		log.Fatalf("loadgen: -hostile-frac must be in [0,1], got %g", *hostileFrac)
	}
	if *graphsN < 1 {
		log.Fatalf("loadgen: -graphs must be >= 1, got %d", *graphsN)
	}
	if *burstMult < 1 {
		log.Fatalf("loadgen: -burst-mult must be >= 1, got %d", *burstMult)
	}
	tenants, err := parseTenants(*tenantKeys, *hostileList)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *sessions <= 0 {
		*sessions = *concurrency
	}
	if *sessions < len(tenants) {
		*sessions = len(tenants)
	}

	// Cluster mode: with -targets, sessions and ops are partitioned over the
	// listed base URLs; otherwise everything drives -addr. Either way each
	// response's X-Backend header (set by chatgraph-router) feeds the
	// per-backend breakdown and the session-affinity check.
	bases := []string{strings.TrimRight(*addr, "/")}
	if *targets != "" {
		bases = bases[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
				bases = append(bases, t)
			}
		}
		if len(bases) == 0 {
			log.Fatal("loadgen: -targets supplied but empty after parsing")
		}
	}
	base := bases[0]
	client := &http.Client{Timeout: *timeout}
	rc := &reconnector{grace: *restartGrace}
	if *readyWait > 0 {
		for _, b := range bases {
			if !waitReady(client, b, *readyWait) {
				log.Fatalf("loadgen: daemon at %s not ready within %s", b, *readyWait)
			}
		}
	}
	rng := rand.New(rand.NewSource(*seed))

	// The graph pool: with -graphs 1 (the default) one modest social graph
	// is reused by every chat — the serving layer is under test, not the
	// graph kernel. A larger pool holds distinct graphs, selected per op by
	// a zipf popularity sampler, so cache behavior under skewed reuse is
	// part of the workload.
	chatBodies := make([][]byte, *graphsN)
	jobBodies := make([][]byte, *graphsN)
	for i := range chatBodies {
		g := graph.PlantedCommunities(2, 10, 0.5, 0.05, rng)
		graphJSON, merr := json.Marshal(g)
		if merr != nil {
			log.Fatalf("loadgen: marshal graph %d: %v", i, merr)
		}
		chatPayload := map[string]any{
			"question": "Summarize the statistics of the graph",
		}
		if *reupload {
			chatPayload["graph"] = json.RawMessage(graphJSON)
		}
		if chatBodies[i], merr = json.Marshal(chatPayload); merr != nil {
			log.Fatalf("loadgen: marshal chat body: %v", merr)
		}
		// Jobs always carry the graph: the async path exists for graph-heavy
		// chains, and reuploading exercises the intern layer under job
		// traffic.
		jobBodies[i], merr = json.Marshal(map[string]any{
			"question": "Write a brief report for G",
			"graph":    json.RawMessage(graphJSON),
		})
		if merr != nil {
			log.Fatalf("loadgen: marshal job body: %v", merr)
		}
	}
	hostileBodies := hostilePayloads()
	retrieveQueries := []string{
		"detect communities in the network",
		"who are the most influential nodes",
		"is the network connected",
		"clean the knowledge graph",
		"how toxic is this molecule",
		"find molecules similar to G",
	}
	qs := retrieveQueries[:min(*queries, len(retrieveQueries))]
	retrieveBody, err := json.Marshal(map[string]any{"queries": qs, "k": *k})
	if err != nil {
		log.Fatalf("loadgen: marshal retrieve body: %v", err)
	}

	// Session pool, partitioned over the targets and the tenants. Each
	// session is created under its tenant's key — sessions are
	// tenant-owned, so a worker may only chat on sessions its own key can
	// see. createdOn remembers which backend (X-Backend) answered the
	// create so every later chat on the session can be checked for
	// affinity.
	pools := make([][]poolSession, len(tenants))
	nSessions := 0
	for i := 0; i < *sessions; i++ {
		ti := i % len(tenants)
		tgt := bases[i%len(bases)]
		id, backend, err := createSession(rc, client, tgt, tenants[ti].key)
		if err != nil {
			log.Fatalf("loadgen: create session %d on %s: %v", i, tgt, err)
		}
		pools[ti] = append(pools[ti], poolSession{base: tgt, id: id, createdOn: backend})
		nSessions++
	}

	// Baseline cache counters: the cache block reports deltas over the run,
	// so earlier traffic against the same daemon doesn't pollute the rates.
	// Multi-target runs sum the counters across targets.
	cacheBefore := scrapeAllCacheCounters(client, bases)

	run := newRunStats()
	doOp := func(w *rand.Rand, zipf *rand.Zipf, worker int) {
		start := time.Now()
		tgt := bases[worker%len(bases)]
		tn := tenants[worker%len(tenants)]
		gi := 0
		if zipf != nil {
			gi = int(zipf.Uint64())
		}
		if tn.hostile && w.Float64() < *hostileFrac {
			hb := hostileBodies[w.Intn(len(hostileBodies))]
			var meta respMeta
			status, err := rc.post(client, tgt+hb.path, hb.body, tn.key, nil, &meta)
			run.recordHostile(tn.name, meta.backend, status, err, time.Since(start))
			return
		}
		if *jobsMix > 0 && w.Float64() < *jobsMix {
			status, outcome, backend, err := runJob(rc, client, tgt, jobBodies[gi], tn.key, *timeout)
			run.recordJob(tn.name, status, outcome, backend, err, time.Since(start))
			return
		}
		var (
			op     string
			status int
			err    error
			meta   respMeta
		)
		if w.Float64() < *chatFrac {
			op = "chat"
			sub := pools[worker%len(tenants)]
			sess := sub[(worker/len(tenants))%len(sub)]
			status, err = rc.post(client, sess.base+"/v1/sessions/"+sess.id+"/chat", chatBodies[gi], tn.key, nil, &meta)
			// Affinity check: a session's chats must land where the session
			// was created. Only checkable when both responses named a
			// backend (i.e. the target is a router).
			if err == nil && status >= 200 && status < 300 &&
				sess.createdOn != "" && meta.backend != "" && meta.backend != sess.createdOn {
				run.affinityViolation()
			}
		} else {
			op = "retrieve"
			status, err = rc.post(client, tgt+"/v1/retrieve", retrieveBody, tn.key, nil, &meta)
		}
		run.record(op, tn.name, meta.backend, status, err, time.Since(start))
	}

	log.Printf("loadgen: %s loop against %s for %s (concurrency %d, sessions %d, tenants %d, chat-frac %.2f, jobs-mix %.2f)",
		*mode, base, *duration, *concurrency, nSessions, len(tenants), *chatFrac, *jobsMix)
	wallStart := time.Now()
	deadline := wallStart.Add(*duration)
	if *mode == "closed" {
		var wg sync.WaitGroup
		for wkr := 0; wkr < *concurrency; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				w := rand.New(rand.NewSource(*seed + int64(wkr)*7919))
				z := newZipf(w, *graphsN)
				for time.Now().Before(deadline) {
					doOp(w, z, wkr)
				}
			}(wkr)
		}
		wg.Wait()
	} else {
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			log.Fatalf("loadgen: -rate %g is not a usable arrival rate", *rate)
		}
		// Outstanding requests are bounded by -concurrency; an arrival that
		// finds every slot busy is recorded as a local drop, mirroring what
		// a queueing client would experience.
		slots := make(chan struct{}, *concurrency)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		next := 0
		for now := range ticker.C {
			if now.After(deadline) {
				break
			}
			// Burst modulation: inside a burst window every tick dispatches
			// -burst-mult arrivals instead of one, so the schedule alternates
			// between the baseline rate and burst-mult times it.
			arrivals := 1
			if *burstEvery > 0 && now.Sub(wallStart)%*burstEvery < *burstLen {
				arrivals = *burstMult
			}
			for a := 0; a < arrivals; a++ {
				select {
				case slots <- struct{}{}:
					wg.Add(1)
					go func(wkr int, w *rand.Rand) {
						defer wg.Done()
						defer func() { <-slots }()
						doOp(w, newZipf(w, *graphsN), wkr)
					}(next, rand.New(rand.NewSource(*seed+int64(next)*7919)))
					next++
				default:
					run.drop()
				}
			}
		}
		wg.Wait()
	}
	elapsed := time.Since(wallStart)

	// Post-run observability probes: the serving layer is not healthy if it
	// cannot say it is healthy. Every target must answer; a router exposes
	// chatgraph_router_* families instead of the daemon's http counters.
	healthzOK, metricsOK := true, true
	for _, b := range bases {
		healthzOK = healthzOK && probe(client, b+"/healthz", "")
		metricsOK = metricsOK && (probe(client, b+"/metrics", "chatgraph_http_requests_total") ||
			probe(client, b+"/metrics", "chatgraph_router_requests_total"))
	}
	cacheAfter := scrapeAllCacheCounters(client, bases)

	report := run.report(*mode, strings.Join(bases, ","), elapsed, *concurrency, *rate, *chatFrac, nSessions, healthzOK, metricsOK)
	if len(bases) > 1 {
		report.Targets = bases
	}
	report.Reupload = *reupload
	report.Cache = cacheDelta(cacheBefore, cacheAfter)
	report.JobsMix = *jobsMix
	report.GraphPool = *graphsN
	if *burstEvery > 0 {
		report.BurstEveryS = round2(burstEvery.Seconds())
		report.BurstLenS = round2(burstLen.Seconds())
		report.BurstMult = *burstMult
	}
	report.Reconnects = int(rc.count.Load())
	if report.Reconnects > 0 {
		log.Printf("loadgen: %d requests recovered via retry (daemon restart or recovery window)", report.Reconnects)
	}
	if *jobsMix > 0 || *jobsProbe > 0 {
		jr := run.jobsReport()
		if *jobsProbe > 0 {
			jr.ProbeSubmitted = *jobsProbe
			jr.ProbeAccepted, jr.Probe429 = jobProbe(client, base, tenants[0].key, *seed, *jobsProbe)
		}
		report.Jobs = &jr
	}
	report.print(os.Stdout)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write %s: %v", *jsonPath, err)
		}
		log.Printf("loadgen: wrote %s", *jsonPath)
	}
	if *strict {
		if !healthzOK || !metricsOK {
			log.Fatal("loadgen: strict: healthz or metrics probe failed")
		}
		if report.Total.Errors > 0 {
			log.Fatalf("loadgen: strict: %d non-2xx/429 responses", report.Total.Errors)
		}
		if report.Total.OK == 0 {
			log.Fatal("loadgen: strict: no successful requests")
		}
		if report.AffinityViolations > 0 {
			log.Fatalf("loadgen: strict: %d session-affinity violations (chats served off the session's home backend)", report.AffinityViolations)
		}
		if j := report.Jobs; j != nil && j.Stuck > 0 {
			log.Fatalf("loadgen: strict: %d jobs stuck (never reached a terminal state)", j.Stuck)
		}
	}
}

// reconnector is the restart-tolerance policy: with a positive grace, a
// request that dies in transport (daemon down, connection reset mid-restart)
// or answers 503 (daemon up but still replaying its WAL) is retried with
// exponential backoff, each attempt a fresh request under the client's own
// timeout, until the grace expires. count tallies requests that recovered
// after at least one failed attempt — the report's "reconnects".
type reconnector struct {
	grace time.Duration
	count atomic.Int64
}

// retryable classifies one attempt: transport errors and 503 are the two
// shapes a restarting daemon produces.
func retryable(status int, err error) bool {
	return err != nil || status == http.StatusServiceUnavailable
}

// do runs op, retrying while op reports a retryable failure and the grace
// period has budget. It returns op's final verdict either way; a recovery
// after ≥1 failure bumps the reconnect counter.
func (rc *reconnector) do(op func() (retry bool, err error)) error {
	retry, err := op()
	if !retry || rc.grace <= 0 {
		return err
	}
	deadline := time.Now().Add(rc.grace)
	backoff := 50 * time.Millisecond
	for time.Now().Before(deadline) {
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
		if retry, err = op(); !retry {
			if err == nil {
				rc.count.Add(1)
			}
			return err
		}
	}
	return err
}

// respMeta carries response facts that ride outside the decoded body —
// today just the X-Backend header a cluster router stamps on every reply.
type respMeta struct {
	backend string
}

// poolSession is one pooled v1 session: where it lives and, when the
// target is a router, which backend created it (for affinity checks).
type poolSession struct {
	base      string
	id        string
	createdOn string
}

// apiKeyHeader mirrors server.APIKeyHeader; loadgen speaks the wire
// protocol only, so the name is spelled out rather than imported.
const apiKeyHeader = "X-API-Key"

// tenantSpec is one -tenant-keys entry: the tenant's name, the API key its
// requests carry, and whether its workers run the hostile profile.
type tenantSpec struct {
	name    string
	key     string
	hostile bool
}

// parseTenants turns -tenant-keys ("name=key,...") and -hostile-tenants
// into the worker partition. With no tenants configured the run is a single
// anonymous partition sending no API key.
func parseTenants(keys, hostiles string) ([]tenantSpec, error) {
	if keys == "" {
		if hostiles != "" {
			return nil, fmt.Errorf("-hostile-tenants requires -tenant-keys")
		}
		return []tenantSpec{{}}, nil
	}
	var specs []tenantSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(keys, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, key, ok := strings.Cut(part, "=")
		if !ok || name == "" || key == "" {
			return nil, fmt.Errorf("-tenant-keys entry %q is not name=key", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("-tenant-keys names %q twice", name)
		}
		seen[name] = true
		specs = append(specs, tenantSpec{name: name, key: key})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-tenant-keys supplied but empty after parsing")
	}
	for _, h := range strings.Split(hostiles, ",") {
		if h = strings.TrimSpace(h); h == "" {
			continue
		}
		found := false
		for i := range specs {
			if specs[i].name == h {
				specs[i].hostile = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("-hostile-tenants names %q, which is not in -tenant-keys", h)
		}
	}
	return specs, nil
}

// hostileOp is one adversarial request shape: where it goes and what it
// carries. A correct server answers every one of them with a 4xx.
type hostileOp struct {
	path string
	body []byte
}

// hostilePayloads builds the adversarial set a hostile tenant mixes into
// its traffic: an upload over the 8 MiB body cap, malformed JSON, a
// malformed pinned job ID, and a probe at a session ID the tenant does not
// own. Each one burns the hostile tenant's own admission slot and rate
// tokens on the way to its 4xx — which is exactly the isolation property
// under test: garbage traffic must cost its sender, not its neighbors.
func hostilePayloads() []hostileOp {
	oversized := make([]byte, 0, 9<<20+64)
	oversized = append(oversized, []byte(`{"question":"flood","pad":"`)...)
	oversized = append(oversized, bytes.Repeat([]byte{'A'}, 9<<20)...)
	oversized = append(oversized, []byte(`"}`)...)
	return []hostileOp{
		{path: "/v1/jobs", body: oversized},
		{path: "/v1/jobs", body: []byte(`{"question":"x","graph":{`)},
		{path: "/v1/jobs", body: []byte(`{"question":"x","job_id":"NOT-LOWERCASE-HEX"}`)},
		{path: "/v1/sessions/deadbeefdeadbeef/chat", body: []byte(`{"question":"whose session is this?"}`)},
	}
}

// newZipf returns the graph-popularity sampler, nil when the pool holds one
// graph. s=1.2 is a mild web-like skew: the head graph takes most draws but
// the tail still gets visited.
func newZipf(w *rand.Rand, n int) *rand.Zipf {
	if n <= 1 {
		return nil
	}
	return rand.NewZipf(w, 1.2, 1, uint64(n-1))
}

// post posts body to url, retrying per the grace policy; key (when
// non-empty) rides the X-API-Key header; when out is non-nil a 2xx reply
// body is decoded into it, and when meta is non-nil it captures response
// metadata from the final attempt.
func (rc *reconnector) post(client *http.Client, url string, body []byte, key string, out any, meta *respMeta) (status int, err error) {
	err = rc.do(func() (bool, error) {
		req, rerr := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if rerr != nil {
			return false, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set(apiKeyHeader, key)
		}
		resp, perr := client.Do(req)
		if perr != nil {
			status = 0
			return true, perr
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		if meta != nil {
			meta.backend = resp.Header.Get("X-Backend")
		}
		if status == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			return true, nil
		}
		if out != nil && status >= 200 && status < 300 {
			if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
				return false, fmt.Errorf("decode %s reply: %w", url, derr)
			}
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return false, nil
	})
	if err != nil {
		return 0, err
	}
	return status, nil
}

func createSession(rc *reconnector, client *http.Client, base, key string) (id, backend string, err error) {
	var info struct {
		SessionID string `json:"session_id"`
	}
	var meta respMeta
	// Pool setup paces through 429s: a rate-capped daemon shedding a burst
	// of session creates is admission working, not a failure — back off and
	// finish building the pool before the measured window opens.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, perr := rc.post(client, base+"/v1/sessions", nil, key, &info, &meta)
		if perr != nil {
			return "", "", perr
		}
		if status == http.StatusTooManyRequests && time.Now().Before(deadline) {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if status != http.StatusCreated {
			return "", "", fmt.Errorf("status %d", status)
		}
		break
	}
	if info.SessionID == "" {
		return "", "", fmt.Errorf("empty session_id")
	}
	return info.SessionID, meta.backend, nil
}

// waitReady blocks until GET /readyz answers 200 — or the stdlib mux's
// plain "404 page not found", which marks a daemon predating the readiness
// probe and therefore born ready. A 404 with any other body is NOT ready:
// a router or proxy in front answers unknown routes with its own 404 shape
// long before its backends are reachable, and treating that as ready would
// start the load window into a dark pool. Transport errors (daemon still
// booting or restarting) and 503 (recovery replay in progress) keep
// polling until the wait expires.
func waitReady(client *http.Client, base string, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			status := resp.StatusCode
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if status == http.StatusOK {
				return true
			}
			if status == http.StatusNotFound &&
				strings.HasPrefix(strings.TrimSpace(string(body)), "404 page not found") {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// jobInfo is the slice of the /v1/jobs wire schema loadgen needs.
type jobInfo struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

// terminalJobState reports whether a wire state string is terminal.
func terminalJobState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

// runJob submits one async job and polls it to a terminal state. status is
// the submission status (for shed/error accounting); outcome is the job's
// terminal state, or "stuck" if it never settled within timeout; backend
// is the X-Backend that accepted the submission (empty off-cluster).
func runJob(rc *reconnector, client *http.Client, base string, body []byte, key string, timeout time.Duration) (status int, outcome, backend string, err error) {
	var info jobInfo
	var meta respMeta
	status, err = rc.post(client, base+"/v1/jobs", body, key, &info, &meta)
	backend = meta.backend
	if err != nil {
		return 0, "", backend, err
	}
	if status != http.StatusAccepted {
		return status, "", backend, nil
	}
	if info.JobID == "" {
		return status, "", backend, fmt.Errorf("job accepted but reply carried no job_id")
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := getJobState(rc, client, base, info.JobID, key)
		if err != nil {
			return status, "", backend, err
		}
		if terminalJobState(st) {
			return status, st, backend, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return status, "stuck", backend, nil
}

func getJobState(rc *reconnector, client *http.Client, base, id, key string) (state string, err error) {
	err = rc.do(func() (bool, error) {
		req, rerr := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id, nil)
		if rerr != nil {
			return false, rerr
		}
		if key != "" {
			// Polling is ownership-checked: without the submitting tenant's
			// key the job answers 404.
			req.Header.Set(apiKeyHeader, key)
		}
		resp, gerr := client.Do(req)
		if gerr != nil {
			return true, gerr
		}
		defer resp.Body.Close()
		// 503 is the recovery window; 404 can be the same window seen from
		// the ungated poll route — the job exists in the WAL but has not
		// been restored yet. Both settle once replay finishes, so both are
		// retryable under a restart grace.
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusNotFound {
			body, _ := io.ReadAll(resp.Body)
			return true, fmt.Errorf("poll job %s: status %d: %s", id, resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return false, fmt.Errorf("poll job %s: status %d: %s", id, resp.StatusCode, body)
		}
		var info jobInfo
		if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
			return false, derr
		}
		state = info.State
		return false, nil
	})
	return state, err
}

// jobProbe bursts n concurrent job submissions without polling — pure
// admission behavior: how many the queue takes before shedding with 429.
// Every submission carries a unique, larger graph so its chain misses the
// invoke cache and holds a worker for real work — a sequential burst of
// cache-warm jobs drains as fast as it fills and never observes the queue
// bound. Accepted jobs are cancelled afterwards so the probe leaves no
// stragglers running.
func jobProbe(client *http.Client, base, key string, seed int64, n int) (accepted, shed429 int) {
	bodies := make([][]byte, n)
	for i := range bodies {
		prng := rand.New(rand.NewSource(seed + 104729*int64(i+1)))
		pg := graph.PlantedCommunities(4, 100, 0.3, 0.02, prng)
		gj, err := json.Marshal(pg)
		if err != nil {
			log.Fatalf("loadgen: marshal probe graph: %v", err)
		}
		bodies[i], err = json.Marshal(map[string]any{
			"question": "Write a brief report for G",
			"graph":    json.RawMessage(gj),
		})
		if err != nil {
			log.Fatalf("loadgen: marshal probe body: %v", err)
		}
	}
	var (
		mu  sync.Mutex
		ids []string
		wg  sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if key != "" {
				req.Header.Set(apiKeyHeader, key)
			}
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			var info jobInfo
			json.NewDecoder(resp.Body).Decode(&info) //nolint:errcheck // error bodies aren't jobInfo
			io.Copy(io.Discard, resp.Body)           //nolint:errcheck
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case resp.StatusCode == http.StatusAccepted:
				accepted++
				if info.JobID != "" {
					ids = append(ids, info.JobID)
				}
			case resp.StatusCode == http.StatusTooManyRequests:
				shed429++
			}
		}(bodies[i])
	}
	wg.Wait()
	for _, id := range ids {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
		if err != nil {
			continue
		}
		if key != "" {
			req.Header.Set(apiKeyHeader, key)
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	return accepted, shed429
}

// cacheCounters are the raw /metrics samples the report's cache block is
// computed from. ok distinguishes a successful scrape from an absent or
// unreadable endpoint (older daemons, metrics disabled).
type cacheCounters struct {
	invokeHits, invokeMisses float64
	internHits, internMisses float64
	ok                       bool
}

// scrapeCacheCounters reads the unlabeled cache counters from the
// Prometheus text exposition (lines are "name value" for plain counters).
func scrapeCacheCounters(client *http.Client, url string) cacheCounters {
	resp, err := client.Get(url)
	if err != nil {
		return cacheCounters{}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return cacheCounters{}
	}
	c := cacheCounters{ok: true}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "chatgraph_invoke_cache_hits_total":
			c.invokeHits = v
		case "chatgraph_invoke_cache_misses_total":
			c.invokeMisses = v
		case "chatgraph_graphstore_hits_total":
			c.internHits = v
		case "chatgraph_graphstore_misses_total":
			c.internMisses = v
		}
	}
	return c
}

// scrapeAllCacheCounters sums the cache counters across every target —
// in cluster mode the run's cache behavior is the pool's aggregate. One
// failed scrape poisons the block (partial sums would misreport rates).
func scrapeAllCacheCounters(client *http.Client, bases []string) cacheCounters {
	var sum cacheCounters
	sum.ok = true
	for _, b := range bases {
		c := scrapeCacheCounters(client, b+"/metrics")
		if !c.ok {
			return cacheCounters{}
		}
		sum.invokeHits += c.invokeHits
		sum.invokeMisses += c.invokeMisses
		sum.internHits += c.internHits
		sum.internMisses += c.internMisses
	}
	return sum
}

// cacheDelta turns two scrapes into the report's cache block; nil when
// either scrape failed.
func cacheDelta(before, after cacheCounters) *CacheReport {
	if !before.ok || !after.ok {
		return nil
	}
	delta := func(a, b float64) uint64 {
		if a < b {
			return 0
		}
		return uint64(a - b)
	}
	r := &CacheReport{
		InvokeHits:   delta(after.invokeHits, before.invokeHits),
		InvokeMisses: delta(after.invokeMisses, before.invokeMisses),
		InternHits:   delta(after.internHits, before.internHits),
		InternMisses: delta(after.internMisses, before.internMisses),
	}
	rate := func(hits, misses uint64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return round2(100 * float64(hits) / float64(hits+misses))
	}
	r.InvokeHitRatePct = rate(r.InvokeHits, r.InvokeMisses)
	r.InternHitRatePct = rate(r.InternHits, r.InternMisses)
	return r
}

func probe(client *http.Client, url, mustContain string) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	return mustContain == "" || strings.Contains(string(body), mustContain)
}

// opStats accumulates one operation's samples.
type opStats struct {
	requests int
	ok       int
	shed     int
	// rejected counts expected 4xxs from a hostile tenant's adversarial
	// requests — the server saying no, which is the desired outcome.
	rejected  int
	errors    int
	latencies []float64 // seconds, successful (2xx) requests only
}

// runStats is the mutex-guarded collector shared by the workers. A load
// tool's own contention is irrelevant next to the network round trip.
type runStats struct {
	mu       sync.Mutex
	ops      map[string]*opStats
	backends map[string]*opStats
	tenants  map[string]*opStats
	affinity int
	drops    int
	jobs     JobsReport
}

func newRunStats() *runStats {
	return &runStats{
		ops: map[string]*opStats{
			"chat":     {},
			"retrieve": {},
		},
		backends: map[string]*opStats{},
		tenants:  map[string]*opStats{},
	}
}

// tally applies one sample to an opStats bucket.
func tally(s *opStats, status int, err error, d time.Duration) {
	s.requests++
	switch {
	case err != nil:
		s.errors++
	case status >= 200 && status < 300:
		s.ok++
		s.latencies = append(s.latencies, d.Seconds())
	case status == http.StatusTooManyRequests:
		s.shed++
	default:
		s.errors++
	}
}

// tenantLocked returns the named tenant's bucket; nil outside -tenant-keys
// mode (the anonymous single-partition run has no per-tenant breakdown).
func (r *runStats) tenantLocked(name string) *opStats {
	if name == "" {
		return nil
	}
	s := r.tenants[name]
	if s == nil {
		s = &opStats{}
		r.tenants[name] = s
	}
	return s
}

// recordBackendLocked mirrors one sample into the per-backend breakdown;
// backend is empty when the target is a bare daemon (no X-Backend header).
func (r *runStats) recordBackendLocked(backend string, status int, err error, d time.Duration) {
	if backend == "" {
		return
	}
	s := r.backends[backend]
	if s == nil {
		s = &opStats{}
		r.backends[backend] = s
	}
	tally(s, status, err, d)
}

func (r *runStats) record(op, tenant, backend string, status int, err error, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.ops[op]
	if s == nil {
		s = &opStats{}
		r.ops[op] = s
	}
	tally(s, status, err, d)
	if ts := r.tenantLocked(tenant); ts != nil {
		tally(ts, status, err, d)
	}
	r.recordBackendLocked(backend, status, err, d)
}

// recordHostile accounts one adversarial request. A 4xx other than 429 is
// the expected outcome — the server rejecting garbage — and lands in the
// rejected column; a 2xx means the server accepted something it should not
// have, counted as ok so the anomaly stays visible in the report.
func (r *runStats) recordHostile(tenant, backend string, status int, err error, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordBackendLocked(backend, status, err, d)
	apply := func(s *opStats) {
		if s == nil {
			return
		}
		s.requests++
		switch {
		case err != nil:
			s.errors++
		case status == http.StatusTooManyRequests:
			s.shed++
		case status >= 400 && status < 500:
			s.rejected++
		case status >= 200 && status < 300:
			s.ok++
		default:
			s.errors++
		}
	}
	s := r.ops["hostile"]
	if s == nil {
		s = &opStats{}
		r.ops["hostile"] = s
	}
	apply(s)
	apply(r.tenantLocked(tenant))
}

// affinityViolation counts one chat that a router served off its session's
// home backend — any nonzero count is a routing bug.
func (r *runStats) affinityViolation() {
	r.mu.Lock()
	r.affinity++
	r.mu.Unlock()
}

func (r *runStats) drop() {
	r.mu.Lock()
	r.drops++
	r.mu.Unlock()
}

// recordJob accounts one async job operation. A completed job is the op's
// success sample — its latency is submit-to-done, so the "job" row's
// percentiles read as completion latency. A job that fails, is cancelled,
// or never settles counts as an error on the op and is broken out in the
// jobs block.
func (r *runStats) recordJob(tenant string, status int, outcome, backend string, err error, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordBackendLocked(backend, status, err, d)
	apply := func(s *opStats) {
		if s == nil {
			return
		}
		s.requests++
		switch {
		case err != nil:
			s.errors++
		case status == http.StatusTooManyRequests:
			s.shed++
		case status != http.StatusAccepted:
			s.errors++
		case outcome == "done":
			s.ok++
			s.latencies = append(s.latencies, d.Seconds())
		default: // failed, cancelled, stuck
			s.errors++
		}
	}
	s := r.ops["job"]
	if s == nil {
		s = &opStats{}
		r.ops["job"] = s
	}
	apply(s)
	apply(r.tenantLocked(tenant))
	switch {
	case err != nil:
	case status == http.StatusTooManyRequests:
		r.jobs.Shed++
	case status != http.StatusAccepted:
	default:
		r.jobs.Submitted++
		switch outcome {
		case "done":
			r.jobs.Completed++
		case "failed":
			r.jobs.Failed++
		case "cancelled":
			r.jobs.Cancelled++
		default: // stuck
			r.jobs.Stuck++
		}
	}
}

func (r *runStats) jobsReport() JobsReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs
}

// LatencySummary is the latency block of one report entry, milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// OpReport is one operation's (or the total's) aggregate in the report.
// Rejected is nonzero only for hostile traffic: expected 4xxs, kept apart
// from errors because a rejection is the server doing its job.
type OpReport struct {
	Requests      int            `json:"requests"`
	OK            int            `json:"ok"`
	Shed          int            `json:"shed"`
	Rejected      int            `json:"rejected,omitempty"`
	Errors        int            `json:"errors"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       LatencySummary `json:"latency"`
}

// TenantReport is one tenant's slice of a multi-tenant run. Admitted is
// ok + rejected — requests the fair-admission gate let through, whatever
// the handler then said about them — and AdmittedShare is this tenant's
// fraction of all admitted requests, the number the fairness CI gate
// compares against the tenant's configured weight share.
type TenantReport struct {
	OpReport
	Admitted      int     `json:"admitted"`
	AdmittedShare float64 `json:"admitted_share"`
}

// CacheReport is the server-side cache behavior over one run, computed as
// /metrics counter deltas: the invocation cache (memoized API calls) and
// the graph intern store (upload dedup). Hit rates are percentages.
type CacheReport struct {
	InvokeHits       uint64  `json:"invoke_hits"`
	InvokeMisses     uint64  `json:"invoke_misses"`
	InvokeHitRatePct float64 `json:"invoke_hit_rate_pct"`
	InternHits       uint64  `json:"intern_hits"`
	InternMisses     uint64  `json:"intern_misses"`
	InternHitRatePct float64 `json:"intern_hit_rate_pct"`
}

// JobsReport is the async-path block of the report: lifecycle outcomes of
// the jobs the run submitted and polled (the "job" op row carries their
// completion-latency percentiles), plus the post-run admission probe. A
// stuck job — accepted but never terminal within the client timeout — is
// the failure mode the CI gate watches for.
type JobsReport struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Stuck     int `json:"stuck"`
	Shed      int `json:"shed"`
	// Probe fields describe the -jobs-probe burst: how many of the rapid-fire
	// submissions the queue accepted vs shed with 429.
	ProbeSubmitted int `json:"probe_submitted,omitempty"`
	ProbeAccepted  int `json:"probe_accepted,omitempty"`
	Probe429       int `json:"probe_429,omitempty"`
}

// Report is the loadgen output schema (BENCH_serving.json). Schema is
// versioned so the perf-trajectory tooling can evolve it; the reupload,
// cache, and jobs fields are additive.
type Report struct {
	Schema      string  `json:"schema"`
	Target      string  `json:"target"`
	Mode        string  `json:"mode"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`
	RateRPS     float64 `json:"rate_rps,omitempty"`
	ChatFrac    float64 `json:"chat_fraction"`
	Sessions    int     `json:"sessions"`
	Reupload    bool    `json:"reupload"`
	JobsMix     float64 `json:"jobs_mix,omitempty"`
	// GraphPool is the distinct-graph pool size (zipf-selected when > 1).
	GraphPool int `json:"graph_pool,omitempty"`
	// Burst fields echo the open-loop burst schedule when one was set.
	BurstEveryS float64 `json:"burst_every_s,omitempty"`
	BurstLenS   float64 `json:"burst_len_s,omitempty"`
	BurstMult   int     `json:"burst_mult,omitempty"`
	Drops       int     `json:"open_loop_drops,omitempty"`
	// Reconnects counts requests that failed in transport (or answered 503)
	// and then succeeded on a -restart-grace retry — nonzero means the run
	// spanned a daemon restart or recovery window and rode it out.
	Reconnects int `json:"reconnects"`
	// Targets lists the base URLs of a multi-target (cluster) run.
	Targets []string `json:"targets,omitempty"`
	// AffinityViolations counts chats a router served off their session's
	// home backend (per the X-Backend header). Zero is the only correct
	// value; -strict enforces it.
	AffinityViolations int                 `json:"affinity_violations"`
	HealthzOK          bool                `json:"healthz_ok"`
	MetricsOK          bool                `json:"metrics_ok"`
	Total              OpReport            `json:"total"`
	Ops                map[string]OpReport `json:"ops"`
	// Backends breaks the run down by serving backend (X-Backend header),
	// present when at least one response named its backend.
	Backends map[string]OpReport `json:"backends,omitempty"`
	// Tenants breaks a -tenant-keys run down per tenant; AdmittedShare
	// sums to 1 across the entries.
	Tenants map[string]TenantReport `json:"tenants,omitempty"`
	Cache   *CacheReport            `json:"cache,omitempty"`
	Jobs    *JobsReport             `json:"jobs,omitempty"`
}

func summarize(s *opStats, elapsed time.Duration) OpReport {
	rep := OpReport{Requests: s.requests, OK: s.ok, Shed: s.shed, Rejected: s.rejected, Errors: s.errors}
	if elapsed > 0 {
		rep.ThroughputRPS = round2(float64(s.ok) / elapsed.Seconds())
	}
	if len(s.latencies) == 0 {
		return rep
	}
	sorted := append([]float64(nil), s.latencies...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	rep.Latency = LatencySummary{
		P50:  roundMS(quantile(sorted, 0.50)),
		P95:  roundMS(quantile(sorted, 0.95)),
		P99:  roundMS(quantile(sorted, 0.99)),
		Mean: roundMS(sum / float64(len(sorted))),
		Max:  roundMS(sorted[len(sorted)-1]),
	}
	return rep
}

// quantile reads the q-quantile from an ascending sample slice using the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func roundMS(seconds float64) float64 { return round2(seconds * 1000) }

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

func (r *runStats) report(mode, target string, elapsed time.Duration, concurrency int, rate, chatFrac float64, sessions int, healthzOK, metricsOK bool) Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Schema:      "chatgraph.loadgen/v1",
		Target:      target,
		Mode:        mode,
		DurationS:   round2(elapsed.Seconds()),
		Concurrency: concurrency,
		ChatFrac:    chatFrac,
		Sessions:    sessions,
		Drops:       r.drops,
		HealthzOK:   healthzOK,
		MetricsOK:   metricsOK,
		Ops:         make(map[string]OpReport, len(r.ops)),
	}
	if mode == "open" {
		rep.RateRPS = rate
	}
	var total opStats
	for name, s := range r.ops {
		rep.Ops[name] = summarize(s, elapsed)
		total.latencies = append(total.latencies, s.latencies...)
		total.requests += s.requests
		total.ok += s.ok
		total.shed += s.shed
		total.rejected += s.rejected
		total.errors += s.errors
	}
	rep.Total = summarize(&total, elapsed)
	rep.AffinityViolations = r.affinity
	if len(r.backends) > 0 {
		rep.Backends = make(map[string]OpReport, len(r.backends))
		for name, s := range r.backends {
			rep.Backends[name] = summarize(s, elapsed)
		}
	}
	if len(r.tenants) > 0 {
		admittedTotal := 0
		for _, s := range r.tenants {
			admittedTotal += s.ok + s.rejected
		}
		rep.Tenants = make(map[string]TenantReport, len(r.tenants))
		for name, s := range r.tenants {
			tr := TenantReport{OpReport: summarize(s, elapsed), Admitted: s.ok + s.rejected}
			if admittedTotal > 0 {
				tr.AdmittedShare = round4(float64(tr.Admitted) / float64(admittedTotal))
			}
			rep.Tenants[name] = tr
		}
	}
	return rep
}

func (rep Report) print(w io.Writer) {
	fmt.Fprintf(w, "\nloadgen %s loop · %s · %.1fs · healthz=%v metrics=%v\n",
		rep.Mode, rep.Target, rep.DurationS, rep.HealthzOK, rep.MetricsOK)
	fmt.Fprintf(w, "%-14s %8s %8s %6s %6s %6s %10s %8s %8s %8s\n",
		"op", "requests", "ok", "shed", "rej", "errs", "thru r/s", "p50 ms", "p95 ms", "p99 ms")
	row := func(name string, s OpReport) {
		fmt.Fprintf(w, "%-14s %8d %8d %6d %6d %6d %10.1f %8.1f %8.1f %8.1f\n",
			name, s.Requests, s.OK, s.Shed, s.Rejected, s.Errors, s.ThroughputRPS,
			s.Latency.P50, s.Latency.P95, s.Latency.P99)
	}
	names := make([]string, 0, len(rep.Ops))
	for n := range rep.Ops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		row(n, rep.Ops[n])
	}
	row("total", rep.Total)
	if len(rep.Tenants) > 0 {
		tnames := make([]string, 0, len(rep.Tenants))
		for n := range rep.Tenants {
			tnames = append(tnames, n)
		}
		sort.Strings(tnames)
		for _, n := range tnames {
			row("t:"+n, rep.Tenants[n].OpReport)
		}
		fmt.Fprintf(w, "admitted share:")
		for _, n := range tnames {
			fmt.Fprintf(w, " %s=%.3f", n, rep.Tenants[n].AdmittedShare)
		}
		fmt.Fprintln(w)
	}
	if len(rep.Backends) > 0 {
		bnames := make([]string, 0, len(rep.Backends))
		for n := range rep.Backends {
			bnames = append(bnames, n)
		}
		sort.Strings(bnames)
		for _, n := range bnames {
			row("@"+n, rep.Backends[n])
		}
		fmt.Fprintf(w, "session-affinity violations: %d\n", rep.AffinityViolations)
	}
	if rep.Drops > 0 {
		fmt.Fprintf(w, "open-loop arrivals dropped at the client (all %d slots busy): %d\n", rep.Concurrency, rep.Drops)
	}
	if rep.Reconnects > 0 {
		fmt.Fprintf(w, "reconnects: %d requests rode out a restart/recovery window via retry\n", rep.Reconnects)
	}
	if c := rep.Cache; c != nil {
		fmt.Fprintf(w, "invoke cache %d hits / %d misses (%.1f%%) · graph intern %d hits / %d misses (%.1f%%) · reupload=%v\n",
			c.InvokeHits, c.InvokeMisses, c.InvokeHitRatePct,
			c.InternHits, c.InternMisses, c.InternHitRatePct, rep.Reupload)
	}
	if j := rep.Jobs; j != nil {
		fmt.Fprintf(w, "jobs: %d submitted · %d completed · %d failed · %d cancelled · %d stuck · %d shed\n",
			j.Submitted, j.Completed, j.Failed, j.Cancelled, j.Stuck, j.Shed)
		if j.ProbeSubmitted > 0 {
			fmt.Fprintf(w, "jobs probe: %d burst → %d accepted, %d shed with 429\n",
				j.ProbeSubmitted, j.ProbeAccepted, j.Probe429)
		}
	}
}
