// Command chatgraph is the interactive ChatGraph REPL: load a graph, ask
// questions in natural language, review the generated API chain, and watch
// it execute.
//
// Usage:
//
//	chatgraph [-graph file.json] [-demo social|molecule|knowledge]
//	          [-llm http://host:port] [-model name] [-yes]
//
// With -llm, chain generation uses an OpenAI-style chat-completions endpoint
// instead of the built-in simulated model.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/executor"
	"chatgraph/internal/graph"
	"chatgraph/internal/llm"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph JSON file to load")
		demo      = flag.String("demo", "", "generate a demo graph: social, molecule, or knowledge")
		llmURL    = flag.String("llm", "", "OpenAI-style endpoint for chain generation (default: built-in model)")
		llmModel  = flag.String("model", "vicuna-13b", "model name sent to the -llm endpoint")
		autoYes   = flag.Bool("yes", false, "auto-approve generated chains without prompting")
		seed      = flag.Int64("seed", 42, "random seed for demo graphs and training")
	)
	flag.Parse()
	if err := run(*graphPath, *demo, *llmURL, *llmModel, *autoYes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "chatgraph:", err)
		os.Exit(1)
	}
}

func run(graphPath, demo, llmURL, llmModel string, autoYes bool, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	g, err := loadGraph(graphPath, demo, rng)
	if err != nil {
		return err
	}
	env := &apis.Env{}
	reg := apis.Default(env)
	core.SeedMoleculeDB(env, 100, rng)
	cfg := core.Config{Registry: reg, Env: env, TrainSeed: seed}
	if llmURL != "" {
		cfg.Client = &llm.HTTPClient{BaseURL: llmURL, Model: llmModel}
	}
	fmt.Println("Building ChatGraph engine (training the chain model)...")
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return err
	}
	sess := eng.NewSession()
	if g != nil {
		fmt.Printf("Loaded graph: %s\n", g)
	}
	kind := graph.Classify(g)
	fmt.Println("Suggested questions:")
	for _, q := range core.SuggestedQuestions(kind) {
		fmt.Printf("  - %s\n", q)
	}
	fmt.Println(`Type a question, "quit" to exit.`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return sc.Err()
		}
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if q == "quit" || q == "exit" {
			return nil
		}
		opts := core.AskOptions{
			OnEvent: func(e executor.Event) {
				switch e.Type {
				case executor.EventStepStart:
					fmt.Printf("  [%5.1fms] step %d: %s ...\n", float64(e.Elapsed.Microseconds())/1000, e.StepIndex+1, e.Step)
				case executor.EventStepDone:
					fmt.Printf("  [%5.1fms] step %d done\n", float64(e.Elapsed.Microseconds())/1000, e.StepIndex+1)
				}
			},
		}
		if !autoYes {
			opts.Confirm = func(c chain.Chain) (chain.Chain, bool) {
				fmt.Printf("Generated chain: %s\n", c)
				fmt.Print("Run it? [Y/n/edit] ")
				if !sc.Scan() {
					return nil, false
				}
				ans := strings.TrimSpace(sc.Text())
				switch strings.ToLower(ans) {
				case "", "y", "yes":
					return nil, true
				case "n", "no":
					return nil, false
				default:
					edited, err := chain.Parse(ans)
					if err != nil {
						fmt.Printf("could not parse edited chain (%v); running original\n", err)
						return nil, true
					}
					return edited, true
				}
			}
		}
		turn, err := sess.Ask(context.Background(), q, g, opts)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Printf("chain: %s\n\n%s\n\n", turn.Chain, turn.Answer)
	}
}

func loadGraph(path, demo string, rng *rand.Rand) (*graph.Graph, error) {
	switch {
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("load graph: %w", err)
		}
		return graph.ParseJSON(data)
	case demo == "social":
		return graph.PlantedCommunities(3, 15, 0.5, 0.02, rng), nil
	case demo == "molecule":
		return graph.Molecule(20, rng), nil
	case demo == "knowledge":
		return graph.KnowledgeGraph(40, 90, rng), nil
	case demo == "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown demo kind %q", demo)
	}
}
