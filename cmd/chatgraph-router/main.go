// Command chatgraph-router fronts a pool of chatgraphd replicas as one
// endpoint. One daemon saturates one core; the router is how N of them
// scale out: it mints session and job IDs itself and pins each onto a
// backend via rendezvous hashing, so every later request carrying the id
// re-derives its owner with no routing table — stable across router
// restarts and shared by any router replica fed the same backend list.
// Graph-bearing uploads are placed by graph content hash so identical
// interned graphs concentrate on one shard's caches; stateless routes
// round-robin over healthy backends with retry-on-next-hop for idempotent
// methods. Backends are health-probed (/healthz + /readyz) with
// consecutive-failure marking and half-open recovery.
//
// The router itself serves GET /healthz (always 200 while the process is
// alive), GET /readyz (503 until at least one backend is routable), and
// GET /metrics (per-backend request/error/latency/up families plus router
// totals). Everything else proxies.
//
// Example — two replicas behind one router:
//
//	chatgraphd -addr :8081 -data-dir /var/lib/chatgraph/b1 &
//	chatgraphd -addr :8082 -data-dir /var/lib/chatgraph/b2 &
//	chatgraph-router -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082 &
//	curl -s -X POST localhost:8080/v1/sessions   # lands on its HRW owner
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chatgraph/internal/cluster"
	"chatgraph/internal/tenant"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		backends     = flag.String("backends", "", "comma-separated backend base URLs (required), e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")
		probeEvery   = flag.Duration("probe-interval", time.Second, "health probe cadence per backend")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "deadline for one health probe request")
		failAfter    = flag.Int("fail-after", 3, "consecutive probe/transport failures that mark a backend down")
		recoverAfter = flag.Duration("recover-after", 5*time.Second, "cooldown before a down backend gets a half-open recovery probe")
		maxBody      = flag.Int64("max-body", 0, "request body buffer cap in bytes; larger uploads answer 413 (0 = 8MiB + headroom)")
		readHeader   = flag.Duration("read-header-timeout", 10*time.Second, "http.Server read-header timeout")
		drainWait    = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		tenantsPath  = flag.String("tenants", "", "tenant config file for per-tenant router metrics (enforcement stays on the backends); empty = no tenant labels")
	)
	flag.Parse()
	if strings.TrimSpace(*backends) == "" {
		log.Fatal("chatgraph-router: -backends is required")
	}

	pool, err := cluster.NewPool(strings.Split(*backends, ","), cluster.Policy{
		FailAfter:    *failAfter,
		RecoverAfter: *recoverAfter,
	}, nil)
	if err != nil {
		log.Fatalf("chatgraph-router: %v", err)
	}
	var tenants *tenant.Registry
	if *tenantsPath != "" {
		if tenants, err = tenant.LoadFile(*tenantsPath); err != nil {
			log.Fatalf("chatgraph-router: %v", err)
		}
	}
	router := cluster.NewRouter(pool, cluster.Options{MaxBody: *maxBody, Tenants: tenants})
	prober := cluster.NewProber(pool, *probeEvery, *probeTimeout)
	prober.Start()
	defer prober.Stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: *readHeader,
		// No write timeout: chat and job NDJSON streams are long-lived and
		// pass through this process.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	names := make([]string, 0, len(pool.Backends()))
	for _, b := range pool.Backends() {
		names = append(names, b.Name)
	}
	log.Printf("chatgraph-router listening on %s (%d backends: %s; probe every %s, fail after %d, recover after %s)",
		*addr, len(names), strings.Join(names, ", "), *probeEvery, *failAfter, *recoverAfter)

	select {
	case err := <-errc:
		log.Fatalf("chatgraph-router: %v", err)
	case <-ctx.Done():
		log.Printf("signal received; draining for up to %s ...", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("chatgraph-router: shutdown: %v", err)
		}
		log.Println("chatgraph-router stopped")
	}
}
