// Command chatgraphd serves ChatGraph over HTTP — the offline substitute for
// the paper's Gradio app. Endpoints: POST /chat, GET /apis, GET /suggest,
// GET /healthz.
//
// Example:
//
//	chatgraphd -addr :8080 &
//	curl -s localhost:8080/chat -d '{"question":"Write a brief report for G",
//	     "graph":{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1}]}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"chatgraph/internal/apis"
	"chatgraph/internal/config"
	"chatgraph/internal/core"
	"chatgraph/internal/llm"
	"chatgraph/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cfgPath  = flag.String("config", "", "JSON config file (see internal/config); overrides -llm/-model")
		llmURL   = flag.String("llm", "", "OpenAI-style endpoint for chain generation (default: built-in model)")
		llmModel = flag.String("model", "vicuna-13b", "model name sent to the -llm endpoint")
		seed     = flag.Int64("seed", 42, "seed for training and the molecule database")
		mols     = flag.Int("molecules", 200, "molecules to seed the similarity database with")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	env := &apis.Env{}
	reg := apis.Default(env)
	core.SeedMoleculeDB(env, *mols, rng)
	log.Println("training chain-generation model ...")
	var sess *core.Session
	var err error
	if *cfgPath != "" {
		fc, cfgErr := config.Load(*cfgPath)
		if cfgErr != nil {
			log.Fatalf("chatgraphd: %v", cfgErr)
		}
		sess, err = core.NewSessionFromConfig(fc, reg, env, *seed)
	} else {
		cfg := core.Config{Registry: reg, Env: env, TrainSeed: *seed}
		if *llmURL != "" {
			cfg.Client = &llm.HTTPClient{BaseURL: *llmURL, Model: *llmModel}
		}
		sess, err = core.NewSession(cfg)
	}
	if err != nil {
		log.Fatalf("chatgraphd: %v", err)
	}
	srv := server.New(sess)
	fmt.Printf("chatgraphd listening on %s (%d APIs registered)\n", *addr, reg.Len())
	log.Fatal(srv.ListenAndServe(*addr))
}
