// Command chatgraphd serves ChatGraph over HTTP — the offline substitute for
// the paper's Gradio app, grown into a multi-session daemon. One engine
// (model + retrieval index + API registry) is built at startup and shared by
// every conversation.
//
// v1 endpoints: POST /v1/sessions, POST /v1/sessions/{id}/chat (add
// ?stream=1 for NDJSON progress), GET /v1/sessions/{id}/history,
// DELETE /v1/sessions/{id}. Async jobs: POST /v1/jobs runs a chat or a
// pinned chain outside the request deadline, GET /v1/jobs/{id} polls it
// (?stream=1 tails NDJSON progress), DELETE /v1/jobs/{id} cancels; the pool
// is sized by -job-workers/-job-queue and finished jobs are retained for
// -job-retention. Legacy endpoints: POST /chat, GET /apis, GET /suggest,
// GET /config, GET /healthz. Observability: GET /metrics (Prometheus text
// format). Overload policy: -max-inflight sheds with 429,
// -session-rate/-session-burst rate-limit each session's chats, and
// -request-timeout bounds one request's lifetime.
//
// Durability: with -data-dir set, session lifecycle, chat transcripts,
// uploaded graphs, and async job records persist through a CRC-framed WAL
// plus periodic content-addressed snapshots (-snapshot-interval, -wal-sync).
// On boot the daemon replays the log — GET /readyz answers 503 until the
// replay lands — and on SIGTERM it checkpoints after draining, so a restart
// (graceful or kill -9) resumes with every committed session, transcript,
// graph, and finished job intact.
//
// Example:
//
//	chatgraphd -addr :8080 -session-ttl 30m &
//	sid=$(curl -s -X POST localhost:8080/v1/sessions | jq -r .session_id)
//	curl -s localhost:8080/v1/sessions/$sid/chat -d '{"question":"Write a brief report for G",
//	     "graph":{"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1}]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/config"
	"chatgraph/internal/core"
	"chatgraph/internal/durable"
	"chatgraph/internal/jobs"
	"chatgraph/internal/llm"
	"chatgraph/internal/server"
	"chatgraph/internal/tenant"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cfgPath     = flag.String("config", "", "JSON config file (see internal/config); overrides -llm/-model")
		llmURL      = flag.String("llm", "", "OpenAI-style endpoint for chain generation (default: built-in model)")
		llmModel    = flag.String("model", "vicuna-13b", "model name sent to the -llm endpoint")
		seed        = flag.Int64("seed", 42, "seed for training and the molecule database")
		quantize    = flag.Bool("quantize", false, "serve retrieval from the int8 quantized tier with exact f32 rerank")
		rerank      = flag.Int("rerank-factor", 0, "quantized over-fetch multiple for the f32 rerank (0 = default 4; needs -quantize)")
		mols        = flag.Int("molecules", 200, "molecules to seed the similarity database with")
		sessionTTL  = flag.Duration("session-ttl", server.DefaultSessionTTL, "idle timeout after which a v1 session expires")
		maxSessions = flag.Int("max-sessions", server.DefaultMaxSessions, "cap on concurrently live v1 sessions")
		drainWait   = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")

		maxInFlight  = flag.Int("max-inflight", 0, "cap on concurrently admitted requests; excess sheds with 429 (0 = unlimited)")
		maxRPS       = flag.Float64("max-rps", 0, "cap on the aggregate admitted request rate (this replica's provisioned capacity); excess sheds with 429 (0 = unlimited)")
		sessionRate  = flag.Float64("session-rate", 0, "per-session chat rate limit in requests/sec (0 = unlimited)")
		sessionBurst = flag.Int("session-burst", 0, "per-session rate-limit burst (0 = one second's worth)")
		reqTimeout   = flag.Duration("request-timeout", 60*time.Second, "per-request context deadline on chat/retrieve; expired chats answer 504 (0 = none)")
		tenantsPath  = flag.String("tenants", "", "multi-tenant config file (API keys, quotas, fair-share weights); empty = single anonymous tenant")
		jobWorkers   = flag.Int("job-workers", jobs.DefaultWorkers, "async job pool size; each worker runs one /v1/jobs chain at a time")
		jobQueue     = flag.Int("job-queue", jobs.DefaultQueueDepth, "async job queue depth; submissions beyond it shed with 429")
		jobRetention = flag.Duration("job-retention", jobs.DefaultRetention, "how long finished jobs stay pollable before eviction")
		writeTimeout = flag.Duration("write-timeout", 0, "http.Server write timeout; must exceed -request-timeout when set (0 = none, required for long NDJSON streams)")
		readHeader   = flag.Duration("read-header-timeout", 10*time.Second, "http.Server read-header timeout")

		dataDir      = flag.String("data-dir", "", "durability directory (WAL + snapshots + graph blobs); empty = in-memory only")
		walSync      = flag.String("wal-sync", "interval", "WAL fsync policy: always, interval, or none (needs -data-dir)")
		walSyncEvery = flag.Duration("wal-sync-interval", durable.DefaultSyncInterval, "fsync cadence for -wal-sync interval")
		snapEvery    = flag.Duration("snapshot-interval", 5*time.Minute, "how often to checkpoint state and rotate the WAL (0 = only on shutdown; needs -data-dir)")
	)
	flag.Parse()
	if *writeTimeout > 0 && *writeTimeout <= *reqTimeout {
		log.Fatalf("chatgraphd: -write-timeout %s must exceed -request-timeout %s (or the connection dies before the 504 can be written)", *writeTimeout, *reqTimeout)
	}

	rng := rand.New(rand.NewSource(*seed))
	env := &apis.Env{}
	reg := apis.Default(env)
	core.SeedMoleculeDB(env, *mols, rng)
	log.Println("training chain-generation model ...")
	var eng *core.Engine
	var err error
	if *cfgPath != "" {
		fc, cfgErr := config.Load(*cfgPath)
		if cfgErr != nil {
			log.Fatalf("chatgraphd: %v", cfgErr)
		}
		// The quantization flags layer over the file so one config can serve
		// both tiers in an A/B rollout.
		if *quantize {
			fc.ANN.Quantize = true
		}
		if *rerank > 0 {
			fc.ANN.RerankFactor = *rerank
		}
		eng, err = core.NewEngineFromConfig(fc, reg, env, *seed)
	} else {
		cfg := core.Config{Registry: reg, Env: env, TrainSeed: *seed}
		cfg.Retrieve.Quantize = *quantize
		cfg.Retrieve.RerankFactor = *rerank
		if *llmURL != "" {
			cfg.Client = &llm.HTTPClient{BaseURL: *llmURL, Model: *llmModel}
		}
		eng, err = core.NewEngine(cfg)
	}
	if err != nil {
		log.Fatalf("chatgraphd: %v", err)
	}

	// Open the durability layer (if any) before the server exists: recovery
	// needs the replayed state, and the server refuses gated traffic until
	// Recover has run.
	var dstore *durable.Store
	var recovered *durable.State
	if *dataDir != "" {
		policy, perr := durable.ParseSyncPolicy(*walSync)
		if perr != nil {
			log.Fatalf("chatgraphd: %v", perr)
		}
		dstore, recovered, err = durable.Open(durable.Options{
			Dir:          *dataDir,
			Sync:         policy,
			SyncInterval: *walSyncEvery,
		})
		if err != nil {
			log.Fatalf("chatgraphd: %v", err)
		}
		log.Printf("durability: %s (wal-sync %s, %d records replayed, %d truncations)",
			*dataDir, policy, recovered.Records, recovered.Truncations)
	}

	var tenants *tenant.Registry
	if *tenantsPath != "" {
		if tenants, err = tenant.LoadFile(*tenantsPath); err != nil {
			log.Fatalf("chatgraphd: %v", err)
		}
		log.Printf("tenants: %d configured (+ anonymous), fair shares over max-inflight %d", len(tenants.Names())-1, *maxInFlight)
	}

	srv := server.New(eng, server.Options{
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		MaxInFlight:    *maxInFlight,
		MaxRPS:         *maxRPS,
		SessionRate:    *sessionRate,
		SessionBurst:   *sessionBurst,
		RequestTimeout: *reqTimeout,
		JobWorkers:     *jobWorkers,
		JobQueue:       *jobQueue,
		JobRetention:   *jobRetention,
		Durable:        dstore,
		Tenants:        tenants,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeader,
		WriteTimeout:      *writeTimeout,
	}

	// Sweep expired sessions and finished jobs in the background so idle
	// daemons release memory without waiting for traffic.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		// The manager resolves non-positive TTL flags to its default.
		ticker := time.NewTicker(srv.Sessions().TTL() / 2)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if n := srv.Sessions().Sweep(); n > 0 {
					log.Printf("expired %d idle sessions (%d live)", n, srv.Sessions().Len())
				}
				if n := srv.Jobs().Sweep(); n > 0 {
					log.Printf("evicted %d finished jobs (%d retained)", n, srv.Jobs().Len())
				}
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("chatgraphd listening on %s (%d APIs registered, session ttl %s, max %d sessions, max-inflight %d, request timeout %s, %d job workers, job queue %d)",
		*addr, reg.Len(), *sessionTTL, *maxSessions, *maxInFlight, *reqTimeout, *jobWorkers, *jobQueue)

	// The listener is up (so /healthz and /readyz answer) but gated routes
	// shed 503 until the recovered state is replayed into the server.
	if dstore != nil {
		if err := srv.Recover(recovered); err != nil {
			log.Fatalf("chatgraphd: recover: %v", err)
		}
		if *snapEvery > 0 {
			go func() {
				ticker := time.NewTicker(*snapEvery)
				defer ticker.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-ticker.C:
						if err := srv.Checkpoint(); err != nil {
							log.Printf("chatgraphd: checkpoint: %v", err)
						}
					}
				}
			}()
		}
	}

	select {
	case err := <-errc:
		log.Fatalf("chatgraphd: %v", err)
	case <-ctx.Done():
		log.Printf("signal received; draining for up to %s ...", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("chatgraphd: shutdown: %v", err)
		}
		// With HTTP drained, stop the job pool: queued jobs cancel, running
		// ones get their contexts cut, and Close waits for the workers.
		srv.Close()
		// Checkpoint after Close so the final job cancellations are in the
		// manifest, then flush and release the WAL.
		if dstore != nil {
			if err := srv.Checkpoint(); err != nil {
				log.Printf("chatgraphd: final checkpoint: %v", err)
			}
			if err := dstore.Close(); err != nil {
				log.Printf("chatgraphd: close durable store: %v", err)
			} else {
				log.Println("durable state checkpointed")
			}
		}
		log.Println("chatgraphd stopped")
	}
}
