// Package kg provides the knowledge-graph analysis behind the paper's
// chat-based graph cleaning scenario (Fig. 6): detecting incorrect edges,
// inferring missing edges with logical rules, injecting synthetic noise for
// evaluation, and producing an edit plan the executor applies after user
// confirmation.
package kg

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"chatgraph/internal/graph"
)

// Issue is one suspected defect in a knowledge graph.
type Issue struct {
	// Kind is "incorrect" (edge should be removed) or "missing" (edge
	// should be added).
	Kind   string
	From   graph.NodeID
	To     graph.NodeID
	Label  string
	Reason string
}

// String renders the issue for chat transcripts and confirmation prompts.
func (i Issue) String() string {
	verb := "remove"
	if i.Kind == "missing" {
		verb = "add"
	}
	return fmt.Sprintf("%s edge %d -[%s]-> %d (%s)", verb, i.From, i.Label, i.To, i.Reason)
}

// TypeSignatures maps a relation label to the (subject type, object type)
// pair it requires; edges violating their signature are flagged incorrect.
type TypeSignatures map[string][2]string

// Rule is a Horn-style inference rule over relation labels.
type Rule struct {
	// Name describes the rule in reports.
	Name string
	// Kind selects the template: "symmetric" (r(x,y) ⇒ r(y,x)),
	// "transitive" (r(x,y) ∧ r(y,z) ⇒ r(x,z)), or "composition"
	// (Body1(x,y) ∧ Body2(y,z) ⇒ Head(x,z)).
	Kind string
	// Rel is the relation for symmetric/transitive rules.
	Rel string
	// Body1, Body2, Head configure composition rules.
	Body1, Body2, Head string
}

// DefaultRules are the inference rules matching the synthetic KG vocabulary
// in internal/graph (KnowledgeGraph generator).
func DefaultRules() []Rule {
	return []Rule{
		{Name: "spouse symmetry", Kind: "symmetric", Rel: "spouse_of"},
		{Name: "located transitivity", Kind: "transitive", Rel: "located_in"},
		{Name: "part_of transitivity", Kind: "transitive", Rel: "part_of"},
		{Name: "capital implies located", Kind: "composition", Body1: "capital_of", Body2: "located_in", Head: "located_in"},
		{Name: "member works composition", Kind: "composition", Body1: "member_of", Body2: "part_of", Head: "member_of"},
	}
}

// Detector finds incorrect and missing edges.
type Detector struct {
	Signatures TypeSignatures
	Rules      []Rule
	// MaxIssues caps the report size (0 = unlimited).
	MaxIssues int
}

// NewDetector returns a Detector with the default signatures (matching the
// synthetic generator) and rules.
func NewDetector() *Detector {
	return &Detector{Signatures: TypeSignatures(graph.KGRelationTypes()), Rules: DefaultRules()}
}

// DetectIncorrect flags edges whose endpoint types violate the relation
// signature and duplicate edges (same endpoints and label stored twice).
func (d *Detector) DetectIncorrect(g *graph.Graph) []Issue {
	var issues []Issue
	seen := make(map[string]bool, g.NumEdges())
	for _, e := range g.Edges() {
		key := tripleKey(e.From, e.Label, e.To)
		if seen[key] {
			issues = append(issues, Issue{
				Kind: "incorrect", From: e.From, To: e.To, Label: e.Label,
				Reason: "duplicate triple",
			})
			continue
		}
		seen[key] = true
		sig, ok := d.Signatures[e.Label]
		if !ok {
			issues = append(issues, Issue{
				Kind: "incorrect", From: e.From, To: e.To, Label: e.Label,
				Reason: "unknown relation",
			})
			continue
		}
		st := g.Node(e.From).Attrs["type"]
		ot := g.Node(e.To).Attrs["type"]
		if st != sig[0] || ot != sig[1] {
			issues = append(issues, Issue{
				Kind: "incorrect", From: e.From, To: e.To, Label: e.Label,
				Reason: fmt.Sprintf("type violation: %s(%s,%s) requires (%s,%s)", e.Label, st, ot, sig[0], sig[1]),
			})
		}
	}
	return d.cap(issues)
}

// DetectMissing applies the inference rules and reports conclusions not
// present in the graph.
func (d *Detector) DetectMissing(g *graph.Graph) []Issue {
	// byRel[label][from] = set of to-nodes. Only signature-valid triples
	// feed the rules: inferring over an incorrect edge would launder its
	// error into plausible-looking "missing" conclusions.
	byRel := make(map[string]map[graph.NodeID][]graph.NodeID)
	has := make(map[string]bool, g.NumEdges())
	for _, e := range g.Edges() {
		has[tripleKey(e.From, e.Label, e.To)] = true
		if !d.validTriple(g, e.From, e.Label, e.To) {
			continue
		}
		if byRel[e.Label] == nil {
			byRel[e.Label] = make(map[graph.NodeID][]graph.NodeID)
		}
		byRel[e.Label][e.From] = append(byRel[e.Label][e.From], e.To)
	}
	var issues []Issue
	emit := func(from graph.NodeID, rel string, to graph.NodeID, why string) {
		if from == to || has[tripleKey(from, rel, to)] {
			return
		}
		if !d.validTriple(g, from, rel, to) {
			return
		}
		has[tripleKey(from, rel, to)] = true // dedup across rules
		issues = append(issues, Issue{Kind: "missing", From: from, To: to, Label: rel, Reason: why})
	}
	for _, r := range d.Rules {
		switch r.Kind {
		case "symmetric":
			for from, tos := range byRel[r.Rel] {
				for _, to := range tos {
					emit(to, r.Rel, from, r.Name)
				}
			}
		case "transitive":
			for x, ys := range byRel[r.Rel] {
				for _, y := range ys {
					for _, z := range byRel[r.Rel][y] {
						emit(x, r.Rel, z, r.Name)
					}
				}
			}
		case "composition":
			for x, ys := range byRel[r.Body1] {
				for _, y := range ys {
					for _, z := range byRel[r.Body2][y] {
						emit(x, r.Head, z, r.Name)
					}
				}
			}
		}
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].From != issues[j].From {
			return issues[i].From < issues[j].From
		}
		if issues[i].To != issues[j].To {
			return issues[i].To < issues[j].To
		}
		return issues[i].Label < issues[j].Label
	})
	return d.cap(issues)
}

// Detect runs both detectors, incorrect first.
func (d *Detector) Detect(g *graph.Graph) []Issue {
	issues := d.DetectIncorrect(g)
	issues = append(issues, d.DetectMissing(g)...)
	return d.cap(issues)
}

func (d *Detector) cap(issues []Issue) []Issue {
	if d.MaxIssues > 0 && len(issues) > d.MaxIssues {
		return issues[:d.MaxIssues]
	}
	return issues
}

// validTriple reports whether the triple satisfies its relation's type
// signature (unknown relations never validate).
func (d *Detector) validTriple(g *graph.Graph, from graph.NodeID, rel string, to graph.NodeID) bool {
	sig, ok := d.Signatures[rel]
	if !ok {
		return false
	}
	return g.Node(from).Attrs["type"] == sig[0] && g.Node(to).Attrs["type"] == sig[1]
}

// tripleKey renders "from|rel|to" with strconv instead of fmt: the
// detection and inference loops build one key per (candidate) triple, and
// Sprintf's reflection was the dominant allocation there.
func tripleKey(from graph.NodeID, rel string, to graph.NodeID) string {
	var b strings.Builder
	b.Grow(len(rel) + 16)
	b.WriteString(strconv.Itoa(int(from)))
	b.WriteByte('|')
	b.WriteString(rel)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(to)))
	return b.String()
}

// Apply edits g in place according to the accepted issues: incorrect edges
// are removed, missing edges added. It returns how many edits succeeded.
func Apply(g *graph.Graph, issues []Issue) int {
	applied := 0
	for _, is := range issues {
		switch is.Kind {
		case "incorrect":
			// Label-aware removal: parallel edges with other relations
			// between the same entities must survive.
			if g.RemoveEdgeLabeled(is.From, is.To, is.Label) {
				applied++
			}
		case "missing":
			if !g.HasEdge(is.From, is.To) {
				if err := g.AddEdgeLabeled(is.From, is.To, is.Label, 1); err == nil {
					applied++
				}
			}
		}
	}
	return applied
}

// Corruption records the noise InjectNoise introduced, so experiments can
// score detection precision/recall.
type Corruption struct {
	AddedWrong   []Issue // edges injected that violate signatures
	RemovedTrue  []Issue // edges deleted whose absence rules can re-infer
	CleanTriples int
}

// InjectNoise corrupts g in place: nWrong type-violating edges are added and
// nDrop existing edges removed. It returns what was done for scoring.
func InjectNoise(g *graph.Graph, nWrong, nDrop int, rng *rand.Rand) Corruption {
	var c Corruption
	c.CleanTriples = g.NumEdges()
	rels := make([]string, 0, len(graph.KGRelationTypes()))
	for r := range graph.KGRelationTypes() {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	n := g.NumNodes()
	// Drop first so a drop can never delete an edge injected below.
	for dropped := 0; dropped < nDrop && g.NumEdges() > 0; dropped++ {
		es := g.Edges()
		e := es[rng.Intn(len(es))]
		g.RemoveEdge(e.From, e.To)
		c.RemovedTrue = append(c.RemovedTrue, Issue{Kind: "missing", From: e.From, To: e.To, Label: e.Label})
	}
	for added := 0; added < nWrong; {
		rel := rels[rng.Intn(len(rels))]
		sig := graph.KGRelationTypes()[rel]
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))
		if from == to || g.HasEdge(from, to) {
			continue
		}
		// Only inject if it actually violates the signature, so ground
		// truth is unambiguous.
		if g.Node(from).Attrs["type"] == sig[0] && g.Node(to).Attrs["type"] == sig[1] {
			continue
		}
		if err := g.AddEdgeLabeled(from, to, rel, 1); err != nil {
			continue
		}
		c.AddedWrong = append(c.AddedWrong, Issue{Kind: "incorrect", From: from, To: to, Label: rel})
		added++
	}
	return c
}

// Score compares detected issues against a known corruption and returns
// precision and recall over the injected incorrect edges.
func Score(detected []Issue, c Corruption) (precision, recall float64) {
	injected := make(map[string]bool, len(c.AddedWrong))
	for _, is := range c.AddedWrong {
		injected[tripleKey(is.From, is.Label, is.To)] = true
	}
	tp, fp := 0, 0
	for _, is := range detected {
		if is.Kind != "incorrect" {
			continue
		}
		if injected[tripleKey(is.From, is.Label, is.To)] {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if len(c.AddedWrong) > 0 {
		recall = float64(tp) / float64(len(c.AddedWrong))
	}
	return precision, recall
}
