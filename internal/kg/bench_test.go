package kg

import (
	"math/rand"
	"testing"

	"chatgraph/internal/graph"
)

func BenchmarkDetect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.KnowledgeGraph(300, 900, rng)
	InjectNoise(g, 30, 10, rng)
	d := NewDetector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Detect(g)
	}
}

func BenchmarkMineRules(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.KnowledgeGraph(300, 900, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MineRules(g, MineConfig{})
	}
}
