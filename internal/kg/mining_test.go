package kg

import (
	"strings"
	"testing"

	"chatgraph/internal/graph"
)

// symmetricKG: spouse_of stored in both directions for 4 couples, plus a
// one-directional stray.
func symmetricKG() *graph.Graph {
	g := graph.NewDirected()
	for i := 0; i < 10; i++ {
		g.AddNodeAttrs("p", map[string]string{"type": "person"})
	}
	for i := 0; i < 8; i += 2 {
		g.AddEdgeLabeled(graph.NodeID(i), graph.NodeID(i+1), "spouse_of", 1) //nolint:errcheck
		g.AddEdgeLabeled(graph.NodeID(i+1), graph.NodeID(i), "spouse_of", 1) //nolint:errcheck
	}
	g.AddEdgeLabeled(8, 9, "spouse_of", 1) //nolint:errcheck
	return g
}

func TestMineSymmetry(t *testing.T) {
	rules := MineRules(symmetricKG(), MineConfig{MinSupport: 3, MinConfidence: 0.5})
	found := false
	for _, r := range rules {
		if r.Kind == "symmetric" && r.Rel == "spouse_of" {
			found = true
			if r.Confidence < 0.8 {
				t.Fatalf("symmetry confidence = %v", r.Confidence)
			}
			if r.Support != 9 {
				t.Fatalf("symmetry support = %d, want 9", r.Support)
			}
		}
	}
	if !found {
		t.Fatalf("spouse symmetry not mined: %v", rules)
	}
}

func TestMineTransitivity(t *testing.T) {
	// located_in chain with closure edges present.
	g := graph.NewDirected()
	for i := 0; i < 6; i++ {
		g.AddNodeAttrs("pl", map[string]string{"type": "place"})
	}
	// 0→1→2, closure 0→2; 3→4→5, closure 3→5.
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdgeLabeled(e[0], e[1], "located_in", 1) //nolint:errcheck
	}
	rules := MineRules(g, MineConfig{MinSupport: 2, MinConfidence: 0.9})
	found := false
	for _, r := range rules {
		if r.Kind == "transitive" && r.Rel == "located_in" {
			found = true
			if r.Confidence != 1 {
				t.Fatalf("transitivity confidence = %v", r.Confidence)
			}
		}
	}
	if !found {
		t.Fatalf("transitivity not mined: %v", rules)
	}
}

func TestMineComposition(t *testing.T) {
	g := graph.NewDirected()
	for i := 0; i < 9; i++ {
		g.AddNodeAttrs("pl", map[string]string{"type": "place"})
	}
	// capital_of(x,y) ∧ located_in(y,z) ⇒ located_in(x,z), three instances.
	for i := 0; i < 9; i += 3 {
		a, b, c := graph.NodeID(i), graph.NodeID(i+1), graph.NodeID(i+2)
		g.AddEdgeLabeled(a, b, "capital_of", 1) //nolint:errcheck
		g.AddEdgeLabeled(b, c, "located_in", 1) //nolint:errcheck
		g.AddEdgeLabeled(a, c, "located_in", 1) //nolint:errcheck
	}
	rules := MineRules(g, MineConfig{MinSupport: 3, MinConfidence: 0.9})
	found := false
	for _, r := range rules {
		if r.Kind == "composition" && r.Body1 == "capital_of" && r.Body2 == "located_in" && r.Head == "located_in" {
			found = true
		}
	}
	if !found {
		t.Fatalf("composition not mined: %v", rules)
	}
}

func TestMineThresholdsFilter(t *testing.T) {
	// One couple only: support 2 < MinSupport 3 → nothing mined.
	g := graph.NewDirected()
	a := g.AddNodeAttrs("a", map[string]string{"type": "person"})
	b := g.AddNodeAttrs("b", map[string]string{"type": "person"})
	g.AddEdgeLabeled(a, b, "spouse_of", 1) //nolint:errcheck
	g.AddEdgeLabeled(b, a, "spouse_of", 1) //nolint:errcheck
	if rules := MineRules(g, MineConfig{}); len(rules) != 0 {
		t.Fatalf("under-supported rules mined: %v", rules)
	}
}

func TestMinedRulesDriveDetector(t *testing.T) {
	g := symmetricKG()
	mined := MineRules(g, MineConfig{MinSupport: 3, MinConfidence: 0.5})
	d := NewDetector()
	d.Rules = RulesOf(mined)
	issues := d.DetectMissing(g)
	// The stray one-directional spouse edge 8→9 should yield missing 9→8.
	found := false
	for _, is := range issues {
		if is.From == 9 && is.To == 8 && is.Label == "spouse_of" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mined rules did not infer the missing reverse edge: %v", issues)
	}
}

func TestMinedRuleString(t *testing.T) {
	for _, r := range []MinedRule{
		{Rule: Rule{Kind: "symmetric", Rel: "r"}, Support: 3, Confidence: 0.9},
		{Rule: Rule{Kind: "transitive", Rel: "r"}, Support: 3, Confidence: 0.9},
		{Rule: Rule{Kind: "composition", Body1: "a", Body2: "b", Head: "c"}, Support: 3, Confidence: 0.9},
		{Rule: Rule{Kind: "other", Name: "custom"}, Support: 1, Confidence: 1},
	} {
		if !strings.Contains(r.String(), "support 3") && r.Kind != "other" {
			t.Fatalf("String = %q", r.String())
		}
	}
}

func TestMineRulesSortedByConfidence(t *testing.T) {
	g := symmetricKG()
	rules := MineRules(g, MineConfig{MinSupport: 1, MinConfidence: 0.01})
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}
