package kg

import (
	"fmt"
	"sort"

	"chatgraph/internal/graph"
)

// Rule mining: instead of relying on the hand-written DefaultRules, ChatGraph
// can learn which symmetry/transitivity/composition rules actually hold in a
// given knowledge graph by counting support (how often the rule body occurs)
// and confidence (how often the head is also present). Mined rules feed the
// same Detector, so cleaning adapts to the graph at hand.

// MinedRule is a Rule plus its evidence.
type MinedRule struct {
	Rule
	// Support is the number of body instances observed.
	Support int
	// Confidence is head-present / body-instances in [0, 1].
	Confidence float64
}

// String renders the rule with its evidence for chat output.
func (m MinedRule) String() string {
	return fmt.Sprintf("%s [support %d, confidence %.2f]", m.describe(), m.Support, m.Confidence)
}

func (m MinedRule) describe() string {
	switch m.Kind {
	case "symmetric":
		return fmt.Sprintf("%s(x,y) => %s(y,x)", m.Rel, m.Rel)
	case "transitive":
		return fmt.Sprintf("%s(x,y) & %s(y,z) => %s(x,z)", m.Rel, m.Rel, m.Rel)
	case "composition":
		return fmt.Sprintf("%s(x,y) & %s(y,z) => %s(x,z)", m.Body1, m.Body2, m.Head)
	default:
		return m.Name
	}
}

// MineConfig bounds the mining.
type MineConfig struct {
	// MinSupport is the minimum body instances (0 → 3).
	MinSupport int
	// MinConfidence is the minimum confidence (0 → 0.6).
	MinConfidence float64
}

func (c *MineConfig) setDefaults() {
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.6
	}
}

// MineRules scans g for symmetric, transitive, and pairwise-composition
// rules meeting the support/confidence thresholds, strongest first.
func MineRules(g *graph.Graph, cfg MineConfig) []MinedRule {
	cfg.setDefaults()
	byRel := make(map[string]map[graph.NodeID][]graph.NodeID)
	has := make(map[string]bool)
	var rels []string
	for _, e := range g.Edges() {
		if byRel[e.Label] == nil {
			byRel[e.Label] = make(map[graph.NodeID][]graph.NodeID)
			rels = append(rels, e.Label)
		}
		byRel[e.Label][e.From] = append(byRel[e.Label][e.From], e.To)
		has[tripleKey(e.From, e.Label, e.To)] = true
	}
	sort.Strings(rels)
	var out []MinedRule
	keep := func(r MinedRule) {
		if r.Support >= cfg.MinSupport && r.Confidence >= cfg.MinConfidence {
			out = append(out, r)
		}
	}
	// Symmetry: r(x,y) ⇒ r(y,x).
	for _, rel := range rels {
		support, hits := 0, 0
		for x, ys := range byRel[rel] {
			for _, y := range ys {
				support++
				if has[tripleKey(y, rel, x)] {
					hits++
				}
			}
		}
		if support > 0 {
			keep(MinedRule{
				Rule:    Rule{Name: rel + " symmetry", Kind: "symmetric", Rel: rel},
				Support: support, Confidence: float64(hits) / float64(support),
			})
		}
	}
	// Transitivity: r(x,y) ∧ r(y,z) ⇒ r(x,z).
	for _, rel := range rels {
		support, hits := 0, 0
		for x, ys := range byRel[rel] {
			for _, y := range ys {
				for _, z := range byRel[rel][y] {
					if x == z {
						continue
					}
					support++
					if has[tripleKey(x, rel, z)] {
						hits++
					}
				}
			}
		}
		if support > 0 {
			keep(MinedRule{
				Rule:    Rule{Name: rel + " transitivity", Kind: "transitive", Rel: rel},
				Support: support, Confidence: float64(hits) / float64(support),
			})
		}
	}
	// Composition: r1(x,y) ∧ r2(y,z) ⇒ head(x,z) for every (r1, r2, head)
	// triple of observed relations (r1 ≠ r2 to avoid re-finding transitivity).
	for _, r1 := range rels {
		for _, r2 := range rels {
			if r1 == r2 {
				continue
			}
			bodies := 0
			headHits := make(map[string]int)
			for x, ys := range byRel[r1] {
				for _, y := range ys {
					for _, z := range byRel[r2][y] {
						if x == z {
							continue
						}
						bodies++
						for _, head := range rels {
							if has[tripleKey(x, head, z)] {
								headHits[head]++
							}
						}
					}
				}
			}
			if bodies == 0 {
				continue
			}
			for _, head := range rels {
				if headHits[head] == 0 {
					continue
				}
				keep(MinedRule{
					Rule: Rule{
						Name:  fmt.Sprintf("%s∘%s ⇒ %s", r1, r2, head),
						Kind:  "composition",
						Body1: r1, Body2: r2, Head: head,
					},
					Support: bodies, Confidence: float64(headHits[head]) / float64(bodies),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RulesOf strips the evidence, for plugging mined rules into a Detector.
func RulesOf(mined []MinedRule) []Rule {
	out := make([]Rule, len(mined))
	for i, m := range mined {
		out[i] = m.Rule
	}
	return out
}
