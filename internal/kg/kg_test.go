package kg

import (
	"math/rand"
	"strings"
	"testing"

	"chatgraph/internal/graph"
)

// tinyKG builds a hand-checked knowledge graph:
// alice -spouse_of-> bob, paris -located_in-> france,
// france -located_in-> europe, acme -part_of-> megacorp.
func tinyKG() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.NewDirected()
	ids := map[string]graph.NodeID{}
	add := func(name, typ string) {
		ids[name] = g.AddNodeAttrs(name, map[string]string{"type": typ})
	}
	add("alice", "person")
	add("bob", "person")
	add("paris", "place")
	add("france", "place")
	add("europe", "place")
	add("acme", "org")
	add("megacorp", "org")
	g.AddEdgeLabeled(ids["alice"], ids["bob"], "spouse_of", 1)      //nolint:errcheck
	g.AddEdgeLabeled(ids["paris"], ids["france"], "located_in", 1)  //nolint:errcheck
	g.AddEdgeLabeled(ids["france"], ids["europe"], "located_in", 1) //nolint:errcheck
	g.AddEdgeLabeled(ids["acme"], ids["megacorp"], "part_of", 1)    //nolint:errcheck
	return g, ids
}

func TestDetectIncorrectTypeViolation(t *testing.T) {
	g, ids := tinyKG()
	// A person "located_in" violates (place, place).
	g.AddEdgeLabeled(ids["alice"], ids["paris"], "located_in", 1) //nolint:errcheck
	issues := NewDetector().DetectIncorrect(g)
	if len(issues) != 1 {
		t.Fatalf("issues = %v", issues)
	}
	if issues[0].Kind != "incorrect" || issues[0].From != ids["alice"] {
		t.Fatalf("issue = %+v", issues[0])
	}
	if !strings.Contains(issues[0].Reason, "type violation") {
		t.Fatalf("reason = %q", issues[0].Reason)
	}
}

func TestDetectIncorrectUnknownRelation(t *testing.T) {
	g, ids := tinyKG()
	g.AddEdgeLabeled(ids["alice"], ids["bob"], "teleports_to", 1) //nolint:errcheck
	issues := NewDetector().DetectIncorrect(g)
	if len(issues) != 1 || issues[0].Reason != "unknown relation" {
		t.Fatalf("issues = %v", issues)
	}
}

func TestDetectMissingSymmetry(t *testing.T) {
	g, ids := tinyKG()
	issues := NewDetector().DetectMissing(g)
	found := false
	for _, is := range issues {
		if is.Label == "spouse_of" && is.From == ids["bob"] && is.To == ids["alice"] {
			found = true
		}
	}
	if !found {
		t.Fatalf("symmetry inference missing from %v", issues)
	}
}

func TestDetectMissingTransitivity(t *testing.T) {
	g, ids := tinyKG()
	issues := NewDetector().DetectMissing(g)
	found := false
	for _, is := range issues {
		if is.Label == "located_in" && is.From == ids["paris"] && is.To == ids["europe"] {
			found = true
		}
	}
	if !found {
		t.Fatalf("transitivity inference missing from %v", issues)
	}
}

func TestDetectMissingComposition(t *testing.T) {
	g := graph.NewDirected()
	berlin := g.AddNodeAttrs("berlin", map[string]string{"type": "place"})
	germany := g.AddNodeAttrs("germany", map[string]string{"type": "place"})
	europe := g.AddNodeAttrs("europe", map[string]string{"type": "place"})
	g.AddEdgeLabeled(berlin, germany, "capital_of", 1) //nolint:errcheck
	g.AddEdgeLabeled(germany, europe, "located_in", 1) //nolint:errcheck
	issues := NewDetector().DetectMissing(g)
	found := false
	for _, is := range issues {
		if is.Label == "located_in" && is.From == berlin && is.To == europe {
			found = true
		}
	}
	if !found {
		t.Fatalf("composition inference missing from %v", issues)
	}
}

func TestDetectNoFalsePositivesOnCleanGraph(t *testing.T) {
	g, _ := tinyKG()
	if issues := NewDetector().DetectIncorrect(g); len(issues) != 0 {
		t.Fatalf("clean graph flagged: %v", issues)
	}
}

func TestMaxIssuesCap(t *testing.T) {
	g, _ := tinyKG()
	d := NewDetector()
	d.MaxIssues = 1
	if issues := d.Detect(g); len(issues) > 1 {
		t.Fatalf("cap ignored: %d issues", len(issues))
	}
}

func TestApply(t *testing.T) {
	g, ids := tinyKG()
	before := g.NumEdges()
	issues := []Issue{
		{Kind: "incorrect", From: ids["alice"], To: ids["bob"], Label: "spouse_of"},
		{Kind: "missing", From: ids["bob"], To: ids["alice"], Label: "spouse_of"},
		{Kind: "missing", From: ids["bob"], To: ids["alice"], Label: "spouse_of"}, // dup: no-op
	}
	applied := Apply(g, issues)
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if g.NumEdges() != before {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), before)
	}
	if !g.HasEdge(ids["bob"], ids["alice"]) {
		t.Fatal("missing edge not added")
	}
}

func TestInjectNoiseAndScore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.KnowledgeGraph(40, 80, rng)
	c := InjectNoise(g, 10, 5, rng)
	if len(c.AddedWrong) != 10 || len(c.RemovedTrue) != 5 {
		t.Fatalf("corruption = %d wrong, %d dropped", len(c.AddedWrong), len(c.RemovedTrue))
	}
	detected := NewDetector().Detect(g)
	precision, recall := Score(detected, c)
	if recall < 0.99 {
		t.Fatalf("recall = %v; every injected type-violating edge should be caught", recall)
	}
	if precision <= 0 {
		t.Fatalf("precision = %v", precision)
	}
}

func TestScoreEmpty(t *testing.T) {
	p, r := Score(nil, Corruption{})
	if p != 0 || r != 0 {
		t.Fatalf("empty Score = %v, %v", p, r)
	}
}

func TestIssueString(t *testing.T) {
	add := Issue{Kind: "missing", From: 1, To: 2, Label: "r", Reason: "why"}
	if s := add.String(); !strings.HasPrefix(s, "add edge") {
		t.Fatalf("String = %q", s)
	}
	rm := Issue{Kind: "incorrect", From: 1, To: 2, Label: "r"}
	if s := rm.String(); !strings.HasPrefix(s, "remove edge") {
		t.Fatalf("String = %q", s)
	}
}

func TestDetectDuplicateTriple(t *testing.T) {
	g := graph.NewDirected()
	a := g.AddNodeAttrs("a", map[string]string{"type": "person"})
	b := g.AddNodeAttrs("b", map[string]string{"type": "person"})
	g.AddEdgeLabeled(a, b, "spouse_of", 1) //nolint:errcheck
	g.AddEdgeLabeled(a, b, "spouse_of", 1) //nolint:errcheck
	issues := NewDetector().DetectIncorrect(g)
	if len(issues) != 1 || issues[0].Reason != "duplicate triple" {
		t.Fatalf("issues = %v", issues)
	}
}
