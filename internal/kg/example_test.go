package kg_test

import (
	"fmt"

	"chatgraph/internal/graph"
	"chatgraph/internal/kg"
)

func ExampleDetector() {
	g := graph.NewDirected()
	alice := g.AddNodeAttrs("alice", map[string]string{"type": "person"})
	bob := g.AddNodeAttrs("bob", map[string]string{"type": "person"})
	paris := g.AddNodeAttrs("paris", map[string]string{"type": "place"})
	g.AddEdgeLabeled(alice, bob, "spouse_of", 1)    //nolint:errcheck
	g.AddEdgeLabeled(alice, paris, "located_in", 1) //nolint:errcheck // type violation

	d := kg.NewDetector()
	for _, issue := range d.Detect(g) {
		fmt.Println(issue)
	}
	// Output:
	// remove edge 0 -[located_in]-> 2 (type violation: located_in(person,place) requires (place,place))
	// add edge 1 -[spouse_of]-> 0 (spouse symmetry)
}
