// Package config models the tunable parameters the paper's configuration
// panel (Fig. 3) exposes: ANN search, graph sequentializer, finetuning, and
// LLM settings. Parameters validate as a unit and round-trip through JSON so
// the server can expose a configuration endpoint and the CLI can load a
// config file.
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// ANN holds the API-retrieval index parameters (left panel of Fig. 3).
type ANN struct {
	// Dim is the embedding dimensionality.
	Dim int `json:"dim"`
	// Tau is the τ of the τ-MG occlusion rule.
	Tau float64 `json:"tau"`
	// Epsilon is the target approximation ratio of Definition 2.
	Epsilon float64 `json:"epsilon"`
	// TopK is how many candidate APIs retrieval returns.
	TopK int `json:"top_k"`
	// Quantize enables the int8 two-stage retrieval tier: candidates rank
	// on quantized codes, the rerank_factor·k best rerank on exact f32.
	Quantize bool `json:"quantize,omitempty"`
	// RerankFactor is the quantized over-fetch multiple (0 → the ann
	// package default, 4). Only meaningful with Quantize set.
	RerankFactor int `json:"rerank_factor,omitempty"`
}

// Sequentializer holds the graph-sequentializer parameters.
type Sequentializer struct {
	// MaxPathLength is l, the path length bound.
	MaxPathLength int `json:"max_path_length"`
	// Levels is how many structure levels to emit (1 or 2).
	Levels int `json:"levels"`
	// MaxPathLines caps how many path lines enter the prompt.
	MaxPathLines int `json:"max_path_lines"`
}

// Finetune holds the API chain-oriented finetuning parameters.
type Finetune struct {
	// Rollouts is r, the random rollouts per candidate.
	Rollouts int `json:"rollouts"`
	// Alpha weighs the one-to-one matching regularizer in Definition 1.
	Alpha float64 `json:"alpha"`
	// Epochs of rollout refinement.
	Epochs int `json:"epochs"`
	// Examples sizes the synthetic dataset.
	Examples int `json:"examples"`
}

// LLM holds the model parameters (right panel of Fig. 3).
type LLM struct {
	// Backend is "sim" (built-in) or "http".
	Backend string `json:"backend"`
	// BaseURL is the HTTP endpoint when Backend is "http".
	BaseURL string `json:"base_url,omitempty"`
	// Model is the model identifier for HTTP backends.
	Model string `json:"model,omitempty"`
	// Temperature passed to HTTP backends.
	Temperature float64 `json:"temperature"`
	// MaxChainLength caps generated chains.
	MaxChainLength int `json:"max_chain_length"`
}

// Config is the complete parameter set.
type Config struct {
	ANN            ANN            `json:"ann"`
	Sequentializer Sequentializer `json:"sequentializer"`
	Finetune       Finetune       `json:"finetune"`
	LLM            LLM            `json:"llm"`
}

// Default returns the parameter values the demo ships with.
func Default() Config {
	return Config{
		ANN:            ANN{Dim: 512, Tau: 0.05, Epsilon: 0.05, TopK: 6},
		Sequentializer: Sequentializer{MaxPathLength: 3, Levels: 2, MaxPathLines: 40},
		Finetune:       Finetune{Rollouts: 4, Alpha: 0.5, Epochs: 2, Examples: 400},
		LLM:            LLM{Backend: "sim", Temperature: 0, MaxChainLength: 8},
	}
}

// Validate checks every parameter range and returns the first violation.
func (c Config) Validate() error {
	switch {
	case c.ANN.Dim < 8 || c.ANN.Dim > 4096:
		return fmt.Errorf("config: ann.dim %d outside [8, 4096]", c.ANN.Dim)
	case c.ANN.Tau < 0:
		return fmt.Errorf("config: ann.tau %g must be non-negative", c.ANN.Tau)
	case c.ANN.Epsilon < 0 || c.ANN.Epsilon > 1:
		return fmt.Errorf("config: ann.epsilon %g outside [0, 1]", c.ANN.Epsilon)
	case c.ANN.TopK < 1 || c.ANN.TopK > 64:
		return fmt.Errorf("config: ann.top_k %d outside [1, 64]", c.ANN.TopK)
	case c.ANN.RerankFactor < 0 || c.ANN.RerankFactor > 256:
		return fmt.Errorf("config: ann.rerank_factor %d outside [0, 256]", c.ANN.RerankFactor)
	case c.Sequentializer.MaxPathLength < 1 || c.Sequentializer.MaxPathLength > 8:
		return fmt.Errorf("config: sequentializer.max_path_length %d outside [1, 8]", c.Sequentializer.MaxPathLength)
	case c.Sequentializer.Levels < 1 || c.Sequentializer.Levels > 2:
		return fmt.Errorf("config: sequentializer.levels %d outside [1, 2]", c.Sequentializer.Levels)
	case c.Sequentializer.MaxPathLines < 1:
		return fmt.Errorf("config: sequentializer.max_path_lines must be positive")
	case c.Finetune.Rollouts < 0 || c.Finetune.Rollouts > 256:
		return fmt.Errorf("config: finetune.rollouts %d outside [0, 256]", c.Finetune.Rollouts)
	case c.Finetune.Alpha < 0:
		return fmt.Errorf("config: finetune.alpha %g must be non-negative", c.Finetune.Alpha)
	case c.Finetune.Epochs < 0 || c.Finetune.Epochs > 64:
		return fmt.Errorf("config: finetune.epochs %d outside [0, 64]", c.Finetune.Epochs)
	case c.Finetune.Examples < 1:
		return fmt.Errorf("config: finetune.examples must be positive")
	case c.LLM.Backend != "sim" && c.LLM.Backend != "http":
		return fmt.Errorf("config: llm.backend %q must be sim or http", c.LLM.Backend)
	case c.LLM.Backend == "http" && c.LLM.BaseURL == "":
		return fmt.Errorf("config: llm.base_url required for the http backend")
	case c.LLM.Temperature < 0 || c.LLM.Temperature > 2:
		return fmt.Errorf("config: llm.temperature %g outside [0, 2]", c.LLM.Temperature)
	case c.LLM.MaxChainLength < 1 || c.LLM.MaxChainLength > 32:
		return fmt.Errorf("config: llm.max_chain_length %d outside [1, 32]", c.LLM.MaxChainLength)
	}
	return nil
}

// Load reads and validates a config file; missing fields inherit defaults.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates JSON bytes over the defaults.
func Parse(data []byte) (Config, error) {
	c := Default()
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Save writes the config as indented JSON.
func (c Config) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: encode: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
