package config

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesEveryField(t *testing.T) {
	mut := []struct {
		name string
		f    func(*Config)
		want string
	}{
		{"dim", func(c *Config) { c.ANN.Dim = 4 }, "ann.dim"},
		{"tau", func(c *Config) { c.ANN.Tau = -1 }, "ann.tau"},
		{"epsilon", func(c *Config) { c.ANN.Epsilon = 2 }, "ann.epsilon"},
		{"topk", func(c *Config) { c.ANN.TopK = 0 }, "ann.top_k"},
		{"pathlen", func(c *Config) { c.Sequentializer.MaxPathLength = 0 }, "max_path_length"},
		{"levels", func(c *Config) { c.Sequentializer.Levels = 3 }, "levels"},
		{"pathlines", func(c *Config) { c.Sequentializer.MaxPathLines = 0 }, "max_path_lines"},
		{"rollouts", func(c *Config) { c.Finetune.Rollouts = -1 }, "rollouts"},
		{"alpha", func(c *Config) { c.Finetune.Alpha = -0.1 }, "alpha"},
		{"epochs", func(c *Config) { c.Finetune.Epochs = 100 }, "epochs"},
		{"examples", func(c *Config) { c.Finetune.Examples = 0 }, "examples"},
		{"backend", func(c *Config) { c.LLM.Backend = "magic" }, "backend"},
		{"baseurl", func(c *Config) { c.LLM.Backend = "http"; c.LLM.BaseURL = "" }, "base_url"},
		{"temp", func(c *Config) { c.LLM.Temperature = 3 }, "temperature"},
		{"chainlen", func(c *Config) { c.LLM.MaxChainLength = 0 }, "max_chain_length"},
	}
	for _, m := range mut {
		c := Default()
		m.f(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: err = %v, want mention of %s", m.name, err, m.want)
		}
	}
}

func TestParseOverDefaults(t *testing.T) {
	c, err := Parse([]byte(`{"ann":{"dim":256,"tau":0.1,"epsilon":0.05,"top_k":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.ANN.Dim != 256 || c.ANN.TopK != 8 {
		t.Fatalf("parsed ANN = %+v", c.ANN)
	}
	// Untouched sections keep defaults.
	if c.Finetune.Rollouts != Default().Finetune.Rollouts {
		t.Fatalf("finetune defaults lost: %+v", c.Finetune)
	}
}

func TestParseRejectsBadJSONAndValues(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"llm":{"backend":"alien","temperature":0,"max_chain_length":8}}`)); err == nil {
		t.Fatal("invalid backend accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	orig := Default()
	orig.ANN.Tau = 0.15
	orig.Finetune.Rollouts = 16
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, orig)
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	c := Default()
	c.ANN.Dim = 1
	if err := c.Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("invalid config saved")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
