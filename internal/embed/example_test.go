package embed_test

import (
	"fmt"

	"chatgraph/internal/embed"
)

func ExampleHashing() {
	e := embed.NewHashing(128)
	e.Fit([]string{
		"detect communities in a social network",
		"predict the toxicity of a molecule",
	})
	related := embed.Similarity(e, "find the communities of this network", "detect communities in a social network")
	unrelated := embed.Similarity(e, "find the communities of this network", "predict the toxicity of a molecule")
	fmt.Println("related query is closer:", related > unrelated)
	// Output:
	// related query is closer: true
}

func ExampleTokenize() {
	fmt.Println(embed.Tokenize("What are the communities of this graph?"))
	// Output:
	// [commun graph]
}
