// Package embed turns text into dense vectors for the API-retrieval module.
//
// The paper embeds API descriptions and user prompts with an LLM embedding
// model; offline we substitute a deterministic TF-IDF feature-hashing
// embedder. It preserves the property retrieval needs — lexically and
// topically similar texts land near each other — while being reproducible
// and dependency-free. The Embedder interface lets a real model be plugged
// in without touching the retrieval path.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
	"sync"

	"chatgraph/internal/parallel"
	"chatgraph/internal/vecmath"
)

// Embedder converts text to a fixed-dimension vector.
type Embedder interface {
	// Embed returns a deterministic vector for text. Implementations must
	// return unit-norm vectors of Dim() length.
	Embed(text string) []float32
	// Dim reports the embedding dimensionality.
	Dim() int
}

// Hashing is the default Embedder: unigram+bigram feature hashing with a
// smoothed IDF table learned from the corpus registered via Fit. It is safe
// for concurrent use after Fit.
type Hashing struct {
	dim int

	mu       sync.RWMutex
	docCount int
	df       map[string]int
}

// NewHashing returns a Hashing embedder with the given dimensionality
// (values in the 64–512 range work well; the default used across ChatGraph
// is 128).
func NewHashing(dim int) *Hashing {
	if dim <= 0 {
		dim = 128
	}
	return &Hashing{dim: dim, df: make(map[string]int)}
}

// Dim implements Embedder.
func (h *Hashing) Dim() int { return h.dim }

// Fit registers corpus documents so the embedder can weight rare terms more
// heavily (IDF). Calling Fit is optional — without it all terms weigh 1 —
// and may be repeated to extend the corpus.
func (h *Hashing) Fit(docs []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range docs {
		seen := make(map[string]bool)
		for _, tok := range Tokenize(d) {
			seen[tok] = true
		}
		for tok := range seen {
			h.df[tok]++
		}
		h.docCount++
	}
}

// idf returns the smoothed inverse document frequency of tok.
func (h *Hashing) idf(tok string) float32 {
	if h.docCount == 0 {
		return 1
	}
	df := h.df[tok]
	return float32(math.Log(float64(1+h.docCount)/float64(1+df))) + 1
}

// Embed implements Embedder. Each unigram and bigram is hashed to a bucket
// with a sign hash (to cancel collisions in expectation), weighted by term
// frequency times IDF, and the result is L2-normalized.
func (h *Hashing) Embed(text string) []float32 {
	toks := Tokenize(text)
	v := make([]float32, h.dim)
	if len(toks) == 0 {
		return v
	}
	tf := make(map[string]float32)
	for _, t := range toks {
		tf[t]++
	}
	// Bigrams sharpen phrase matches but must not drown unigram overlap,
	// so they carry a reduced weight.
	const bigramWeight = 0.35
	bigrams := make(map[string]float32)
	for i := 0; i+1 < len(toks); i++ {
		bigrams[toks[i]+"_"+toks[i+1]]++
	}
	h.mu.RLock()
	for term, f := range tf {
		bucket, sign := hashTerm(term, h.dim)
		w := float32(1+math.Log(float64(f))) * h.idf(term)
		v[bucket] += sign * w
	}
	for term, f := range bigrams {
		bucket, sign := hashTerm(term, h.dim)
		w := bigramWeight * float32(1+math.Log(float64(f))) * h.idf(term)
		v[bucket] += sign * w
	}
	h.mu.RUnlock()
	return vecmath.Normalize(v)
}

// EmbedBatch embeds many texts in one call, fanning them across a bounded
// worker pool (at most GOMAXPROCS goroutines). Embed only takes the IDF
// read-lock, so workers never contend on writes; out[i] is the embedding of
// texts[i]. It is the companion to ann.Index.SearchBatch on the batched
// retrieval path.
func (h *Hashing) EmbedBatch(texts []string) [][]float32 {
	out := make([][]float32, len(texts))
	parallel.ForEach(len(texts), func(i int) {
		out[i] = h.Embed(texts[i])
	})
	return out
}

// hashTerm maps a term to (bucket, ±1) using two independent FNV hashes.
func hashTerm(term string, dim int) (int, float32) {
	hh := fnv.New64a()
	hh.Write([]byte(term)) //nolint:errcheck // fnv never errors
	sum := hh.Sum64()
	bucket := int(sum % uint64(dim))
	sign := float32(1)
	if (sum>>32)&1 == 1 {
		sign = -1
	}
	return bucket, sign
}

// stopwords are dropped during tokenization; they carry no retrieval signal
// and otherwise dominate short prompts ("what is the ... of the ...").
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true, "of": true,
	"in": true, "to": true, "for": true, "and": true, "or": true, "on": true,
	"it": true, "its": true, "this": true, "that": true, "be": true,
	"with": true, "by": true, "as": true, "at": true, "from": true,
	"do": true, "does": true, "please": true, "me": true, "my": true,
	"i": true, "you": true, "your": true, "we": true, "us": true,
	"what": true, "which": true, "how": true, "can": true, "could": true,
	"would": true, "will": true, "there": true,
}

// Tokenize lowercases, splits on non-alphanumerics, drops stopwords and
// single characters, and applies a light suffix stemmer so "communities"
// and "community" share a token.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		cur.Reset()
		if len(tok) < 2 || stopwords[tok] {
			return
		}
		toks = append(toks, stem(tok))
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}

// stem strips a few common English suffixes. It is intentionally crude — a
// full stemmer is unnecessary for retrieval over API descriptions.
func stem(tok string) string {
	switch {
	case strings.HasSuffix(tok, "ies") && len(tok) > 4:
		// Re-stem so "communities" → "community" → "commun" agrees with
		// the singular's stem.
		return stem(tok[:len(tok)-3] + "y")
	case strings.HasSuffix(tok, "ity") && len(tok) > 6:
		return tok[:len(tok)-3]
	case strings.HasSuffix(tok, "ing") && len(tok) > 5:
		return tok[:len(tok)-3]
	case strings.HasSuffix(tok, "ers") && len(tok) > 5:
		return tok[:len(tok)-1]
	case strings.HasSuffix(tok, "es") && len(tok) > 4 && sibilantBefore(tok):
		return tok[:len(tok)-2]
	case strings.HasSuffix(tok, "s") && len(tok) > 3 && !strings.HasSuffix(tok, "ss"):
		return tok[:len(tok)-1]
	case strings.HasSuffix(tok, "ed") && len(tok) > 4:
		return tok[:len(tok)-2]
	default:
		return tok
	}
}

// sibilantBefore reports whether the stem before a trailing "es" ends in a
// sibilant (s, x, z, ch, sh) — the cases where English actually adds "es".
func sibilantBefore(tok string) bool {
	stem := tok[:len(tok)-2]
	return strings.HasSuffix(stem, "s") || strings.HasSuffix(stem, "x") ||
		strings.HasSuffix(stem, "z") || strings.HasSuffix(stem, "ch") ||
		strings.HasSuffix(stem, "sh")
}

// Similarity returns the cosine similarity between the embeddings of a and b
// under e.
func Similarity(e Embedder, a, b string) float32 {
	return vecmath.Cosine(e.Embed(a), e.Embed(b))
}
