package embed

import (
	"testing"
	"testing/quick"

	"chatgraph/internal/vecmath"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("What are the communities of this graph?")
	want := []string{"commun", "graph"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestTokenizeEmptyAndPunct(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("!!! ??? a i"); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v", got)
	}
}

func TestStemmerMergesVariants(t *testing.T) {
	pairs := [][2]string{
		{"communities", "community"},
		{"clusters", "cluster"},
		{"computing", "comput"},
		{"searches", "search"},
		{"cleaned", "clean"},
	}
	for _, p := range pairs {
		if got := stem(p[0]); got != stem(p[1]) {
			t.Errorf("stem(%q) = %q, stem(%q) = %q; want equal", p[0], got, p[1], stem(p[1]))
		}
	}
}

func TestEmbedDeterministicUnitNorm(t *testing.T) {
	e := NewHashing(64)
	v1 := e.Embed("find similar molecules in the database")
	v2 := e.Embed("find similar molecules in the database")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if n := vecmath.Norm(v1); n < 0.999 || n > 1.001 {
		t.Fatalf("norm = %v, want 1", n)
	}
	if len(v1) != 64 || e.Dim() != 64 {
		t.Fatalf("dim = %d", len(v1))
	}
}

func TestEmbedEmptyText(t *testing.T) {
	e := NewHashing(32)
	v := e.Embed("")
	if vecmath.Norm(v) != 0 {
		t.Fatal("empty text embedding not zero")
	}
}

func TestSimilarTextsCloserThanUnrelated(t *testing.T) {
	e := NewHashing(256)
	e.Fit([]string{
		"detect communities in a social network",
		"compute the toxicity of a molecule",
		"find the shortest path between two nodes",
	})
	simRelated := Similarity(e, "detect communities in a social network", "find the communities of this network")
	simUnrelated := Similarity(e, "detect communities in a social network", "compute the toxicity of a molecule")
	if simRelated <= simUnrelated {
		t.Fatalf("related %v <= unrelated %v", simRelated, simUnrelated)
	}
}

func TestFitChangesWeighting(t *testing.T) {
	e := NewHashing(128)
	before := e.idf("commun")
	e.Fit([]string{"community detection", "community structure", "community analysis", "toxicity"})
	if e.docCount != 4 {
		t.Fatalf("docCount = %d", e.docCount)
	}
	after := e.idf("commun")
	rare := e.idf("toxic")
	if after >= before+1 {
		t.Fatalf("idf of frequent term should drop toward 1: before %v after %v", before, after)
	}
	if rare <= after {
		t.Fatalf("rare term idf %v should exceed frequent term idf %v", rare, after)
	}
}

// TestEmbedBatchMatchesEmbed: the batch fan-out must be a pure wrapper —
// byte-identical vectors to per-text Embed calls, in input order.
func TestEmbedBatchMatchesEmbed(t *testing.T) {
	h := NewHashing(64)
	texts := []string{
		"detect communities in the network",
		"molecular toxicity prediction",
		"", // zero vector, not a crash
		"shortest path between nodes",
	}
	h.Fit(texts)
	got := h.EmbedBatch(texts)
	if len(got) != len(texts) {
		t.Fatalf("batch returned %d vectors", len(got))
	}
	for i, text := range texts {
		want := h.Embed(text)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("batch[%d][%d] = %v, Embed = %v", i, j, got[i][j], want[j])
			}
		}
	}
	if out := h.EmbedBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d vectors", len(out))
	}
}

func TestDefaultDim(t *testing.T) {
	if NewHashing(0).Dim() != 128 {
		t.Fatal("default dim not applied")
	}
}

// Property: embeddings are always unit norm (or zero) and finite.
func TestQuickEmbedNorm(t *testing.T) {
	e := NewHashing(64)
	f := func(s string) bool {
		v := e.Embed(s)
		n := vecmath.Norm(v)
		return n == 0 || (n > 0.999 && n < 1.001)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEmbed(b *testing.B) {
	e := NewHashing(128)
	e.Fit([]string{"detect communities in a social network", "compute toxicity"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Embed("write a brief report for this graph including communities and connectivity")
	}
}
