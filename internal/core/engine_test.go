package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"chatgraph/internal/executor"
	"chatgraph/internal/graph"
)

// TestEngineSharedConcurrentSessions is the keystone concurrency contract:
// N sessions minted from one engine run Ask in parallel with no data race
// (run under -race) and each accumulates only its own history.
func TestEngineSharedConcurrentSessions(t *testing.T) {
	eng := session(t).Engine()
	const nSessions, asksEach = 4, 3
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		sessions[i] = eng.NewSession()
	}
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			g := graph.PlantedCommunities(2, 8, 0.6, 0.05, rand.New(rand.NewSource(int64(i+1))))
			for j := 0; j < asksEach; j++ {
				if _, err := s.Ask(context.Background(), "Write a brief report for G", g, AskOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions {
		if got := len(s.History()); got != asksEach {
			t.Fatalf("session %d history = %d turns, want %d", i, got, asksEach)
		}
	}
}

func TestEngineSessionIsolation(t *testing.T) {
	eng := session(t).Engine()
	a, b := eng.NewSession(), eng.NewSession()
	if a.Engine() != eng || b.Engine() != eng {
		t.Fatal("sessions do not share the engine")
	}
	g := graph.New()
	g.AddNode("x")
	if _, err := a.Ask(context.Background(), "Summarize the statistics of the graph", g, AskOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(a.History()) != 1 {
		t.Fatalf("a history = %d", len(a.History()))
	}
	if len(b.History()) != 0 {
		t.Fatalf("b history leaked %d turns from a", len(b.History()))
	}
	if a.Registry() != eng.Registry() || a.Env() != eng.Env() {
		t.Fatal("session accessors do not delegate to the engine")
	}
}

// TestHistoryDuringAsk confirms AskOptions callbacks (which run while the
// Ask serialization lock is held) can still read the session: History must
// not wait on an in-flight Ask.
func TestHistoryDuringAsk(t *testing.T) {
	s := session(t).Engine().NewSession()
	g := graph.New()
	g.AddNode("x")
	sawHistory := -1
	if _, err := s.Ask(context.Background(), "Summarize the statistics of the graph", g, AskOptions{
		OnEvent: func(executor.Event) {
			if sawHistory < 0 {
				sawHistory = len(s.History())
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if sawHistory != 0 {
		t.Fatalf("History() inside OnEvent = %d turns, want 0 (turn not yet committed)", sawHistory)
	}
}

// TestEngineRetrieveBatch: the engine's batched retrieval must agree with
// the per-query index lookups and honor the configured default k.
func TestEngineRetrieveBatch(t *testing.T) {
	eng := session(t).Engine()
	queries := []string{
		"detect the communities of this social network",
		"how toxic is this molecule",
	}
	batch := eng.RetrieveBatch(queries, 4)
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d lists", len(batch))
	}
	for i, q := range queries {
		want := eng.Retrieval().TopAPIs(q, 4)
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: %d hits, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("query %d hit %d: %+v, want %+v", i, j, batch[i][j], want[j])
			}
		}
	}
	// k ≤ 0 falls back to the engine's RetrievalK default.
	if def := eng.RetrieveBatch(queries[:1], 0); len(def[0]) == 0 {
		t.Fatal("default-k batch returned no hits")
	}
}

// TestNewSessionShim confirms the one-call compatibility constructor still
// produces a working conversation backed by its own engine.
func TestNewSessionShim(t *testing.T) {
	s, err := NewSession(Config{TrainSeed: 9, TrainExamples: 40})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() == nil || s.Engine().Model() == nil {
		t.Fatal("shim session has no engine")
	}
	if s.FileConfig() != nil {
		t.Fatal("programmatic session reports a file config")
	}
}
