package core

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/config"
	"chatgraph/internal/executor"
	"chatgraph/internal/graph"
	"chatgraph/internal/llm"
)

// sharedSession is expensive to build (model training), so tests share one.
var (
	sessOnce sync.Once
	sess     *Session
	sessErr  error
)

func session(t *testing.T) *Session {
	t.Helper()
	sessOnce.Do(func() {
		env := &apis.Env{}
		reg := apis.Default(env)
		SeedMoleculeDB(env, 50, rand.New(rand.NewSource(9)))
		sess, sessErr = NewSession(Config{Registry: reg, Env: env, TrainSeed: 1, TrainExamples: 300})
	})
	if sessErr != nil {
		t.Fatal(sessErr)
	}
	return sess
}

func TestScenarioUnderstandingSocial(t *testing.T) {
	s := session(t)
	rng := rand.New(rand.NewSource(2))
	g := graph.PlantedCommunities(3, 12, 0.5, 0.02, rng)
	turn, err := s.Ask(context.Background(), "Write a brief report for G", g, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if turn.Kind != graph.KindSocial {
		t.Fatalf("kind = %s", turn.Kind)
	}
	if !strings.Contains(turn.Answer, "Report for") {
		t.Fatalf("answer missing report:\n%s", turn.Answer)
	}
	if len(turn.Chain) < 2 {
		t.Fatalf("chain too short: %s", turn.Chain)
	}
	if turn.Chain[len(turn.Chain)-1].API != "report.compose" {
		t.Fatalf("report chain should end with report.compose: %s", turn.Chain)
	}
}

func TestScenarioUnderstandingMolecule(t *testing.T) {
	s := session(t)
	rng := rand.New(rand.NewSource(3))
	g := graph.Molecule(18, rng)
	turn, err := s.Ask(context.Background(), "Write a brief report for this molecule", g, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if turn.Kind != graph.KindMolecule {
		t.Fatalf("kind = %s", turn.Kind)
	}
	usedMoleculeAPI := false
	for _, st := range turn.Chain {
		if strings.HasPrefix(st.API, "molecule.") {
			usedMoleculeAPI = true
		}
	}
	if !usedMoleculeAPI {
		t.Fatalf("molecule report chain used no molecule API: %s", turn.Chain)
	}
}

func TestScenarioComparison(t *testing.T) {
	s := session(t)
	rng := rand.New(rand.NewSource(4))
	g := graph.Molecule(14, rng)
	turn, err := s.Ask(context.Background(), "What molecules are similar to G", g, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range turn.Chain {
		if st.API == "similarity.search" {
			found = true
		}
	}
	if !found {
		t.Fatalf("comparison chain lacks similarity.search: %s", turn.Chain)
	}
	if !strings.Contains(turn.Answer, "similar molecules") {
		t.Fatalf("answer = %s", turn.Answer)
	}
}

func TestScenarioCleaning(t *testing.T) {
	s := session(t)
	rng := rand.New(rand.NewSource(5))
	g := graph.KnowledgeGraph(30, 60, rng)
	g.AddEdgeLabeled(0, 1, "bogus_rel", 1) //nolint:errcheck
	before := g.NumEdges()
	turn, err := s.Ask(context.Background(), "Clean G", g, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if turn.Kind != graph.KindKnowledge {
		t.Fatalf("kind = %s", turn.Kind)
	}
	hasDetect, hasApply := false, false
	for _, st := range turn.Chain {
		if strings.HasPrefix(st.API, "kg.detect") {
			hasDetect = true
		}
		if st.API == "graph.apply_edits" {
			hasApply = true
		}
	}
	if !hasDetect || !hasApply {
		t.Fatalf("cleaning chain = %s", turn.Chain)
	}
	if g.NumEdges() == before {
		t.Log("warning: cleaning applied no net edge change (may add missing edges too)")
	}
}

func TestScenarioMonitoringEventsAndConfirmation(t *testing.T) {
	s := session(t)
	rng := rand.New(rand.NewSource(6))
	g := graph.PlantedCommunities(2, 10, 0.5, 0.05, rng)
	var confirmed chain.Chain
	var events []executor.Event
	turn, err := s.Ask(context.Background(), "Write a brief report for G", g, AskOptions{
		Confirm: func(c chain.Chain) (chain.Chain, bool) {
			confirmed = c.Clone()
			return nil, true
		},
		OnEvent: func(e executor.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if confirmed == nil {
		t.Fatal("confirmer never called")
	}
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Type != executor.EventChainStart || events[len(events)-1].Type != executor.EventChainDone {
		t.Fatalf("event bracket wrong: %v ... %v", events[0].Type, events[len(events)-1].Type)
	}
	if len(turn.Events) != len(events) {
		t.Fatal("turn events differ from observed events")
	}
}

func TestAskRejectedChain(t *testing.T) {
	s := session(t)
	g := graph.New()
	g.AddNode("a")
	_, err := s.Ask(context.Background(), "Write a brief report for G", g, AskOptions{
		Confirm: func(chain.Chain) (chain.Chain, bool) { return nil, false },
	})
	if !errors.Is(err, executor.ErrRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestAskEmptyQuestion(t *testing.T) {
	s := session(t)
	if _, err := s.Ask(context.Background(), "  ", nil, AskOptions{}); err == nil {
		t.Fatal("empty question accepted")
	}
}

func TestAskNilGraph(t *testing.T) {
	s := session(t)
	turn, err := s.Ask(context.Background(), "Summarize the statistics of the graph", nil, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if turn.Answer == "" {
		t.Fatal("empty answer")
	}
}

func TestAskWithChain(t *testing.T) {
	s := session(t)
	rng := rand.New(rand.NewSource(7))
	g := graph.Molecule(10, rng)
	c := chain.Chain{chain.NewStep("molecule.toxicity")}
	turn, err := s.AskWithChain(context.Background(), "run my chain", g, c, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(turn.Answer, "toxicity") {
		t.Fatalf("answer = %s", turn.Answer)
	}
}

func TestHistoryAccumulates(t *testing.T) {
	env := &apis.Env{}
	reg := apis.Default(env)
	s, err := NewSession(Config{Registry: reg, Env: env, TrainSeed: 2, TrainExamples: 120})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	g.AddNode("a")
	for i := 0; i < 2; i++ {
		if _, err := s.Ask(context.Background(), "Summarize the statistics of the graph", g, AskOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.History()) != 2 {
		t.Fatalf("history = %d", len(s.History()))
	}
}

func TestFillArgsFromQuestion(t *testing.T) {
	s := session(t)
	c := chain.Chain{chain.NewStep("path.shortest")}
	s.Engine().fillArgs(c, "what is the shortest path from node 3 to node 7")
	if c[0].Args["from"] != "3" || c[0].Args["to"] != "7" {
		t.Fatalf("args = %v", c[0].Args)
	}
}

func TestPathQuestionEndToEnd(t *testing.T) {
	s := session(t)
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)) //nolint:errcheck
	}
	c := chain.Chain{chain.NewStep("path.shortest")}
	s.Engine().fillArgs(c, "shortest path from 0 to 5")
	turn, err := s.AskWithChain(context.Background(), "shortest path from 0 to 5", g, c, AskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(turn.Answer, "5 hops") {
		t.Fatalf("answer = %s", turn.Answer)
	}
}

func TestExtractInts(t *testing.T) {
	got := extractInts("from 12 to 7, then 0")
	if len(got) != 3 || got[0] != 12 || got[1] != 7 || got[2] != 0 {
		t.Fatalf("extractInts = %v", got)
	}
	if got := extractInts("no numbers"); len(got) != 0 {
		t.Fatalf("extractInts = %v", got)
	}
	if got := extractInts("ends with 42"); len(got) != 1 || got[0] != 42 {
		t.Fatalf("extractInts = %v", got)
	}
}

func TestSuggestedQuestionsPerKind(t *testing.T) {
	for _, k := range []graph.Kind{graph.KindSocial, graph.KindMolecule, graph.KindKnowledge, graph.KindUnknown} {
		qs := SuggestedQuestions(k)
		if len(qs) < 2 {
			t.Fatalf("kind %s has %d suggestions", k, len(qs))
		}
	}
}

func TestRetrieveCandidatesIncludeGlue(t *testing.T) {
	s := session(t)
	cands := s.Engine().retrieveCandidates("detect communities")
	hasClassify := false
	for _, c := range cands {
		if c == "graph.classify" {
			hasClassify = true
		}
	}
	if !hasClassify {
		t.Fatalf("glue API missing from %v", cands)
	}
}

// failingClient always errors, to exercise the generation error path.
type failingClient struct{}

func (failingClient) Complete(context.Context, []llm.Message) (string, error) {
	return "", errors.New("model unavailable")
}

func TestAskClientError(t *testing.T) {
	env := &apis.Env{}
	reg := apis.Default(env)
	s, err := NewSession(Config{Registry: reg, Env: env, Client: failingClient{}, TrainSeed: 3, TrainExamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(context.Background(), "anything", nil, AskOptions{}); err == nil || !strings.Contains(err.Error(), "model unavailable") {
		t.Fatalf("err = %v", err)
	}
}

// gibberishClient returns unparseable text.
type gibberishClient struct{}

func (gibberishClient) Complete(context.Context, []llm.Message) (string, error) {
	return "I think you should (maybe) run something", nil
}

func TestAskUnparseableChain(t *testing.T) {
	env := &apis.Env{}
	reg := apis.Default(env)
	s, err := NewSession(Config{Registry: reg, Env: env, Client: gibberishClient{}, TrainSeed: 4, TrainExamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(context.Background(), "anything", nil, AskOptions{}); err == nil || !strings.Contains(err.Error(), "unparseable") {
		t.Fatalf("err = %v", err)
	}
}

func TestNewSessionFromConfig(t *testing.T) {
	fc := config.Default()
	fc.Finetune.Examples = 60
	fc.Finetune.Epochs = 1
	fc.ANN.TopK = 4
	s, err := NewSessionFromConfig(fc, nil, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.FileConfig() == nil || s.FileConfig().ANN.TopK != 4 {
		t.Fatalf("FileConfig = %+v", s.FileConfig())
	}
	g := graph.New()
	g.AddNode("a")
	if _, err := s.Ask(context.Background(), "Summarize the statistics of the graph", g, AskOptions{}); err != nil {
		t.Fatal(err)
	}
	// Invalid configs are rejected before any training happens.
	bad := config.Default()
	bad.ANN.Dim = 1
	if _, err := NewSessionFromConfig(bad, nil, nil, 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNewSessionFromConfigHTTPBackend(t *testing.T) {
	fc := config.Default()
	fc.Finetune.Examples = 30
	fc.LLM.Backend = "http"
	fc.LLM.BaseURL = "http://127.0.0.1:1" // nothing listens; Ask must fail cleanly
	s, err := NewSessionFromConfig(fc, nil, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(context.Background(), "anything", nil, AskOptions{}); err == nil {
		t.Fatal("unreachable HTTP backend succeeded")
	}
}

func TestTranscriptRoundTrip(t *testing.T) {
	s := session(t)
	g := graph.New()
	g.AddNode("a")
	if _, err := s.Ask(context.Background(), "Summarize the statistics of the graph", g, AskOptions{}); err != nil {
		t.Fatal(err)
	}
	before := len(s.History())
	path := filepath.Join(t.TempDir(), "transcript.json")
	if err := s.SaveTranscript(path); err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh session.
	env := &apis.Env{}
	s2, err := NewSession(Config{Registry: apis.Default(env), Env: env, TrainSeed: 3, TrainExamples: 30})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.LoadTranscript(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != before || len(s2.History()) != before {
		t.Fatalf("restored %d turns, want %d", n, before)
	}
	got := s2.History()[len(s2.History())-1]
	want := s.History()[len(s.History())-1]
	if got.Question != want.Question || got.Answer != want.Answer || !got.Chain.Equal(want.Chain) {
		t.Fatalf("restored turn differs:\n%+v\n%+v", got, want)
	}
}

func TestTranscriptErrors(t *testing.T) {
	s := session(t)
	if _, err := s.LoadTranscript(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing transcript loaded")
	}
	if _, err := s.ReadTranscript(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed transcript loaded")
	}
	if _, err := s.ReadTranscript(strings.NewReader(`{"version":9,"turns":[]}`)); err == nil {
		t.Fatal("future version loaded")
	}
	if _, err := s.ReadTranscript(strings.NewReader(`{"version":1,"turns":[{"chain":"a(bad"}]}`)); err == nil {
		t.Fatal("malformed chain loaded")
	}
}

func TestRepairChain(t *testing.T) {
	// apply_edits with no detection: detection inserted before it.
	c, _ := chain.Parse("graph.classify -> graph.apply_edits")
	got := repairChain(c)
	if got.String() != "graph.classify -> kg.detect_all -> graph.apply_edits" {
		t.Fatalf("repaired = %s", got)
	}
	// Detection directly before apply_edits: untouched.
	ok, _ := chain.Parse("graph.classify -> kg.detect_incorrect -> graph.apply_edits")
	if got := repairChain(ok); !got.Equal(ok) {
		t.Fatalf("valid chain altered: %s", got)
	}
	// Detection earlier but not adjacent: re-detect right before apply.
	gap, _ := chain.Parse("kg.detect_all -> graph.stats -> graph.apply_edits")
	got = repairChain(gap)
	if got.String() != "kg.detect_all -> graph.stats -> kg.detect_all -> graph.apply_edits" {
		t.Fatalf("repaired = %s", got)
	}
	// apply_edits first: detection inserted at the front.
	first, _ := chain.Parse("graph.apply_edits")
	got = repairChain(first)
	if got.String() != "kg.detect_all -> graph.apply_edits" {
		t.Fatalf("repaired = %s", got)
	}
	// Chains without apply_edits pass through untouched.
	plain, _ := chain.Parse("graph.stats -> report.compose")
	if got := repairChain(plain); !got.Equal(plain) {
		t.Fatalf("plain chain altered: %s", got)
	}
}
