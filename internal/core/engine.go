package core

import (
	"fmt"
	"math/rand"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/config"
	"chatgraph/internal/executor"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graphstore"
	"chatgraph/internal/llm"
	"chatgraph/internal/metrics"
	"chatgraph/internal/retrieve"
)

// engineMetrics are the engine-level instruments, resolved once per process
// from the default registry (every engine in a process shares them — the
// counters describe the process, not one engine instance).
type engineMetrics struct {
	asks            *metrics.Counter
	askErrors       *metrics.Counter
	askDur          *metrics.Histogram
	retrieveBatches *metrics.Counter
	retrieveQueries *metrics.Counter
}

func newEngineMetrics() *engineMetrics {
	reg := metrics.Default()
	return &engineMetrics{
		asks: reg.Counter("chatgraph_engine_asks_total",
			"Completed or failed Ask pipeline runs.", nil),
		askErrors: reg.Counter("chatgraph_engine_ask_errors_total",
			"Ask pipeline runs that returned an error.", nil),
		askDur: reg.Histogram("chatgraph_engine_ask_duration_seconds",
			"End-to-end Ask latency (retrieval + prompt + generation + execution).",
			metrics.DefBuckets, nil),
		retrieveBatches: reg.Counter("chatgraph_engine_retrieve_batches_total",
			"RetrieveBatch calls.", nil),
		retrieveQueries: reg.Counter("chatgraph_engine_retrieve_queries_total",
			"Queries answered across all RetrieveBatch calls.", nil),
	}
}

// Engine is the immutable, concurrency-safe bundle of everything expensive
// that ChatGraph conversations share: the API registry, the substrate
// environment, the finetuned chain-generation model, the τ-MG retrieval
// index, the LLM client, and the chain executor. Build one Engine per
// process (training the model and building the index happen here) and mint
// cheap per-conversation Sessions from it with NewSession. All Engine state
// is read-only after construction, so any number of Sessions may Ask
// concurrently against the same Engine.
type Engine struct {
	registry *apis.Registry
	env      *apis.Env
	model    *finetune.Model
	client   llm.Client
	index    *retrieve.Index
	exec     *executor.Executor
	graphs   *graphstore.Store
	cfg      Config
	// descs is the engine's private snapshot of the retrieval index's
	// name → description map, taken once at construction so the per-Ask
	// prompt build neither copies the map nor shares mutable state.
	descs map[string]string
	// met are the process-wide engine instruments (never nil).
	met *engineMetrics
	// fileConfig is set when the engine was built from a config file.
	fileConfig *config.Config
}

// NewEngine builds the shared engine from cfg, applying the same defaults
// NewSession always has: a Default registry over a fresh Env, a model
// trained on a generated dataset, a SimClient over that model, and a τ-MG
// retrieval index over the registry descriptions.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Env == nil {
		cfg.Env = &apis.Env{}
	}
	if cfg.Registry == nil {
		cfg.Registry = apis.Default(cfg.Env)
	}
	if cfg.Env.Cache == nil {
		// Engines always memoize: sessions asking follow-up questions about
		// one unmutated graph short-circuit repeated analyses through the
		// invocation LRU (apis.Default installs one, but a caller-supplied
		// Registry+Env pair may arrive without it).
		cfg.Env.Cache = apis.NewInvokeCache(apis.DefaultInvokeCacheSize)
	}
	if cfg.GraphStore == nil {
		// Engines always intern: re-uploaded graphs dedupe onto one shared
		// instance, which is what turns the content-keyed invoke cache into
		// a cross-session cache.
		cfg.GraphStore = graphstore.New(0)
	}
	if cfg.RetrievalK <= 0 {
		cfg.RetrievalK = 6
	}
	if cfg.Model == nil {
		n := cfg.TrainExamples
		if n <= 0 {
			n = 400
		}
		tc := cfg.Train
		if tc.Epochs == 0 {
			tc.Epochs = 2
		}
		if tc.Search.Rollouts == 0 {
			tc.Search.Rollouts = 4
		}
		if tc.Seed == 0 {
			tc.Seed = cfg.TrainSeed
		}
		rng := rand.New(rand.NewSource(cfg.TrainSeed))
		ds := finetune.GenerateDataset(n, rng)
		cfg.Model = finetune.Train(cfg.Registry.Names(), ds, tc)
	}
	if cfg.Client == nil {
		maxLen := cfg.Prompt.MaxChainLength
		if maxLen <= 0 {
			maxLen = 8
		}
		cfg.Client = llm.NewSimClient(cfg.Model, maxLen)
	}
	ix, err := retrieve.New(cfg.Registry, cfg.Retrieve)
	if err != nil {
		return nil, fmt.Errorf("core: build retrieval index: %w", err)
	}
	return &Engine{
		registry: cfg.Registry,
		env:      cfg.Env,
		model:    cfg.Model,
		client:   cfg.Client,
		index:    ix,
		exec:     executor.New(cfg.Registry, cfg.Env),
		graphs:   cfg.GraphStore,
		cfg:      cfg,
		descs:    ix.Descriptions(),
		met:      newEngineMetrics(),
	}, nil
}

// NewEngineFromConfig builds an Engine from the Fig. 3-style parameter set:
// ANN parameters shape the retrieval index, sequentializer parameters shape
// the prompt, finetuning parameters shape model training, and the LLM block
// selects the generation backend. registry/env may be nil for defaults.
func NewEngineFromConfig(fc config.Config, registry *apis.Registry, env *apis.Env, seed int64) (*Engine, error) {
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	cfg := Config{
		Registry:   registry,
		Env:        env,
		RetrievalK: fc.ANN.TopK,
		Retrieve: retrieve.Config{
			Dim:          fc.ANN.Dim,
			Tau:          float32(fc.ANN.Tau),
			Quantize:     fc.ANN.Quantize,
			RerankFactor: fc.ANN.RerankFactor,
		},
		Prompt: llm.PromptConfig{
			MaxPathLines:   fc.Sequentializer.MaxPathLines,
			PathLength:     fc.Sequentializer.MaxPathLength,
			MaxChainLength: fc.LLM.MaxChainLength,
		},
		TrainSeed:     seed,
		TrainExamples: fc.Finetune.Examples,
		Train: finetune.TrainConfig{
			Epochs: fc.Finetune.Epochs,
			Search: finetune.SearchConfig{
				Rollouts: fc.Finetune.Rollouts,
				Alpha:    fc.Finetune.Alpha,
			},
			Seed: seed,
		},
	}
	if fc.LLM.Backend == "http" {
		cfg.Client = &llm.HTTPClient{
			BaseURL:     fc.LLM.BaseURL,
			Model:       fc.LLM.Model,
			Temperature: fc.LLM.Temperature,
		}
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	e.fileConfig = &fc
	return e, nil
}

// NewSession mints a lightweight conversation over the shared engine. It
// allocates only history bookkeeping; any number of sessions created this
// way may Ask concurrently.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e}
}

// Registry exposes the engine's API catalog.
func (e *Engine) Registry() *apis.Registry { return e.registry }

// Retrieval exposes the engine's API-retrieval index. The index is
// immutable, so callers may search it concurrently with live sessions.
func (e *Engine) Retrieval() *retrieve.Index { return e.index }

// RetrieveBatch answers many retrieval queries in one batched pass over the
// shared index (pooled embed + ANN worker fan-out). k ≤ 0 uses the engine's
// configured RetrievalK. out[i] is the ranked hit list for queries[i].
func (e *Engine) RetrieveBatch(queries []string, k int) [][]retrieve.Scored {
	if k <= 0 {
		k = e.cfg.RetrievalK
	}
	e.met.retrieveBatches.Inc()
	e.met.retrieveQueries.Add(uint64(len(queries)))
	return e.index.TopAPIsBatch(queries, k)
}

// observeAsk records one Ask pipeline run (success or failure) in the
// engine instruments. Called via defer from Session.Ask/AskWithChain.
func (e *Engine) observeAsk(start time.Time, err error) {
	e.met.asks.Inc()
	e.met.askDur.Observe(time.Since(start).Seconds())
	if err != nil {
		e.met.askErrors.Inc()
	}
}

// Env exposes the shared substrate environment.
func (e *Engine) Env() *apis.Env { return e.env }

// Graphs exposes the engine's graph interning store. The server routes every
// uploaded graph through it so identical content resolves to one shared
// instance.
func (e *Engine) Graphs() *graphstore.Store { return e.graphs }

// Model exposes the chain-generation model the engine was built with.
func (e *Engine) Model() *finetune.Model { return e.model }

// FileConfig returns the config.Config the engine was built from, or nil
// when it was assembled programmatically.
func (e *Engine) FileConfig() *config.Config { return e.fileConfig }
