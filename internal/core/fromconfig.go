package core

import (
	"chatgraph/internal/apis"
	"chatgraph/internal/config"
	"chatgraph/internal/finetune"
	"chatgraph/internal/llm"
	"chatgraph/internal/retrieve"
)

// NewSessionFromConfig builds a Session from the Fig. 3-style parameter set:
// ANN parameters shape the retrieval index, sequentializer parameters shape
// the prompt, finetuning parameters shape model training, and the LLM block
// selects the generation backend. registry/env may be nil for defaults.
func NewSessionFromConfig(fc config.Config, registry *apis.Registry, env *apis.Env, seed int64) (*Session, error) {
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	cfg := Config{
		Registry:   registry,
		Env:        env,
		RetrievalK: fc.ANN.TopK,
		Retrieve: retrieve.Config{
			Dim: fc.ANN.Dim,
			Tau: float32(fc.ANN.Tau),
		},
		Prompt: llm.PromptConfig{
			MaxPathLines:   fc.Sequentializer.MaxPathLines,
			PathLength:     fc.Sequentializer.MaxPathLength,
			MaxChainLength: fc.LLM.MaxChainLength,
		},
		TrainSeed:     seed,
		TrainExamples: fc.Finetune.Examples,
		Train: finetune.TrainConfig{
			Epochs: fc.Finetune.Epochs,
			Search: finetune.SearchConfig{
				Rollouts: fc.Finetune.Rollouts,
				Alpha:    fc.Finetune.Alpha,
			},
			Seed: seed,
		},
	}
	if fc.LLM.Backend == "http" {
		cfg.Client = &llm.HTTPClient{
			BaseURL:     fc.LLM.BaseURL,
			Model:       fc.LLM.Model,
			Temperature: fc.LLM.Temperature,
		}
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	s.fileConfig = &fc
	return s, nil
}

// FileConfig returns the config.Config the session was built from, or nil
// when it was assembled programmatically.
func (s *Session) FileConfig() *config.Config { return s.fileConfig }
