package core

import (
	"chatgraph/internal/apis"
	"chatgraph/internal/config"
)

// NewSessionFromConfig builds a single conversation over a fresh Engine
// configured from the Fig. 3-style parameter set — the compatibility shim
// for callers that host exactly one conversation. Multi-user services
// should call NewEngineFromConfig once and mint sessions from the engine.
func NewSessionFromConfig(fc config.Config, registry *apis.Registry, env *apis.Env, seed int64) (*Session, error) {
	eng, err := NewEngineFromConfig(fc, registry, env, seed)
	if err != nil {
		return nil, err
	}
	return eng.NewSession(), nil
}

// FileConfig returns the config.Config the session's engine was built from,
// or nil when it was assembled programmatically.
func (s *Session) FileConfig() *config.Config { return s.eng.fileConfig }
