package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"chatgraph/internal/chain"
)

// Transcript persistence: the dialog panel of the demo UI survives restarts
// by serializing the session history. Only the conversational surface is
// stored (questions, chains, answers, timings) — graphs and models are not
// part of a transcript.

// transcriptTurn is the wire form of one Turn.
type transcriptTurn struct {
	Question  string `json:"question"`
	Kind      string `json:"kind"`
	Chain     string `json:"chain"`
	Answer    string `json:"answer"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

type transcript struct {
	Version int              `json:"version"`
	Turns   []transcriptTurn `json:"turns"`
}

// WriteTranscript serializes the session history as JSON.
func (s *Session) WriteTranscript(w io.Writer) error {
	t := transcript{Version: 1}
	for _, turn := range s.History() {
		t.Turns = append(t.Turns, transcriptTurn{
			Question:  turn.Question,
			Kind:      turn.Kind.String(),
			Chain:     turn.Chain.String(),
			Answer:    turn.Answer,
			ElapsedMS: turn.Elapsed.Milliseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("core: encode transcript: %w", err)
	}
	return nil
}

// SaveTranscript writes the history to a file, crash-safely: the
// transcript lands in a same-directory temp file that is fsynced and
// renamed over path, so a crash mid-save leaves the previous transcript
// intact instead of a torn half.
func (s *Session) SaveTranscript(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".transcript-*")
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { os.Remove(tmp) } //nolint:errcheck
	if err := s.WriteTranscript(f); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("core: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("core: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// LoadTranscript reads a transcript written by SaveTranscript and appends
// its turns to the session history (chains are re-parsed; malformed entries
// are rejected). It returns how many turns were restored.
func (s *Session) LoadTranscript(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return s.ReadTranscript(f)
}

// ReadTranscript appends the turns in r to the session history.
func (s *Session) ReadTranscript(r io.Reader) (int, error) {
	var t transcript
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return 0, fmt.Errorf("core: decode transcript: %w", err)
	}
	if t.Version != 1 {
		return 0, fmt.Errorf("core: unsupported transcript version %d", t.Version)
	}
	s.histMu.Lock()
	defer s.histMu.Unlock()
	restored := 0
	for i, tt := range t.Turns {
		c, err := chain.Parse(tt.Chain)
		if err != nil {
			return restored, fmt.Errorf("core: transcript turn %d: %w", i+1, err)
		}
		s.history = append(s.history, Turn{
			Question: tt.Question,
			Kind:     parseKindName(tt.Kind),
			Chain:    c,
			Answer:   tt.Answer,
			Elapsed:  time.Duration(tt.ElapsedMS) * time.Millisecond,
		})
		restored++
	}
	return restored, nil
}
