// Package core is ChatGraph itself: the session orchestrator that turns a
// natural-language prompt (plus an optional uploaded graph) into an executed
// API chain and a chat answer. One Ask call walks the full pipeline of the
// paper's Fig. 1:
//
//	prompt ──► API retrieval (embed + τ-MG ANN) ──► graph-aware prompt
//	       (graph sequentializer paths + motif super-graph) ──► LLM chain
//	       generation (finetuned transition model or HTTP LLM) ──► user
//	       confirmation ──► chain execution with progress monitoring.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/executor"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
	"chatgraph/internal/graphstore"
	"chatgraph/internal/llm"
	"chatgraph/internal/retrieve"
)

// Config assembles a Session. Zero-value fields get working defaults.
type Config struct {
	// Registry is the API catalog (nil → apis.Default with a fresh Env).
	Registry *apis.Registry
	// Env is the shared substrate environment; must be the one Registry
	// was built around when both are set.
	Env *apis.Env
	// Model is the finetuned chain-generation model (nil → trained on a
	// generated dataset with TrainSeed).
	Model *finetune.Model
	// Client generates chains (nil → llm.SimClient over Model).
	Client llm.Client
	// RetrievalK is how many candidate APIs retrieval supplies (0 → 6).
	RetrievalK int
	// Retrieve tunes the retrieval index (zero value → package defaults).
	Retrieve retrieve.Config
	// Prompt tunes prompt construction.
	Prompt llm.PromptConfig
	// TrainSeed seeds the default model's training (used when Model nil).
	TrainSeed int64
	// TrainExamples sizes the default model's dataset (0 → 400).
	TrainExamples int
	// Train tunes the default model's finetuning (zero value → Epochs 2,
	// Rollouts 4).
	Train finetune.TrainConfig
	// GraphStore interns uploaded graphs by content hash so identical
	// payloads share one instance, one CSR, and one invoke-cache entry
	// pool (nil → a graphstore.DefaultCapacity store).
	GraphStore *graphstore.Store
}

// Turn records one completed question/answer exchange.
type Turn struct {
	Question string
	// Kind is the predicted graph kind the routing used.
	Kind graph.Kind
	// Candidates are the retrieved API names offered to the LLM.
	Candidates []string
	// Chain is the chain that was executed (post-confirmation).
	Chain chain.Chain
	// Answer is the final chat answer.
	Answer string
	// Events is the execution progress log.
	Events []executor.Event
	// Elapsed covers generation plus execution.
	Elapsed time.Duration
}

// AskOptions customizes one Ask call.
type AskOptions struct {
	// Confirm reviews/edits the generated chain (nil auto-approves).
	Confirm executor.Confirmer
	// OnEvent observes execution progress live.
	OnEvent func(executor.Event)
}

// Session is one ChatGraph conversation over a shared Engine: it holds only
// the dialog history, so creating one per user is cheap. A Session
// serializes its own Ask calls (a conversation is one dialog), but distinct
// Sessions over the same Engine run fully concurrently. History reads never
// wait on an in-flight Ask, so AskOptions callbacks may call History (or
// WriteTranscript) freely.
type Session struct {
	eng *Engine
	// askMu serializes Ask/AskWithChain: one conversation is one dialog.
	askMu sync.Mutex
	// histMu guards history and is held only for appends and snapshots,
	// never across an Ask.
	histMu  sync.Mutex
	history []Turn
	// turnObs, when set, observes every completed turn (with its dense
	// history index) after it is recorded — the durability layer's hook.
	turnObs func(index int, t Turn)
}

// appendTurn records a completed exchange and notifies the turn observer.
// The observer runs outside histMu (History from inside it must not
// deadlock); Ask serialization via askMu keeps observed indexes in order.
func (s *Session) appendTurn(t Turn) {
	s.histMu.Lock()
	idx := len(s.history)
	s.history = append(s.history, t)
	obs := s.turnObs
	s.histMu.Unlock()
	if obs != nil {
		obs(idx, t)
	}
}

// SetTurnObserver registers fn to be called after every completed turn with
// the turn's dense index in the history. One observer per session; nil
// clears it. Restored history (RestoreHistory) is not observed — it was
// already durable.
func (s *Session) SetTurnObserver(fn func(index int, t Turn)) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.turnObs = fn
}

// RestoreHistory appends recovered turns to the session history without
// notifying the turn observer — the recovery path's bulk load.
func (s *Session) RestoreHistory(turns []Turn) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.history = append(s.history, turns...)
}

// NewSession builds a fresh Engine from cfg and returns a conversation over
// it — the original single-user constructor, kept as a compatibility shim.
// Services that host many conversations should call NewEngine once and mint
// sessions with Engine.NewSession instead, sharing the trained model and
// retrieval index.
func NewSession(cfg Config) (*Session, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return eng.NewSession(), nil
}

// Engine returns the shared engine this conversation runs on.
func (s *Session) Engine() *Engine { return s.eng }

// Registry exposes the engine's API catalog.
func (s *Session) Registry() *apis.Registry { return s.eng.registry }

// Env exposes the shared substrate environment.
func (s *Session) Env() *apis.Env { return s.eng.env }

// History returns a snapshot of the completed turns in order.
func (s *Session) History() []Turn {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	out := make([]Turn, len(s.history))
	copy(out, s.history)
	return out
}

// alwaysCandidates are appended to every retrieval result: the glue APIs
// (classification, reporting, edit application) that chains need regardless
// of what the question's topic retrieves.
var alwaysCandidates = []string{"graph.classify", "graph.stats", "report.compose", "graph.apply_edits"}

// Ask runs the full ChatGraph pipeline for one prompt. Concurrent Ask calls
// on the same Session are serialized (one conversation is one dialog);
// sessions sharing an Engine do not block each other.
func (s *Session) Ask(ctx context.Context, question string, g *graph.Graph, opts AskOptions) (turn Turn, err error) {
	s.askMu.Lock()
	defer s.askMu.Unlock()
	start := time.Now()
	defer func() { s.eng.observeAsk(start, err) }()
	turn = Turn{Question: question}
	if strings.TrimSpace(question) == "" {
		return turn, fmt.Errorf("core: empty question")
	}
	if g == nil {
		g = graph.New()
	}
	turn.Kind = graph.Classify(g)

	// 1. API retrieval.
	turn.Candidates = s.eng.retrieveCandidates(question)

	// 2. Graph-aware prompt + chain generation.
	msgs := llm.BuildPrompt(question, g, turn.Kind, turn.Candidates, s.eng.descs, s.eng.cfg.Prompt)
	text, err := s.eng.client.Complete(ctx, msgs)
	if err != nil {
		return turn, fmt.Errorf("core: chain generation: %w", err)
	}
	generated, err := chain.Parse(strings.TrimSpace(text))
	if err != nil {
		return turn, fmt.Errorf("core: LLM produced unparseable chain %q: %w", text, err)
	}
	if len(generated) == 0 {
		return turn, fmt.Errorf("core: LLM produced an empty chain")
	}
	generated = repairChain(generated)
	s.eng.fillArgs(generated, question)

	// 3. Confirmation + execution with monitoring.
	res, err := s.eng.exec.Run(ctx, g, generated, executor.Options{
		Confirm: opts.Confirm,
		OnEvent: func(e executor.Event) {
			turn.Events = append(turn.Events, e)
			if opts.OnEvent != nil {
				opts.OnEvent(e)
			}
		},
	})
	if err != nil {
		return turn, err
	}
	turn.Chain = res.Executed
	turn.Answer = res.Final.Text
	turn.Elapsed = time.Since(start)
	s.appendTurn(turn)
	return turn, nil
}

// AskWithChain skips generation and runs a user-supplied chain — the path
// the monitoring scenario uses after the user edits a chain by hand.
func (s *Session) AskWithChain(ctx context.Context, question string, g *graph.Graph, c chain.Chain, opts AskOptions) (turn Turn, err error) {
	s.askMu.Lock()
	defer s.askMu.Unlock()
	start := time.Now()
	defer func() { s.eng.observeAsk(start, err) }()
	turn = Turn{Question: question, Chain: c}
	if g == nil {
		g = graph.New()
	}
	turn.Kind = graph.Classify(g)
	res, err := s.eng.exec.Run(ctx, g, c, executor.Options{
		Confirm: opts.Confirm,
		OnEvent: func(e executor.Event) {
			turn.Events = append(turn.Events, e)
			if opts.OnEvent != nil {
				opts.OnEvent(e)
			}
		},
	})
	if err != nil {
		return turn, err
	}
	turn.Chain = res.Executed
	turn.Answer = res.Final.Text
	turn.Elapsed = time.Since(start)
	s.appendTurn(turn)
	return turn, nil
}

// retrieveCandidates merges the top-k retrieval hits with the always-on glue
// APIs, deduplicated, preserving relevance order.
func (e *Engine) retrieveCandidates(question string) []string {
	hits := e.index.Names(question, e.cfg.RetrievalK)
	seen := make(map[string]bool, len(hits)+len(alwaysCandidates))
	out := make([]string, 0, len(hits)+len(alwaysCandidates))
	for _, h := range hits {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, a := range alwaysCandidates {
		if _, ok := e.registry.Get(a); ok && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// fillArgs patches required arguments the argless generated chain needs,
// extracting them from the question: node IDs for path/edit APIs, an
// explicit top-k for similarity search.
func (e *Engine) fillArgs(c chain.Chain, question string) {
	nums := extractInts(question)
	for i := range c {
		a, ok := e.registry.Get(c[i].API)
		if !ok {
			continue
		}
		needed := []string{}
		for _, p := range a.Params {
			if p.Required {
				if _, has := c[i].Args[p.Name]; !has {
					needed = append(needed, p.Name)
				}
			}
		}
		if len(needed) == 0 {
			continue
		}
		if c[i].Args == nil {
			c[i].Args = make(map[string]string, len(needed))
		}
		for _, name := range needed {
			switch name {
			case "from", "node", "id":
				if len(nums) > 0 {
					c[i].Args[name] = strconv.Itoa(nums[0])
				}
			case "to":
				if len(nums) > 1 {
					c[i].Args[name] = strconv.Itoa(nums[1])
				} else if len(nums) > 0 {
					c[i].Args[name] = strconv.Itoa(nums[0])
				}
			case "label", "name":
				c[i].Args[name] = "updated"
			}
		}
	}
}

// repairChain fixes structural defects in generated chains that validation
// alone cannot catch: graph.apply_edits consumes the issue list of a
// detection API, so a detection step is inserted when the model omitted it
// (and apply_edits is dropped entirely if it comes first for no reason).
func repairChain(c chain.Chain) chain.Chain {
	out := make(chain.Chain, 0, len(c)+1)
	haveDetect := false
	for _, s := range c {
		if strings.HasPrefix(s.API, "kg.detect") {
			haveDetect = true
		}
		if s.API == "graph.apply_edits" && (!haveDetect || len(out) == 0 || !strings.HasPrefix(out[len(out)-1].API, "kg.detect")) {
			out = append(out, chain.Step{API: "kg.detect_all"})
			haveDetect = true
		}
		out = append(out, s)
	}
	return out
}

// extractInts returns the non-negative integers appearing in text, in order.
func extractInts(text string) []int {
	var out []int
	cur := -1
	for _, r := range text {
		if r >= '0' && r <= '9' {
			if cur < 0 {
				cur = 0
			}
			cur = cur*10 + int(r-'0')
			continue
		}
		if cur >= 0 {
			out = append(out, cur)
			cur = -1
		}
	}
	if cur >= 0 {
		out = append(out, cur)
	}
	return out
}

// SuggestedQuestions returns the prompt suggestions the demo UI shows in
// panel 2, specialized to the uploaded graph's kind.
func SuggestedQuestions(kind graph.Kind) []string {
	switch kind {
	case graph.KindMolecule:
		return []string{
			"Write a brief report for this molecule",
			"Is this molecule toxic?",
			"What molecules are similar to G?",
			"Predict the solubility of the compound",
		}
	case graph.KindKnowledge:
		return []string{
			"Clean G",
			"What edges are missing from the knowledge graph?",
			"Detect the incorrect edges",
		}
	case graph.KindSocial:
		return []string{
			"Write a brief report for G",
			"What communities are in this network?",
			"Who are the most influential nodes?",
			"Is the network connected?",
		}
	default:
		return []string{
			"Write a brief report for G",
			"Summarize the statistics of the graph",
		}
	}
}

// SeedMoleculeDB fills the environment's molecule database with n random
// molecules so similarity search has something to compare against — the
// stand-in for the paper's real molecule collection.
func SeedMoleculeDB(env *apis.Env, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		size := 8 + rng.Intn(20)
		env.MolDB.Add(fmt.Sprintf("mol_%03d", i), graph.Molecule(size, rng))
	}
}

// ParseKind inverts graph.Kind.String; unrecognized names (including the
// empty string) are KindUnknown. Transcript and WAL replay use it.
func ParseKind(s string) graph.Kind { return parseKindName(s) }

// parseKindName inverts graph.Kind.String for transcript round trips.
func parseKindName(s string) graph.Kind {
	switch s {
	case "social":
		return graph.KindSocial
	case "molecule":
		return graph.KindMolecule
	case "knowledge":
		return graph.KindKnowledge
	default:
		return graph.KindUnknown
	}
}
