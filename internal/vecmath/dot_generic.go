//go:build !amd64

package vecmath

// dotInt8 returns the int32 inner product of two int8 code vectors. On
// architectures without an assembly kernel it is the unrolled Go loop.
func dotInt8(a, b []int8) int32 { return dotInt8Generic(a, b) }
