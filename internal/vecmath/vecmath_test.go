package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float32) bool { return math.Abs(float64(a-b)) < 1e-5 }

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestNormAndL2(t *testing.T) {
	if got := Norm([]float32{3, 4}); !almost(got, 5) {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := L2([]float32{0, 0}, []float32{3, 4}); !almost(got, 5) {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if got := L2Squared([]float32{0, 0}, []float32{3, 4}); !almost(got, 25) {
		t.Fatalf("L2Squared = %v, want 25", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float32{1, 0}, []float32{1, 0}); !almost(got, 1) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float32{1, 0}, []float32{0, 1}); !almost(got, 0) {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float32{0, 0}, []float32{1, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float32{3, 4})
	if !almost(Norm(v), 1) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := Normalize([]float32{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector changed by Normalize")
	}
}

func TestAddScaleClone(t *testing.T) {
	a := []float32{1, 2}
	b := Clone(a)
	Add(a, []float32{1, 1})
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("Add result %v", a)
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("Clone shares storage")
	}
	Scale(a, 2)
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("Scale result %v", a)
	}
}

// Property: triangle inequality holds for L2 on random vectors.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float32 {
			v := make([]float32, 8)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		return L2(a, c) <= L2(a, b)+L2(b, c)+1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cosine similarity is within [-1, 1].
func TestQuickCosineRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make([]float32, 16), make([]float32, 16)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		c := Cosine(a, b)
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
