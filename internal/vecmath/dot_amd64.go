//go:build amd64

package vecmath

// useAVX2 gates the assembly int8 dot kernel: AVX2 must be present and the
// OS must save/restore YMM state (OSXSAVE + XCR0 bits 1–2).
var useAVX2 = func() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&6 != 6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0
}()

// cpuidex executes CPUID with the given EAX/ECX arguments.
func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (the XSAVE feature mask).
func xgetbv0() (eax, edx uint32)

// dotInt8AVX2 computes the int32 inner product of a[0:n] and b[0:n] where n
// is a positive multiple of 16, 16 sign-extended int16 lanes at a time
// (VPMOVSXBW + VPMADDWD into int32 accumulators).
func dotInt8AVX2(a, b *int8, n int) int32

// dotInt8 returns the int32 inner product of two int8 code vectors,
// dispatching the 16-aligned prefix to the AVX2 kernel when available and
// finishing the tail (or everything, on pre-AVX2 hardware) in Go.
func dotInt8(a, b []int8) int32 {
	var s int32
	if n := len(a) &^ 15; useAVX2 && n > 0 {
		s = dotInt8AVX2(&a[0], &b[0], n)
		a, b = a[n:], b[n:]
	}
	return s + dotInt8Generic(a, b)
}
