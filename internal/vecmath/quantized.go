package vecmath

import "fmt"

// QuantizedMatrix is the int8 companion of Matrix: the same rows stored as
// one contiguous code slice with a per-row affine dequantization
// (value ≈ offset + scale·code), plus the per-row code sum and dequantized
// squared norm the fused distance kernels need. It costs dim bytes per row
// against the Matrix's 4·dim — a ÷4 on the scanned data — and exists for
// two-stage search: rank candidates with cheap int8 arithmetic, then rerank
// the few survivors exactly against the f32 Matrix.
//
// A QuantizedMatrix is immutable after Quantize and safe for unlimited
// concurrent use.
type QuantizedMatrix struct {
	codes []int8
	dim   int
	// scales/offsets define each row's affine map; sums[i] is Σ codes of
	// row i (pre-summed so the cross terms of the fused dot cost O(1)), and
	// norms[i] is ‖dequantized row i‖², making the reconstructed distance a
	// true metric between dequantized points (never negative beyond float
	// rounding).
	scales  []float32
	offsets []float32
	sums    []int32
	norms   []float32
}

// quantRange is the symmetric code range: codes live in [-127, 127] so the
// affine map stays exactly invertible around the row midpoint (-128 would
// skew the offset by half a step).
const quantRange = 254

// Quantize builds the int8 view of m. Each row is quantized independently
// against its own min/max, so rows with very different magnitudes (as TF-IDF
// hash embeddings have) don't steal each other's resolution.
func Quantize(m *Matrix) *QuantizedMatrix {
	n, d := m.Rows(), m.Dim()
	q := &QuantizedMatrix{
		codes:   make([]int8, n*d),
		dim:     d,
		scales:  make([]float32, n),
		offsets: make([]float32, n),
		sums:    make([]int32, n),
		norms:   make([]float32, n),
	}
	for i := 0; i < n; i++ {
		q.scales[i], q.offsets[i], q.sums[i], q.norms[i] =
			quantizeRow(m.Row(i), q.codes[i*d:(i+1)*d:(i+1)*d])
	}
	return q
}

// quantizeRow fills dst with the affine int8 codes of v and returns the
// row's scale, offset, code sum, and dequantized squared norm.
func quantizeRow(v []float32, dst []int8) (scale, offset float32, sum int32, norm float32) {
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	offset = (lo + hi) / 2
	scale = (hi - lo) / quantRange
	inv := float32(0)
	if scale > 0 {
		inv = 1 / scale
	}
	for j, x := range v {
		c := int32(roundf((x - offset) * inv))
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		dst[j] = int8(c)
		sum += c
		dq := offset + scale*float32(c)
		norm += dq * dq
	}
	return scale, offset, sum, norm
}

// roundf rounds to nearest, ties away from zero — enough for quantization
// (a one-code tie bias is far below the quantization error itself) and free
// of the math.Round call overhead in the per-row loop.
func roundf(x float32) float32 {
	if x >= 0 {
		return float32(int32(x + 0.5))
	}
	return float32(int32(x - 0.5))
}

// Rows reports the number of stored vectors.
func (q *QuantizedMatrix) Rows() int {
	if q == nil {
		return 0
	}
	return len(q.norms)
}

// Dim reports the vector dimensionality.
func (q *QuantizedMatrix) Dim() int {
	if q == nil {
		return 0
	}
	return q.dim
}

// Bytes reports the backing-store size: codes plus per-row metadata.
func (q *QuantizedMatrix) Bytes() int {
	return len(q.codes) + 4*(len(q.scales)+len(q.offsets)+len(q.sums)+len(q.norms))
}

// Bytes reports the Matrix backing-store size (vector data plus norms), the
// f32 side of the quantized-tier memory comparison.
func (m *Matrix) Bytes() int { return 4 * (len(m.data) + len(m.norms)) }

// Row returns row i's codes as a slice aliasing the matrix storage. Callers
// must not mutate it.
func (q *QuantizedMatrix) Row(i int) []int8 {
	return q.codes[i*q.dim : (i+1)*q.dim : (i+1)*q.dim]
}

// Dequantize reconstructs row i into dst (which must hold Dim() entries) —
// the test hook for bounding reconstruction error.
func (q *QuantizedMatrix) Dequantize(i int, dst []float32) {
	s, o := q.scales[i], q.offsets[i]
	for j, c := range q.Row(i) {
		dst[j] = o + s*float32(c)
	}
}

// QuantizedQuery is a query vector quantized against its own affine range,
// ready for fused int8 distance kernels. The Codes buffer is caller-owned
// and recycled across searches (the ANN scratch pool holds one per leased
// scratch), so quantizing a query steadily allocates nothing.
type QuantizedQuery struct {
	Codes  []int8
	scale  float32
	offset float32
	sum    int32
	norm   float32 // ‖dequantized query‖²
}

// QuantizeQuery quantizes q into qq, growing qq.Codes as needed. q must
// have the matrix dimensionality.
func (m *QuantizedMatrix) QuantizeQuery(q []float32, qq *QuantizedQuery) {
	if len(q) != m.dim {
		panic(fmt.Sprintf("vecmath: quantize query of dim %d against matrix of dim %d", len(q), m.dim))
	}
	if cap(qq.Codes) < len(q) {
		qq.Codes = make([]int8, len(q))
	}
	qq.Codes = qq.Codes[:len(q)]
	qq.scale, qq.offset, qq.sum, qq.norm = quantizeRow(q, qq.Codes)
}

// dotInt8Generic is the portable quantized inner-product kernel: an 8-wide
// unrolled multiply-accumulate into four independent int32 lanes, which
// breaks the loop-carried dependency a single accumulator would serialize
// on. Products are bounded by 127² so the int32 lanes cannot overflow below
// ~4M dims. On amd64 with AVX2 the bulk of the work goes through the
// assembly kernel instead (see dot_amd64.s); dotInt8 is the dispatcher.
func dotInt8Generic(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += int32(aa[0])*int32(bb[0]) + int32(aa[4])*int32(bb[4])
		s1 += int32(aa[1])*int32(bb[1]) + int32(aa[5])*int32(bb[5])
		s2 += int32(aa[2])*int32(bb[2]) + int32(aa[6])*int32(bb[6])
		s3 += int32(aa[3])*int32(bb[3]) + int32(aa[7])*int32(bb[7])
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// dotQ reconstructs the approximate f32 inner product between the
// dequantized query and dequantized row i by expanding
// Σ (oq + sq·Qj)(or + sr·Rj) around the precomputed code sums: only the
// int8 code dot varies per candidate; the three cross terms are O(1).
func (m *QuantizedMatrix) dotQ(qq *QuantizedQuery, i int) float32 {
	sr, or := m.scales[i], m.offsets[i]
	row := m.codes[i*m.dim : (i+1)*m.dim : (i+1)*m.dim]
	return float32(m.dim)*qq.offset*or +
		qq.offset*sr*float32(m.sums[i]) +
		or*qq.scale*float32(qq.sum) +
		qq.scale*sr*float32(dotInt8(qq.Codes, row))
}

// L2SquaredTo returns the squared distance between the dequantized query
// and dequantized row i — the stage-1 ranking distance of two-stage search.
func (m *QuantizedMatrix) L2SquaredTo(qq *QuantizedQuery, i int) float32 {
	return clampNonNeg(qq.norm + m.norms[i] - 2*m.dotQ(qq, i))
}

// L2SquaredRange computes the quantized squared distances to rows lo..hi−1
// into dst[0:hi−lo], mirroring Matrix.L2SquaredRange for tiled scans.
func (m *QuantizedMatrix) L2SquaredRange(qq *QuantizedQuery, lo, hi int, dst []float32) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = m.L2SquaredTo(qq, i)
	}
}

// L2SquaredToRows computes the quantized squared distances to every
// selected row into dst, mirroring Matrix.L2SquaredToRows for cell scans.
func (m *QuantizedMatrix) L2SquaredToRows(qq *QuantizedQuery, rows []int32, dst []float32) {
	for j, r := range rows {
		dst[j] = m.L2SquaredTo(qq, int(r))
	}
}
