//go:build amd64

#include "textflag.h"

// func dotInt8AVX2(a, b *int8, n int) int32
// Requires n > 0 and n % 16 == 0 (the Go dispatcher guarantees both).
// Per iteration: sign-extend 16 int8 from each input to int16 lanes,
// multiply-accumulate pairs into 8 int32 lanes (VPMADDWD), add into the
// running accumulator. Pairwise int16 products are ≤ 2·127², so the int32
// lanes cannot overflow below ~66k accumulated blocks per lane.
TEXT ·dotInt8AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	SHRQ $4, CX
	VPXOR Y0, Y0, Y0

loop:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y2, Y1, Y1
	VPADDD    Y1, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DI
	DECQ      CX
	JNZ       loop

	// Horizontal sum of the 8 int32 lanes in Y0.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	VZEROUPPER
	MOVL         AX, ret+24(FP)
	RET

// func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
