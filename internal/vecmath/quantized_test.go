package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func randomRows(n, d int, rng *rand.Rand) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		rows[i] = v
	}
	return rows
}

func mustFromRows(t testing.TB, rows [][]float32) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQuantizeRoundTrip: dequantized rows must sit within half a
// quantization step of the originals, component-wise.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randomRows(50, 32, rng)
	m := mustFromRows(t, rows)
	q := Quantize(m)
	if q.Rows() != m.Rows() || q.Dim() != m.Dim() {
		t.Fatalf("shape (%d,%d) != (%d,%d)", q.Rows(), q.Dim(), m.Rows(), m.Dim())
	}
	dst := make([]float32, m.Dim())
	for i := 0; i < m.Rows(); i++ {
		q.Dequantize(i, dst)
		lo, hi := rows[i][0], rows[i][0]
		for _, x := range rows[i] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		step := float64(hi-lo) / quantRange
		for j, x := range rows[i] {
			if err := math.Abs(float64(dst[j] - x)); err > step/2+1e-6 {
				t.Fatalf("row %d comp %d: dequant err %g > half step %g", i, j, err, step/2)
			}
		}
	}
}

// TestQuantizeConstantRow: a zero-range row must quantize to scale 0 and
// reconstruct exactly.
func TestQuantizeConstantRow(t *testing.T) {
	m := mustFromRows(t, [][]float32{{3, 3, 3, 3}, {0, 0, 0, 0}})
	q := Quantize(m)
	dst := make([]float32, 4)
	for i := 0; i < 2; i++ {
		q.Dequantize(i, dst)
		for j, x := range dst {
			if x != m.Row(i)[j] {
				t.Fatalf("row %d comp %d: %g != %g", i, j, x, m.Row(i)[j])
			}
		}
	}
	var qq QuantizedQuery
	q.QuantizeQuery([]float32{1, 2, 3, 4}, &qq)
	want := L2Squared([]float32{1, 2, 3, 4}, []float32{3, 3, 3, 3})
	if got := q.L2SquaredTo(&qq, 0); math.Abs(float64(got-want)) > 0.05 {
		t.Fatalf("constant-row distance %g, want ≈ %g", got, want)
	}
}

// TestQuantizedDistanceAccuracy: the reconstructed squared distances must
// track the exact f32 distances to within the quantization error bound, and
// must be exactly equal to the distance between the dequantized points (the
// metric property clamping relies on).
func TestQuantizedDistanceAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randomRows(200, 48, rng)
	m := mustFromRows(t, rows)
	q := Quantize(m)
	var qq QuantizedQuery
	dq := make([]float32, m.Dim())
	dr := make([]float32, m.Dim())
	for trial := 0; trial < 20; trial++ {
		query := randomRows(1, 48, rng)[0]
		q.QuantizeQuery(query, &qq)
		// Reconstruct the dequantized query once.
		for j, c := range qq.Codes {
			dq[j] = qq.offset + qq.scale*float32(c)
		}
		for i := 0; i < m.Rows(); i++ {
			got := q.L2SquaredTo(&qq, i)
			q.Dequantize(i, dr)
			wantDeq := L2Squared(dq, dr)
			if math.Abs(float64(got-wantDeq)) > 1e-2*float64(wantDeq)+1e-3 {
				t.Fatalf("row %d: fused dist %g != dequantized dist %g", i, got, wantDeq)
			}
			exact := m.L2SquaredTo(query, SquaredNorm(query), i)
			// Error bound: loose (quantization noise scales with the point
			// norms) but tight enough to catch a broken cross term.
			if math.Abs(float64(got-exact)) > 0.05*float64(exact)+0.5 {
				t.Fatalf("row %d: quantized dist %g too far from exact %g", i, got, exact)
			}
		}
	}
}

// TestQuantizedKernelsMatchScalar: the tiled/row-list kernels must agree
// with the single-distance form, and dotInt8's unrolled lanes must match a
// scalar accumulate on lengths around the unroll boundary.
func TestQuantizedKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 7, 8, 9, 15, 16, 17, 64} {
		rows := randomRows(30, d, rng)
		m := mustFromRows(t, rows)
		q := Quantize(m)
		var qq QuantizedQuery
		q.QuantizeQuery(rows[0], &qq)
		dst := make([]float32, q.Rows())
		q.L2SquaredRange(&qq, 0, q.Rows(), dst)
		ids := make([]int32, q.Rows())
		dst2 := make([]float32, q.Rows())
		for i := range ids {
			ids[i] = int32(i)
		}
		q.L2SquaredToRows(&qq, ids, dst2)
		for i := 0; i < q.Rows(); i++ {
			want := q.L2SquaredTo(&qq, i)
			if dst[i] != want || dst2[i] != want {
				t.Fatalf("d=%d row %d: range %g rows %g single %g", d, i, dst[i], dst2[i], want)
			}
		}
		// dotInt8 vs scalar reference.
		a, b := q.Row(0), q.Row(1)
		var ref int32
		for j := range a {
			ref += int32(a[j]) * int32(b[j])
		}
		if got := dotInt8(a, b); got != ref {
			t.Fatalf("d=%d: dotInt8 %d != scalar %d", d, got, ref)
		}
		if got := dotInt8Generic(a, b); got != ref {
			t.Fatalf("d=%d: dotInt8Generic %d != scalar %d", d, got, ref)
		}
	}
}

// TestQuantizedBytes: the quantized store must be at least 3.8× smaller
// than the f32 matrix at retrieval dimensionality (the ÷4 claim minus
// per-row metadata).
func TestQuantizedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := mustFromRows(t, randomRows(1000, 512, rng))
	q := Quantize(m)
	ratio := float64(m.Bytes()) / float64(q.Bytes())
	if ratio < 3.8 {
		t.Fatalf("memory ratio %.2f, want ≥ 3.8 (f32 %d B, int8 %d B)", ratio, m.Bytes(), q.Bytes())
	}
}

// TestQuantizeQueryReusesBuffer: repeated query quantization through one
// QuantizedQuery must not allocate once the code buffer is grown.
func TestQuantizeQueryReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := mustFromRows(t, randomRows(10, 64, rng))
	q := Quantize(m)
	query := randomRows(1, 64, rng)[0]
	var qq QuantizedQuery
	q.QuantizeQuery(query, &qq)
	if allocs := testing.AllocsPerRun(100, func() { q.QuantizeQuery(query, &qq) }); allocs > 0 {
		t.Fatalf("QuantizeQuery allocates %.1f/op after warmup", allocs)
	}
}

// BenchmarkScanKernels is the E15 kernel row: one full candidate scan over
// n rows, f32 fused kernel vs int8 quantized kernel, at the retrieval
// dimensionality (512) and the benchmark dimensionality (64).
func BenchmarkScanKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{64, 512} {
		rows := randomRows(4096, d, rng)
		m := mustFromRows(b, rows)
		q := Quantize(m)
		query := randomRows(1, d, rng)[0]
		dst := make([]float32, m.Rows())
		b.Run(sizeName("f32", d), func(b *testing.B) {
			b.SetBytes(int64(m.Bytes()))
			qn := SquaredNorm(query)
			for i := 0; i < b.N; i++ {
				m.L2SquaredRange(query, qn, 0, m.Rows(), dst)
			}
		})
		b.Run(sizeName("int8", d), func(b *testing.B) {
			b.SetBytes(int64(q.Bytes()))
			var qq QuantizedQuery
			for i := 0; i < b.N; i++ {
				q.QuantizeQuery(query, &qq)
				q.L2SquaredRange(&qq, 0, q.Rows(), dst)
			}
		})
	}
}

func sizeName(kind string, d int) string {
	return kind + "_d" + string(rune('0'+d/100)) + string(rune('0'+(d/10)%10)) + string(rune('0'+d%10))
}
