package vecmath

import (
	"fmt"
	"math"
)

// Matrix is a contiguous row-major store of equal-length float32 vectors:
// one flat data slice plus the dimensionality, with the squared L2 norm of
// every row precomputed. It replaces [][]float32 across the vector stack so
// hot loops walk one cache-friendly allocation instead of chasing a pointer
// per row, and so distance kernels can use the dot trick
// ‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b against the stored norms.
type Matrix struct {
	data  []float32
	dim   int
	norms []float32 // norms[i] = ‖Row(i)‖²
}

// NewMatrix returns an empty matrix of the given dimensionality with room
// for capRows rows. dim must be positive.
func NewMatrix(dim, capRows int) *Matrix {
	if dim <= 0 {
		panic(fmt.Sprintf("vecmath: matrix dim %d", dim))
	}
	if capRows < 0 {
		capRows = 0
	}
	return &Matrix{
		data:  make([]float32, 0, dim*capRows),
		dim:   dim,
		norms: make([]float32, 0, capRows),
	}
}

// FromRows copies rows into a new Matrix. All rows must share one length;
// mismatched rows are an error. An empty input yields an empty matrix with
// dim 0, which reports zero rows and supports no kernels.
func FromRows(rows [][]float32) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, fmt.Errorf("vecmath: zero-dimensional rows")
	}
	m := NewMatrix(dim, len(rows))
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("vecmath: row %d has dim %d, want %d", i, len(r), dim)
		}
		m.AppendRow(r)
	}
	return m, nil
}

// Dim reports the vector dimensionality (0 for the empty matrix). A nil
// matrix is a valid empty matrix.
func (m *Matrix) Dim() int {
	if m == nil {
		return 0
	}
	return m.dim
}

// Rows reports the number of stored vectors. A nil matrix is a valid empty
// matrix.
func (m *Matrix) Rows() int {
	if m == nil {
		return 0
	}
	return len(m.norms)
}

// Row returns row i as a slice aliasing the matrix storage. Callers must
// not mutate it (the precomputed norm would go stale).
func (m *Matrix) Row(i int) []float32 {
	return m.data[i*m.dim : (i+1)*m.dim : (i+1)*m.dim]
}

// AppendRow copies v into the matrix as a new row and records its squared
// norm. It panics on a dimensionality mismatch.
func (m *Matrix) AppendRow(v []float32) {
	if len(v) != m.dim {
		panic(fmt.Sprintf("vecmath: append row of dim %d to matrix of dim %d", len(v), m.dim))
	}
	m.data = append(m.data, v...)
	m.norms = append(m.norms, SquaredNorm(v))
}

// SquaredNorm returns the precomputed ‖Row(i)‖².
func (m *Matrix) SquaredNorm(i int) float32 { return m.norms[i] }

// SquaredNorm returns ‖v‖², the companion for query vectors whose norm the
// caller wants to compute once and reuse across many row distances.
func SquaredNorm(v []float32) float32 {
	var s float32
	for _, x := range v {
		s += x * x
	}
	return s
}

// DotInto computes q · Row(r) for every r in rows into dst[j]. A nil rows
// selects every row in order (dst must then hold Rows() entries).
func (m *Matrix) DotInto(q []float32, rows []int32, dst []float32) {
	if rows == nil {
		for i := 0; i < m.Rows(); i++ {
			dst[i] = dot(q, m.Row(i))
		}
		return
	}
	for j, r := range rows {
		dst[j] = dot(q, m.Row(int(r)))
	}
}

// L2SquaredToRows computes the squared Euclidean distance from q to every
// selected row into dst using the dot trick against the precomputed row
// norms: dst[j] = qNorm + ‖row‖² − 2·q·row, clamped at zero (the fused form
// can go epsilon-negative for coincident points). qNorm must be
// SquaredNorm(q). A nil rows selects every row in order.
func (m *Matrix) L2SquaredToRows(q []float32, qNorm float32, rows []int32, dst []float32) {
	if rows == nil {
		for i := 0; i < m.Rows(); i++ {
			dst[i] = clampNonNeg(qNorm + m.norms[i] - 2*dot(q, m.Row(i)))
		}
		return
	}
	for j, r := range rows {
		dst[j] = clampNonNeg(qNorm + m.norms[r] - 2*dot(q, m.Row(int(r))))
	}
}

// L2SquaredRange computes the squared distances from q to rows lo..hi−1
// into dst[0:hi−lo] — the tile form brute-force scans use so no full-size
// distance buffer is ever allocated.
func (m *Matrix) L2SquaredRange(q []float32, qNorm float32, lo, hi int, dst []float32) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = clampNonNeg(qNorm + m.norms[i] - 2*dot(q, m.Row(i)))
	}
}

// L2SquaredTo returns the squared distance from q to Row(i) via the dot
// trick. qNorm must be SquaredNorm(q).
func (m *Matrix) L2SquaredTo(q []float32, qNorm float32, i int) float32 {
	return clampNonNeg(qNorm + m.norms[i] - 2*dot(q, m.Row(i)))
}

// L2SquaredRows returns the squared distance between rows i and j via the
// dot trick, with both norms read from the precomputed table.
func (m *Matrix) L2SquaredRows(i, j int) float32 {
	return clampNonNeg(m.norms[i] + m.norms[j] - 2*dot(m.Row(i), m.Row(j)))
}

// L2To returns the Euclidean distance from q to Row(i); the sqrt of
// L2SquaredTo, provided because search results report linear distances.
func (m *Matrix) L2To(q []float32, qNorm float32, i int) float32 {
	return float32(math.Sqrt(float64(m.L2SquaredTo(q, qNorm, i))))
}

// Mean returns the component-wise mean of all rows, or nil for an empty
// matrix.
func (m *Matrix) Mean() []float32 {
	n := m.Rows()
	if n == 0 {
		return nil
	}
	out := make([]float32, m.dim)
	for i := 0; i < n; i++ {
		Add(out, m.Row(i))
	}
	Scale(out, 1/float32(n))
	return out
}

func clampNonNeg(x float32) float32 {
	if x < 0 {
		return 0
	}
	return x
}

// dot is the tight inner-product kernel all fused distances share. A
// mismatched query panics loudly (a partial product against a full row
// norm would silently mis-rank everything); the reslice of b then lets the
// compiler drop bounds checks in the loop.
func dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s float32
	for i, x := range a {
		s += x * b[i]
	}
	return s
}
