// Package vecmath provides the small set of dense-vector operations used by
// the embedding and ANN-search modules. All functions treat vectors as plain
// []float32 slices and assume (but, where cheap, verify) equal lengths.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float32) float32 {
	var s float32
	for _, v := range a {
		s += v * v
	}
	return float32(math.Sqrt(float64(s)))
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: l2 of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return float32(math.Sqrt(float64(s)))
}

// L2Squared returns the squared Euclidean distance between a and b. It is
// cheaper than L2 and order-equivalent, so index routing uses it internally.
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: l2sq of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Zero vectors
// have similarity 0 with everything.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales a to unit L2 norm in place and returns it. A zero vector
// is returned unchanged.
func Normalize(a []float32) []float32 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return a
}

// Add accumulates b into a in place. It panics if lengths differ.
func Add(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: add of mismatched lengths %d and %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Scale multiplies every component of a by k in place.
func Scale(a []float32, k float32) {
	for i := range a {
		a[i] *= k
	}
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	c := make([]float32, len(a))
	copy(c, a)
	return c
}
