package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func randRows(n, d int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

func TestFromRowsShapeAndContents(t *testing.T) {
	rows := randRows(7, 5, 1)
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 7 || m.Dim() != 5 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Dim())
	}
	for i, r := range rows {
		got := m.Row(i)
		for j := range r {
			if got[j] != r[j] {
				t.Fatalf("row %d differs at %d: %v vs %v", i, j, got[j], r[j])
			}
		}
		if want := SquaredNorm(r); absDiff(m.SquaredNorm(i), want) > 1e-5 {
			t.Fatalf("norm %d = %v, want %v", i, m.SquaredNorm(i), want)
		}
	}
}

func TestFromRowsEdgeCases(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows() != 0 || m.Dim() != 0 {
		t.Fatalf("empty input: m=%+v err=%v", m, err)
	}
	if _, err := FromRows([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows([][]float32{{}}); err == nil {
		t.Fatal("zero-dim rows accepted")
	}
	var nilMat *Matrix
	if nilMat.Rows() != 0 || nilMat.Dim() != 0 {
		t.Fatal("nil matrix not a valid empty matrix")
	}
}

func TestAppendRow(t *testing.T) {
	m := NewMatrix(3, 0)
	m.AppendRow([]float32{1, 2, 2})
	if m.Rows() != 1 {
		t.Fatalf("Rows = %d", m.Rows())
	}
	if m.SquaredNorm(0) != 9 {
		t.Fatalf("norm = %v", m.SquaredNorm(0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim-mismatched AppendRow did not panic")
		}
	}()
	m.AppendRow([]float32{1})
}

func TestDotIntoMatchesDot(t *testing.T) {
	rows := randRows(20, 9, 2)
	m, _ := FromRows(rows)
	q := randRows(1, 9, 3)[0]
	all := make([]float32, 20)
	m.DotInto(q, nil, all)
	some := make([]float32, 3)
	m.DotInto(q, []int32{4, 0, 19}, some)
	for i, r := range rows {
		if absDiff(all[i], Dot(q, r)) > 1e-4 {
			t.Fatalf("DotInto[%d] = %v, want %v", i, all[i], Dot(q, r))
		}
	}
	for j, id := range []int{4, 0, 19} {
		if absDiff(some[j], Dot(q, rows[id])) > 1e-4 {
			t.Fatalf("DotInto rows[%d] = %v, want %v", id, some[j], Dot(q, rows[id]))
		}
	}
}

func TestFusedL2MatchesDirect(t *testing.T) {
	rows := randRows(30, 16, 4)
	m, _ := FromRows(rows)
	q := randRows(1, 16, 5)[0]
	qn := SquaredNorm(q)
	dst := make([]float32, 30)
	m.L2SquaredToRows(q, qn, nil, dst)
	for i, r := range rows {
		want := L2Squared(q, r)
		if absDiff(dst[i], want) > 1e-3 {
			t.Fatalf("L2SquaredToRows[%d] = %v, direct %v", i, dst[i], want)
		}
		if absDiff(m.L2SquaredTo(q, qn, i), want) > 1e-3 {
			t.Fatalf("L2SquaredTo(%d) = %v, direct %v", i, m.L2SquaredTo(q, qn, i), want)
		}
		if absDiff(m.L2To(q, qn, i), L2(q, r)) > 1e-3 {
			t.Fatalf("L2To(%d) = %v, direct %v", i, m.L2To(q, qn, i), L2(q, r))
		}
	}
	// Range tile form agrees with the full form.
	tile := make([]float32, 10)
	m.L2SquaredRange(q, qn, 10, 20, tile)
	for j := range tile {
		if tile[j] != dst[10+j] {
			t.Fatalf("L2SquaredRange[%d] = %v, want %v", j, tile[j], dst[10+j])
		}
	}
	// Row lists select the right rows.
	listDst := make([]float32, 2)
	m.L2SquaredToRows(q, qn, []int32{29, 0}, listDst)
	if listDst[0] != dst[29] || listDst[1] != dst[0] {
		t.Fatalf("row-list kernel mismatch: %v vs (%v, %v)", listDst, dst[29], dst[0])
	}
}

// TestKernelDimMismatchPanics: a wrong-dimension query must fail loudly,
// as the pre-Matrix vecmath.L2 did, not return partial inner products.
func TestKernelDimMismatchPanics(t *testing.T) {
	m, _ := FromRows(randRows(4, 8, 6))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched query did not panic")
		}
	}()
	m.L2SquaredTo([]float32{1, 2}, 5, 0)
}

func TestL2SquaredRowsAndClamp(t *testing.T) {
	rows := [][]float32{{1, 0}, {0, 1}, {1, 0}}
	m, _ := FromRows(rows)
	if got := m.L2SquaredRows(0, 1); absDiff(got, 2) > 1e-6 {
		t.Fatalf("L2SquaredRows(0,1) = %v, want 2", got)
	}
	// Coincident rows must clamp to exactly zero, never epsilon-negative.
	if got := m.L2SquaredRows(0, 2); got != 0 {
		t.Fatalf("coincident rows distance = %v, want 0", got)
	}
	if got := m.L2SquaredTo(m.Row(0), m.SquaredNorm(0), 2); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestMatrixMean(t *testing.T) {
	m, _ := FromRows([][]float32{{0, 2}, {2, 0}})
	mean := m.Mean()
	if mean[0] != 1 || mean[1] != 1 {
		t.Fatalf("mean = %v", mean)
	}
	var empty Matrix
	if empty.Mean() != nil {
		t.Fatal("empty mean should be nil")
	}
}

func absDiff(a, b float32) float64 {
	return math.Abs(float64(a) - float64(b))
}
