package graph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// fuzzSeedCorpus seeds both fuzz targets with the wire forms of the
// fixture generators (one per demonstration scenario) plus handwritten
// payloads covering sparse IDs, attrs, parallel edges, weights, and a few
// malformed bodies the parser must reject cleanly.
func fuzzSeedCorpus(f *testing.F) {
	f.Helper()
	rng := rand.New(rand.NewSource(11))
	for _, g := range []*Graph{
		PlantedCommunities(2, 4, 0.8, 0.2, rng),
		Molecule(9, rng),
		KnowledgeGraph(6, 10, rng),
		BarabasiAlbert(8, 2, rng),
		ErdosRenyi(24, 0.3, rng),
		New(),
	} {
		data, err := json.Marshal(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		`{}`,
		`{"nodes":null,"edges":null}`,
		`{"nodes":[{"id":5,"label":"a","attrs":{"k":"v","k2":"w"}},{"id":9}],"edges":[{"from":5,"to":9,"weight":2.5,"label":"rel"}]}`,
		`{"name":"g","directed":true,"nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1},{"from":0,"to":1,"label":"x"},{"from":1,"to":0,"weight":-3}]}`,
		`{"nodes":[{"id":0},{"id":0}],"edges":[]}`,
		`{"nodes":[{"id":0}],"edges":[{"from":0,"to":7}]}`,
		`{"nodes":[{"id":1}],"edges":[{"from":1,"to":1}]}`,
		`not json`,
		// Bulk-loader edge cases: IDs dense but out of order (remap path),
		// a gap forcing remap, negative endpoints on the dense fast path,
		// and a directed payload exercising the carved reverse adjacency.
		`{"nodes":[{"id":1},{"id":0}],"edges":[{"from":0,"to":1}]}`,
		`{"nodes":[{"id":0},{"id":2}],"edges":[{"from":0,"to":2}]}`,
		`{"nodes":[{"id":0},{"id":1}],"edges":[{"from":-1,"to":1}]}`,
		`{"directed":true,"nodes":[{"id":0},{"id":1},{"id":2}],"edges":[{"from":2,"to":0},{"from":2,"to":1},{"from":0,"to":1}]}`,
	} {
		f.Add([]byte(s))
	}
}

// graphsEquivalent compares two graphs field by field (nil and empty attr
// maps are the same thing on the wire).
func graphsEquivalent(a, b *Graph) error {
	if a.Name != b.Name {
		return fmt.Errorf("name %q != %q", a.Name, b.Name)
	}
	if a.Directed() != b.Directed() {
		return fmt.Errorf("directed %v != %v", a.Directed(), b.Directed())
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("size (%d,%d) != (%d,%d)", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(NodeID(i)), b.Node(NodeID(i))
		if na.Label != nb.Label {
			return fmt.Errorf("node %d label %q != %q", i, na.Label, nb.Label)
		}
		if len(na.Attrs) != len(nb.Attrs) || (len(na.Attrs) > 0 && !reflect.DeepEqual(na.Attrs, nb.Attrs)) {
			return fmt.Errorf("node %d attrs %v != %v", i, na.Attrs, nb.Attrs)
		}
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return fmt.Errorf("edge %d %+v != %+v", i, ea[i], eb[i])
		}
	}
	return nil
}

// FuzzParseJSON: for any input the parser accepts, parse → serialize →
// reparse must never panic, must re-accept its own output, must reproduce
// the graph exactly, and must serialize stably.
func FuzzParseJSON(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseJSON(data)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("serialize parsed graph: %v", err)
		}
		g2, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("reparse of own serialization failed: %v\nserialized: %s", err, out)
		}
		if err := graphsEquivalent(g, g2); err != nil {
			t.Fatalf("round trip changed the graph: %v\ninput: %s\nserialized: %s", err, data, out)
		}
		out2, err := json.Marshal(g2)
		if err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("serialization unstable:\n%s\n%s", out, out2)
		}
	})
}

// FuzzContentHash: a graph and its serialization round trip must agree on
// identity — the property the interning layer and the content-keyed
// invocation cache stand on.
func FuzzContentHash(f *testing.F) {
	fuzzSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseJSON(data)
		if err != nil {
			return
		}
		h := g.ContentHash()
		if h != g.ContentHash() {
			t.Fatal("ContentHash not deterministic on one instance")
		}
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("serialize: %v", err)
		}
		g2, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("reparse: %v\nserialized: %s", err, out)
		}
		if g2.ContentHash() != h {
			t.Fatalf("hash of round trip %s != %s\ninput: %s\nserialized: %s", g2.ContentHash(), h, data, out)
		}
		// Serialization preserves index order, so the exact hash — the
		// equality witness the intern store keys on — must survive too.
		if g2.ExactHash() != g.ExactHash() {
			t.Fatalf("exact hash of round trip diverged\ninput: %s\nserialized: %s", data, out)
		}
		if g2.Version() != g.Version() {
			t.Fatalf("round-trip versions diverge: %d != %d (the invoke-cache key needs parse determinism)", g2.Version(), g.Version())
		}
	})
}
