package graph

import "sort"

// Subgraph isomorphism in the VF2 style: find an injective mapping from
// pattern nodes to host nodes that preserves labels and adjacency. This is
// the primitive behind substructure search on molecules (the paper cites
// subgraph-isomorphism testing as a core graph-query operation) and is
// deliberately exact — patterns in chat workloads are small functional
// groups, not whole graphs.

// IsoOptions tunes the matcher.
type IsoOptions struct {
	// LabelMatch compares a pattern label against a host label; nil means
	// exact equality with "" in the pattern acting as a wildcard.
	LabelMatch func(pattern, host string) bool
	// Induced requires non-edges of the pattern to be non-edges of the
	// host image (induced subgraph isomorphism). Default false: plain
	// subgraph (monomorphism), which is what substructure search wants.
	Induced bool
	// MaxMatches stops the search after this many matches (0 = 1).
	MaxMatches int
}

// SubgraphMatch is one mapping from pattern node IDs to host node IDs.
type SubgraphMatch []NodeID

// FindSubgraphIsomorphisms returns up to opts.MaxMatches injective
// adjacency- and label-preserving mappings of pattern into host.
func FindSubgraphIsomorphisms(pattern, host *Graph, opts IsoOptions) []SubgraphMatch {
	if pattern.NumNodes() == 0 || pattern.NumNodes() > host.NumNodes() {
		return nil
	}
	if opts.MaxMatches <= 0 {
		opts.MaxMatches = 1
	}
	labelOK := opts.LabelMatch
	if labelOK == nil {
		labelOK = func(p, h string) bool { return p == "" || p == h }
	}
	st := &isoState{
		pattern: pattern,
		host:    host,
		labelOK: labelOK,
		induced: opts.Induced,
		max:     opts.MaxMatches,
		mapping: make([]NodeID, pattern.NumNodes()),
		used:    make([]bool, host.NumNodes()),
	}
	for i := range st.mapping {
		st.mapping[i] = -1
	}
	st.order = matchOrder(pattern)
	st.hostAdj = adjacencySets(host)
	st.patAdj = adjacencySets(pattern)
	st.search(0)
	return st.found
}

// HasSubgraph reports whether pattern occurs in host.
func HasSubgraph(pattern, host *Graph, opts IsoOptions) bool {
	opts.MaxMatches = 1
	return len(FindSubgraphIsomorphisms(pattern, host, opts)) > 0
}

type isoState struct {
	pattern, host   *Graph
	labelOK         func(string, string) bool
	induced         bool
	max             int
	order           []NodeID
	mapping         []NodeID
	used            []bool
	patAdj, hostAdj []map[NodeID]bool
	found           []SubgraphMatch
}

// matchOrder visits pattern nodes in a connectivity-aware order: highest
// degree first, then neighbors of already-ordered nodes, which prunes the
// search tree much earlier than ID order.
func matchOrder(p *Graph) []NodeID {
	n := p.NumNodes()
	placed := make([]bool, n)
	var order []NodeID
	for len(order) < n {
		best := NodeID(-1)
		bestScore := -1
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			score := 0
			for _, nb := range p.Neighbors(NodeID(i)) {
				if placed[nb] {
					score += 1000 // strongly prefer extending the frontier
				}
			}
			score += p.Degree(NodeID(i))
			if score > bestScore {
				best, bestScore = NodeID(i), score
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

func adjacencySets(g *Graph) []map[NodeID]bool {
	adj := make([]map[NodeID]bool, g.NumNodes())
	for i := range adj {
		adj[i] = make(map[NodeID]bool)
	}
	for _, e := range g.Edges() {
		adj[e.From][e.To] = true
		if !g.Directed() {
			adj[e.To][e.From] = true
		}
	}
	return adj
}

func (st *isoState) search(depth int) bool {
	if len(st.found) >= st.max {
		return true
	}
	if depth == len(st.order) {
		m := make(SubgraphMatch, len(st.mapping))
		copy(m, st.mapping)
		st.found = append(st.found, m)
		return len(st.found) >= st.max
	}
	pu := st.order[depth]
	for _, cand := range st.candidates(pu) {
		if st.feasible(pu, cand) {
			st.mapping[pu] = cand
			st.used[cand] = true
			if st.search(depth + 1) {
				return true
			}
			st.mapping[pu] = -1
			st.used[cand] = false
		}
	}
	return false
}

// candidates returns host nodes worth trying for pattern node pu: if pu has
// an already-mapped pattern neighbor, only host neighbors of its image
// qualify; otherwise every unused host node does.
func (st *isoState) candidates(pu NodeID) []NodeID {
	for nb := range st.patAdj[pu] {
		if st.mapping[nb] >= 0 {
			img := st.mapping[nb]
			var out []NodeID
			for h := range st.hostAdj[img] {
				if !st.used[h] {
					out = append(out, h)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
	}
	out := make([]NodeID, 0, st.host.NumNodes())
	for h := 0; h < st.host.NumNodes(); h++ {
		if !st.used[h] {
			out = append(out, NodeID(h))
		}
	}
	return out
}

// feasible checks label compatibility and adjacency consistency of mapping
// pu → hv given the current partial mapping.
func (st *isoState) feasible(pu, hv NodeID) bool {
	if !st.labelOK(st.pattern.Node(pu).Label, st.host.Node(hv).Label) {
		return false
	}
	if st.pattern.Degree(pu) > st.host.Degree(hv) {
		return false
	}
	for nb := range st.patAdj[pu] {
		img := st.mapping[nb]
		if img < 0 {
			continue
		}
		if !st.hostAdj[hv][img] {
			return false
		}
	}
	if st.induced {
		for p := 0; p < st.pattern.NumNodes(); p++ {
			img := st.mapping[p]
			if img < 0 || st.patAdj[pu][NodeID(p)] {
				continue
			}
			if st.hostAdj[hv][img] {
				return false
			}
		}
	}
	return true
}
