package graph

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
)

// Content-addressed graph identity. ContentHash fingerprints what a graph
// *says* — labels, attributes, edges, weights, directedness, name — rather
// than where it lives in memory or how it was built. Two graphs constructed
// by different code paths (JSON uploads in different sessions, generators
// run twice, permuted insertion orders) hash equal exactly when their
// canonical content is equal, which is what lets the graphstore interning
// layer and the content-keyed invocation cache recognize "the same graph"
// across requests, sessions, and process lifetime of the original pointer.
//
// The fingerprint is a Weisfeiler-Leman style canonical hash:
//
//  1. every node gets a signature from its label and sorted attributes;
//  2. a few rounds of neighborhood refinement fold each node's sorted
//     incident-edge contributions (direction flag, neighbor signature, edge
//     label, weight) back into its signature, so structure — not just label
//     multisets — reaches the hash;
//  3. the final digest covers the directedness flag, the name, the node and
//     edge counts, the sorted multiset of node signatures, and the sorted
//     multiset of edge signatures (endpoint signatures normalized for
//     undirected edges).
//
// Sorting every multiset makes the hash invariant under node and edge
// insertion order and under attribute-map iteration order; folding the
// refined signatures in makes any single mutation (node/edge added or
// removed, weight, label, or attribute changed) flip the hash with
// overwhelming probability. Like any structural canonicalization short of
// full graph canonization, WL-equivalent non-isomorphic graphs can collide;
// for the upload-dedup workload (byte-identical or trivially reordered
// payloads) that boundary is never reached.

// ContentHash is a 128-bit canonical content fingerprint of one graph.
type ContentHash [16]byte

// String renders the hash as 32 hex characters.
func (h ContentHash) String() string { return hex.EncodeToString(h[:]) }

// ExactHash is a 128-bit fingerprint of one graph's representation in
// index order: the same fields ContentHash covers, but with nodes and
// edges hashed at their dense IDs instead of as sorted multisets. It is
// the cheap equality witness that pairs with the canonical hash: two
// graphs with equal ExactHash agree on everything the API surface can
// observe — including which node is ID k — while ContentHash deliberately
// erases ordering. Consumers that key shared state by content (the intern
// store, the invocation cache) bucket by ContentHash and discriminate by
// ExactHash, the usual hash-for-grouping / equality-for-truth split, so a
// canonical-hash coincidence (WL-equivalent graphs, permuted insertions)
// can never alias observably different graphs.
type ExactHash [16]byte

// String renders the hash as 32 hex characters.
func (h ExactHash) String() string { return hex.EncodeToString(h[:]) }

// ContentHash returns the canonical content fingerprint of g's current
// version. Like Freeze, the computation is cached until the next mutation,
// so repeated identity checks on an unmutated graph cost a mutex hop —
// cheap enough to sit on the per-request intern and invoke-cache paths.
func (g *Graph) ContentHash() ContentHash {
	g.frozenMu.Lock()
	defer g.frozenMu.Unlock()
	if !g.hashValid || g.hashVersion != g.version {
		g.hash = computeContentHash(g)
		g.hashVersion = g.version
		g.hashValid = true
	}
	return g.hash
}

// ExactHash returns the index-order fingerprint of g's current version,
// cached like ContentHash.
func (g *Graph) ExactHash() ExactHash {
	g.frozenMu.Lock()
	defer g.frozenMu.Unlock()
	if !g.exactValid || g.exactVersion != g.version {
		g.exact = computeExactHash(g)
		g.exactVersion = g.version
		g.exactValid = true
	}
	return g.exact
}

// sig128 is one 128-bit running signature: two 64-bit FNV-1a lanes seeded
// differently and fed identical bytes. Not cryptographic — a fingerprint
// with enough width that independent contents never collide in practice.
type sig128 struct{ a, b uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashSeed perturbs both lane seeds with per-process entropy. ContentHash
// values are only ever compared within one process (the intern store and
// the invocation cache live and die with it), so nothing needs the hash to
// be stable across runs — and an unpredictable seed means a client cannot
// offline-craft two different payloads that collide and poison the shared
// caches of other sessions.
var hashSeed = func() [2]uint64 {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed seed
		// would silently weaken the collision story, so fail loudly.
		panic(fmt.Sprintf("graph: content-hash seed entropy: %v", err))
	}
	return [2]uint64{
		binary.LittleEndian.Uint64(b[:8]),
		binary.LittleEndian.Uint64(b[8:]),
	}
}()

func newSig() sig128 { return sig128{fnvOffset64 ^ hashSeed[0], fnvOffset64 ^ hashSeed[1]} }

func (s *sig128) writeByte(c byte) {
	s.a = (s.a ^ uint64(c)) * fnvPrime64
	s.b = (s.b ^ uint64(c)) * fnvPrime64
}

func (s *sig128) writeUint64(v uint64) {
	for i := 0; i < 8; i++ {
		s.writeByte(byte(v >> (8 * i)))
	}
}

// writeString length-prefixes the bytes so concatenated fields can never
// alias each other ("ab"+"c" vs "a"+"bc").
func (s *sig128) writeString(v string) {
	s.writeUint64(uint64(len(v)))
	for i := 0; i < len(v); i++ {
		s.writeByte(v[i])
	}
}

func (s *sig128) writeSig(o sig128) {
	s.writeUint64(o.a)
	s.writeUint64(o.b)
}

// less orders signatures for the sorted-multiset folds.
func (s sig128) less(o sig128) bool {
	if s.a != o.a {
		return s.a < o.a
	}
	return s.b < o.b
}

// wlRounds is how many neighborhood-refinement sweeps the hash runs. Two
// rounds fold every node's 2-hop structure in — enough to separate graphs
// with equal label and edge multisets but different wiring, while keeping
// the hash O(rounds · (V log V + E log d)).
const wlRounds = 2

// nodeSig hashes one node's intrinsic content: label plus sorted attrs.
func nodeSig(n *Node, keys []string) sig128 {
	s := newSig()
	s.writeString(n.Label)
	keys = keys[:0]
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.writeUint64(uint64(len(keys)))
	for _, k := range keys {
		s.writeString(k)
		s.writeString(n.Attrs[k])
	}
	return s
}

// edgeContrib hashes one incident edge as seen from a node: a direction
// flag (0 undirected, 1 outgoing, 2 incoming), the far endpoint's current
// signature, and the edge's label and weight.
func edgeContrib(dir byte, far sig128, label string, weight float64) sig128 {
	s := newSig()
	s.writeByte(dir)
	s.writeSig(far)
	s.writeString(label)
	s.writeUint64(weightBits(weight))
	return s
}

// weightBits canonicalizes the float so 0.0 and -0.0 (which the JSON wire
// format conflates) hash equal.
func weightBits(w float64) uint64 {
	if w == 0 {
		w = 0
	}
	return math.Float64bits(w)
}

func computeContentHash(g *Graph) ContentHash {
	n := len(g.nodes)
	sigs := make([]sig128, n)
	keyScratch := make([]string, 0, 8)
	for i := range g.nodes {
		sigs[i] = nodeSig(&g.nodes[i], keyScratch)
	}

	// Neighborhood refinement: fold each node's sorted incident-edge
	// contributions into its signature, wlRounds times.
	next := make([]sig128, n)
	var contribs []sig128
	for round := 0; round < wlRounds; round++ {
		for u := 0; u < n; u++ {
			contribs = contribs[:0]
			for _, ei := range g.adj[u] {
				e := &g.edges[ei]
				if g.directed {
					contribs = append(contribs, edgeContrib(1, sigs[e.To], e.Label, e.Weight))
				} else {
					far := e.To
					if int(e.To) == u {
						far = e.From
					}
					contribs = append(contribs, edgeContrib(0, sigs[far], e.Label, e.Weight))
				}
			}
			if g.directed {
				for _, ei := range g.radj[u] {
					e := &g.edges[ei]
					contribs = append(contribs, edgeContrib(2, sigs[e.From], e.Label, e.Weight))
				}
			}
			sortSigs(contribs)
			s := newSig()
			s.writeSig(sigs[u])
			s.writeUint64(uint64(len(contribs)))
			for _, c := range contribs {
				s.writeSig(c)
			}
			next[u] = s
		}
		sigs, next = next, sigs
	}

	// Edge signatures over the refined endpoint signatures; undirected
	// endpoints are normalized so (u,v) and (v,u) insertions agree.
	edgeSigs := make([]sig128, len(g.edges))
	for i := range g.edges {
		e := &g.edges[i]
		from, to := sigs[e.From], sigs[e.To]
		if !g.directed && to.less(from) {
			from, to = to, from
		}
		s := newSig()
		s.writeSig(from)
		s.writeSig(to)
		s.writeString(e.Label)
		s.writeUint64(weightBits(e.Weight))
		edgeSigs[i] = s
	}
	sortSigs(edgeSigs)
	nodeSorted := sigs
	sortSigs(nodeSorted)

	final := newSig()
	final.writeString("chatgraph.contenthash/1")
	if g.directed {
		final.writeByte(1)
	} else {
		final.writeByte(0)
	}
	final.writeString(g.Name)
	final.writeUint64(uint64(n))
	final.writeUint64(uint64(len(g.edges)))
	for _, s := range nodeSorted {
		final.writeSig(s)
	}
	for _, s := range edgeSigs {
		final.writeSig(s)
	}

	var out ContentHash
	for i := 0; i < 8; i++ {
		out[i] = byte(final.a >> (8 * i))
		out[8+i] = byte(final.b >> (8 * i))
	}
	return out
}

// sigSlice implements sort.Interface directly, mirroring csr.go's rowSorter:
// the per-row sorts run once per node per refinement round, and sort.Slice's
// per-call closure allocations would dominate the hash cost.
type sigSlice []sig128

func (s sigSlice) Len() int           { return len(s) }
func (s sigSlice) Less(i, j int) bool { return s[i].less(s[j]) }
func (s sigSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// computeExactHash walks the representation in index order: every field an
// API can observe, at the position it observes it. Attribute maps are the
// one sorted piece — map iteration order is not observable.
func computeExactHash(g *Graph) ExactHash {
	s := newSig()
	s.writeString("chatgraph.exacthash/1")
	if g.directed {
		s.writeByte(1)
	} else {
		s.writeByte(0)
	}
	s.writeString(g.Name)
	s.writeUint64(uint64(len(g.nodes)))
	keys := make([]string, 0, 8)
	for i := range g.nodes {
		n := &g.nodes[i]
		s.writeString(n.Label)
		keys = keys[:0]
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s.writeUint64(uint64(len(keys)))
		for _, k := range keys {
			s.writeString(k)
			s.writeString(n.Attrs[k])
		}
	}
	s.writeUint64(uint64(len(g.edges)))
	for i := range g.edges {
		e := &g.edges[i]
		s.writeUint64(uint64(e.From))
		s.writeUint64(uint64(e.To))
		s.writeString(e.Label)
		s.writeUint64(weightBits(e.Weight))
	}
	var out ExactHash
	for i := 0; i < 8; i++ {
		out[i] = byte(s.a >> (8 * i))
		out[8+i] = byte(s.b >> (8 * i))
	}
	return out
}

func sortSigs(s []sig128) {
	if len(s) <= 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j].less(s[j-1]); j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	sort.Sort(sigSlice(s))
}
