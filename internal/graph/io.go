package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonGraph is the wire form of a graph. It matches what the chat server and
// CLI accept as uploaded graphs.
type jsonGraph struct {
	Name     string     `json:"name,omitempty"`
	Directed bool       `json:"directed,omitempty"`
	Nodes    []jsonNode `json:"nodes"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    int               `json:"id"`
	Label string            `json:"label,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type jsonEdge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Label  string  `json:"label,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// MarshalJSON encodes g in the upload wire format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Name:     g.Name,
		Directed: g.directed,
		Nodes:    make([]jsonNode, 0, len(g.nodes)),
		Edges:    make([]jsonEdge, 0, len(g.edges)),
	}
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{ID: int(n.ID), Label: n.Label, Attrs: n.Attrs})
	}
	for _, e := range g.edges {
		w := e.Weight
		if w == 1 {
			w = 0 // omit default weight
		}
		jg.Edges = append(jg.Edges, jsonEdge{From: int(e.From), To: int(e.To), Label: e.Label, Weight: w})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the upload wire format. Node IDs in the payload may
// be sparse; they are remapped to dense IDs preserving payload order.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	// Reset in place (a whole-struct copy would copy the freeze mutex) and
	// bump the version so any cached view of the old contents is invalid.
	g.Name = jg.Name
	g.directed = jg.Directed
	g.nodes, g.edges, g.adj, g.radj = nil, nil, nil, nil
	g.bump()
	return g.loadWire(&jg)
}

// loadWire bulk-loads the decoded wire form into a reset g with batch
// allocation: one Node slab, one Edge slab, and one edge-index slab carved
// into per-node adjacency rows, instead of the per-AddNode/AddEdge appends
// (two adjacency allocations per node) the incremental path pays. The
// decoder's attribute maps are adopted rather than copied — jg is private to
// this parse. Validation order matches the incremental path exactly:
// duplicate node IDs in payload order, then per edge unknown-From,
// unknown-To, self-loop.
func (g *Graph) loadWire(jg *jsonGraph) error {
	n, m := len(jg.Nodes), len(jg.Edges)

	// Payloads we marshalled ourselves (and most hand-written ones) already
	// carry dense in-order IDs; detect that and skip the remap table — a
	// duplicate is impossible when every ID equals its index.
	dense := true
	for i := range jg.Nodes {
		if jg.Nodes[i].ID != i {
			dense = false
			break
		}
	}
	var remap map[int]NodeID
	if !dense {
		remap = make(map[int]NodeID, n)
		for i := range jg.Nodes {
			id := jg.Nodes[i].ID
			if _, dup := remap[id]; dup {
				return fmt.Errorf("graph: duplicate node id %d", id)
			}
			remap[id] = NodeID(i)
		}
	}

	nodes := make([]Node, n)
	for i := range jg.Nodes {
		nodes[i] = Node{ID: NodeID(i), Label: jg.Nodes[i].Label}
		if len(jg.Nodes[i].Attrs) > 0 {
			nodes[i].Attrs = jg.Nodes[i].Attrs
		}
	}

	// Validate every edge and count degrees in one pass, then fill the Edge
	// slab; errors surface for the first bad edge in payload order, exactly
	// as AddEdgeLabeled reported them.
	edges := make([]Edge, m)
	deg := make([]int, n)
	var rdeg []int
	if g.directed {
		rdeg = make([]int, n)
	}
	for i := range jg.Edges {
		e := &jg.Edges[i]
		var from, to NodeID
		if dense {
			if e.From < 0 || e.From >= n {
				return fmt.Errorf("graph: edge references unknown node %d", e.From)
			}
			if e.To < 0 || e.To >= n {
				return fmt.Errorf("graph: edge references unknown node %d", e.To)
			}
			from, to = NodeID(e.From), NodeID(e.To)
		} else {
			var ok bool
			if from, ok = remap[e.From]; !ok {
				return fmt.Errorf("graph: edge references unknown node %d", e.From)
			}
			if to, ok = remap[e.To]; !ok {
				return fmt.Errorf("graph: edge references unknown node %d", e.To)
			}
		}
		if from == to {
			return fmt.Errorf("graph: self-loop on node %d rejected", from)
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		edges[i] = Edge{From: from, To: to, Label: e.Label, Weight: w}
		deg[from]++
		if g.directed {
			rdeg[to]++
		} else {
			deg[to]++
		}
	}

	// Carve one index slab into the adjacency rows. Three-index subslices
	// cap each row at its degree, so a post-parse AddEdge appending to a row
	// reallocates just that row instead of corrupting its neighbor.
	total := 0
	for _, d := range deg {
		total += d
	}
	rstart := total
	for _, d := range rdeg {
		total += d
	}
	slab := make([]int, 0, total)
	adj := make([][]int, n)
	off := 0
	for u, d := range deg {
		adj[u] = slab[off : off : off+d]
		off += d
	}
	var radj [][]int
	if g.directed {
		radj = make([][]int, n)
		off = rstart
		for u, d := range rdeg {
			radj[u] = slab[off : off : off+d]
			off += d
		}
	}
	for i := range edges {
		e := &edges[i]
		adj[e.From] = append(adj[e.From], i)
		if g.directed {
			radj[e.To] = append(radj[e.To], i)
		} else {
			adj[e.To] = append(adj[e.To], i)
		}
	}

	g.nodes, g.edges, g.adj, g.radj = nodes, edges, adj, radj
	// The version advances exactly as the incremental path did: the caller's
	// reset bump plus one per node and per edge, so round-trip version
	// equality (an invoke-cache key property) holds.
	g.version += uint64(n + m)
	return nil
}

// ParseJSON decodes one graph from JSON bytes.
func ParseJSON(data []byte) (*Graph, error) {
	g := New()
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseEdgeList reads a whitespace-separated edge list, one "u v [label]"
// per line; '#' starts a comment. Node IDs are arbitrary tokens and become
// labels; dense IDs are assigned in first-appearance order.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	ids := make(map[string]NodeID)
	intern := func(tok string) NodeID {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := g.AddNode(tok)
		ids[tok] = id
		return id
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, v := intern(fields[0]), intern(fields[1])
		label := ""
		weight := 1.0
		if len(fields) >= 3 {
			if w, err := strconv.ParseFloat(fields[2], 64); err == nil {
				weight = w
			} else {
				label = fields[2]
			}
		}
		if err := g.AddEdgeLabeled(u, v, label, weight); err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: edge list: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes g in the edge-list format accepted by ParseEdgeList,
// using node labels when unique and IDs otherwise.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	names := make([]string, len(g.nodes))
	seen := make(map[string]bool, len(g.nodes))
	unique := true
	for i, n := range g.nodes {
		names[i] = n.Label
		if n.Label == "" || seen[n.Label] {
			unique = false
		}
		seen[n.Label] = true
	}
	if !unique {
		for i := range names {
			names[i] = strconv.Itoa(i)
		}
	}
	bw := bufio.NewWriter(w)
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%s %s %g\n", names[e.From], names[e.To], e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}
