package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonGraph is the wire form of a graph. It matches what the chat server and
// CLI accept as uploaded graphs.
type jsonGraph struct {
	Name     string     `json:"name,omitempty"`
	Directed bool       `json:"directed,omitempty"`
	Nodes    []jsonNode `json:"nodes"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    int               `json:"id"`
	Label string            `json:"label,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type jsonEdge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Label  string  `json:"label,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// MarshalJSON encodes g in the upload wire format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Directed: g.directed}
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{ID: int(n.ID), Label: n.Label, Attrs: n.Attrs})
	}
	for _, e := range g.edges {
		w := e.Weight
		if w == 1 {
			w = 0 // omit default weight
		}
		jg.Edges = append(jg.Edges, jsonEdge{From: int(e.From), To: int(e.To), Label: e.Label, Weight: w})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the upload wire format. Node IDs in the payload may
// be sparse; they are remapped to dense IDs preserving payload order.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	// Reset in place (a whole-struct copy would copy the freeze mutex) and
	// bump the version so any cached view of the old contents is invalid.
	g.Name = jg.Name
	g.directed = jg.Directed
	g.nodes, g.edges, g.adj, g.radj = nil, nil, nil, nil
	g.bump()
	g.Grow(len(jg.Nodes), len(jg.Edges))
	remap := make(map[int]NodeID, len(jg.Nodes))
	for _, n := range jg.Nodes {
		if _, dup := remap[n.ID]; dup {
			return fmt.Errorf("graph: duplicate node id %d", n.ID)
		}
		remap[n.ID] = g.AddNodeAttrs(n.Label, n.Attrs)
	}
	for _, e := range jg.Edges {
		from, ok := remap[e.From]
		if !ok {
			return fmt.Errorf("graph: edge references unknown node %d", e.From)
		}
		to, ok := remap[e.To]
		if !ok {
			return fmt.Errorf("graph: edge references unknown node %d", e.To)
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if err := g.AddEdgeLabeled(from, to, e.Label, w); err != nil {
			return err
		}
	}
	return nil
}

// ParseJSON decodes one graph from JSON bytes.
func ParseJSON(data []byte) (*Graph, error) {
	g := New()
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseEdgeList reads a whitespace-separated edge list, one "u v [label]"
// per line; '#' starts a comment. Node IDs are arbitrary tokens and become
// labels; dense IDs are assigned in first-appearance order.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	ids := make(map[string]NodeID)
	intern := func(tok string) NodeID {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := g.AddNode(tok)
		ids[tok] = id
		return id
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, v := intern(fields[0]), intern(fields[1])
		label := ""
		weight := 1.0
		if len(fields) >= 3 {
			if w, err := strconv.ParseFloat(fields[2], 64); err == nil {
				weight = w
			} else {
				label = fields[2]
			}
		}
		if err := g.AddEdgeLabeled(u, v, label, weight); err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: edge list: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes g in the edge-list format accepted by ParseEdgeList,
// using node labels when unique and IDs otherwise.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	names := make([]string, len(g.nodes))
	seen := make(map[string]bool, len(g.nodes))
	unique := true
	for i, n := range g.nodes {
		names[i] = n.Label
		if n.Label == "" || seen[n.Label] {
			unique = false
		}
		seen[n.Label] = true
	}
	if !unique {
		for i := range names {
			names[i] = strconv.Itoa(i)
		}
	}
	bw := bufio.NewWriter(w)
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%s %s %g\n", names[e.From], names[e.To], e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}
