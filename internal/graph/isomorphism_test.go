package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func labeledPath(labels ...string) *Graph {
	g := New()
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(NodeID(i), NodeID(i+1)) //nolint:errcheck
	}
	return g
}

func TestSubgraphIsoFindsLabeledPath(t *testing.T) {
	host := labeledPath("C", "O", "C", "N")
	pattern := labeledPath("O", "C")
	ms := FindSubgraphIsomorphisms(pattern, host, IsoOptions{MaxMatches: 10})
	if len(ms) != 2 { // O maps to node 1; C can be node 0 or node 2
		t.Fatalf("matches = %v", ms)
	}
	for _, m := range ms {
		if host.Node(m[0]).Label != "O" || host.Node(m[1]).Label != "C" {
			t.Fatalf("labels violated in %v", m)
		}
		if !host.HasEdge(m[0], m[1]) {
			t.Fatalf("adjacency violated in %v", m)
		}
	}
}

func TestSubgraphIsoNoMatch(t *testing.T) {
	host := labeledPath("C", "C", "C")
	pattern := labeledPath("N", "C")
	if HasSubgraph(pattern, host, IsoOptions{}) {
		t.Fatal("phantom match")
	}
	triangle := New()
	for i := 0; i < 3; i++ {
		triangle.AddNode("C")
	}
	triangle.AddEdge(0, 1) //nolint:errcheck
	triangle.AddEdge(1, 2) //nolint:errcheck
	triangle.AddEdge(2, 0) //nolint:errcheck
	// A triangle cannot embed in a path (not enough adjacency).
	if HasSubgraph(triangle, labeledPath("C", "C", "C"), IsoOptions{}) {
		t.Fatal("triangle embedded in path")
	}
}

func TestSubgraphIsoWildcardLabels(t *testing.T) {
	host := labeledPath("C", "O", "N")
	pattern := labeledPath("", "")
	if !HasSubgraph(pattern, host, IsoOptions{}) {
		t.Fatal("wildcard pattern not found")
	}
}

func TestSubgraphIsoInduced(t *testing.T) {
	// Pattern: path a-b-c (no edge a-c). Host: triangle. A monomorphism
	// exists, an induced one does not.
	pattern := labeledPath("", "", "")
	host := New()
	for i := 0; i < 3; i++ {
		host.AddNode("x")
	}
	host.AddEdge(0, 1) //nolint:errcheck
	host.AddEdge(1, 2) //nolint:errcheck
	host.AddEdge(2, 0) //nolint:errcheck
	if !HasSubgraph(pattern, host, IsoOptions{}) {
		t.Fatal("monomorphism not found")
	}
	if HasSubgraph(pattern, host, IsoOptions{Induced: true}) {
		t.Fatal("induced embedding found in triangle")
	}
}

func TestSubgraphIsoEdgeCases(t *testing.T) {
	host := labeledPath("C", "C")
	if got := FindSubgraphIsomorphisms(New(), host, IsoOptions{}); got != nil {
		t.Fatal("empty pattern matched")
	}
	big := labeledPath("C", "C", "C")
	if got := FindSubgraphIsomorphisms(big, host, IsoOptions{}); got != nil {
		t.Fatal("oversized pattern matched")
	}
}

func TestSubgraphIsoInjective(t *testing.T) {
	// Pattern of two disconnected nodes must map to two distinct hosts.
	pattern := New()
	pattern.AddNode("C")
	pattern.AddNode("C")
	host := New()
	host.AddNode("C")
	if HasSubgraph(pattern, host, IsoOptions{}) {
		t.Fatal("non-injective match")
	}
}

// Property: planting a random pattern inside a larger host guarantees a
// match, and every returned mapping preserves adjacency and injectivity.
func TestQuickSubgraphIsoPlanted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pattern := ErdosRenyi(4+rng.Intn(3), 0.5, rng)
		for i, n := range pattern.Nodes() {
			pattern.SetNodeLabel(n.ID, string(rune('a'+i%3)))
		}
		// Host = copy of pattern plus noise nodes/edges.
		host := pattern.Clone()
		for i := 0; i < 6; i++ {
			host.AddNode(string(rune('a' + rng.Intn(3))))
		}
		for i := 0; i < 8; i++ {
			u := NodeID(rng.Intn(host.NumNodes()))
			v := NodeID(rng.Intn(host.NumNodes()))
			if u != v && !host.HasEdge(u, v) {
				host.AddEdge(u, v) //nolint:errcheck
			}
		}
		ms := FindSubgraphIsomorphisms(pattern, host, IsoOptions{MaxMatches: 3})
		if len(ms) == 0 {
			return false
		}
		for _, m := range ms {
			seen := make(map[NodeID]bool)
			for pu, hv := range m {
				if seen[hv] || pattern.Node(NodeID(pu)).Label != host.Node(hv).Label {
					return false
				}
				seen[hv] = true
			}
			for _, e := range pattern.Edges() {
				if !host.HasEdge(m[e.From], m[e.To]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
