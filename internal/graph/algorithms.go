package graph

import (
	"math"
	"sort"

	"chatgraph/internal/parallel"
)

// Additional whole-graph algorithms backing the extended API catalog:
// k-core decomposition, maximal cliques, degree assortativity, weighted
// shortest paths, eccentricity/radius/center, greedy coloring, and minimum
// spanning trees. All operate on the undirected view unless noted.
//
// Every traversal-heavy algorithm here runs on the frozen CSR view
// (Graph.Freeze) with pooled scratch, and the all-source ones fan their
// independent sources across parallel.ForEach — the same flat-contiguous +
// pooled-scratch + bounded-worker recipe the vector layer uses.

// CoreNumbers returns, for every node, the largest k such that the node
// belongs to the k-core (the maximal subgraph with minimum degree ≥ k),
// using the Matula–Beck peeling order in O(V + E) over the undirected CSR
// view. Parallel edges each count toward the degree, matching the
// edge-list-based implementation this replaced.
func CoreNumbers(g *Graph) []int {
	c := g.Freeze()
	n := c.n
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for i := 0; i < n; i++ {
		deg[i] = int32(c.undDegree(NodeID(i)))
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	// Counting-sort nodes by degree: bin[d] is the start of degree-d nodes
	// in vert; pos[v] is v's index in vert.
	bin := make([]int32, maxDeg+2)
	for _, d := range deg {
		bin[d+1]++
	}
	for d := int32(0); d <= maxDeg; d++ {
		bin[d+1] += bin[d]
	}
	vert := make([]int32, n)
	pos := make([]int32, n)
	fill := make([]int32, maxDeg+1)
	copy(fill, bin[:maxDeg+1])
	for v := int32(0); int(v) < n; v++ {
		p := fill[deg[v]]
		fill[deg[v]]++
		vert[p] = v
		pos[v] = p
	}
	// Peel in nondecreasing degree order; when u is removed, each heavier
	// neighbor loses one degree and swaps down into the next bucket.
	for i := 0; i < n; i++ {
		u := vert[i]
		core[u] = int(deg[u])
		for _, vn := range c.undNeighbors(NodeID(u)) {
			v := int32(vn)
			if deg[v] > deg[u] {
				dv := deg[v]
				pv := pos[v]
				pw := bin[dv]
				w := vert[pw]
				if v != w {
					vert[pv], vert[pw] = w, v
					pos[v], pos[w] = pw, pv
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph degeneracy: the maximum core number.
func Degeneracy(g *Graph) int {
	max := 0
	for _, c := range CoreNumbers(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// bitAdjacencyMaxNodes bounds the dense n×n bitset the clique search
// prefers: 4096 nodes cost 2 MB. Above it, membership falls back to binary
// search over the sorted CSR rows — O(log d) per test, no extra memory —
// instead of allocating O(n²) bits for a sparse upload.
const bitAdjacencyMaxNodes = 4096

// adjacencyTest returns an O(1)-ish membership test over the forward
// adjacency (asymmetric for directed graphs, matching the adjacencySets
// semantics the map-based clique search used).
func adjacencyTest(c *CSR) func(u, v NodeID) bool {
	if c.n > bitAdjacencyMaxNodes {
		return sparseAdjacencyTest(c)
	}
	return denseAdjacencyTest(c)
}

// sparseAdjacencyTest binary-searches the sorted CSR row: O(log d) per
// test, zero extra memory.
func sparseAdjacencyTest(c *CSR) func(u, v NodeID) bool {
	return func(u, v NodeID) bool {
		row := c.OutNeighbors(u)
		lo, hi := 0, len(row)
		for lo < hi {
			mid := (lo + hi) / 2
			if row[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(row) && row[lo] == v
	}
}

// denseAdjacencyTest materializes the n×n bitset: O(1) per test,
// n²/8 bytes.
func denseAdjacencyTest(c *CSR) func(u, v NodeID) bool {
	words := (c.n + 63) / 64
	bits := make([]uint64, c.n*words)
	for u := 0; u < c.n; u++ {
		row := bits[u*words : (u+1)*words]
		for _, v := range c.OutNeighbors(NodeID(u)) {
			row[int(v)>>6] |= 1 << (uint(v) & 63)
		}
	}
	return func(u, v NodeID) bool {
		return bits[int(u)*words+int(v)>>6]&(1<<(uint(v)&63)) != 0
	}
}

// MaximalCliques enumerates all maximal cliques with Bron–Kerbosch and
// pivoting, stopping after maxCliques (0 = unlimited). Cliques are returned
// with sorted members. Adjacency tests run against a dense bitset (small
// graphs) or binary search over the frozen CSR rows (large ones); the
// recursion structure (and therefore the output order) matches the
// map-based implementation this replaced.
func MaximalCliques(g *Graph, maxCliques int) [][]NodeID {
	c := g.Freeze()
	n := c.n
	adj := adjacencyTest(c)
	var out [][]NodeID
	var bk func(r, p, x []NodeID)
	bk = func(r, p, x []NodeID) {
		if maxCliques > 0 && len(out) >= maxCliques {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			clique := append([]NodeID(nil), r...)
			sortNodeIDs(clique)
			out = append(out, clique)
			return
		}
		// Pivot: the vertex of p ∪ x with most neighbors in p.
		var pivot NodeID = -1
		best := -1
		for _, cand := range [][]NodeID{p, x} {
			for _, u := range cand {
				cnt := 0
				for _, v := range p {
					if adj(u, v) {
						cnt++
					}
				}
				if cnt > best {
					best, pivot = cnt, u
				}
			}
		}
		var frontier []NodeID
		for _, v := range p {
			if pivot < 0 || !adj(pivot, v) {
				frontier = append(frontier, v)
			}
		}
		for _, v := range frontier {
			var np, nx []NodeID
			for _, w := range p {
				if adj(v, w) {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj(v, w) {
					nx = append(nx, w)
				}
			}
			bk(append(r, v), np, nx)
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	all := make([]NodeID, n)
	for i := range all {
		all[i] = NodeID(i)
	}
	bk(nil, all, nil)
	return out
}

// Assortativity returns the Pearson degree-assortativity coefficient over
// the edges: positive when high-degree nodes attach to high-degree nodes
// (typical of collaboration networks), negative for hub-and-spoke
// topologies. Returns 0 for graphs with fewer than 2 edges.
func Assortativity(g *Graph) float64 {
	m := g.NumEdges()
	if m < 2 {
		return 0
	}
	deg := make([]float64, g.NumNodes())
	for _, e := range g.Edges() {
		deg[e.From]++
		deg[e.To]++
	}
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	count := 0.0
	for _, e := range g.Edges() {
		// Each undirected edge contributes both orientations so the
		// coefficient is symmetric.
		for _, pair := range [2][2]float64{{deg[e.From], deg[e.To]}, {deg[e.To], deg[e.From]}} {
			x, y := pair[0], pair[1]
			sumXY += x * y
			sumX += x
			sumY += y
			sumX2 += x * x
			sumY2 += y * y
			count++
		}
	}
	num := sumXY/count - (sumX/count)*(sumY/count)
	denX := sumX2/count - (sumX/count)*(sumX/count)
	denY := sumY2/count - (sumY/count)*(sumY/count)
	den := math.Sqrt(denX * denY)
	if den == 0 {
		return 0
	}
	return num / den
}

// WeightedShortestPath returns the minimum-weight path from src to dst using
// edge weights (Dijkstra; negative weights are clamped to 0) and its total
// weight. A nil path means unreachable. Distance, parent, and heap state all
// come from the pooled traversal scratch; only the returned path allocates.
func WeightedShortestPath(g *Graph, src, dst NodeID) ([]NodeID, float64) {
	c := g.Freeze()
	n := c.n
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, math.Inf(1)
	}
	sc := getTrav(n)
	defer putTrav(sc)
	dist := sc.floats(n)
	parent := sc.parents(n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	h := sc.heap[:0]
	defer func() { sc.heap = h[:0] }()
	heapPush(&h, heapEntry{int32(src), 0})
	for len(h) > 0 {
		it := heapPop(&h)
		if it.dist > dist[it.node] {
			continue
		}
		if NodeID(it.node) == dst {
			break
		}
		row := c.OutNeighbors(NodeID(it.node))
		ws := c.OutWeights(NodeID(it.node))
		for i, v := range row {
			w := ws[i]
			if w < 0 {
				w = 0
			}
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				parent[v] = it.node
				heapPush(&h, heapEntry{int32(v), nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	total := dist[dst]
	// Walk the parent chain once to size the path exactly, then fill it
	// back-to-front — one allocation for the returned path.
	hops := 1
	for cur := dst; cur != src && parent[cur] != -1; cur = NodeID(parent[cur]) {
		hops++
	}
	path := make([]NodeID, hops)
	cur := dst
	for i := hops - 1; i >= 0; i-- {
		path[i] = cur
		if cur != src {
			cur = NodeID(parent[cur])
		}
	}
	return path, total
}

// Eccentricities returns each node's eccentricity (max BFS distance to any
// reachable node), plus the radius (min positive eccentricity) and diameter
// (max eccentricity). Isolated nodes get eccentricity 0. The independent
// per-source BFS sweeps fan out across parallel.ForEach, each worker leasing
// its own pooled scratch, so the whole computation allocates only the
// eccentricity slice.
func Eccentricities(g *Graph) (ecc []int, radius, diameter int) {
	c := g.Freeze()
	n := c.n
	ecc = make([]int, n)
	parallel.ForEach(n, func(u int) {
		sc := getTrav(n)
		ecc[u] = int(c.eccFrom(int32(u), sc))
		putTrav(sc)
	})
	radius = math.MaxInt
	for _, e := range ecc {
		if e > diameter {
			diameter = e
		}
		if e > 0 && e < radius {
			radius = e
		}
	}
	if radius == math.MaxInt {
		radius = 0
	}
	return ecc, radius, diameter
}

// Center returns the nodes with minimum (positive) eccentricity.
func Center(g *Graph) []NodeID {
	ecc, radius, _ := Eccentricities(g)
	var out []NodeID
	for i, e := range ecc {
		if e == radius {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// GreedyColoring colors nodes in descending-degree order with the smallest
// available color, returning per-node colors and the color count. Optimal
// only for special graphs, but a standard quality/speed tradeoff. The
// per-node "colors taken by neighbors" set is a stamped scratch array, not a
// map, so coloring allocates only the order and color slices.
func GreedyColoring(g *Graph) ([]int, int) {
	c := g.Freeze()
	n := c.n
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := c.OutDegree(order[i]), c.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	sc := getTrav(n)
	defer putTrav(sc)
	taken := sc.intMarks(n + 1)
	for i := range taken {
		taken[i] = -1
	}
	maxColor := -1
	for round, u := range order {
		stamp := int32(round)
		for _, v := range c.OutNeighbors(u) {
			if colors[v] >= 0 {
				taken[colors[v]] = stamp
			}
		}
		col := 0
		for taken[col] == stamp {
			col++
		}
		colors[u] = col
		if col > maxColor {
			maxColor = col
		}
	}
	return colors, maxColor + 1
}

// MinimumSpanningForest returns the edges of a minimum-weight spanning
// forest (Kruskal) and its total weight.
func MinimumSpanningForest(g *Graph) ([]Edge, float64) {
	edges := append([]Edge(nil), g.Edges()...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight < edges[j].Weight
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	parent := make([]int, g.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var out []Edge
	var total float64
	for _, e := range edges {
		ra, rb := find(int(e.From)), find(int(e.To))
		if ra == rb {
			continue
		}
		parent[ra] = rb
		out = append(out, e)
		total += e.Weight
	}
	return out, total
}
