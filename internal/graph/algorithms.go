package graph

import (
	"container/heap"
	"math"
	"sort"
)

// Additional whole-graph algorithms backing the extended API catalog:
// k-core decomposition, maximal cliques, degree assortativity, weighted
// shortest paths, eccentricity/radius/center, greedy coloring, and minimum
// spanning trees. All operate on the undirected view unless noted.

// CoreNumbers returns, for every node, the largest k such that the node
// belongs to the k-core (the maximal subgraph with minimum degree ≥ k),
// using the Matula–Beck peeling order in O(V + E).
func CoreNumbers(g *Graph) []int {
	n := g.NumNodes()
	deg := make([]int, n)
	und := make([][]NodeID, n)
	for _, e := range g.Edges() {
		und[e.From] = append(und[e.From], e.To)
		und[e.To] = append(und[e.To], e.From)
	}
	maxDeg := 0
	for i := range deg {
		deg[i] = len(und[i])
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	// Bucket sort nodes by degree.
	buckets := make([][]NodeID, maxDeg+1)
	for i, d := range deg {
		buckets[d] = append(buckets[d], NodeID(i))
	}
	core := make([]int, n)
	removed := make([]bool, n)
	cur := make([]int, n)
	copy(cur, deg)
	for d := 0; d <= maxDeg; d++ {
		for len(buckets[d]) > 0 {
			u := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if removed[u] || cur[u] != d {
				continue // stale bucket entry
			}
			removed[u] = true
			core[u] = d
			for _, v := range und[u] {
				if removed[v] || cur[v] <= d {
					continue
				}
				cur[v]--
				buckets[cur[v]] = append(buckets[cur[v]], v)
				if cur[v] < d {
					// Can't happen: cur[v] was > d and decremented once.
					continue
				}
			}
		}
		// Nodes pushed into lower buckets while peeling are handled when
		// their bucket index comes up; stale entries are skipped above.
	}
	return core
}

// Degeneracy returns the graph degeneracy: the maximum core number.
func Degeneracy(g *Graph) int {
	max := 0
	for _, c := range CoreNumbers(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// MaximalCliques enumerates all maximal cliques with Bron–Kerbosch and
// pivoting, stopping after maxCliques (0 = unlimited). Cliques are returned
// with sorted members.
func MaximalCliques(g *Graph, maxCliques int) [][]NodeID {
	n := g.NumNodes()
	adj := adjacencySets(g)
	var out [][]NodeID
	var bk func(r, p, x []NodeID)
	bk = func(r, p, x []NodeID) {
		if maxCliques > 0 && len(out) >= maxCliques {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			clique := append([]NodeID(nil), r...)
			sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
			out = append(out, clique)
			return
		}
		// Pivot: the vertex of p ∪ x with most neighbors in p.
		var pivot NodeID = -1
		best := -1
		for _, cand := range [][]NodeID{p, x} {
			for _, u := range cand {
				cnt := 0
				for _, v := range p {
					if adj[u][v] {
						cnt++
					}
				}
				if cnt > best {
					best, pivot = cnt, u
				}
			}
		}
		var frontier []NodeID
		for _, v := range p {
			if pivot < 0 || !adj[pivot][v] {
				frontier = append(frontier, v)
			}
		}
		for _, v := range frontier {
			var np, nx []NodeID
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			bk(append(r, v), np, nx)
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	all := make([]NodeID, n)
	for i := range all {
		all[i] = NodeID(i)
	}
	bk(nil, all, nil)
	return out
}

// Assortativity returns the Pearson degree-assortativity coefficient over
// the edges: positive when high-degree nodes attach to high-degree nodes
// (typical of collaboration networks), negative for hub-and-spoke
// topologies. Returns 0 for graphs with fewer than 2 edges.
func Assortativity(g *Graph) float64 {
	m := g.NumEdges()
	if m < 2 {
		return 0
	}
	deg := make([]float64, g.NumNodes())
	for _, e := range g.Edges() {
		deg[e.From]++
		deg[e.To]++
	}
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	count := 0.0
	for _, e := range g.Edges() {
		// Each undirected edge contributes both orientations so the
		// coefficient is symmetric.
		for _, pair := range [2][2]float64{{deg[e.From], deg[e.To]}, {deg[e.To], deg[e.From]}} {
			x, y := pair[0], pair[1]
			sumXY += x * y
			sumX += x
			sumY += y
			sumX2 += x * x
			sumY2 += y * y
			count++
		}
	}
	num := sumXY/count - (sumX/count)*(sumY/count)
	denX := sumX2/count - (sumX/count)*(sumX/count)
	denY := sumY2/count - (sumY/count)*(sumY/count)
	den := math.Sqrt(denX * denY)
	if den == 0 {
		return 0
	}
	return num / den
}

// dijkstraItem is a priority-queue entry.
type dijkstraItem struct {
	node NodeID
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int            { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WeightedShortestPath returns the minimum-weight path from src to dst using
// edge weights (Dijkstra; weights must be non-negative) and its total
// weight. A nil path means unreachable.
func WeightedShortestPath(g *Graph, src, dst NodeID) ([]NodeID, float64) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, math.Inf(1)
	}
	dist := make([]float64, n)
	parent := make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	h := &dijkstraHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(dijkstraItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, ei := range g.adj[it.node] {
			e := g.edges[ei]
			v := e.To
			if e.From != it.node {
				v = e.From
			}
			w := e.Weight
			if w < 0 {
				w = 0
			}
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				parent[v] = it.node
				heap.Push(h, dijkstraItem{v, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	var rev []NodeID
	for cur := dst; cur != -1; cur = parent[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst]
}

// Eccentricities returns each node's eccentricity (max BFS distance to any
// reachable node), plus the radius (min eccentricity) and diameter (max) of
// the largest component. Isolated nodes get eccentricity 0.
func Eccentricities(g *Graph) (ecc []int, radius, diameter int) {
	n := g.NumNodes()
	ecc = make([]int, n)
	radius = math.MaxInt
	for u := 0; u < n; u++ {
		max := 0
		g.BFS(NodeID(u), func(_ NodeID, d int) bool {
			if d > max {
				max = d
			}
			return true
		})
		ecc[u] = max
		if max > diameter {
			diameter = max
		}
		if max > 0 && max < radius {
			radius = max
		}
	}
	if radius == math.MaxInt {
		radius = 0
	}
	return ecc, radius, diameter
}

// Center returns the nodes with minimum (positive) eccentricity.
func Center(g *Graph) []NodeID {
	ecc, radius, _ := Eccentricities(g)
	var out []NodeID
	for i, e := range ecc {
		if e == radius {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// GreedyColoring colors nodes in descending-degree order with the smallest
// available color, returning per-node colors and the color count. Optimal
// only for special graphs, but a standard quality/speed tradeoff.
func GreedyColoring(g *Graph) ([]int, int) {
	n := g.NumNodes()
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := -1
	for _, u := range order {
		taken := make(map[int]bool)
		for _, v := range g.Neighbors(u) {
			if colors[v] >= 0 {
				taken[colors[v]] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		colors[u] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return colors, maxColor + 1
}

// MinimumSpanningForest returns the edges of a minimum-weight spanning
// forest (Kruskal) and its total weight.
func MinimumSpanningForest(g *Graph) ([]Edge, float64) {
	edges := append([]Edge(nil), g.Edges()...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight < edges[j].Weight
		}
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	parent := make([]int, g.NumNodes())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var out []Edge
	var total float64
	for _, e := range edges {
		ra, rb := find(int(e.From)), find(int(e.To))
		if ra == rb {
			continue
		}
		parent[ra] = rb
		out = append(out, e)
		total += e.Weight
	}
	return out, total
}
