package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func clique(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("c")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j)) //nolint:errcheck
		}
	}
	return g
}

func TestCoreNumbersCliquePlusTail(t *testing.T) {
	// K4 with a pendant path: clique nodes are 3-core, path degrades.
	g := clique(4)
	p1 := g.AddNode("t")
	p2 := g.AddNode("t")
	g.AddEdge(3, p1)  //nolint:errcheck
	g.AddEdge(p1, p2) //nolint:errcheck
	core := CoreNumbers(g)
	for i := 0; i < 4; i++ {
		if core[i] != 3 {
			t.Fatalf("clique node %d core = %d, want 3", i, core[i])
		}
	}
	if core[p1] != 1 || core[p2] != 1 {
		t.Fatalf("tail cores = %d, %d, want 1", core[p1], core[p2])
	}
	if Degeneracy(g) != 3 {
		t.Fatalf("degeneracy = %d", Degeneracy(g))
	}
}

func TestCoreNumbersEmptyAndSingle(t *testing.T) {
	if len(CoreNumbers(New())) != 0 {
		t.Fatal("empty graph core numbers")
	}
	g := New()
	g.AddNode("a")
	if CoreNumbers(g)[0] != 0 {
		t.Fatal("isolated node core != 0")
	}
}

func TestMaximalCliques(t *testing.T) {
	// Two triangles sharing an edge: cliques {0,1,2} and {1,2,3}.
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode("v")
	}
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1]) //nolint:errcheck
	}
	cliques := MaximalCliques(g, 0)
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v", cliques)
	}
	for _, c := range cliques {
		if len(c) != 3 {
			t.Fatalf("clique size = %d", len(c))
		}
	}
}

func TestMaximalCliquesCap(t *testing.T) {
	g := clique(6)
	if got := MaximalCliques(g, 1); len(got) != 1 || len(got[0]) != 6 {
		t.Fatalf("capped cliques = %v", got)
	}
}

func TestAssortativityStar(t *testing.T) {
	// A star is maximally disassortative.
	g := New()
	hub := g.AddNode("h")
	for i := 0; i < 6; i++ {
		leaf := g.AddNode("l")
		g.AddEdge(hub, leaf) //nolint:errcheck
	}
	if a := Assortativity(g); a >= 0 {
		t.Fatalf("star assortativity = %v, want negative", a)
	}
	if a := Assortativity(clique(5)); math.Abs(a) > 1e-9 && !math.IsNaN(a) && a != 0 {
		// Regular graph: zero variance → defined as 0 here.
		t.Fatalf("clique assortativity = %v, want 0", a)
	}
	if Assortativity(New()) != 0 {
		t.Fatal("empty graph assortativity != 0")
	}
}

func TestWeightedShortestPath(t *testing.T) {
	// 0-1 weight 10; 0-2-1 weights 1+1: Dijkstra must take the detour.
	g := New()
	for i := 0; i < 3; i++ {
		g.AddNode("v")
	}
	g.AddEdgeLabeled(0, 1, "", 10) //nolint:errcheck
	g.AddEdgeLabeled(0, 2, "", 1)  //nolint:errcheck
	g.AddEdgeLabeled(2, 1, "", 1)  //nolint:errcheck
	path, w := WeightedShortestPath(g, 0, 1)
	if w != 2 || len(path) != 3 || path[1] != 2 {
		t.Fatalf("path = %v, weight = %v", path, w)
	}
	if p, w := WeightedShortestPath(g, 0, 0); len(p) != 1 || w != 0 {
		t.Fatalf("self path = %v, %v", p, w)
	}
	if p, w := WeightedShortestPath(g, 0, 99); p != nil || !math.IsInf(w, 1) {
		t.Fatalf("oob path = %v, %v", p, w)
	}
	g2 := New()
	g2.AddNode("a")
	g2.AddNode("b")
	if p, _ := WeightedShortestPath(g2, 0, 1); p != nil {
		t.Fatalf("unreachable path = %v", p)
	}
}

func TestEccentricitiesPath(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1)) //nolint:errcheck
	}
	ecc, radius, diameter := Eccentricities(g)
	if diameter != 4 || radius != 2 {
		t.Fatalf("radius %d diameter %d", radius, diameter)
	}
	if ecc[0] != 4 || ecc[2] != 2 {
		t.Fatalf("ecc = %v", ecc)
	}
	center := Center(g)
	if len(center) != 1 || center[0] != 2 {
		t.Fatalf("center = %v", center)
	}
}

func TestGreedyColoring(t *testing.T) {
	colors, k := GreedyColoring(clique(4))
	if k != 4 {
		t.Fatalf("K4 colors = %d", k)
	}
	seen := map[int]bool{}
	for _, c := range colors {
		if seen[c] {
			t.Fatal("clique nodes share a color")
		}
		seen[c] = true
	}
	// A path is 2-colorable and greedy achieves it.
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1)) //nolint:errcheck
	}
	if _, k := GreedyColoring(g); k != 2 {
		t.Fatalf("path colors = %d", k)
	}
}

func TestMinimumSpanningForest(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode("v")
	}
	g.AddEdgeLabeled(0, 1, "", 1) //nolint:errcheck
	g.AddEdgeLabeled(1, 2, "", 2) //nolint:errcheck
	g.AddEdgeLabeled(2, 0, "", 3) //nolint:errcheck  // cycle edge, excluded
	g.AddEdgeLabeled(2, 3, "", 1) //nolint:errcheck
	edges, total := MinimumSpanningForest(g)
	if len(edges) != 3 || total != 4 {
		t.Fatalf("mst = %v total %v", edges, total)
	}
}

// Property: greedy coloring is always proper.
func TestQuickColoringProper(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 2
		g := ErdosRenyi(n, 0.3, rand.New(rand.NewSource(seed)))
		colors, _ := GreedyColoring(g)
		for _, e := range g.Edges() {
			if colors[e.From] == colors[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every node's core number is at most its degree, and the k-core
// containment property holds (nodes with core ≥ k induce min degree ≥ k).
func TestQuickCoreNumbers(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 3
		g := ErdosRenyi(n, 0.25, rand.New(rand.NewSource(seed)))
		core := CoreNumbers(g)
		for i, c := range core {
			if c > g.Degree(NodeID(i)) {
				return false
			}
		}
		// Check the k-core property for k = degeneracy.
		k := Degeneracy(g)
		inCore := make(map[NodeID]bool)
		for i, c := range core {
			if c >= k {
				inCore[NodeID(i)] = true
			}
		}
		for u := range inCore {
			deg := 0
			for _, v := range g.Neighbors(u) {
				if inCore[v] {
					deg++
				}
			}
			if deg < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dijkstra with unit weights agrees with BFS.
func TestQuickDijkstraMatchesBFS(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		g := ErdosRenyi(n, 0.3, rand.New(rand.NewSource(seed)))
		bfs := g.ShortestPathLengths(0)
		for dst := 1; dst < n; dst++ {
			path, w := WeightedShortestPath(g, 0, NodeID(dst))
			if bfs[dst] < 0 {
				if path != nil {
					return false
				}
				continue
			}
			if int(w) != bfs[dst] || len(path)-1 != bfs[dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
