package graph

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// TestCSRNeighborViews: every CSR view must report exactly what the
// slice-materializing Graph accessors report, in the same order.
func TestCSRNeighborViews(t *testing.T) {
	for name, g := range parityFixtures(t) {
		c := g.Freeze()
		if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() || c.Directed() != g.Directed() {
			t.Fatalf("%s: size mismatch", name)
		}
		if c.Version() != g.Version() {
			t.Fatalf("%s: version mismatch", name)
		}
		for u := 0; u < g.NumNodes(); u++ {
			id := NodeID(u)
			wantOut := g.Neighbors(id)
			gotOut := c.OutNeighbors(id)
			if len(gotOut) != len(wantOut) || len(gotOut) > 0 && !reflect.DeepEqual(gotOut, wantOut) {
				t.Fatalf("%s node %d: OutNeighbors = %v, want %v", name, u, gotOut, wantOut)
			}
			if c.OutDegree(id) != g.Degree(id) {
				t.Fatalf("%s node %d: OutDegree = %d, want %d", name, u, c.OutDegree(id), g.Degree(id))
			}
			wantIn := g.InNeighbors(id)
			gotIn := c.InNeighbors(id)
			if len(gotIn) != len(wantIn) || len(gotIn) > 0 && !reflect.DeepEqual(gotIn, wantIn) {
				t.Fatalf("%s node %d: InNeighbors = %v, want %v", name, u, gotIn, wantIn)
			}
			if c.InDegree(id) != g.InDegree(id) {
				t.Fatalf("%s node %d: InDegree = %d, want %d", name, u, c.InDegree(id), g.InDegree(id))
			}
			if g.TotalDegree(id) != g.Degree(id)+len(g.InNeighbors(id)) && g.Directed() {
				t.Fatalf("%s node %d: TotalDegree mismatch", name, u)
			}
			// Weights stay aligned with their targets.
			ws := c.OutWeights(id)
			if len(ws) != len(gotOut) {
				t.Fatalf("%s node %d: %d weights for %d targets", name, u, len(ws), len(gotOut))
			}
			for i, v := range gotOut {
				found := false
				for _, e := range g.Edges() {
					match := e.From == id && e.To == v || !g.Directed() && e.From == v && e.To == id
					if match && e.Weight == ws[i] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s node %d: weight %v not carried by any (%d,%v) edge", name, u, ws[i], u, v)
				}
			}
		}
	}
}

// TestFreezeConcurrent hammers Freeze + the frozen algorithms from many
// goroutines over one shared graph — the CSR build must publish exactly one
// view per version and every reader must see consistent results (run with
// -race to verify).
func TestFreezeConcurrent(t *testing.T) {
	g := BarabasiAlbert(300, 3, rand.New(rand.NewSource(11)))
	wantStats := ComputeStats(g)
	wantEcc, _, _ := Eccentricities(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c := g.Freeze()
				if got := c.Stats(); got.Triangles != wantStats.Triangles || got.ApproxDiameter != wantStats.ApproxDiameter {
					t.Errorf("stats diverged: %+v", got)
					return
				}
				if c.Kind() != KindSocial {
					t.Errorf("kind diverged: %v", c.Kind())
					return
				}
				ecc, _, _ := Eccentricities(g)
				if !reflect.DeepEqual(ecc, wantEcc) {
					t.Error("eccentricities diverged")
					return
				}
				_ = CoreNumbers(g)
				_, _ = WeightedShortestPath(g, 0, NodeID(g.NumNodes()-1))
			}
		}()
	}
	wg.Wait()
}

// TestEccentricitiesAllocs: the all-source BFS must not allocate per visited
// node — only the result slice plus a bounded number of worker/scratch
// allocations, independent of graph size.
func TestEccentricitiesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := BarabasiAlbert(2000, 3, rand.New(rand.NewSource(5)))
	g.Freeze() // freeze + warm the scratch pool outside the measurement
	Eccentricities(g)
	allocs := testing.AllocsPerRun(5, func() { Eccentricities(g) })
	// One ecc slice + parallel.ForEach worker machinery. With per-node
	// allocation this would be ≥ 2000.
	if limit := float64(8*runtime.GOMAXPROCS(0) + 8); allocs > limit {
		t.Fatalf("Eccentricities allocates %v per run, want ≤ %v", allocs, limit)
	}
}

// TestBFSAllocs: a single pooled-scratch BFS allocates nothing.
func TestBFSAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := BarabasiAlbert(2000, 3, rand.New(rand.NewSource(6)))
	g.Freeze()
	visit := func(NodeID, int) bool { return true }
	g.BFS(0, visit)
	if allocs := testing.AllocsPerRun(10, func() { g.BFS(0, visit) }); allocs > 0 {
		t.Fatalf("BFS allocates %v per run, want 0", allocs)
	}
}

// TestWeightedShortestPathAllocs: Dijkstra's working state is pooled; only
// the returned path allocates.
func TestWeightedShortestPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := BarabasiAlbert(2000, 3, rand.New(rand.NewSource(8)))
	dst := NodeID(g.NumNodes() - 1)
	g.Freeze()
	WeightedShortestPath(g, 0, dst)
	if allocs := testing.AllocsPerRun(10, func() { WeightedShortestPath(g, 0, dst) }); allocs > 2 {
		t.Fatalf("WeightedShortestPath allocates %v per run, want ≤ 2 (result path)", allocs)
	}
}

// TestComputeStatsCachedAllocs: a repeated ComputeStats on an unmutated
// graph is a memoized lookup plus one defensive LabelCounts copy.
func TestComputeStatsCachedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g := BarabasiAlbert(500, 3, rand.New(rand.NewSource(9)))
	ComputeStats(g)
	if allocs := testing.AllocsPerRun(10, func() { ComputeStats(g) }); allocs > 4 {
		t.Fatalf("cached ComputeStats allocates %v per run, want ≤ 4", allocs)
	}
}

// TestGrow: preallocation must not change observable contents.
func TestGrow(t *testing.T) {
	g := New()
	g.Grow(4, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("after Grow: %v", g)
	}
	if got := g.Neighbors(b); !reflect.DeepEqual(got, []NodeID{a, c}) {
		t.Fatalf("neighbors %v", got)
	}
}

// TestAdjacencyTestersAgree: the dense-bitset and binary-search membership
// testers behind MaximalCliques must agree with Neighbors on every pair.
func TestAdjacencyTestersAgree(t *testing.T) {
	for name, g := range parityFixtures(t) {
		c := g.Freeze()
		dense := denseAdjacencyTest(c)
		sparse := sparseAdjacencyTest(c)
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			want := make(map[NodeID]bool)
			for _, v := range g.Neighbors(NodeID(u)) {
				want[v] = true
			}
			for v := 0; v < n; v++ {
				d := dense(NodeID(u), NodeID(v))
				s := sparse(NodeID(u), NodeID(v))
				if d != want[NodeID(v)] || s != want[NodeID(v)] {
					t.Fatalf("%s (%d,%d): dense=%v sparse=%v want %v", name, u, v, d, s, want[NodeID(v)])
				}
			}
		}
	}
}
