package graph

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file pins every CSR-rewritten algorithm to the output of the
// pre-refactor slice/map-based implementation (mirroring ann/parity_test.go):
// the naive* functions below are the seed's implementations, kept verbatim
// as executable specifications, and each parity test compares them against
// the frozen-CSR versions on random directed/undirected/weighted/
// disconnected/multigraph fixtures.

// naiveBFS is the seed's slice-queue BFS over Neighbors (which still sorts
// and allocates — exactly what the CSR traversal replaced).
func naiveBFS(g *Graph, start NodeID, visit func(id NodeID, depth int) bool) {
	if start < 0 || int(start) >= g.NumNodes() {
		return
	}
	seen := make([]bool, g.NumNodes())
	type qe struct {
		id NodeID
		d  int
	}
	queue := []qe{{start, 0}}
	seen[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.id, cur.d) {
			return
		}
		for _, nb := range g.Neighbors(cur.id) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, qe{nb, cur.d + 1})
			}
		}
	}
}

// naiveCoreNumbers is the seed's bucket-peeling implementation.
func naiveCoreNumbers(g *Graph) []int {
	n := g.NumNodes()
	deg := make([]int, n)
	und := make([][]NodeID, n)
	for _, e := range g.Edges() {
		und[e.From] = append(und[e.From], e.To)
		und[e.To] = append(und[e.To], e.From)
	}
	maxDeg := 0
	for i := range deg {
		deg[i] = len(und[i])
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	buckets := make([][]NodeID, maxDeg+1)
	for i, d := range deg {
		buckets[d] = append(buckets[d], NodeID(i))
	}
	core := make([]int, n)
	removed := make([]bool, n)
	cur := make([]int, n)
	copy(cur, deg)
	for d := 0; d <= maxDeg; d++ {
		for len(buckets[d]) > 0 {
			u := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if removed[u] || cur[u] != d {
				continue
			}
			removed[u] = true
			core[u] = d
			for _, v := range und[u] {
				if removed[v] || cur[v] <= d {
					continue
				}
				cur[v]--
				buckets[cur[v]] = append(buckets[cur[v]], v)
			}
		}
	}
	return core
}

// naiveEccentricities is the seed's serial BFS-per-source implementation.
func naiveEccentricities(g *Graph) (ecc []int, radius, diameter int) {
	n := g.NumNodes()
	ecc = make([]int, n)
	radius = math.MaxInt
	for u := 0; u < n; u++ {
		max := 0
		naiveBFS(g, NodeID(u), func(_ NodeID, d int) bool {
			if d > max {
				max = d
			}
			return true
		})
		ecc[u] = max
		if max > diameter {
			diameter = max
		}
		if max > 0 && max < radius {
			radius = max
		}
	}
	if radius == math.MaxInt {
		radius = 0
	}
	return ecc, radius, diameter
}

// naiveCountTriangles is the seed's map-set implementation.
func naiveCountTriangles(g *Graph) (int, float64) {
	n := g.NumNodes()
	neigh := make([]map[NodeID]bool, n)
	for i := 0; i < n; i++ {
		neigh[i] = make(map[NodeID]bool)
	}
	for _, e := range g.Edges() {
		neigh[e.From][e.To] = true
		neigh[e.To][e.From] = true
	}
	triTotal := 0
	var ccSum float64
	ccCount := 0
	for u := 0; u < n; u++ {
		nbs := make([]NodeID, 0, len(neigh[u]))
		for v := range neigh[u] {
			nbs = append(nbs, v)
		}
		d := len(nbs)
		if d < 2 {
			continue
		}
		closed := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if neigh[nbs[i]][nbs[j]] {
					closed++
				}
			}
		}
		triTotal += closed
		ccSum += float64(closed) / (float64(d) * float64(d-1) / 2)
		ccCount++
	}
	cc := 0.0
	if ccCount > 0 {
		cc = ccSum / float64(ccCount)
	}
	return triTotal / 3, cc
}

// naiveApproxDiameter is the seed's double sweep over naiveBFS.
func naiveApproxDiameter(g *Graph, comps [][]NodeID) int {
	var largest []NodeID
	for _, c := range comps {
		if len(c) > len(largest) {
			largest = c
		}
	}
	if len(largest) == 0 {
		return 0
	}
	far := func(src NodeID) (NodeID, int) {
		best, bestD := src, 0
		naiveBFS(g, src, func(id NodeID, d int) bool {
			if d > bestD {
				best, bestD = id, d
			}
			return true
		})
		return best, bestD
	}
	x, _ := far(largest[0])
	_, d := far(x)
	return d
}

// naiveGreedyColoring is the seed's map-palette implementation.
func naiveGreedyColoring(g *Graph) ([]int, int) {
	n := g.NumNodes()
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := -1
	for _, u := range order {
		taken := make(map[int]bool)
		for _, v := range g.Neighbors(u) {
			if colors[v] >= 0 {
				taken[colors[v]] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		colors[u] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return colors, maxColor + 1
}

// naiveMaximalCliques is the seed's Bron–Kerbosch over adjacencySets.
func naiveMaximalCliques(g *Graph, maxCliques int) [][]NodeID {
	n := g.NumNodes()
	adj := adjacencySets(g)
	var out [][]NodeID
	var bk func(r, p, x []NodeID)
	bk = func(r, p, x []NodeID) {
		if maxCliques > 0 && len(out) >= maxCliques {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			clique := append([]NodeID(nil), r...)
			sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
			out = append(out, clique)
			return
		}
		var pivot NodeID = -1
		best := -1
		for _, cand := range [][]NodeID{p, x} {
			for _, u := range cand {
				cnt := 0
				for _, v := range p {
					if adj[u][v] {
						cnt++
					}
				}
				if cnt > best {
					best, pivot = cnt, u
				}
			}
		}
		var frontier []NodeID
		for _, v := range p {
			if pivot < 0 || !adj[pivot][v] {
				frontier = append(frontier, v)
			}
		}
		for _, v := range frontier {
			var np, nx []NodeID
			for _, w := range p {
				if adj[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					nx = append(nx, w)
				}
			}
			bk(append(r, v), np, nx)
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	all := make([]NodeID, n)
	for i := range all {
		all[i] = NodeID(i)
	}
	bk(nil, all, nil)
	return out
}

// naiveConnectedComponents is the seed's edge-list DFS implementation.
func naiveConnectedComponents(g *Graph) [][]NodeID {
	n := g.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	und := make([][]NodeID, n)
	for _, e := range g.Edges() {
		und[e.From] = append(und[e.From], e.To)
		und[e.To] = append(und[e.To], e.From)
	}
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		stack := []NodeID{NodeID(s)}
		comp[s] = id
		var members []NodeID
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range und[u] {
				if comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		comps = append(comps, members)
	}
	return comps
}

// naiveDijkstra is the seed's container/heap Dijkstra over the edge table.
type naiveDijkstraItem struct {
	node NodeID
	dist float64
}
type naiveDijkstraHeap []naiveDijkstraItem

func (h naiveDijkstraHeap) Len() int            { return len(h) }
func (h naiveDijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h naiveDijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *naiveDijkstraHeap) Push(x interface{}) { *h = append(*h, x.(naiveDijkstraItem)) }
func (h *naiveDijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func naiveWeightedShortestPath(g *Graph, src, dst NodeID) ([]NodeID, float64) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, math.Inf(1)
	}
	dist := make([]float64, n)
	parent := make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	h := &naiveDijkstraHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(naiveDijkstraItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, e := range g.Edges() {
			var v NodeID
			switch {
			case e.From == it.node:
				v = e.To
			case !g.Directed() && e.To == it.node:
				v = e.From
			default:
				continue
			}
			w := e.Weight
			if w < 0 {
				w = 0
			}
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				parent[v] = it.node
				heap.Push(h, naiveDijkstraItem{v, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	var rev []NodeID
	for cur := dst; cur != -1; cur = parent[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst]
}

// naiveClassify is the seed's direct-scan classifier.
func naiveClassify(g *Graph) Kind {
	if g.NumNodes() == 0 {
		return KindUnknown
	}
	elementish, typed, relLabeled := 0, 0, 0
	for _, n := range g.Nodes() {
		if isElementSymbol(n.Label) || n.Attrs["element"] != "" {
			elementish++
		}
		if t := n.Attrs["type"]; t == "person" || t == "place" || t == "org" {
			typed++
		}
	}
	for _, e := range g.Edges() {
		if e.Label != "" && e.Label != "bond" {
			relLabeled++
		}
	}
	n := g.NumNodes()
	switch {
	case elementish*2 >= n:
		return KindMolecule
	case g.Directed() && (relLabeled*2 >= g.NumEdges() || typed*2 >= n):
		return KindKnowledge
	case typed*2 >= n:
		return KindKnowledge
	default:
		return KindSocial
	}
}

// parityFixtures builds the random graph zoo every parity test runs over:
// undirected/directed, weighted, disconnected, multi-edge, attribute-heavy,
// plus the degenerate empty and singleton cases.
func parityFixtures(t *testing.T) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fixtures := map[string]*Graph{
		"empty":     New(),
		"singleton": New(),
	}
	fixtures["singleton"].AddNode("only")

	random := func(n, m int, directed, weighted, parallelEdges bool) *Graph {
		var g *Graph
		if directed {
			g = NewDirected()
		} else {
			g = New()
		}
		labels := []string{"alice", "C", "server", "N", "bob", ""}
		types := []string{"person", "place", "org", ""}
		rels := []string{"knows", "located_in", "part_of", ""}
		for i := 0; i < n; i++ {
			id := g.AddNode(labels[rng.Intn(len(labels))])
			if tp := types[rng.Intn(len(types))]; tp != "" && rng.Intn(2) == 0 {
				g.SetNodeAttr(id, "type", tp)
			}
		}
		for len(g.Edges()) < m {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if !parallelEdges && g.HasEdge(u, v) {
				continue
			}
			w := 1.0
			if weighted {
				w = 0.25 + 2*rng.Float64()
			}
			g.AddEdgeLabeled(u, v, rels[rng.Intn(len(rels))], w) //nolint:errcheck
		}
		return g
	}
	fixtures["undirected_sparse"] = random(40, 60, false, false, false)
	fixtures["undirected_weighted"] = random(50, 120, false, true, false)
	fixtures["undirected_multi"] = random(30, 70, false, true, true)
	fixtures["directed_sparse"] = random(40, 80, true, false, false)
	fixtures["directed_weighted_multi"] = random(35, 90, true, true, true)
	fixtures["ba_social"] = BarabasiAlbert(80, 3, rng)
	fixtures["molecule"] = Molecule(30, rng)
	fixtures["kg"] = KnowledgeGraph(40, 90, rng)

	// Disconnected: three undirected blobs plus isolated nodes.
	blob := random(15, 25, false, true, false)
	blob2 := random(12, 20, false, true, false)
	u1, err := DisjointUnion(blob, blob2)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := DisjointUnion(u1, random(8, 10, false, false, false))
	if err != nil {
		t.Fatal(err)
	}
	u2.AddNode("iso1")
	u2.AddNode("iso2")
	fixtures["undirected_disconnected"] = u2

	// Disconnected directed.
	d1 := random(12, 30, true, true, false)
	d2 := random(10, 18, true, false, false)
	du, err := DisjointUnion(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	du.AddNode("iso")
	fixtures["directed_disconnected"] = du
	return fixtures
}

func TestBFSParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		for _, src := range []NodeID{0, NodeID(g.NumNodes() / 2), NodeID(g.NumNodes() - 1)} {
			type visit struct {
				id NodeID
				d  int
			}
			var want, got []visit
			naiveBFS(g, src, func(id NodeID, d int) bool { want = append(want, visit{id, d}); return true })
			g.BFS(src, func(id NodeID, d int) bool { got = append(got, visit{id, d}); return true })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s src=%d: BFS order %v, want %v", name, src, got, want)
			}
			// Early-stop parity: cut the traversal after 5 visits.
			want, got = nil, nil
			naiveBFS(g, src, func(id NodeID, d int) bool { want = append(want, visit{id, d}); return len(want) < 5 })
			g.BFS(src, func(id NodeID, d int) bool { got = append(got, visit{id, d}); return len(got) < 5 })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s src=%d: early-stop BFS %v, want %v", name, src, got, want)
			}
		}
	}
}

func TestCoreNumbersParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		if got, want := CoreNumbers(g), naiveCoreNumbers(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: CoreNumbers = %v, want %v", name, got, want)
		}
	}
}

func TestEccentricitiesParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		ecc, r, d := Eccentricities(g)
		wantEcc, wantR, wantD := naiveEccentricities(g)
		if !reflect.DeepEqual(ecc, wantEcc) || r != wantR || d != wantD {
			t.Fatalf("%s: Eccentricities = (%v,%d,%d), want (%v,%d,%d)", name, ecc, r, d, wantEcc, wantR, wantD)
		}
	}
}

func TestTrianglesParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		tri, cc := g.Freeze().countTriangles()
		wantTri, wantCC := naiveCountTriangles(g)
		if tri != wantTri {
			t.Fatalf("%s: triangles = %d, want %d", name, tri, wantTri)
		}
		if math.Abs(cc-wantCC) > 1e-12 {
			t.Fatalf("%s: clustering = %v, want %v", name, cc, wantCC)
		}
	}
}

func TestApproxDiameterParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		comps := g.ConnectedComponents()
		if got, want := g.Freeze().approxDiameter(comps), naiveApproxDiameter(g, comps); got != want {
			t.Fatalf("%s: approxDiameter = %d, want %d", name, got, want)
		}
	}
}

func TestGreedyColoringParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		colors, k := GreedyColoring(g)
		wantColors, wantK := naiveGreedyColoring(g)
		if !reflect.DeepEqual(colors, wantColors) || k != wantK {
			t.Fatalf("%s: GreedyColoring = (%v,%d), want (%v,%d)", name, colors, k, wantColors, wantK)
		}
	}
}

func TestMaximalCliquesParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		for _, max := range []int{0, 5} {
			got := MaximalCliques(g, max)
			want := naiveMaximalCliques(g, max)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s max=%d: MaximalCliques = %v, want %v", name, max, got, want)
			}
		}
	}
}

func TestConnectedComponentsParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		if got, want := g.ConnectedComponents(), naiveConnectedComponents(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: ConnectedComponents = %v, want %v", name, got, want)
		}
	}
}

// pathWeight sums, for each hop of path, the minimum weight among the edges
// that could have carried it — what any correct Dijkstra relaxes over.
func pathWeight(t *testing.T, g *Graph, name string, path []NodeID) float64 {
	t.Helper()
	total := 0.0
	for i := 1; i < len(path); i++ {
		best := math.Inf(1)
		for _, e := range g.Edges() {
			match := e.From == path[i-1] && e.To == path[i] ||
				!g.Directed() && e.From == path[i] && e.To == path[i-1]
			if !match {
				continue
			}
			w := e.Weight
			if w < 0 {
				w = 0
			}
			if w < best {
				best = w
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("%s: path hop %v->%v has no edge", name, path[i-1], path[i])
		}
		total += best
	}
	return total
}

func TestWeightedShortestPathParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		n := g.NumNodes()
		pairs := [][2]NodeID{{0, NodeID(n - 1)}, {NodeID(n / 2), 0}, {NodeID(n / 3), NodeID(2 * n / 3)}, {-1, 0}, {0, NodeID(n)}}
		for _, pr := range pairs {
			got, gw := WeightedShortestPath(g, pr[0], pr[1])
			want, ww := naiveWeightedShortestPath(g, pr[0], pr[1])
			if (got == nil) != (want == nil) {
				t.Fatalf("%s %v: path=%v, naive=%v", name, pr, got, want)
			}
			if got == nil {
				continue
			}
			if math.Abs(gw-ww) > 1e-9 {
				t.Fatalf("%s %v: weight %v, want %v", name, pr, gw, ww)
			}
			// Equal-weight ties may pick different routes; both must be real
			// paths of the claimed (optimal) weight with the right endpoints.
			if got[0] != pr[0] || got[len(got)-1] != pr[1] {
				t.Fatalf("%s %v: path endpoints %v", name, pr, got)
			}
			if w := pathWeight(t, g, name, got); math.Abs(w-gw) > 1e-9 {
				t.Fatalf("%s %v: claimed weight %v but edges sum to %v (path %v)", name, pr, gw, w, got)
			}
		}
	}
}

func TestComputeStatsParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		s := ComputeStats(g)
		// Reassemble the seed's Stats from the naive pieces.
		n, m := g.NumNodes(), g.NumEdges()
		if s.Nodes != n || s.Edges != m || s.Directed != g.Directed() {
			t.Fatalf("%s: size fields %+v", name, s)
		}
		if n == 0 {
			continue
		}
		minD, maxD := math.MaxInt, 0
		var sum, sumSq float64
		labelCounts := map[string]int{}
		for _, nd := range g.Nodes() {
			d := g.Degree(nd.ID)
			if g.Directed() {
				d += len(g.InNeighbors(nd.ID))
			}
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
			sum += float64(d)
			sumSq += float64(d) * float64(d)
			labelCounts[nd.Label]++
		}
		if s.MinDegree != minD || s.MaxDegree != maxD {
			t.Fatalf("%s: degree extremes (%d,%d), want (%d,%d)", name, s.MinDegree, s.MaxDegree, minD, maxD)
		}
		if math.Abs(s.MeanDegree-sum/float64(n)) > 1e-12 {
			t.Fatalf("%s: mean degree %v", name, s.MeanDegree)
		}
		if !reflect.DeepEqual(s.LabelCounts, labelCounts) {
			t.Fatalf("%s: label counts %v, want %v", name, s.LabelCounts, labelCounts)
		}
		comps := naiveConnectedComponents(g)
		largest := 0
		for _, c := range comps {
			if len(c) > largest {
				largest = len(c)
			}
		}
		if s.Components != len(comps) || s.LargestComponent != largest {
			t.Fatalf("%s: components (%d,%d), want (%d,%d)", name, s.Components, s.LargestComponent, len(comps), largest)
		}
		tri, cc := naiveCountTriangles(g)
		if s.Triangles != tri || math.Abs(s.ClusteringCoeff-cc) > 1e-12 {
			t.Fatalf("%s: triangles (%d,%v), want (%d,%v)", name, s.Triangles, s.ClusteringCoeff, tri, cc)
		}
		if want := naiveApproxDiameter(g, comps); s.ApproxDiameter != want {
			t.Fatalf("%s: approx diameter %d, want %d", name, s.ApproxDiameter, want)
		}
	}
}

func TestClassifyParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		if got, want := Classify(g), naiveClassify(g); got != want {
			t.Fatalf("%s: Classify = %v, want %v", name, got, want)
		}
	}
}

func TestDegreeSequenceParity(t *testing.T) {
	for name, g := range parityFixtures(t) {
		want := make([]int, g.NumNodes())
		for i := range want {
			want[i] = g.Degree(NodeID(i))
			if g.Directed() {
				want[i] += len(g.InNeighbors(NodeID(i)))
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(want)))
		if got := DegreeSequence(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: DegreeSequence = %v, want %v", name, got, want)
		}
	}
}

// TestFreezeInvalidation: a mutation must produce a fresh CSR and fresh
// memoized stats; an unmutated graph must share one CSR.
func TestFreezeInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := BarabasiAlbert(30, 2, rng)
	c1 := g.Freeze()
	if c2 := g.Freeze(); c1 != c2 {
		t.Fatal("Freeze rebuilt the CSR without a mutation")
	}
	before := ComputeStats(g)
	v := g.Version()
	if err := g.AddEdge(0, NodeID(g.NumNodes()-1)); err != nil {
		// Possibly already present; relabel instead — any mutation bumps.
		g.SetNodeLabel(0, "renamed")
	}
	if g.Version() == v {
		t.Fatal("mutation did not bump the version")
	}
	if c3 := g.Freeze(); c3 == c1 {
		t.Fatal("Freeze returned a stale CSR after mutation")
	}
	after := ComputeStats(g)
	if reflect.DeepEqual(before, after) {
		t.Fatal("stats identical after mutation — cache not invalidated")
	}
	_ = fmt.Sprintf("%v", after)
}
