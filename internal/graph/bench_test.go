package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	return BarabasiAlbert(n, 2, rand.New(rand.NewSource(1)))
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b, 2000)
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(0, func(NodeID, int) bool { return true })
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b, 2000)
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

func BenchmarkComputeStats(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		g := benchGraph(b, 500)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.SetNodeLabel(0, "v") // version bump: full freeze + recompute
			ComputeStats(g)
		}
	})
	b.Run("cached", func(b *testing.B) {
		g := benchGraph(b, 500)
		ComputeStats(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ComputeStats(g)
		}
	})
}

func BenchmarkFreeze(b *testing.B) {
	g := benchGraph(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SetNodeLabel(0, "v") // invalidate so every iteration rebuilds
		g.Freeze()
	}
}

func BenchmarkEccentricities(b *testing.B) {
	for _, n := range []int{500, 2000} {
		g := benchGraph(b, n)
		g.Freeze()
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Eccentricities(g)
			}
		})
	}
}

// BenchmarkBFSFrontier pits the retired queue-only BFS (eccFromQueue) against
// the hybrid queue/bitset traversal (eccFrom) on graphs dense enough to reach
// the bottom-up mode, plus the sparse BA graph where the hybrid must not
// regress (it never promotes there).
func BenchmarkBFSFrontier(b *testing.B) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"er_n2000_d40", ErdosRenyi(2000, 0.02, rand.New(rand.NewSource(1)))},
		{"er_n4000_d120", ErdosRenyi(4000, 0.03, rand.New(rand.NewSource(2)))},
		{"planted_n2000", PlantedCommunities(4, 500, 0.08, 0.002, rand.New(rand.NewSource(3)))},
		{"ba_n2000_sparse", BarabasiAlbert(2000, 2, rand.New(rand.NewSource(4)))},
	}
	for _, tc := range graphs {
		c := tc.g.Freeze()
		for _, impl := range []struct {
			name string
			ecc  func(int32, *travScratch) int32
		}{{"queue", c.eccFromQueue}, {"hybrid", c.eccFrom}} {
			b.Run(tc.name+"/"+impl.name, func(b *testing.B) {
				sc := getTrav(c.n)
				defer putTrav(sc)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					impl.ecc(int32(i%c.n), sc)
				}
			})
		}
	}
}

func BenchmarkCoreNumbers(b *testing.B) {
	g := benchGraph(b, 2000)
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoreNumbers(g)
	}
}

func BenchmarkMaximalCliques(b *testing.B) {
	g := benchGraph(b, 300)
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalCliques(g, 0)
	}
}

func BenchmarkWeightedShortestPath(b *testing.B) {
	g := benchGraph(b, 2000)
	g.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WeightedShortestPath(g, 0, NodeID(g.NumNodes()-1))
	}
}

func BenchmarkSubgraphIsomorphism(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	host := Molecule(60, rng)
	pattern := New()
	c1 := pattern.AddNode("C")
	c2 := pattern.AddNode("C")
	o := pattern.AddNode("O")
	pattern.AddEdge(c1, c2) //nolint:errcheck
	pattern.AddEdge(c2, o)  //nolint:errcheck
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FindSubgraphIsomorphisms(pattern, host, IsoOptions{MaxMatches: 16})
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	g := benchGraph(b, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := g.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseJSON isolates the wire → Graph decode (the hot path of every
// graph upload), excluding serialization.
func BenchmarkParseJSON(b *testing.B) {
	for _, n := range []int{500, 2000} {
		g := benchGraph(b, n)
		data, err := g.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ParseJSON(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkContentHash(b *testing.B) {
	for _, n := range []int{100, 1000} {
		g := benchGraph(b, n)
		b.Run(fmt.Sprintf("cold_n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Re-bump so every iteration pays the full canonical hash
				// (MarkShared-free mutation: relabel to the same value).
				g.SetNodeLabel(0, "u0")
				g.ContentHash()
			}
		})
		b.Run(fmt.Sprintf("cached_n%d", n), func(b *testing.B) {
			g.ContentHash()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.ContentHash()
			}
		})
	}
}

func BenchmarkGenerators(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	b.Run("barabasi_albert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BarabasiAlbert(500, 2, rng)
		}
	})
	b.Run("molecule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Molecule(40, rng)
		}
	})
	b.Run("knowledge_graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KnowledgeGraph(100, 250, rng)
		}
	})
}
