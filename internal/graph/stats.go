package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"chatgraph/internal/parallel"
)

// Stats summarizes the structural properties the report-generation APIs talk
// about: size, density, degree distribution, clustering, components.
type Stats struct {
	Nodes             int
	Edges             int
	Directed          bool
	Density           float64
	MinDegree         int
	MaxDegree         int
	MeanDegree        float64
	DegreeStdDev      float64
	Components        int
	LargestComponent  int
	ClusteringCoeff   float64 // global (transitivity-style average of local)
	Triangles         int
	LabelCounts       map[string]int
	ApproxDiameter    int // double-sweep lower bound on the largest component
	AssortativityHint string
}

// ComputeStats derives Stats from g. The result is memoized on the frozen
// CSR view, so repeated calls on an unmutated graph are O(1); any mutation
// (version bump) triggers a full recompute. The heavy pieces — triangle
// counting and the diameter sweep — run on the CSR with pooled scratch, and
// triangle counting fans across parallel.ForEach.
func ComputeStats(g *Graph) Stats {
	return g.Freeze().Stats()
}

// Stats returns the memoized statistics of the frozen graph. The returned
// LabelCounts map is a fresh copy each call, so callers may modify it.
func (c *CSR) Stats() Stats {
	c.statsOnce.Do(func() { c.stats = c.computeStats() })
	s := c.stats
	counts := make(map[string]int, len(s.LabelCounts))
	for k, v := range s.LabelCounts {
		counts[k] = v
	}
	s.LabelCounts = counts
	return s
}

func (c *CSR) computeStats() Stats {
	n, m := c.n, c.m
	s := Stats{Nodes: n, Edges: m, Directed: c.directed, LabelCounts: map[string]int{}}
	if n == 0 {
		return s
	}
	possible := float64(n) * float64(n-1)
	if !c.directed {
		possible /= 2
	}
	if possible > 0 {
		s.Density = float64(m) / possible
	}
	s.MinDegree = math.MaxInt
	var sum, sumSq float64
	for u := 0; u < n; u++ {
		d := c.OutDegree(NodeID(u))
		if c.directed {
			d += c.InDegree(NodeID(u))
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		s.LabelCounts[c.labels[u]]++
	}
	s.MeanDegree = sum / float64(n)
	variance := sumSq/float64(n) - s.MeanDegree*s.MeanDegree
	if variance > 0 {
		s.DegreeStdDev = math.Sqrt(variance)
	}
	comps := c.components()
	s.Components = len(comps)
	for _, comp := range comps {
		if len(comp) > s.LargestComponent {
			s.LargestComponent = len(comp)
		}
	}
	s.Triangles, s.ClusteringCoeff = c.countTriangles()
	s.ApproxDiameter = c.approxDiameter(comps)
	switch {
	case s.DegreeStdDev > 2*s.MeanDegree:
		s.AssortativityHint = "heavy-tailed degree distribution (hub-dominated)"
	case s.DegreeStdDev < 0.5*s.MeanDegree:
		s.AssortativityHint = "near-regular degree distribution"
	default:
		s.AssortativityHint = "moderate degree heterogeneity"
	}
	return s
}

// countTriangles returns the triangle count and average local clustering
// coefficient over nodes with (distinct) degree ≥ 2, treating edges as
// undirected and ignoring parallel duplicates — the same set semantics as
// the map-based implementation this replaced. Per node u it counts closed
// wedges by merge-intersecting the sorted neighbor lists of u and each of
// its neighbors, and the independent per-node counts fan out across
// parallel.ForEach.
func (c *CSR) countTriangles() (int, float64) {
	n := c.n
	if n == 0 {
		return 0, 0
	}
	closed := make([]int64, n)
	distinct := make([]int32, n)
	parallel.ForEach(n, func(ui int) {
		u := NodeID(ui)
		nu := c.undNeighbors(u)
		// Distinct degree (rows are sorted; duplicates are adjacent).
		var d int32
		var pairSum int64
		prev := NodeID(-1)
		for _, v := range nu {
			if v == prev {
				continue
			}
			prev = v
			d++
			pairSum += int64(sortedIntersectionSize(nu, c.undNeighbors(v)))
		}
		distinct[ui] = d
		// Each unordered adjacent pair {v,w} ⊂ N(u) was counted once from v
		// and once from w.
		closed[ui] = pairSum / 2
	})
	var triTotal int64
	var ccSum float64
	ccCount := 0
	for i := 0; i < n; i++ {
		d := float64(distinct[i])
		if distinct[i] < 2 {
			continue
		}
		triTotal += closed[i]
		ccSum += float64(closed[i]) / (d * (d - 1) / 2)
		ccCount++
	}
	cc := 0.0
	if ccCount > 0 {
		cc = ccSum / float64(ccCount)
	}
	return int(triTotal / 3), cc
}

// sortedIntersectionSize counts the distinct values present in both sorted
// slices, skipping duplicate runs in each.
func sortedIntersectionSize(a, b []NodeID) int {
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av < bv:
			i++
		case av > bv:
			j++
		default:
			count++
			for i < len(a) && a[i] == av {
				i++
			}
			for j < len(b) && b[j] == bv {
				j++
			}
		}
	}
	return count
}

// approxDiameter runs a double BFS sweep on the largest component: BFS from
// an arbitrary node finds the farthest node x; BFS from x finds a lower bound
// on the diameter that is exact on trees and close in practice.
func (c *CSR) approxDiameter(comps [][]NodeID) int {
	var largest []NodeID
	for _, comp := range comps {
		if len(comp) > len(largest) {
			largest = comp
		}
	}
	if len(largest) == 0 {
		return 0
	}
	sc := getTrav(c.n)
	defer putTrav(sc)
	x, _ := c.farthest(int32(largest[0]), sc)
	_, d := c.farthest(int32(x), sc)
	return int(d)
}

// Describe renders the stats as the bullet lines report APIs embed in chat
// answers.
func (s Stats) Describe() string {
	var b strings.Builder
	kind := "undirected"
	if s.Directed {
		kind = "directed"
	}
	fmt.Fprintf(&b, "- %d nodes, %d edges (%s), density %.4f\n", s.Nodes, s.Edges, kind, s.Density)
	fmt.Fprintf(&b, "- degree: min %d, mean %.2f (σ %.2f), max %d; %s\n",
		s.MinDegree, s.MeanDegree, s.DegreeStdDev, s.MaxDegree, s.AssortativityHint)
	fmt.Fprintf(&b, "- %d connected component(s); largest has %d nodes; approx diameter %d\n",
		s.Components, s.LargestComponent, s.ApproxDiameter)
	fmt.Fprintf(&b, "- %d triangles, clustering coefficient %.3f\n", s.Triangles, s.ClusteringCoeff)
	if len(s.LabelCounts) > 0 && len(s.LabelCounts) <= 12 {
		keys := make([]string, 0, len(s.LabelCounts))
		for k := range s.LabelCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			name := k
			if name == "" {
				name = "(unlabeled)"
			}
			parts = append(parts, fmt.Sprintf("%s×%d", name, s.LabelCounts[k]))
		}
		fmt.Fprintf(&b, "- node labels: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// Kind is the coarse graph category ChatGraph routes on: social graphs get
// social APIs, molecules get chemistry APIs, knowledge graphs get cleaning
// and inference APIs.
type Kind int

const (
	KindUnknown Kind = iota
	KindSocial
	KindMolecule
	KindKnowledge
)

// String returns the lowercase category name.
func (k Kind) String() string {
	switch k {
	case KindSocial:
		return "social"
	case KindMolecule:
		return "molecule"
	case KindKnowledge:
		return "knowledge"
	default:
		return "unknown"
	}
}

// Classify predicts the graph category from cheap structural and label
// signals. This implements the paper's "ChatGraph first predicts the type of
// G" step (§IV-1). Like ComputeStats, the result is memoized per graph
// version on the frozen view.
func Classify(g *Graph) Kind {
	return g.Freeze().Kind()
}

// Kind returns the memoized category of the frozen graph, computed from the
// label/attribute signals snapshotted at freeze time.
func (c *CSR) Kind() Kind {
	c.kindOnce.Do(func() { c.kind = c.classify() })
	return c.kind
}

func (c *CSR) classify() Kind {
	n := c.n
	if n == 0 {
		return KindUnknown
	}
	switch {
	case c.elementish*2 >= n:
		return KindMolecule
	case c.directed && (c.relLabeled*2 >= c.m || c.typed*2 >= n):
		return KindKnowledge
	case c.typed*2 >= n:
		return KindKnowledge
	default:
		return KindSocial
	}
}

var elementSymbols = map[string]bool{
	"H": true, "C": true, "N": true, "O": true, "S": true, "P": true,
	"F": true, "Cl": true, "Br": true, "I": true, "B": true, "Si": true,
}

func isElementSymbol(s string) bool { return elementSymbols[s] }
