package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes the structural properties the report-generation APIs talk
// about: size, density, degree distribution, clustering, components.
type Stats struct {
	Nodes             int
	Edges             int
	Directed          bool
	Density           float64
	MinDegree         int
	MaxDegree         int
	MeanDegree        float64
	DegreeStdDev      float64
	Components        int
	LargestComponent  int
	ClusteringCoeff   float64 // global (transitivity-style average of local)
	Triangles         int
	LabelCounts       map[string]int
	ApproxDiameter    int // double-sweep lower bound on the largest component
	AssortativityHint string
}

// ComputeStats derives Stats from g in O(V·d²) time (d = max degree), which
// is fine for the chat-scale graphs ChatGraph handles.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	m := g.NumEdges()
	s := Stats{Nodes: n, Edges: m, Directed: g.Directed(), LabelCounts: map[string]int{}}
	if n == 0 {
		return s
	}
	possible := float64(n) * float64(n-1)
	if !g.Directed() {
		possible /= 2
	}
	if possible > 0 {
		s.Density = float64(m) / possible
	}
	s.MinDegree = math.MaxInt
	var sum, sumSq float64
	for _, nd := range g.Nodes() {
		d := g.Degree(nd.ID)
		if g.Directed() {
			d += len(g.InNeighbors(nd.ID))
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		s.LabelCounts[nd.Label]++
	}
	s.MeanDegree = sum / float64(n)
	variance := sumSq/float64(n) - s.MeanDegree*s.MeanDegree
	if variance > 0 {
		s.DegreeStdDev = math.Sqrt(variance)
	}
	comps := g.ConnectedComponents()
	s.Components = len(comps)
	for _, c := range comps {
		if len(c) > s.LargestComponent {
			s.LargestComponent = len(c)
		}
	}
	s.Triangles, s.ClusteringCoeff = countTriangles(g)
	s.ApproxDiameter = approxDiameter(g, comps)
	switch {
	case s.DegreeStdDev > 2*s.MeanDegree:
		s.AssortativityHint = "heavy-tailed degree distribution (hub-dominated)"
	case s.DegreeStdDev < 0.5*s.MeanDegree:
		s.AssortativityHint = "near-regular degree distribution"
	default:
		s.AssortativityHint = "moderate degree heterogeneity"
	}
	return s
}

// countTriangles returns the triangle count and average local clustering
// coefficient over nodes with degree ≥ 2, treating edges as undirected.
func countTriangles(g *Graph) (int, float64) {
	n := g.NumNodes()
	neigh := make([]map[NodeID]bool, n)
	for i := 0; i < n; i++ {
		neigh[i] = make(map[NodeID]bool)
	}
	for _, e := range g.Edges() {
		neigh[e.From][e.To] = true
		neigh[e.To][e.From] = true
	}
	triTotal := 0
	var ccSum float64
	ccCount := 0
	for u := 0; u < n; u++ {
		nbs := make([]NodeID, 0, len(neigh[u]))
		for v := range neigh[u] {
			nbs = append(nbs, v)
		}
		d := len(nbs)
		if d < 2 {
			continue
		}
		closed := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if neigh[nbs[i]][nbs[j]] {
					closed++
				}
			}
		}
		triTotal += closed
		ccSum += float64(closed) / (float64(d) * float64(d-1) / 2)
		ccCount++
	}
	cc := 0.0
	if ccCount > 0 {
		cc = ccSum / float64(ccCount)
	}
	return triTotal / 3, cc
}

// approxDiameter runs a double BFS sweep on the largest component: BFS from
// an arbitrary node finds the farthest node x; BFS from x finds a lower bound
// on the diameter that is exact on trees and close in practice.
func approxDiameter(g *Graph, comps [][]NodeID) int {
	var largest []NodeID
	for _, c := range comps {
		if len(c) > len(largest) {
			largest = c
		}
	}
	if len(largest) == 0 {
		return 0
	}
	far := func(src NodeID) (NodeID, int) {
		best, bestD := src, 0
		g.BFS(src, func(id NodeID, d int) bool {
			if d > bestD {
				best, bestD = id, d
			}
			return true
		})
		return best, bestD
	}
	x, _ := far(largest[0])
	_, d := far(x)
	return d
}

// Describe renders the stats as the bullet lines report APIs embed in chat
// answers.
func (s Stats) Describe() string {
	var b strings.Builder
	kind := "undirected"
	if s.Directed {
		kind = "directed"
	}
	fmt.Fprintf(&b, "- %d nodes, %d edges (%s), density %.4f\n", s.Nodes, s.Edges, kind, s.Density)
	fmt.Fprintf(&b, "- degree: min %d, mean %.2f (σ %.2f), max %d; %s\n",
		s.MinDegree, s.MeanDegree, s.DegreeStdDev, s.MaxDegree, s.AssortativityHint)
	fmt.Fprintf(&b, "- %d connected component(s); largest has %d nodes; approx diameter %d\n",
		s.Components, s.LargestComponent, s.ApproxDiameter)
	fmt.Fprintf(&b, "- %d triangles, clustering coefficient %.3f\n", s.Triangles, s.ClusteringCoeff)
	if len(s.LabelCounts) > 0 && len(s.LabelCounts) <= 12 {
		keys := make([]string, 0, len(s.LabelCounts))
		for k := range s.LabelCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			name := k
			if name == "" {
				name = "(unlabeled)"
			}
			parts = append(parts, fmt.Sprintf("%s×%d", name, s.LabelCounts[k]))
		}
		fmt.Fprintf(&b, "- node labels: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// Kind is the coarse graph category ChatGraph routes on: social graphs get
// social APIs, molecules get chemistry APIs, knowledge graphs get cleaning
// and inference APIs.
type Kind int

const (
	KindUnknown Kind = iota
	KindSocial
	KindMolecule
	KindKnowledge
)

// String returns the lowercase category name.
func (k Kind) String() string {
	switch k {
	case KindSocial:
		return "social"
	case KindMolecule:
		return "molecule"
	case KindKnowledge:
		return "knowledge"
	default:
		return "unknown"
	}
}

// Classify predicts the graph category from cheap structural and label
// signals. This implements the paper's "ChatGraph first predicts the type of
// G" step (§IV-1).
func Classify(g *Graph) Kind {
	if g.NumNodes() == 0 {
		return KindUnknown
	}
	elementish, typed, relLabeled := 0, 0, 0
	for _, n := range g.Nodes() {
		if isElementSymbol(n.Label) || n.Attrs["element"] != "" {
			elementish++
		}
		if t := n.Attrs["type"]; t == "person" || t == "place" || t == "org" {
			typed++
		}
	}
	for _, e := range g.Edges() {
		if e.Label != "" && e.Label != "bond" {
			relLabeled++
		}
	}
	n := g.NumNodes()
	switch {
	case elementish*2 >= n:
		return KindMolecule
	case g.Directed() && (relLabeled*2 >= g.NumEdges() || typed*2 >= n):
		return KindKnowledge
	case typed*2 >= n:
		return KindKnowledge
	default:
		return KindSocial
	}
}

var elementSymbols = map[string]bool{
	"H": true, "C": true, "N": true, "O": true, "S": true, "P": true,
	"F": true, "Cl": true, "Br": true, "I": true, "B": true, "Si": true,
}

func isElementSymbol(s string) bool { return elementSymbols[s] }
