// Package graph implements the labeled property-graph substrate used across
// ChatGraph: nodes and edges with string labels and attribute maps, directed
// or undirected adjacency, traversal, serialization, synthetic generators,
// and graph statistics.
//
// Graphs are the unit of user input in ChatGraph prompts ("here is a graph G,
// write a report for G") and the unit the analysis APIs in internal/apis
// operate on.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node within one graph. IDs are dense non-negative
// integers assigned by AddNode in insertion order.
type NodeID int

// Node is a labeled vertex with optional attributes.
type Node struct {
	ID    NodeID
	Label string
	Attrs map[string]string
}

// Edge connects From to To. In an undirected graph each edge is stored once
// but visible from both endpoints' adjacency lists.
type Edge struct {
	From  NodeID
	To    NodeID
	Label string
	// Weight defaults to 1 for unweighted graphs.
	Weight float64
}

// Graph is a mutable labeled property graph. The zero value is not usable;
// construct with New or NewDirected.
//
// Mutation is not safe for concurrent use, but any number of goroutines may
// read one graph concurrently — including through Freeze, whose frozen CSR
// view backs every traversal-heavy algorithm in this package.
type Graph struct {
	// Name is an optional human-readable identifier ("G", "caffeine", ...).
	Name     string
	directed bool
	nodes    []Node
	// adj[u] lists indexes into edges for all edges incident to u (for
	// undirected graphs) or leaving u (for directed graphs).
	adj   [][]int
	radj  [][]int // directed only: edges entering u
	edges []Edge

	// version counts mutations; Freeze and the executor's invocation cache
	// key on it, so any structural or label change invalidates both.
	version uint64
	// frozenMu guards frozen (the cached CSR) and the cached content hash,
	// both memoized for the current version.
	frozenMu sync.Mutex
	frozen   *CSR
	// Cached ContentHash/ExactHash for their versions; the valid flags
	// distinguish "never computed" from "version 0 computed".
	hash         ContentHash
	hashVersion  uint64
	hashValid    bool
	exact        ExactHash
	exactVersion uint64
	exactValid   bool
	// shared marks a graph interned by graphstore and visible to any number
	// of concurrent readers. Shared graphs must never mutate: the executor
	// clones them before running a mutating chain, and race-enabled builds
	// panic on any mutation that slips through.
	shared atomic.Bool
}

// MarkShared flags g as an interned, multi-reader graph. There is no way
// back: once shared, the instance must stay immutable for its lifetime.
func (g *Graph) MarkShared() { g.shared.Store(true) }

// Shared reports whether g is an interned graph shared across sessions.
// Writers (the executor, graph-editing callers) must clone before mutating.
func (g *Graph) Shared() bool { return g.shared.Load() }

// Version returns the mutation counter: it changes whenever the graph's
// nodes, edges, labels, or attributes change, so equal versions on the same
// Graph imply identical analysis results.
func (g *Graph) Version() uint64 { return g.version }

// bump records a mutation, invalidating any frozen view or cached result
// keyed on the previous version. Race-enabled builds turn a mutation of a
// shared interned graph into a panic — the bug it catches (an API missing
// its Mutates flag, or a caller skipping the clone) corrupts every session
// holding the graph, so tests should fail loudly, not flake.
func (g *Graph) bump() {
	if raceEnabled && g.shared.Load() {
		panic("graph: mutation of a shared interned graph (clone it, or mark the API Mutates)")
	}
	g.version++
}

// Grow preallocates capacity for nodes additional nodes and edges additional
// edges, so bulk constructions (complement, union, JSON decode) append
// without re-growing the backing arrays.
func (g *Graph) Grow(nodes, edges int) {
	if nodes > 0 {
		g.nodes = append(make([]Node, 0, len(g.nodes)+nodes), g.nodes...)
		g.adj = append(make([][]int, 0, len(g.adj)+nodes), g.adj...)
		if g.directed {
			g.radj = append(make([][]int, 0, len(g.radj)+nodes), g.radj...)
		}
	}
	if edges > 0 {
		g.edges = append(make([]Edge, 0, len(g.edges)+edges), g.edges...)
	}
}

// New returns an empty undirected graph.
func New() *Graph { return &Graph{} }

// NewDirected returns an empty directed graph.
func NewDirected() *Graph { return &Graph{directed: true} }

// Directed reports whether g stores directed edges.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count (each undirected edge counted once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node with the given label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Label: label})
	g.adj = append(g.adj, nil)
	if g.directed {
		g.radj = append(g.radj, nil)
	}
	g.bump()
	return id
}

// AddNodeAttrs appends a node with label and a copy of attrs.
func (g *Graph) AddNodeAttrs(label string, attrs map[string]string) NodeID {
	id := g.AddNode(label)
	if len(attrs) > 0 {
		m := make(map[string]string, len(attrs))
		for k, v := range attrs {
			m[k] = v
		}
		g.nodes[id].Attrs = m
	}
	return id
}

// Node returns the node with the given ID. It panics on out-of-range IDs.
func (g *Graph) Node(id NodeID) Node {
	return g.nodes[id]
}

// SetNodeLabel relabels node id.
func (g *Graph) SetNodeLabel(id NodeID, label string) {
	g.nodes[id].Label = label
	g.bump()
}

// SetNodeAttr sets one attribute on node id.
func (g *Graph) SetNodeAttr(id NodeID, key, val string) {
	if g.nodes[id].Attrs == nil {
		g.nodes[id].Attrs = make(map[string]string)
	}
	g.nodes[id].Attrs[key] = val
	g.bump()
}

// Nodes returns the nodes in ID order. The returned slice is shared; callers
// must not modify it.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns all edges. The returned slice is shared; callers must not
// modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// valid reports whether id names an existing node.
func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// AddEdge inserts an edge with weight 1 and empty label. It returns an error
// on dangling endpoints or self-loops (which no ChatGraph workload uses).
func (g *Graph) AddEdge(from, to NodeID) error {
	return g.AddEdgeLabeled(from, to, "", 1)
}

// AddEdgeLabeled inserts a labeled, weighted edge.
func (g *Graph) AddEdgeLabeled(from, to NodeID, label string, weight float64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("graph: edge (%d,%d) has endpoint outside [0,%d)", from, to, len(g.nodes))
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d rejected", from)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Label: label, Weight: weight})
	g.adj[from] = append(g.adj[from], idx)
	if g.directed {
		g.radj[to] = append(g.radj[to], idx)
	} else {
		g.adj[to] = append(g.adj[to], idx)
	}
	g.bump()
	return nil
}

// HasEdge reports whether an edge from→to exists (either direction for
// undirected graphs).
func (g *Graph) HasEdge(from, to NodeID) bool {
	if !g.valid(from) || !g.valid(to) {
		return false
	}
	for _, ei := range g.adj[from] {
		e := g.edges[ei]
		if e.From == from && e.To == to || !g.directed && e.From == to && e.To == from {
			return true
		}
	}
	return false
}

// EdgeBetween returns the first edge between from and to and true, or a zero
// Edge and false when none exists.
func (g *Graph) EdgeBetween(from, to NodeID) (Edge, bool) {
	if !g.valid(from) || !g.valid(to) {
		return Edge{}, false
	}
	for _, ei := range g.adj[from] {
		e := g.edges[ei]
		if e.From == from && e.To == to || !g.directed && e.From == to && e.To == from {
			return e, true
		}
	}
	return Edge{}, false
}

// RemoveEdge deletes one edge between from and to (the first found,
// whatever its label) and reports whether an edge was removed. Removal is
// O(E) because edge indexes are compacted; cleaning workloads remove few
// edges so this is acceptable.
func (g *Graph) RemoveEdge(from, to NodeID) bool {
	return g.removeEdge(from, to, "", false)
}

// RemoveEdgeLabeled deletes one edge between from and to carrying exactly
// the given label, leaving differently-labeled parallel edges intact.
func (g *Graph) RemoveEdgeLabeled(from, to NodeID, label string) bool {
	return g.removeEdge(from, to, label, true)
}

func (g *Graph) removeEdge(from, to NodeID, label string, matchLabel bool) bool {
	target := -1
	for i, e := range g.edges {
		if matchLabel && e.Label != label {
			continue
		}
		if e.From == from && e.To == to || !g.directed && e.From == to && e.To == from {
			target = i
			break
		}
	}
	if target < 0 {
		return false
	}
	g.edges = append(g.edges[:target], g.edges[target+1:]...)
	g.rebuildAdj()
	g.bump()
	return true
}

// rebuildAdj recomputes adjacency lists from the edge slice.
func (g *Graph) rebuildAdj() {
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	for i := range g.radj {
		g.radj[i] = g.radj[i][:0]
	}
	for idx, e := range g.edges {
		g.adj[e.From] = append(g.adj[e.From], idx)
		if g.directed {
			g.radj[e.To] = append(g.radj[e.To], idx)
		} else {
			g.adj[e.To] = append(g.adj[e.To], idx)
		}
	}
}

// Neighbors returns the IDs adjacent to u (out-neighbors for directed
// graphs), in deterministic ascending order.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[u]))
	for _, ei := range g.adj[u] {
		e := g.edges[ei]
		if e.From == u {
			out = append(out, e.To)
		} else {
			out = append(out, e.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InNeighbors returns the IDs with an edge into u. For undirected graphs it
// equals Neighbors.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	if !g.directed {
		return g.Neighbors(u)
	}
	out := make([]NodeID, 0, len(g.radj[u]))
	for _, ei := range g.radj[u] {
		out = append(out, g.edges[ei].From)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of incident edges at u (out-degree for directed
// graphs).
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// InDegree returns the number of edges entering u. For undirected graphs it
// equals Degree. Unlike InNeighbors it reads the adjacency length directly
// and never materializes a slice.
func (g *Graph) InDegree(u NodeID) int {
	if !g.directed {
		return len(g.adj[u])
	}
	return len(g.radj[u])
}

// TotalDegree returns the degree counting both directions: Degree for
// undirected graphs, in-degree plus out-degree for directed ones — the
// quantity the degree-sequence and stats code ranks by.
func (g *Graph) TotalDegree(u NodeID) int {
	if !g.directed {
		return len(g.adj[u])
	}
	return len(g.adj[u]) + len(g.radj[u])
}

// Clone returns a deep copy of g. The copy is private: it is never marked
// shared (even when g is an interned graph), and its content hash is
// recomputed lazily rather than copied, so cloning a shared graph races
// with nothing.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, directed: g.directed, version: g.version}
	c.nodes = make([]Node, len(g.nodes))
	copy(c.nodes, g.nodes)
	for i, n := range g.nodes {
		if len(n.Attrs) == 0 {
			// Don't alias (or copy) empty maps; the clone lazily re-creates
			// one if SetNodeAttr is ever called.
			c.nodes[i].Attrs = nil
			continue
		}
		m := make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			m[k] = v
		}
		c.nodes[i].Attrs = m
	}
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	c.adj = make([][]int, len(g.adj))
	for i, a := range g.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	if g.directed {
		c.radj = make([][]int, len(g.radj))
		for i, a := range g.radj {
			c.radj[i] = append([]int(nil), a...)
		}
	}
	return c
}

// BFS visits nodes in breadth-first order from start, calling visit with each
// node and its hop distance. Traversal stops early if visit returns false.
// Neighbors are visited in ascending ID order. The traversal runs over the
// frozen CSR view with pooled scratch, so it allocates nothing per visited
// node; visit must not mutate the graph mid-traversal.
func (g *Graph) BFS(start NodeID, visit func(id NodeID, depth int) bool) {
	if !g.valid(start) {
		return
	}
	g.Freeze().BFS(start, visit)
}

// KHopSubgraphNodes returns the set of nodes within l hops of u (inclusive of
// u), in ascending ID order.
func (g *Graph) KHopSubgraphNodes(u NodeID, l int) []NodeID {
	var out []NodeID
	g.BFS(u, func(id NodeID, depth int) bool {
		if depth > l {
			return false
		}
		out = append(out, id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConnectedComponents returns, for undirected graphs, the weakly connected
// components as slices of node IDs (each sorted; components ordered by their
// smallest member). Directed graphs are treated as undirected here.
func (g *Graph) ConnectedComponents() [][]NodeID {
	return g.Freeze().components()
}

// ShortestPathLengths runs an unweighted BFS from src and returns hop counts
// to every node; unreachable nodes get -1. The traversal uses the hybrid
// queue/bitset frontier, so dense graphs pay bottom-up sweeps instead of
// per-edge scans.
func (g *Graph) ShortestPathLengths(src NodeID) []int {
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= len(g.nodes) {
		return dist
	}
	c := g.Freeze()
	sc := getTrav(c.n)
	defer putTrav(sc)
	depth := sc.ints(c.n)
	c.bfsForward(int32(src), sc, depth)
	for i := range dist {
		if sc.seen(int32(i)) {
			dist[i] = int(depth[i])
		}
	}
	return dist
}

// String summarizes the graph for logs and chat transcripts.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	name := g.Name
	if name == "" {
		name = "G"
	}
	return fmt.Sprintf("%s(%s, |V|=%d, |E|=%d)", name, kind, len(g.nodes), len(g.edges))
}
