package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedSubgraph(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddNodeAttrs("v", map[string]string{"i": "x"})
	}
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1)) //nolint:errcheck
	}
	sub, remap := InducedSubgraph(g, []NodeID{1, 2, 3, 3, 99}) // dup + invalid ignored
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub = %s", sub)
	}
	if remap[1] != 0 || remap[2] != 1 || remap[3] != 2 {
		t.Fatalf("remap = %v", remap)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatal("edges lost in induced subgraph")
	}
	if sub.Node(0).Attrs["i"] != "x" {
		t.Fatal("attrs lost")
	}
}

func TestNeighborhoodSubgraph(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1)) //nolint:errcheck
	}
	sub, _ := NeighborhoodSubgraph(g, 2, 1)
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("neighborhood = %s", sub)
	}
}

func TestDegreeSequence(t *testing.T) {
	g := New()
	hub := g.AddNode("h")
	for i := 0; i < 3; i++ {
		g.AddEdge(hub, g.AddNode("l")) //nolint:errcheck
	}
	seq := DegreeSequence(g)
	if seq[0] != 3 || seq[1] != 1 || seq[3] != 1 {
		t.Fatalf("degree sequence = %v", seq)
	}
}

func TestComplement(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddNode("v")
	}
	g.AddEdge(0, 1) //nolint:errcheck
	c, err := Complement(g)
	if err != nil {
		t.Fatal(err)
	}
	// K4 has 6 edges; complement of 1 edge = 5.
	if c.NumEdges() != 5 {
		t.Fatalf("complement edges = %d", c.NumEdges())
	}
	if c.HasEdge(0, 1) {
		t.Fatal("original edge present in complement")
	}
	if _, err := Complement(NewDirected()); err == nil {
		t.Fatal("directed complement accepted")
	}
}

func TestDisjointUnion(t *testing.T) {
	a := New()
	a.AddNode("a0")
	a.AddNode("a1")
	a.AddEdge(0, 1) //nolint:errcheck
	b := New()
	b.AddNode("b0")
	b.AddNode("b1")
	b.AddEdge(0, 1) //nolint:errcheck
	u, err := DisjointUnion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 4 || u.NumEdges() != 2 {
		t.Fatalf("union = %s", u)
	}
	if !u.HasEdge(2, 3) || u.HasEdge(1, 2) {
		t.Fatal("union edges wrong")
	}
	if _, err := DisjointUnion(a, NewDirected()); err == nil {
		t.Fatal("mixed directedness accepted")
	}
}

func TestEdgeDifference(t *testing.T) {
	a := New()
	for i := 0; i < 3; i++ {
		a.AddNode("v")
	}
	a.AddEdge(0, 1) //nolint:errcheck
	a.AddEdge(1, 2) //nolint:errcheck
	b := a.Clone()
	b.RemoveEdge(1, 2)
	diff := EdgeDifference(a, b)
	if len(diff) != 1 || diff[0].From != 1 || diff[0].To != 2 {
		t.Fatalf("diff = %v", diff)
	}
	// Orientation-insensitive for undirected graphs.
	c := New()
	for i := 0; i < 3; i++ {
		c.AddNode("v")
	}
	c.AddEdge(1, 0) //nolint:errcheck // reversed storage
	c.AddEdge(2, 1) //nolint:errcheck
	if diff := EdgeDifference(a, c); len(diff) != 0 {
		t.Fatalf("reversed-orientation diff = %v", diff)
	}
}

// Property: complement of complement is the original edge set.
func TestQuickComplementInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		g := ErdosRenyi(n, 0.4, rand.New(rand.NewSource(seed)))
		c, err := Complement(g)
		if err != nil {
			return false
		}
		cc, err := Complement(c)
		if err != nil {
			return false
		}
		if cc.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !cc.HasEdge(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: induced subgraph never contains edges absent from the parent.
func TestQuickInducedSubgraphSound(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 4
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(n, 0.3, rng)
		var pick []NodeID
		for i := 0; i < n; i += 2 {
			pick = append(pick, NodeID(i))
		}
		sub, remap := InducedSubgraph(g, pick)
		inv := make(map[NodeID]NodeID, len(remap))
		for old, nw := range remap {
			inv[nw] = old
		}
		for _, e := range sub.Edges() {
			if !g.HasEdge(inv[e.From], inv[e.To]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
