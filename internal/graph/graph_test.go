package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if id := g.AddNode("x"); id != NodeID(i) {
			t.Fatalf("node %d got id %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("dangling edge accepted")
	}
}

func TestUndirectedNeighborsSymmetric(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("undirected edge not visible from both sides")
	}
	if got := g.Neighbors(b); len(got) != 1 || got[0] != a {
		t.Fatalf("Neighbors(b) = %v, want [a]", got)
	}
}

func TestDirectedEdgesOneWay(t *testing.T) {
	g := NewDirected()
	a, b := g.AddNode("a"), g.AddNode("b")
	if err := g.AddEdgeLabeled(a, b, "rel", 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(a, b) {
		t.Fatal("forward edge missing")
	}
	if g.HasEdge(b, a) {
		t.Fatal("directed edge visible backwards")
	}
	if in := g.InNeighbors(b); len(in) != 1 || in[0] != a {
		t.Fatalf("InNeighbors(b) = %v, want [a]", in)
	}
	if in := g.InNeighbors(a); len(in) != 0 {
		t.Fatalf("InNeighbors(a) = %v, want empty", in)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := line(t, 3)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge reported false for existing edge")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge still present after removal")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("unrelated edge lost after removal")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge reported true for missing edge")
	}
}

func TestEdgeBetween(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if _, ok := g.EdgeBetween(a, b); ok {
		t.Fatal("EdgeBetween found a phantom edge")
	}
	if err := g.AddEdgeLabeled(a, b, "knows", 2.5); err != nil {
		t.Fatal(err)
	}
	e, ok := g.EdgeBetween(b, a) // reversed lookup on undirected graph
	if !ok || e.Label != "knows" || e.Weight != 2.5 {
		t.Fatalf("EdgeBetween = %+v, %v", e, ok)
	}
}

func TestBFSDepths(t *testing.T) {
	g := line(t, 5)
	dist := g.ShortestPathLengths(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("b")
	dist := g.ShortestPathLengths(0)
	if dist[1] != -1 {
		t.Fatalf("unreachable node distance = %d, want -1", dist[1])
	}
}

func TestKHopSubgraphNodes(t *testing.T) {
	g := line(t, 6)
	got := g.KHopSubgraphNodes(2, 1)
	want := []NodeID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("KHop = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KHop = %v, want %v", got, want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddNode("v")
	}
	g.AddEdge(0, 1) //nolint:errcheck
	g.AddEdge(1, 2) //nolint:errcheck
	g.AddEdge(3, 4) //nolint:errcheck
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	a := g.AddNodeAttrs("a", map[string]string{"k": "v"})
	b := g.AddNode("b")
	g.AddEdge(a, b) //nolint:errcheck
	c := g.Clone()
	c.SetNodeLabel(a, "changed")
	c.SetNodeAttr(a, "k", "changed")
	c.AddEdge(b, c.AddNode("new")) //nolint:errcheck
	if g.Node(a).Label != "a" || g.Node(a).Attrs["k"] != "v" {
		t.Fatal("clone mutation leaked into original node data")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatal("clone mutation leaked into original topology")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := NewDirected()
	g.Name = "kg"
	a := g.AddNodeAttrs("alice", map[string]string{"type": "person"})
	b := g.AddNode("acme")
	if err := g.AddEdgeLabeled(a, b, "works_for", 3); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Directed() || got.Name != "kg" || got.NumNodes() != 2 || got.NumEdges() != 1 {
		t.Fatalf("round trip mismatch: %s", got)
	}
	e := got.Edges()[0]
	if e.Label != "works_for" || e.Weight != 3 {
		t.Fatalf("edge round trip = %+v", e)
	}
	if got.Node(0).Attrs["type"] != "person" {
		t.Fatal("attrs lost in round trip")
	}
}

func TestParseJSONRejectsBadPayloads(t *testing.T) {
	cases := []string{
		`{"nodes":[{"id":1},{"id":1}],"edges":[]}`,         // duplicate id
		`{"nodes":[{"id":1}],"edges":[{"from":1,"to":2}]}`, // dangling edge
		`{"nodes":[{"id":1}],"edges":[{"from":9,"to":1}]}`, // dangling edge
		`not json`, // malformed
		`{"nodes":[{"id":1}],"edges":[{"from":1,"to":1}]}`, // self loop
	}
	for _, c := range cases {
		if _, err := ParseJSON([]byte(c)); err == nil {
			t.Errorf("ParseJSON(%q) succeeded, want error", c)
		}
	}
}

func TestJSONDefaultWeightOmitted(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b) //nolint:errcheck
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "weight") {
		t.Fatalf("default weight serialized: %s", data)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edges()[0].Weight != 1 {
		t.Fatalf("default weight not restored: %+v", got.Edges()[0])
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	in := "# comment\na b 2\nb c\n\nc a 0.5\n"
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %s", g)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 3 {
		t.Fatalf("re-parsed %s", g2)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	if _, err := ParseEdgeList(strings.NewReader("justone\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := ParseEdgeList(strings.NewReader("a a\n")); err == nil {
		t.Fatal("self-loop line accepted")
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	er := ErdosRenyi(50, 0.1, rng)
	if er.NumNodes() != 50 {
		t.Fatalf("ER nodes = %d", er.NumNodes())
	}
	ba := BarabasiAlbert(100, 2, rng)
	if ba.NumNodes() != 100 {
		t.Fatalf("BA nodes = %d", ba.NumNodes())
	}
	if comps := ba.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("BA components = %d, want connected", len(comps))
	}
	ws := WattsStrogatz(60, 2, 0.1, rng)
	if ws.NumNodes() != 60 {
		t.Fatalf("WS nodes = %d", ws.NumNodes())
	}
	sbm := PlantedCommunities(3, 10, 0.6, 0.02, rng)
	if sbm.NumNodes() != 30 {
		t.Fatalf("SBM nodes = %d", sbm.NumNodes())
	}
	if sbm.Node(0).Attrs["community"] != "0" || sbm.Node(29).Attrs["community"] != "2" {
		t.Fatal("SBM community attrs wrong")
	}
}

func TestMoleculeConnectedAndLabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 20, 60} {
		m := Molecule(n, rng)
		if m.NumNodes() != n {
			t.Fatalf("Molecule(%d) has %d nodes", n, m.NumNodes())
		}
		if comps := m.ConnectedComponents(); len(comps) != 1 {
			t.Fatalf("Molecule(%d) has %d components", n, len(comps))
		}
		for _, nd := range m.Nodes() {
			if nd.Attrs["element"] == "" {
				t.Fatalf("atom %d missing element attr", nd.ID)
			}
		}
	}
}

func TestKnowledgeGraphPlausibleTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kg := KnowledgeGraph(40, 80, rng)
	if !kg.Directed() {
		t.Fatal("knowledge graph should be directed")
	}
	sigs := KGRelationTypes()
	for _, e := range kg.Edges() {
		sig, ok := sigs[e.Label]
		if !ok {
			t.Fatalf("unknown relation %q", e.Label)
		}
		if st := kg.Node(e.From).Attrs["type"]; st != sig[0] {
			t.Fatalf("edge %s has subject type %s, want %s", e.Label, st, sig[0])
		}
		if ot := kg.Node(e.To).Attrs["type"]; ot != sig[1] {
			t.Fatalf("edge %s has object type %s, want %s", e.Label, ot, sig[1])
		}
	}
}

func TestComputeStatsTriangle(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b) //nolint:errcheck
	g.AddEdge(b, c) //nolint:errcheck
	g.AddEdge(c, a) //nolint:errcheck
	s := ComputeStats(g)
	if s.Triangles != 1 {
		t.Fatalf("triangles = %d, want 1", s.Triangles)
	}
	if s.ClusteringCoeff != 1 {
		t.Fatalf("clustering = %f, want 1", s.ClusteringCoeff)
	}
	if s.ApproxDiameter != 1 {
		t.Fatalf("diameter = %d, want 1", s.ApproxDiameter)
	}
	if s.Density != 1 {
		t.Fatalf("density = %f, want 1", s.Density)
	}
	if !strings.Contains(s.Describe(), "3 nodes") {
		t.Fatalf("Describe missing node count: %s", s.Describe())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(New())
	if s.Nodes != 0 || s.Edges != 0 {
		t.Fatal("empty graph stats nonzero")
	}
}

func TestClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if k := Classify(Molecule(20, rng)); k != KindMolecule {
		t.Fatalf("molecule classified as %s", k)
	}
	if k := Classify(KnowledgeGraph(30, 60, rng)); k != KindKnowledge {
		t.Fatalf("knowledge graph classified as %s", k)
	}
	if k := Classify(BarabasiAlbert(50, 2, rng)); k != KindSocial {
		t.Fatalf("BA graph classified as %s", k)
	}
	if k := Classify(New()); k != KindUnknown {
		t.Fatalf("empty graph classified as %s", k)
	}
	for _, k := range []Kind{KindUnknown, KindSocial, KindMolecule, KindKnowledge} {
		if k.String() == "" {
			t.Fatal("Kind.String empty")
		}
	}
}

// Property: for any random graph, every BFS distance from node 0 is either
// -1 or at most n-1, and neighbors are mutual in undirected graphs.
func TestQuickBFSAndSymmetry(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 2
		p := float64(pRaw%100) / 100
		g := ErdosRenyi(n, p, rand.New(rand.NewSource(seed)))
		dist := g.ShortestPathLengths(0)
		for _, d := range dist {
			if d < -1 || d >= n {
				return false
			}
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.To, e.From) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round trip preserves node/edge counts and directedness.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := KnowledgeGraph(n, n*2, rand.New(rand.NewSource(seed)))
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		got, err := ParseJSON(data)
		if err != nil {
			return false
		}
		return got.NumNodes() == g.NumNodes() && got.NumEdges() == g.NumEdges() && got.Directed() == g.Directed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	g := New()
	g.AddNode("a")
	if got := g.String(); !strings.Contains(got, "|V|=1") {
		t.Fatalf("String = %q", got)
	}
}
