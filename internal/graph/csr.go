package graph

import (
	"math/bits"
	"sort"
	"sync"
)

// CSR is the frozen, read-only adjacency view of one Graph version, laid out
// in compressed-sparse-row form: one contiguous targets array per direction
// with per-node offset fences. Neighbor iteration is a subslice — no
// allocation, no sorting, no edge-table indirection — which is what makes the
// all-source algorithms (eccentricities, triangles, core numbers) cheap
// enough to parallelize.
//
// A CSR is immutable and safe for unlimited concurrent use. It snapshots the
// topology, weights, and the label/attribute signals Stats and Classify
// need, so it stays self-contained even if the parent graph mutates later
// (Freeze hands out a fresh CSR after any mutation). Per-node rows are
// sorted by neighbor ID, matching the order Graph.Neighbors reports, so
// traversals over the CSR visit nodes in exactly the order the slice-based
// implementations did. Parallel edges keep one entry each.
type CSR struct {
	version  uint64
	directed bool
	n, m     int

	// Forward adjacency: out-edges for directed graphs, all incident edges
	// for undirected ones (the Graph.Neighbors contract). weights[i] is the
	// edge weight for targets[i].
	offsets []int32
	targets []NodeID
	weights []float64

	// Reverse adjacency (directed only): in-edges per node.
	roffsets []int32
	rtargets []NodeID

	// Undirected view: both endpoints of every edge. For undirected graphs
	// these alias the forward arrays.
	uoffsets []int32
	utargets []NodeID

	// Label/attribute signals snapshotted at freeze time so Stats and
	// Classify never have to re-read (possibly mutated) node state.
	labels     []string
	elementish int // nodes that look like chemical elements
	typed      int // nodes with a person/place/org type attribute
	relLabeled int // edges with a non-bond relation label

	statsOnce sync.Once
	stats     Stats
	kindOnce  sync.Once
	kind      Kind
}

// Freeze returns the CSR view of g's current version, building it on first
// use and caching it until the next mutation. Concurrent Freeze calls on an
// unmutated graph share one CSR; the build itself is O(V + E log d).
func (g *Graph) Freeze() *CSR {
	g.frozenMu.Lock()
	defer g.frozenMu.Unlock()
	if g.frozen == nil || g.frozen.version != g.version {
		g.frozen = buildCSR(g)
	}
	return g.frozen
}

// rowSorter sorts one adjacency row by target ID, keeping the parallel
// weight array aligned. Implementing sort.Interface directly avoids the
// per-row closure allocations sort.Slice would pay.
type rowSorter struct {
	t []NodeID
	w []float64
}

func (r rowSorter) Len() int           { return len(r.t) }
func (r rowSorter) Less(i, j int) bool { return r.t[i] < r.t[j] }
func (r rowSorter) Swap(i, j int) {
	r.t[i], r.t[j] = r.t[j], r.t[i]
	if r.w != nil {
		r.w[i], r.w[j] = r.w[j], r.w[i]
	}
}

// insertionSortRow sorts small rows in place; buildCSR falls back to
// sort.Sort above a small cutoff.
func insertionSortRow(t []NodeID, w []float64) {
	for i := 1; i < len(t); i++ {
		for j := i; j > 0 && t[j] < t[j-1]; j-- {
			t[j], t[j-1] = t[j-1], t[j]
			if w != nil {
				w[j], w[j-1] = w[j-1], w[j]
			}
		}
	}
}

func sortRows(offsets []int32, targets []NodeID, weights []float64) {
	for u := 0; u+1 < len(offsets); u++ {
		lo, hi := offsets[u], offsets[u+1]
		t := targets[lo:hi]
		var w []float64
		if weights != nil {
			w = weights[lo:hi]
		}
		if len(t) <= 24 {
			insertionSortRow(t, w)
		} else {
			sort.Sort(rowSorter{t, w})
		}
	}
}

func buildCSR(g *Graph) *CSR {
	n := len(g.nodes)
	m := len(g.edges)
	c := &CSR{version: g.version, directed: g.directed, n: n, m: m}

	c.labels = make([]string, n)
	for i := range g.nodes {
		nd := &g.nodes[i]
		c.labels[i] = nd.Label
		if isElementSymbol(nd.Label) || nd.Attrs["element"] != "" {
			c.elementish++
		}
		if t := nd.Attrs["type"]; t == "person" || t == "place" || t == "org" {
			c.typed++
		}
	}
	for i := range g.edges {
		if l := g.edges[i].Label; l != "" && l != "bond" {
			c.relLabeled++
		}
	}

	// Forward adjacency (Graph.Neighbors order).
	fwd := m
	if !g.directed {
		fwd = 2 * m
	}
	c.offsets = make([]int32, n+1)
	c.targets = make([]NodeID, fwd)
	c.weights = make([]float64, fwd)
	for _, e := range g.edges {
		c.offsets[e.From+1]++
		if !g.directed {
			c.offsets[e.To+1]++
		}
	}
	for i := 0; i < n; i++ {
		c.offsets[i+1] += c.offsets[i]
	}
	pos := make([]int32, n)
	copy(pos, c.offsets[:n])
	for _, e := range g.edges {
		p := pos[e.From]
		pos[e.From]++
		c.targets[p] = e.To
		c.weights[p] = e.Weight
		if !g.directed {
			p = pos[e.To]
			pos[e.To]++
			c.targets[p] = e.From
			c.weights[p] = e.Weight
		}
	}
	sortRows(c.offsets, c.targets, c.weights)

	if g.directed {
		// Reverse adjacency.
		c.roffsets = make([]int32, n+1)
		c.rtargets = make([]NodeID, m)
		for _, e := range g.edges {
			c.roffsets[e.To+1]++
		}
		for i := 0; i < n; i++ {
			c.roffsets[i+1] += c.roffsets[i]
		}
		copy(pos, c.roffsets[:n])
		for _, e := range g.edges {
			p := pos[e.To]
			pos[e.To]++
			c.rtargets[p] = e.From
		}
		sortRows(c.roffsets, c.rtargets, nil)

		// Undirected view: both directions of every edge.
		c.uoffsets = make([]int32, n+1)
		c.utargets = make([]NodeID, 2*m)
		for _, e := range g.edges {
			c.uoffsets[e.From+1]++
			c.uoffsets[e.To+1]++
		}
		for i := 0; i < n; i++ {
			c.uoffsets[i+1] += c.uoffsets[i]
		}
		copy(pos, c.uoffsets[:n])
		for _, e := range g.edges {
			p := pos[e.From]
			pos[e.From]++
			c.utargets[p] = e.To
			p = pos[e.To]
			pos[e.To]++
			c.utargets[p] = e.From
		}
		sortRows(c.uoffsets, c.utargets, nil)
	} else {
		c.uoffsets = c.offsets
		c.utargets = c.targets
	}
	return c
}

// Version returns the graph version this view was frozen from.
func (c *CSR) Version() uint64 { return c.version }

// Directed reports whether the frozen graph stores directed edges.
func (c *CSR) Directed() bool { return c.directed }

// NumNodes returns the node count.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges returns the edge count (each undirected edge counted once).
func (c *CSR) NumEdges() int { return c.m }

// OutNeighbors returns u's neighbors (out-neighbors for directed graphs) in
// ascending ID order — the same contents and order as Graph.Neighbors, but
// as a zero-allocation view into the frozen arrays. Callers must not modify
// the returned slice.
func (c *CSR) OutNeighbors(u NodeID) []NodeID {
	return c.targets[c.offsets[u]:c.offsets[u+1]]
}

// OutWeights returns the edge weights aligned with OutNeighbors(u).
func (c *CSR) OutWeights(u NodeID) []float64 {
	return c.weights[c.offsets[u]:c.offsets[u+1]]
}

// OutDegree returns len(OutNeighbors(u)) without materializing anything.
func (c *CSR) OutDegree(u NodeID) int {
	return int(c.offsets[u+1] - c.offsets[u])
}

// InNeighbors returns the sources of edges entering u, ascending. For
// undirected graphs it equals OutNeighbors.
func (c *CSR) InNeighbors(u NodeID) []NodeID {
	if !c.directed {
		return c.OutNeighbors(u)
	}
	return c.rtargets[c.roffsets[u]:c.roffsets[u+1]]
}

// InDegree returns the in-degree (Degree for undirected graphs).
func (c *CSR) InDegree(u NodeID) int {
	if !c.directed {
		return c.OutDegree(u)
	}
	return int(c.roffsets[u+1] - c.roffsets[u])
}

// undNeighbors returns u's neighbors in the undirected view (both edge
// directions), ascending, parallel edges included.
func (c *CSR) undNeighbors(u NodeID) []NodeID {
	return c.utargets[c.uoffsets[u]:c.uoffsets[u+1]]
}

func (c *CSR) undDegree(u NodeID) int {
	return int(c.uoffsets[u+1] - c.uoffsets[u])
}

// BFS visits nodes reachable from start in breadth-first order over the
// forward adjacency (neighbors ascending), calling visit with each node and
// its hop distance; visit returning false stops the traversal. All working
// state comes from the pooled traversal scratch, so the walk allocates
// nothing per visited node.
func (c *CSR) BFS(start NodeID, visit func(id NodeID, depth int) bool) {
	if start < 0 || int(start) >= c.n {
		return
	}
	sc := getTrav(c.n)
	defer putTrav(sc)
	depth := sc.ints(c.n)
	q := sc.queue[:0]
	defer func() { sc.queue = q[:0] }()
	q = append(q, int32(start))
	sc.mark(int32(start))
	depth[start] = 0
	for head := 0; head < len(q); head++ {
		u := q[head]
		d := depth[u]
		if !visit(NodeID(u), int(d)) {
			return
		}
		for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
			if !sc.seen(int32(v)) {
				sc.mark(int32(v))
				depth[v] = d + 1
				q = append(q, int32(v))
			}
		}
	}
}

// Hybrid BFS tuning. A frontier holding at least
// max(n/denseFrontierDivisor, minDenseFrontier) nodes promotes to the dense
// (bitset, bottom-up) mode; it demotes back to the queue when a level
// shrinks below half that threshold. The floor keeps tiny graphs — where a
// whole traversal costs less than one bitset rebuild — on the queue path.
const (
	denseFrontierDivisor = 16
	minDenseFrontier     = 64
)

// bfsFrom is the level-synchronous hybrid BFS core shared by eccFrom,
// ShortestPathLengths, and components. Sparse frontiers expand top-down
// through the queue, exactly like the classic loop. When a level grows past
// the density threshold the traversal promotes to bottom-up: the visited
// bitset is rebuilt from the epoch marks, and each subsequent level is found
// by sweeping the complement words (bits.TrailingZeros64 per unvisited
// node) and probing reverse-adjacency rows for a frontier member, breaking
// at the first hit — on dense levels that replaces |frontier|·degree edge
// scans with early-exiting probes of the (few) unvisited nodes. Epoch marks
// stay in sync in dense mode, so demotion (and any later caller using
// sc.seen) just works.
//
// off/tgt is the adjacency to traverse; roff/rtgt must be its reverse (the
// same slices for symmetric views). depth[v] is set for every reached node;
// unreached entries are left untouched (callers identify reached nodes via
// sc.seen). members, when non-nil, collects every reached node, in no
// particular order. The caller owns the epoch: bfsFrom never bumps it, so
// components can share one epoch across per-component calls. Returns the
// maximum depth reached.
func (c *CSR) bfsFrom(src int32, sc *travScratch, off []int32, tgt []NodeID, roff []int32, rtgt []NodeID, depth []int32, members *[]NodeID) int32 {
	threshold := c.n / denseFrontierDivisor
	if threshold < minDenseFrontier {
		threshold = minDenseFrontier
	}
	q := sc.queue[:0]
	defer func() { sc.queue = q[:0] }()
	q = append(q, src)
	sc.mark(src)
	depth[src] = 0
	if members != nil {
		*members = append(*members, NodeID(src))
	}
	var (
		d, maxD        int32 // current frontier depth, deepest level seen
		dense          bool
		cur, next, vis []uint64
	)
	lo, hi := 0, 1 // current level occupies q[lo:hi]
	for {
		if !dense && hi-lo >= threshold {
			// Promote: rebuild the bitsets — visited from the epoch marks,
			// the frontier from the current queue level. O(n) once, paid
			// only when the level itself is Ω(n/16).
			cur, next, vis = sc.bitsets(c.n)
			clear(cur)
			clear(vis)
			for i := 0; i < c.n; i++ {
				if sc.visited[i] == sc.epoch {
					vis[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			for _, u := range q[lo:hi] {
				cur[u>>6] |= 1 << (uint(u) & 63)
			}
			q = q[:0]
			lo, hi = 0, 0
			dense = true
		}
		if dense {
			clear(next)
			count := 0
			for w, free := range vis {
				free = ^free
				if base := w << 6; base+64 > c.n {
					free &= 1<<(uint(c.n-base)) - 1
				}
				for free != 0 {
					b := bits.TrailingZeros64(free)
					free &^= 1 << uint(b)
					v := int32(w<<6 + b)
					for _, u := range rtgt[roff[v]:roff[v+1]] {
						if cur[u>>6]&(1<<(uint(u)&63)) != 0 {
							depth[v] = d + 1
							sc.mark(v)
							vis[w] |= 1 << uint(b)
							next[v>>6] |= 1 << (uint(v) & 63)
							count++
							if members != nil {
								*members = append(*members, NodeID(v))
							}
							break
						}
					}
				}
			}
			if count == 0 {
				return maxD
			}
			d++
			maxD = d
			cur, next = next, cur
			if count < threshold/2 {
				// Demote: extract the again-sparse frontier into the queue.
				dense = false
				for w, bw := range cur {
					for bw != 0 {
						b := bits.TrailingZeros64(bw)
						bw &^= 1 << uint(b)
						q = append(q, int32(w<<6+b))
					}
				}
				lo, hi = 0, len(q)
			}
			continue
		}
		if lo == hi {
			return maxD
		}
		for i := lo; i < hi; i++ {
			u := q[i]
			for _, v := range tgt[off[u]:off[u+1]] {
				if !sc.seen(int32(v)) {
					sc.mark(int32(v))
					depth[v] = d + 1
					q = append(q, int32(v))
					if members != nil {
						*members = append(*members, NodeID(v))
					}
				}
			}
		}
		lo, hi = hi, len(q)
		if lo < hi {
			d++
			maxD = d
		}
	}
}

// bfsForward runs the hybrid BFS from src over the forward adjacency using
// sc's current epoch (directed graphs probe in-neighbors bottom-up via the
// reverse arrays). See bfsFrom for the depth/seen contract.
func (c *CSR) bfsForward(src int32, sc *travScratch, depth []int32) int32 {
	roff, rtgt := c.offsets, c.targets
	if c.directed {
		roff, rtgt = c.roffsets, c.rtargets
	}
	return c.bfsFrom(src, sc, c.offsets, c.targets, roff, rtgt, depth, nil)
}

// eccFrom returns the maximum BFS depth reachable from src over the forward
// adjacency, using the caller's scratch. Zero allocations; dense levels run
// bottom-up (see bfsFrom).
func (c *CSR) eccFrom(src int32, sc *travScratch) int32 {
	sc.nextEpoch()
	return c.bfsForward(src, sc, sc.ints(c.n))
}

// eccFromQueue is the pure queue-frontier eccentricity BFS the hybrid
// replaced, kept as the parity oracle and benchmark baseline for bfsFrom.
func (c *CSR) eccFromQueue(src int32, sc *travScratch) int32 {
	sc.nextEpoch()
	depth := sc.ints(c.n)
	q := sc.queue[:0]
	defer func() { sc.queue = q[:0] }()
	q = append(q, src)
	sc.mark(src)
	depth[src] = 0
	var max int32
	for head := 0; head < len(q); head++ {
		u := q[head]
		d := depth[u]
		if d > max {
			max = d
		}
		for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
			if !sc.seen(int32(v)) {
				sc.mark(int32(v))
				depth[v] = d + 1
				q = append(q, int32(v))
			}
		}
	}
	return max
}

// farthest returns the node at maximum BFS depth from src (ties broken by
// BFS visit order, matching the slice-based double sweep) and that depth.
func (c *CSR) farthest(src int32, sc *travScratch) (NodeID, int32) {
	sc.nextEpoch()
	depth := sc.ints(c.n)
	q := sc.queue[:0]
	defer func() { sc.queue = q[:0] }()
	q = append(q, src)
	sc.mark(src)
	depth[src] = 0
	best, bestD := src, int32(0)
	for head := 0; head < len(q); head++ {
		u := q[head]
		d := depth[u]
		if d > bestD {
			best, bestD = u, d
		}
		for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
			if !sc.seen(int32(v)) {
				sc.mark(int32(v))
				depth[v] = d + 1
				q = append(q, int32(v))
			}
		}
	}
	return NodeID(best), bestD
}

// components returns the weakly connected components (members sorted,
// components ordered by smallest member), matching the pre-CSR
// Graph.ConnectedComponents output exactly. Each component is traversed by
// the hybrid BFS over the symmetric undirected view; one shared epoch spans
// all components, so the dense mode's visited bitset automatically excludes
// nodes claimed by earlier components.
func (c *CSR) components() [][]NodeID {
	sc := getTrav(c.n)
	defer putTrav(sc)
	depth := sc.ints(c.n)
	var comps [][]NodeID
	for s := 0; s < c.n; s++ {
		if sc.seen(int32(s)) {
			continue
		}
		members := make([]NodeID, 0, 8)
		c.bfsFrom(int32(s), sc, c.uoffsets, c.utargets, c.uoffsets, c.utargets, depth, &members)
		sortNodeIDs(members)
		comps = append(comps, members)
	}
	return comps
}
