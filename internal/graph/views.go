package graph

import (
	"fmt"
	"sort"
)

// View operations: derive new graphs from existing ones. The chain executor
// composes these with the analysis APIs (e.g. extract a neighborhood, then
// run community detection on just that piece).

// InducedSubgraph returns the subgraph on the given nodes (deduplicated)
// with IDs remapped densely in ascending original-ID order, plus the
// old-ID → new-ID mapping.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, map[NodeID]NodeID) {
	keep := make(map[NodeID]bool, len(nodes))
	for _, id := range nodes {
		if g.valid(id) {
			keep[id] = true
		}
	}
	ordered := make([]NodeID, 0, len(keep))
	for id := range keep {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	sub := &Graph{Name: g.Name + "_sub", directed: g.directed}
	sub.Grow(len(ordered), 0)
	remap := make(map[NodeID]NodeID, len(ordered))
	for _, id := range ordered {
		n := g.Node(id)
		remap[id] = sub.AddNodeAttrs(n.Label, n.Attrs)
	}
	for _, e := range g.Edges() {
		if keep[e.From] && keep[e.To] {
			sub.AddEdgeLabeled(remap[e.From], remap[e.To], e.Label, e.Weight) //nolint:errcheck // endpoints valid by construction
		}
	}
	return sub, remap
}

// NeighborhoodSubgraph returns the induced subgraph within l hops of u.
func NeighborhoodSubgraph(g *Graph, u NodeID, l int) (*Graph, map[NodeID]NodeID) {
	return InducedSubgraph(g, g.KHopSubgraphNodes(u, l))
}

// DegreeSequence returns the sorted (descending) degree sequence, reading
// adjacency lengths directly — no neighbor slices are materialized.
func DegreeSequence(g *Graph) []int {
	out := make([]int, g.NumNodes())
	for i := range out {
		out[i] = g.TotalDegree(NodeID(i))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Complement returns the undirected complement graph (same nodes, edges
// exactly where g has none). Only defined for undirected graphs. The edge
// table is preallocated from the known complement size, and existing edges
// are skipped by walking each node's sorted frozen adjacency row instead of
// probing hash sets.
func Complement(g *Graph) (*Graph, error) {
	if g.directed {
		return nil, fmt.Errorf("graph: complement of a directed graph is not supported")
	}
	c := New()
	c.Name = g.Name + "_complement"
	n := g.NumNodes()
	capEdges := n*(n-1)/2 - g.NumEdges()
	if capEdges < 0 {
		capEdges = 0
	}
	c.Grow(n, capEdges)
	for _, nd := range g.Nodes() {
		c.AddNodeAttrs(nd.Label, nd.Attrs)
	}
	fr := g.Freeze()
	for i := 0; i < n; i++ {
		row := fr.OutNeighbors(NodeID(i))
		// Advance past neighbors ≤ i; the remainder of the sorted row gates
		// the j loop below.
		k := 0
		for k < len(row) && row[k] <= NodeID(i) {
			k++
		}
		for j := i + 1; j < n; j++ {
			for k < len(row) && row[k] < NodeID(j) {
				k++
			}
			if k < len(row) && row[k] == NodeID(j) {
				continue
			}
			c.AddEdge(NodeID(i), NodeID(j)) //nolint:errcheck
		}
	}
	return c, nil
}

// DisjointUnion returns a graph containing copies of a then b with b's IDs
// shifted by a.NumNodes(). Directedness must match. Node and edge storage is
// preallocated from the known sizes.
func DisjointUnion(a, b *Graph) (*Graph, error) {
	if a.directed != b.directed {
		return nil, fmt.Errorf("graph: cannot union directed with undirected")
	}
	u := &Graph{Name: a.Name + "+" + b.Name, directed: a.directed}
	u.Grow(a.NumNodes()+b.NumNodes(), a.NumEdges()+b.NumEdges())
	for _, n := range a.Nodes() {
		u.AddNodeAttrs(n.Label, n.Attrs)
	}
	offset := NodeID(a.NumNodes())
	for _, n := range b.Nodes() {
		u.AddNodeAttrs(n.Label, n.Attrs)
	}
	for _, e := range a.Edges() {
		u.AddEdgeLabeled(e.From, e.To, e.Label, e.Weight) //nolint:errcheck
	}
	for _, e := range b.Edges() {
		u.AddEdgeLabeled(e.From+offset, e.To+offset, e.Label, e.Weight) //nolint:errcheck
	}
	return u, nil
}

// EdgeDifference returns the edges of a that have no counterpart (same
// endpoints and label, orientation-insensitive for undirected graphs) in b.
// Node sets are assumed aligned by ID; extra nodes in either graph are fine.
func EdgeDifference(a, b *Graph) []Edge {
	key := func(g *Graph, e Edge) string {
		f, t := e.From, e.To
		if !g.directed && f > t {
			f, t = t, f
		}
		return fmt.Sprintf("%d|%s|%d", f, e.Label, t)
	}
	inB := make(map[string]bool, b.NumEdges())
	for _, e := range b.Edges() {
		inB[key(b, e)] = true
	}
	var out []Edge
	for _, e := range a.Edges() {
		if !inB[key(a, e)] {
			out = append(out, e)
		}
	}
	return out
}
