package graph

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// chSpec is an order-free description of one graph: nodes and edges are
// identified by spec index, so the same spec can be materialized under any
// node/edge insertion order and the results must hash equal.
type chSpec struct {
	name     string
	directed bool
	labels   []string
	attrs    []map[string]string // per node, may be nil
	edges    []chEdge
}

type chEdge struct {
	from, to int
	label    string
	weight   float64
}

// build materializes the spec. perm gives the node insertion order (nil =
// spec order); edge insertion order is shuffled with rng when rng != nil,
// and attribute keys are set one by one in shuffled order so map fill order
// varies too.
func (sp chSpec) build(t *testing.T, perm []int, rng *rand.Rand) *Graph {
	t.Helper()
	var g *Graph
	if sp.directed {
		g = NewDirected()
	} else {
		g = New()
	}
	g.Name = sp.name
	if perm == nil {
		perm = make([]int, len(sp.labels))
		for i := range perm {
			perm[i] = i
		}
	}
	newID := make([]NodeID, len(sp.labels))
	for _, orig := range perm {
		newID[orig] = g.AddNode(sp.labels[orig])
		keys := make([]string, 0, len(sp.attrs[orig]))
		for k := range sp.attrs[orig] {
			keys = append(keys, k)
		}
		if rng != nil {
			rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		}
		for _, k := range keys {
			g.SetNodeAttr(newID[orig], k, sp.attrs[orig][k])
		}
	}
	order := make([]int, len(sp.edges))
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, ei := range order {
		e := sp.edges[ei]
		from, to := newID[e.from], newID[e.to]
		if !sp.directed && rng != nil && rng.Intn(2) == 0 {
			from, to = to, from // undirected edges may insert either way
		}
		if err := g.AddEdgeLabeled(from, to, e.label, e.weight); err != nil {
			t.Fatalf("spec edge (%d,%d): %v", e.from, e.to, err)
		}
	}
	return g
}

// randomSpec draws a small random graph spec with labels, attributes,
// parallel edges, and mixed weights.
func randomSpec(rng *rand.Rand) chSpec {
	n := 2 + rng.Intn(10)
	labels := []string{"a", "b", "c", ""}
	attrKeys := []string{"k1", "k2", "type"}
	attrVals := []string{"x", "y", "person"}
	sp := chSpec{
		name:     "spec",
		directed: rng.Intn(2) == 0,
		labels:   make([]string, n),
		attrs:    make([]map[string]string, n),
	}
	for i := 0; i < n; i++ {
		sp.labels[i] = labels[rng.Intn(len(labels))]
		for _, k := range attrKeys {
			if rng.Intn(3) == 0 {
				if sp.attrs[i] == nil {
					sp.attrs[i] = map[string]string{}
				}
				sp.attrs[i][k] = attrVals[rng.Intn(len(attrVals))]
			}
		}
	}
	m := rng.Intn(2 * n)
	edgeLabels := []string{"", "bond", "rel"}
	weights := []float64{1, 1, 2.5, -0.5}
	for len(sp.edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		sp.edges = append(sp.edges, chEdge{
			from:   u,
			to:     v,
			label:  edgeLabels[rng.Intn(len(edgeLabels))],
			weight: weights[rng.Intn(len(weights))],
		})
	}
	return sp
}

// TestContentHashOrderInvariance is the order-invariance property: any node
// insertion order, edge insertion order, undirected endpoint order, and
// attribute fill order of the same spec must produce the same hash.
func TestContentHashOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		sp := randomSpec(rng)
		want := sp.build(t, nil, nil).ContentHash()
		for p := 0; p < 4; p++ {
			perm := rng.Perm(len(sp.labels))
			got := sp.build(t, perm, rng).ContentHash()
			if got != want {
				t.Fatalf("trial %d perm %d: hash %s != %s\nspec: %+v\nperm: %v",
					trial, p, got, want, sp, perm)
			}
		}
	}
}

// TestContentHashMutationSensitivity is the sensitivity property: every
// single mutation of a spec — node or edge added/removed, weight, label,
// attribute, name, or directedness changed — must change the hash.
func TestContentHashMutationSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		sp := randomSpec(rng)
		if len(sp.edges) == 0 {
			sp.edges = append(sp.edges, chEdge{from: 0, to: 1, weight: 1})
		}
		base := sp.build(t, nil, nil).ContentHash()
		ei := rng.Intn(len(sp.edges))
		ni := rng.Intn(len(sp.labels))
		mutations := map[string]func(chSpec) chSpec{
			"add node": func(s chSpec) chSpec {
				s.labels = append(append([]string(nil), s.labels...), "zz")
				s.attrs = append(append([]map[string]string(nil), s.attrs...), nil)
				return s
			},
			"remove node": func(s chSpec) chSpec {
				last := len(s.labels) - 1
				s.labels = append([]string(nil), s.labels[:last]...)
				s.attrs = append([]map[string]string(nil), s.attrs[:last]...)
				var kept []chEdge
				for _, e := range s.edges {
					if e.from != last && e.to != last {
						kept = append(kept, e)
					}
				}
				s.edges = kept
				return s
			},
			"add edge": func(s chSpec) chSpec {
				s.edges = append(append([]chEdge(nil), s.edges...), chEdge{from: 0, to: 1, label: "new", weight: 9})
				return s
			},
			"remove edge": func(s chSpec) chSpec {
				s.edges = append(append([]chEdge(nil), s.edges[:ei]...), s.edges[ei+1:]...)
				return s
			},
			"change weight": func(s chSpec) chSpec {
				s.edges = append([]chEdge(nil), s.edges...)
				s.edges[ei].weight += 3.25
				return s
			},
			"change edge label": func(s chSpec) chSpec {
				s.edges = append([]chEdge(nil), s.edges...)
				s.edges[ei].label += "'"
				return s
			},
			"change node label": func(s chSpec) chSpec {
				s.labels = append([]string(nil), s.labels...)
				s.labels[ni] += "'"
				return s
			},
			"change attr": func(s chSpec) chSpec {
				s.attrs = append([]map[string]string(nil), s.attrs...)
				m := map[string]string{}
				for k, v := range s.attrs[ni] {
					m[k] = v
				}
				m["k1"] += "'"
				s.attrs[ni] = m
				return s
			},
			"replace attrs": func(s chSpec) chSpec {
				s.attrs = append([]map[string]string(nil), s.attrs...)
				s.attrs[ni] = map[string]string{"extra": "e"}
				return s
			},
			"rename graph": func(s chSpec) chSpec {
				s.name += "'"
				return s
			},
			"flip directedness": func(s chSpec) chSpec {
				s.directed = !s.directed
				return s
			},
		}
		for name, mutate := range mutations {
			if got := mutate(sp).build(t, nil, nil).ContentHash(); got == base {
				t.Fatalf("trial %d: mutation %q left the hash unchanged (%s)\nspec: %+v", trial, name, got, sp)
			}
		}
	}
}

// TestContentHashMutateAndRevert: identity is content, not history — a
// graph mutated and mutated back hashes like it never changed, even though
// its version moved on.
func TestContentHashMutateAndRevert(t *testing.T) {
	g := PlantedCommunities(2, 5, 0.7, 0.2, rand.New(rand.NewSource(3)))
	h0, v0 := g.ContentHash(), g.Version()
	if err := g.AddEdgeLabeled(0, 9, "tmp", 2); err != nil {
		t.Fatal(err)
	}
	if g.ContentHash() == h0 {
		t.Fatal("added edge did not change the hash")
	}
	if !g.RemoveEdgeLabeled(0, 9, "tmp") {
		t.Fatal("revert failed")
	}
	if got := g.ContentHash(); got != h0 {
		t.Fatalf("reverted content hashes %s, want %s", got, h0)
	}
	if g.Version() == v0 {
		t.Fatal("version should have moved on")
	}
}

// TestContentHashParseDeterminism: identical JSON parses to identical hash
// and identical version — the pair the invocation cache keys on, so this is
// the exact property the cross-session cache depends on.
func TestContentHashParseDeterminism(t *testing.T) {
	data, err := json.Marshal(KnowledgeGraph(8, 14, rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g1.ContentHash() != g2.ContentHash() {
		t.Fatal("identical JSON hashed differently")
	}
	if g1.Version() != g2.Version() {
		t.Fatalf("identical JSON produced versions %d and %d", g1.Version(), g2.Version())
	}
}

// TestContentHashSmallGraphs pins a few distinctions a sloppy hash could
// miss: empty vs one-node, directed vs undirected empties, edge direction
// in directed graphs, and structure beyond label/edge multisets (a triangle
// plus isolated node vs a 4-path — same n, m, labels, and edge labels).
func TestContentHashSmallGraphs(t *testing.T) {
	if New().ContentHash() != New().ContentHash() {
		t.Fatal("empty graphs must agree")
	}
	if New().ContentHash() == NewDirected().ContentHash() {
		t.Fatal("directedness must reach the hash")
	}
	one := New()
	one.AddNode("x")
	if one.ContentHash() == New().ContentHash() {
		t.Fatal("node count must reach the hash")
	}

	ab := NewDirected()
	a, b := ab.AddNode("a"), ab.AddNode("b")
	if err := ab.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	ba := NewDirected()
	a2, b2 := ba.AddNode("a"), ba.AddNode("b")
	if err := ba.AddEdge(b2, a2); err != nil {
		t.Fatal(err)
	}
	if ab.ContentHash() == ba.ContentHash() {
		t.Fatal("directed edge orientation must reach the hash")
	}

	tri := New()
	for i := 0; i < 4; i++ {
		tri.AddNode("x")
	}
	path := New()
	for i := 0; i < 4; i++ {
		path.AddNode("x")
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}} {
		if err := tri.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := path.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if tri.ContentHash() == path.ContentHash() {
		t.Fatal("WL refinement failed: triangle+isolated collided with 4-path")
	}
}

// wlTwins returns the classic 1-WL indistinguishable pair — a 6-cycle and
// two disjoint triangles, every node labeled the same — which collide
// under any refinement-based canonical hash.
func wlTwins(t *testing.T) (*Graph, *Graph) {
	t.Helper()
	cycle := New()
	for i := 0; i < 6; i++ {
		cycle.AddNode("C")
	}
	for i := 0; i < 6; i++ {
		if err := cycle.AddEdge(NodeID(i), NodeID((i+1)%6)); err != nil {
			t.Fatal(err)
		}
	}
	triangles := New()
	for i := 0; i < 6; i++ {
		triangles.AddNode("C")
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := triangles.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return cycle, triangles
}

// TestExactHashDiscriminatesWLEquivalents documents the canonical hash's
// known boundary and pins the guard against it: a 6-cycle and two disjoint
// triangles are 1-WL equivalent, so ContentHash collides — and ExactHash,
// the equality witness the intern store and invoke cache key on, must tell
// them apart so the collision can never alias shared state.
func TestExactHashDiscriminatesWLEquivalents(t *testing.T) {
	cycle, triangles := wlTwins(t)
	if cycle.ContentHash() != triangles.ContentHash() {
		// Not a failure of the system — just a stronger hash than 1-WL —
		// but this test exists to keep the exact-hash guard honest, so
		// flag the assumption change loudly.
		t.Fatal("expected the WL twins to collide under ContentHash; the refinement got stronger — revisit whether ExactHash is still the discriminator")
	}
	if cycle.ExactHash() == triangles.ExactHash() {
		t.Fatal("ExactHash failed to distinguish structurally different graphs")
	}
}

// TestExactHashOrderSensitivity: permuted insertion orders produce equal
// canonical hashes (the order-invariance property) but different exact
// hashes — node IDs are observable through API args and outputs, so the
// representations must not be conflated by the stores keyed on identity.
func TestExactHashOrderSensitivity(t *testing.T) {
	xy := New()
	xy.AddNode("x")
	xy.AddNode("y")
	yx := New()
	yx.AddNode("y")
	yx.AddNode("x")
	if xy.ContentHash() != yx.ContentHash() {
		t.Fatal("canonical hash must be insertion-order invariant")
	}
	if xy.ExactHash() == yx.ExactHash() {
		t.Fatal("exact hash must see the node-ID assignment")
	}
	// Identical representations agree on both.
	xy2 := New()
	xy2.AddNode("x")
	xy2.AddNode("y")
	if xy.ExactHash() != xy2.ExactHash() || xy.ContentHash() != xy2.ContentHash() {
		t.Fatal("identical construction must agree on both hashes")
	}
}

// TestSharedCloneIsPrivate: clones of interned graphs are mutable privately
// and never inherit the shared mark.
func TestSharedCloneIsPrivate(t *testing.T) {
	g := PlantedCommunities(2, 4, 0.8, 0.2, rand.New(rand.NewSource(8)))
	g.MarkShared()
	if !g.Shared() {
		t.Fatal("MarkShared did not stick")
	}
	c := g.Clone()
	if c.Shared() {
		t.Fatal("clone inherited the shared mark")
	}
	if c.ContentHash() != g.ContentHash() {
		t.Fatal("clone content differs from original")
	}
	before := g.NumNodes()
	c.AddNode("private")
	if g.NumNodes() != before {
		t.Fatal("clone mutation leaked into the shared original")
	}
	if c.ContentHash() == g.ContentHash() {
		t.Fatal("mutated clone still hashes like the original")
	}
}

// TestSharedMutationPanicsUnderRace: the race-build guard turns a mutation
// of a shared graph into a loud failure instead of silent cross-session
// corruption.
func TestSharedMutationPanicsUnderRace(t *testing.T) {
	if !raceEnabled {
		t.Skip("mutation guard is armed only in race-enabled builds")
	}
	g := New()
	g.AddNode("a")
	g.MarkShared()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a shared graph did not panic under -race")
		}
	}()
	g.AddNode("b")
}
