package graph

import (
	"fmt"
	"math/rand"
)

// The generators below produce the synthetic workloads the demonstration
// scenarios run on: social networks with planted communities (scenario 1),
// molecule-like graphs (scenarios 1–2), and knowledge graphs (scenario 3).
// All take an explicit *rand.Rand so experiments are reproducible.

// ErdosRenyi returns G(n, p): each unordered pair joined independently with
// probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := New()
	g.Name = fmt.Sprintf("er_%d", n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j)) //nolint:errcheck // endpoints valid by construction
			}
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: each new node
// attaches to m existing nodes chosen proportionally to degree. The result
// has the heavy-tailed degree distribution typical of social networks.
func BarabasiAlbert(n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	g := New()
	g.Name = fmt.Sprintf("ba_%d_%d", n, m)
	// Seed clique of m+1 nodes.
	seed := m + 1
	if seed > n {
		seed = n
	}
	for i := 0; i < seed; i++ {
		g.AddNode(fmt.Sprintf("u%d", i))
	}
	var stubs []NodeID // one entry per edge endpoint, sampling ∝ degree
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.AddEdge(NodeID(i), NodeID(j)) //nolint:errcheck
			stubs = append(stubs, NodeID(i), NodeID(j))
		}
	}
	for i := seed; i < n; i++ {
		u := g.AddNode(fmt.Sprintf("u%d", i))
		chosen := make(map[NodeID]bool, m)
		for len(chosen) < m {
			var t NodeID
			if len(stubs) == 0 || rng.Float64() < 0.05 {
				t = NodeID(rng.Intn(int(u)))
			} else {
				t = stubs[rng.Intn(len(stubs))]
			}
			if t != u {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(u, t) //nolint:errcheck
			stubs = append(stubs, u, t)
		}
	}
	return g
}

// WattsStrogatz returns a small-world ring lattice with n nodes, k nearest
// neighbours each side, and rewiring probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *Graph {
	g := New()
	g.Name = fmt.Sprintf("ws_%d_%d", n, k)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("w%d", i))
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			t := (i + j) % n
			if rng.Float64() < beta {
				for tries := 0; tries < 8; tries++ {
					cand := rng.Intn(n)
					if cand != i && !g.HasEdge(NodeID(i), NodeID(cand)) {
						t = cand
						break
					}
				}
			}
			if !g.HasEdge(NodeID(i), NodeID(t)) && i != t {
				g.AddEdge(NodeID(i), NodeID(t)) //nolint:errcheck
			}
		}
	}
	return g
}

// PlantedCommunities returns a social-style graph of k communities of size
// csize with intra-community edge probability pin and inter probability pout.
// Node attrs record the planted community for evaluation.
func PlantedCommunities(k, csize int, pin, pout float64, rng *rand.Rand) *Graph {
	g := New()
	g.Name = fmt.Sprintf("sbm_%dx%d", k, csize)
	n := k * csize
	for i := 0; i < n; i++ {
		id := g.AddNode(fmt.Sprintf("p%d", i))
		g.SetNodeAttr(id, "community", fmt.Sprintf("%d", i/csize))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if i/csize == j/csize {
				p = pin
			}
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j)) //nolint:errcheck
			}
		}
	}
	return g
}

// atomSpec weights the atoms that appear in generated molecules roughly like
// organic chemistry: mostly carbon with scattered heteroatoms.
var atomSpec = []struct {
	symbol  string
	valence int
	weight  int
}{
	{"C", 4, 70},
	{"N", 3, 10},
	{"O", 2, 12},
	{"S", 2, 4},
	{"Cl", 1, 2},
	{"F", 1, 2},
}

// Molecule returns a connected molecule-like graph with nAtoms atoms: a
// random spanning tree respecting valences, plus extra ring-closing bonds.
// Node labels are element symbols; the "element" attr duplicates the label so
// relabeling (graph cleaning) cannot destroy chemistry information.
func Molecule(nAtoms int, rng *rand.Rand) *Graph {
	if nAtoms < 1 {
		nAtoms = 1
	}
	g := New()
	g.Name = fmt.Sprintf("mol_%d", nAtoms)
	total := 0
	for _, a := range atomSpec {
		total += a.weight
	}
	pick := func() (string, int) {
		r := rng.Intn(total)
		for _, a := range atomSpec {
			if r < a.weight {
				return a.symbol, a.valence
			}
			r -= a.weight
		}
		return "C", 4
	}
	valLeft := make([]int, nAtoms)
	for i := 0; i < nAtoms; i++ {
		sym, val := pick()
		id := g.AddNode(sym)
		g.SetNodeAttr(id, "element", sym)
		valLeft[i] = val
	}
	// Spanning tree: attach node i to a random earlier node with free valence.
	for i := 1; i < nAtoms; i++ {
		cands := make([]int, 0, i)
		for j := 0; j < i; j++ {
			if valLeft[j] > 0 {
				cands = append(cands, j)
			}
		}
		if len(cands) == 0 {
			// All saturated (possible with many halogens); bond to previous
			// anyway so the molecule stays connected.
			cands = append(cands, i-1)
		}
		j := cands[rng.Intn(len(cands))]
		g.AddEdgeLabeled(NodeID(j), NodeID(i), "bond", 1) //nolint:errcheck
		valLeft[j]--
		valLeft[i]--
	}
	// Ring closures: about one ring per 6 atoms.
	rings := nAtoms / 6
	for r := 0; r < rings; r++ {
		i, j := rng.Intn(nAtoms), rng.Intn(nAtoms)
		if i == j || valLeft[i] <= 0 || valLeft[j] <= 0 || g.HasEdge(NodeID(i), NodeID(j)) {
			continue
		}
		g.AddEdgeLabeled(NodeID(i), NodeID(j), "bond", 1) //nolint:errcheck
		valLeft[i]--
		valLeft[j]--
	}
	return g
}

// kgRelations are the relation vocabulary for generated knowledge graphs.
// Some are symmetric, some transitive; the inference rules in internal/kg
// exploit exactly these properties.
var kgRelations = []string{"born_in", "located_in", "works_for", "spouse_of", "part_of", "capital_of", "member_of"}

// KnowledgeGraph returns a directed graph of nEntities entities joined by
// nTriples labeled relations drawn from a fixed vocabulary. Entities get
// type attrs (person/place/org) so relations are type-plausible, which the
// cleaning APIs rely on to spot implausible (injected) edges.
func KnowledgeGraph(nEntities, nTriples int, rng *rand.Rand) *Graph {
	g := NewDirected()
	g.Name = fmt.Sprintf("kg_%d", nEntities)
	types := []string{"person", "place", "org"}
	for i := 0; i < nEntities; i++ {
		t := types[rng.Intn(len(types))]
		id := g.AddNode(fmt.Sprintf("%s_%d", t, i))
		g.SetNodeAttr(id, "type", t)
	}
	// plausible maps relation → (subject type, object type).
	plausible := map[string][2]string{
		"born_in":    {"person", "place"},
		"located_in": {"place", "place"},
		"works_for":  {"person", "org"},
		"spouse_of":  {"person", "person"},
		"part_of":    {"org", "org"},
		"capital_of": {"place", "place"},
		"member_of":  {"person", "org"},
	}
	byType := make(map[string][]NodeID)
	for _, n := range g.Nodes() {
		byType[n.Attrs["type"]] = append(byType[n.Attrs["type"]], n.ID)
	}
	added := 0
	for tries := 0; added < nTriples && tries < nTriples*20; tries++ {
		rel := kgRelations[rng.Intn(len(kgRelations))]
		sig := plausible[rel]
		subjs, objs := byType[sig[0]], byType[sig[1]]
		if len(subjs) == 0 || len(objs) == 0 {
			continue
		}
		s := subjs[rng.Intn(len(subjs))]
		o := objs[rng.Intn(len(objs))]
		if s == o || g.HasEdge(s, o) {
			continue
		}
		if err := g.AddEdgeLabeled(s, o, rel, 1); err == nil {
			added++
		}
	}
	return g
}

// KGRelationTypes exposes the (subject type, object type) signature of each
// generated relation so the cleaning module can validate edges.
func KGRelationTypes() map[string][2]string {
	return map[string][2]string{
		"born_in":    {"person", "place"},
		"located_in": {"place", "place"},
		"works_for":  {"person", "org"},
		"spouse_of":  {"person", "person"},
		"part_of":    {"org", "org"},
		"capital_of": {"place", "place"},
		"member_of":  {"person", "org"},
	}
}
