//go:build race

package graph

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip under it (instrumentation allocates).
const raceEnabled = true
