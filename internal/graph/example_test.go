package graph_test

import (
	"fmt"

	"chatgraph/internal/graph"
)

func ExampleGraph() {
	g := graph.New()
	a := g.AddNode("alice")
	b := g.AddNode("bob")
	c := g.AddNode("carol")
	g.AddEdge(a, b) //nolint:errcheck
	g.AddEdge(b, c) //nolint:errcheck
	fmt.Println(g.NumNodes(), "nodes,", g.NumEdges(), "edges")
	fmt.Println("alice-bob adjacent:", g.HasEdge(a, b))
	fmt.Println("distance alice->carol:", g.ShortestPathLengths(a)[c])
	// Output:
	// 3 nodes, 2 edges
	// alice-bob adjacent: true
	// distance alice->carol: 2
}

func ExampleClassify() {
	mol := graph.New()
	c1 := mol.AddNode("C")
	o := mol.AddNode("O")
	mol.AddEdge(c1, o) //nolint:errcheck
	fmt.Println(graph.Classify(mol))
	// Output:
	// molecule
}

func ExampleFindSubgraphIsomorphisms() {
	host := graph.New()
	c1 := host.AddNode("C")
	c2 := host.AddNode("C")
	o := host.AddNode("O")
	host.AddEdge(c1, c2) //nolint:errcheck
	host.AddEdge(c2, o)  //nolint:errcheck

	pattern := graph.New()
	pc := pattern.AddNode("C")
	po := pattern.AddNode("O")
	pattern.AddEdge(pc, po) //nolint:errcheck

	matches := graph.FindSubgraphIsomorphisms(pattern, host, graph.IsoOptions{MaxMatches: 4})
	fmt.Println("C-O occurrences:", len(matches))
	// Output:
	// C-O occurrences: 1
}
