package graph

import (
	"sort"
	"sync"
)

// travScratch is the per-traversal working set every CSR algorithm reuses:
// an epoch-stamped visited buffer, a frontier queue, integer and float
// distance arrays, and a hand-rolled Dijkstra heap. Instances recycle
// through travPool (mirroring ann.searchScratch), so a steady-state BFS or
// Dijkstra allocates nothing per visited node, and concurrent traversals
// over one shared frozen graph each lease their own scratch.
type travScratch struct {
	// visited[i] == epoch marks node i seen by the current traversal.
	// Bumping epoch invalidates the whole buffer in O(1).
	visited []uint32
	epoch   uint32
	// queue doubles as BFS frontier and DFS stack.
	queue []int32
	// depths holds per-node hop counts (valid only for visited nodes).
	depths []int32
	// marks is a second stamped buffer (coloring palettes, peeling state).
	marks []int32
	// fdist and parent back Dijkstra.
	fdist  []float64
	parent []int32
	// heap is the Dijkstra priority queue.
	heap []heapEntry
	// curBits/nextBits/visBits are the word-packed frontier and visited
	// bitsets of the hybrid BFS's dense (bottom-up) mode; see CSR.bfsFrom.
	curBits  []uint64
	nextBits []uint64
	visBits  []uint64
}

// heapEntry is one Dijkstra priority-queue item.
type heapEntry struct {
	node int32
	dist float64
}

var travPool = sync.Pool{New: func() any { return new(travScratch) }}

// getTrav leases a scratch sized for n nodes with a fresh visited epoch and
// an empty queue.
func getTrav(n int) *travScratch {
	sc := travPool.Get().(*travScratch)
	if cap(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.visited = sc.visited[:cap(sc.visited)]
	sc.nextEpoch()
	sc.queue = sc.queue[:0]
	sc.heap = sc.heap[:0]
	return sc
}

func putTrav(sc *travScratch) { travPool.Put(sc) }

// nextEpoch invalidates the visited buffer in O(1); a wrap-around triggers
// one real clear so stale stamps can never collide.
func (sc *travScratch) nextEpoch() {
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
}

func (sc *travScratch) seen(i int32) bool { return sc.visited[i] == sc.epoch }
func (sc *travScratch) mark(i int32)      { sc.visited[i] = sc.epoch }

// ints returns sc.depths grown to at least n entries (contents undefined).
func (sc *travScratch) ints(n int) []int32 {
	if cap(sc.depths) < n {
		sc.depths = make([]int32, n)
	}
	return sc.depths[:n]
}

// intMarks returns sc.marks grown to at least n entries (contents undefined).
func (sc *travScratch) intMarks(n int) []int32 {
	if cap(sc.marks) < n {
		sc.marks = make([]int32, n)
	}
	return sc.marks[:n]
}

// floats returns sc.fdist grown to at least n entries (contents undefined).
func (sc *travScratch) floats(n int) []float64 {
	if cap(sc.fdist) < n {
		sc.fdist = make([]float64, n)
	}
	return sc.fdist[:n]
}

// bitsets returns the three word-packed bitsets backing the hybrid BFS's
// dense mode — current frontier, next frontier, visited — each sized for n
// nodes. Contents are undefined; the promotion path rebuilds all three.
func (sc *travScratch) bitsets(n int) (cur, next, vis []uint64) {
	words := (n + 63) >> 6
	if cap(sc.curBits) < words {
		sc.curBits = make([]uint64, words)
		sc.nextBits = make([]uint64, words)
		sc.visBits = make([]uint64, words)
	}
	return sc.curBits[:words], sc.nextBits[:words], sc.visBits[:words]
}

// parents returns sc.parent grown to at least n entries (contents undefined).
func (sc *travScratch) parents(n int) []int32 {
	if cap(sc.parent) < n {
		sc.parent = make([]int32, n)
	}
	return sc.parent[:n]
}

// The Dijkstra heap is hand-rolled over []heapEntry for the same reason the
// ANN heaps are: container/heap boxes every Push/Pop through interface{},
// which is precisely the per-relaxation allocation this package avoids.

func heapPush(h *[]heapEntry, e heapEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist <= s[i].dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func heapPop(h *[]heapEntry) heapEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < n && s[l].dist < s[next].dist {
			next = l
		}
		if r < n && s[r].dist < s[next].dist {
			next = r
		}
		if next == i {
			return top
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
}

// nodeIDSlice sorts []NodeID without the closure allocation of sort.Slice.
type nodeIDSlice []NodeID

func (s nodeIDSlice) Len() int           { return len(s) }
func (s nodeIDSlice) Less(i, j int) bool { return s[i] < s[j] }
func (s nodeIDSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

func sortNodeIDs(s []NodeID) { sort.Sort(nodeIDSlice(s)) }
