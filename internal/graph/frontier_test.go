package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// denseFixtures are graphs whose BFS frontiers actually cross the hybrid
// traversal's promotion threshold (max(n/16, 64) nodes), so the bottom-up
// bitset mode — which the small parity fixtures never reach — is exercised
// for real: dense Erdős–Rényi, a planted-community graph, a directed dense
// graph (probing the reverse adjacency bottom-up), a star (instant
// promotion), and a dense core with a long path tail (promotion followed by
// demotion back to the queue).
func denseFixtures(t testing.TB) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	fixtures := map[string]*Graph{
		"er_dense": ErdosRenyi(400, 0.12, rng),
		"planted":  PlantedCommunities(4, 100, 0.4, 0.01, rng),
	}

	// Directed dense: each ordered pair independently with probability p.
	dd := NewDirected()
	const dn = 300
	for i := 0; i < dn; i++ {
		dd.AddNode("")
	}
	for i := 0; i < dn; i++ {
		for j := 0; j < dn; j++ {
			if i != j && rng.Float64() < 0.08 {
				dd.AddEdge(NodeID(i), NodeID(j)) //nolint:errcheck // endpoints valid by construction
			}
		}
	}
	fixtures["directed_dense"] = dd

	// Star: the hub's first frontier is every leaf, promoting immediately;
	// from a leaf, level two is every other leaf.
	star := New()
	hub := star.AddNode("hub")
	for i := 0; i < 200; i++ {
		leaf := star.AddNode("leaf")
		star.AddEdge(hub, leaf) //nolint:errcheck
	}
	fixtures["star"] = star

	// Dense core with a 150-node path tail: the traversal promotes inside
	// the core, then the frontier collapses to one node per level along the
	// tail — forcing a demotion back to the top-down queue.
	core := ErdosRenyi(300, 0.2, rng)
	prev := NodeID(0)
	for i := 0; i < 150; i++ {
		nxt := core.AddNode("tail")
		core.AddEdge(prev, nxt) //nolint:errcheck
		prev = nxt
	}
	fixtures["core_tail"] = core
	return fixtures
}

// bfsSnapshot runs one eccentricity BFS variant and captures its full
// observable state: the returned eccentricity plus per-node (reached, depth).
func bfsSnapshot(c *CSR, src int32, sc *travScratch, ecc func(int32, *travScratch) int32) (int32, []int32) {
	e := ecc(src, sc)
	depth := make([]int32, c.n)
	for i := 0; i < c.n; i++ {
		if sc.seen(int32(i)) {
			depth[i] = sc.depths[i]
		} else {
			depth[i] = -1
		}
	}
	return e, depth
}

// TestHybridBFSMatchesQueue pins the hybrid (queue/bitset) BFS to the pure
// queue implementation it replaced: identical eccentricity, reached set, and
// per-node depths from every source, on both the small parity fixtures and
// the dense fixtures that actually trip promotion (and demotion).
func TestHybridBFSMatchesQueue(t *testing.T) {
	fixtures := parityFixtures(t)
	for name, g := range denseFixtures(t) {
		fixtures[name] = g
	}
	for name, g := range fixtures {
		c := g.Freeze()
		sc := getTrav(c.n)
		for src := 0; src < c.n; src++ {
			wantE, wantD := bfsSnapshot(c, int32(src), sc, c.eccFromQueue)
			gotE, gotD := bfsSnapshot(c, int32(src), sc, c.eccFrom)
			if gotE != wantE {
				t.Fatalf("%s: eccFrom(%d) = %d, queue oracle %d", name, src, gotE, wantE)
			}
			if !reflect.DeepEqual(gotD, wantD) {
				t.Fatalf("%s: hybrid BFS depths from %d diverge from queue oracle", name, src)
			}
		}
		putTrav(sc)
	}
}

// TestShortestPathLengthsDense checks the public hop-count API on graphs that
// reach dense mode, against the naive slice-based BFS.
func TestShortestPathLengthsDense(t *testing.T) {
	for name, g := range denseFixtures(t) {
		n := len(g.Nodes())
		for _, src := range []NodeID{0, NodeID(n / 2), NodeID(n - 1)} {
			want := make([]int, n)
			for i := range want {
				want[i] = -1
			}
			naiveBFS(g, src, func(id NodeID, d int) bool { want[id] = d; return true })
			if got := g.ShortestPathLengths(src); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ShortestPathLengths(%d) diverges from naive BFS", name, src)
			}
		}
	}
}

// TestConnectedComponentsDense checks component extraction on dense graphs —
// including a disjoint union of two dense blobs, where the shared traversal
// epoch must keep the second component's bottom-up sweep from rediscovering
// the first.
func TestConnectedComponentsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	fixtures := denseFixtures(t)
	u, err := DisjointUnion(ErdosRenyi(200, 0.2, rng), ErdosRenyi(150, 0.25, rng))
	if err != nil {
		t.Fatal(err)
	}
	u.AddNode("iso")
	fixtures["dense_union"] = u
	for name, g := range fixtures {
		if got, want := g.ConnectedComponents(), naiveConnectedComponents(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: ConnectedComponents diverges from naive (got %d comps, want %d)", name, len(got), len(want))
		}
	}
}

// TestEccentricitiesDense runs the public all-source API (which fans eccFrom
// out across workers) on a dense fixture against the naive oracle.
func TestEccentricitiesDense(t *testing.T) {
	g := denseFixtures(t)["er_dense"]
	ecc, radius, diameter := Eccentricities(g)
	wantEcc, wantR, wantD := naiveEccentricities(g)
	if !reflect.DeepEqual(ecc, wantEcc) || radius != wantR || diameter != wantD {
		t.Fatalf("Eccentricities diverges from naive: r=%d/%d d=%d/%d", radius, wantR, diameter, wantD)
	}
}
