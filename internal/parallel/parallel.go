// Package parallel holds the one concurrency primitive the batched vector
// stack needs: a bounded parallel for-loop. ann.SearchBatch and
// embed.EmbedBatch both fan work out through it, so the GOMAXPROCS clamp,
// the sequential small-n fallback, and the atomic work-claiming loop live
// in exactly one place.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), fanning the calls across at
// most GOMAXPROCS goroutines and returning when all have finished. Work is
// claimed with an atomic counter, so uneven item costs balance naturally.
// With one worker (or n ≤ 1) it degenerates to a plain loop on the calling
// goroutine. fn must be safe to call concurrently.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
