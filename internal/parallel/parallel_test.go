package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		counts := make([]atomic.Int32, n)
		ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, got)
			}
		}
	}
}

func TestForEachNegativeN(t *testing.T) {
	ran := false
	ForEach(-3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for negative n")
	}
}
