package ann

// NSW is the navigable-small-world baseline: vectors are inserted one at a
// time, each connecting bidirectionally to the M nearest nodes found by a
// beam search over the graph built so far. It is the classic pre-HNSW
// construction the ANN surveys cited by the paper benchmark against.
type NSW struct {
	graphIndex
	m int
}

// NSWConfig tunes NSW construction.
type NSWConfig struct {
	// M is the number of bidirectional links per inserted node (0 → 16).
	M int
	// EFConstruction is the beam width used to find link targets during
	// insertion (0 → 64).
	EFConstruction int
	// Beam is the default search beam width (0 → 64).
	Beam int
	// Quant gates two-stage search (int8 routing + exact rerank);
	// construction always links with f32 distances.
	Quant QuantConfig
}

func (c *NSWConfig) setDefaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EFConstruction <= 0 {
		c.EFConstruction = 64
	}
	if c.Beam <= 0 {
		c.Beam = 64
	}
}

// NewNSW builds an NSW graph over vecs. The matrix is filled upfront;
// during construction beam searches only ever reach already-linked nodes,
// so searching over the full matrix with a growing adjacency is safe.
func NewNSW(vecs [][]float32, cfg NSWConfig) (*NSW, error) {
	if err := checkVectors(vecs); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	g := &NSW{m: cfg.M}
	g.mat = mustMatrix(vecs)
	g.adj = make([][]int32, 1, len(vecs))
	g.entry = 0
	g.beam = cfg.Beam
	for i := 1; i < len(vecs); i++ {
		targets, _ := g.beamSearch(g.mat.Row(i), cfg.EFConstruction, cfg.M)
		g.adj = append(g.adj, nil)
		for _, tgt := range targets {
			g.adj[i] = append(g.adj[i], int32(tgt.ID))
			g.adj[tgt.ID] = append(g.adj[tgt.ID], int32(i))
		}
	}
	g.entry = medoid(g.mat)
	g.quant = newQuantStore(g.mat, cfg.Quant)
	return g, nil
}

// Search implements Index.
func (g *NSW) Search(q []float32, k int) []Result {
	rs, _ := g.SearchWithStats(q, k)
	return rs
}

// SearchWithStats implements Index.
func (g *NSW) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	ef := g.beam
	if ef < k {
		ef = k
	}
	if g.quant.enabled() {
		return g.quantBeam(q, ef, k)
	}
	return g.beamSearch(q, ef, k)
}

// SearchBatch implements Index.
func (g *NSW) SearchBatch(qs [][]float32, k int) [][]Result {
	return searchBatch(g, qs, k)
}
