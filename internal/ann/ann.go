// Package ann implements approximate nearest-neighbor search over dense
// vectors. Its centerpiece is the τ-monotonic graph (τ-MG) proximity-graph
// index from the paper's §II-D (Definitions 2–3), which ChatGraph uses to
// retrieve graph-analysis APIs whose description embeddings are closest to
// the user's prompt embedding.
//
// Besides τ-MG the package provides the baselines the paper's performance
// claim is made against: exact brute force, an MRNG-style monotonic graph
// (τ-MG with τ = 0), and an NSW-style incrementally built graph. All indexes
// share the Index interface so the retrieval module and the benchmark
// harness can swap them freely.
package ann

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"chatgraph/internal/vecmath"
)

// Result is one search hit: the vector's ID (its position in the build slice)
// and its distance to the query.
type Result struct {
	ID   int
	Dist float32
}

// SearchStats reports the work a single search performed, used by the E5
// benchmark to compare routing efficiency across proximity graphs.
type SearchStats struct {
	// DistComps counts distance computations.
	DistComps int
	// Hops counts routing steps (nodes expanded).
	Hops int
}

// Index is a built ANN index over a fixed vector set.
type Index interface {
	// Search returns the k nearest candidates to q, closest first.
	Search(q []float32, k int) []Result
	// SearchWithStats is Search plus per-query work counters.
	SearchWithStats(q []float32, k int) ([]Result, SearchStats)
	// Len reports how many vectors are indexed.
	Len() int
}

// BruteForce is the exact baseline: linear scan over all vectors.
type BruteForce struct {
	vecs [][]float32
}

// NewBruteForce indexes vecs by reference; callers must not mutate them.
func NewBruteForce(vecs [][]float32) *BruteForce {
	return &BruteForce{vecs: vecs}
}

// Len implements Index.
func (b *BruteForce) Len() int { return len(b.vecs) }

// Search implements Index.
func (b *BruteForce) Search(q []float32, k int) []Result {
	rs, _ := b.SearchWithStats(q, k)
	return rs
}

// SearchWithStats implements Index.
func (b *BruteForce) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	if k <= 0 || len(b.vecs) == 0 {
		return nil, SearchStats{}
	}
	rs := make([]Result, 0, len(b.vecs))
	for i, v := range b.vecs {
		rs = append(rs, Result{ID: i, Dist: vecmath.L2(q, v)})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
	if k > len(rs) {
		k = len(rs)
	}
	return rs[:k], SearchStats{DistComps: len(b.vecs), Hops: 1}
}

// Recall computes |approx ∩ exact| / |exact| treating the result lists as ID
// sets; it is the standard recall@k quality metric.
func Recall(approx, exact []Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]bool, len(exact))
	for _, r := range exact {
		in[r.ID] = true
	}
	hit := 0
	for _, r := range approx {
		if in[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// maxHeap of results ordered by descending distance, so the worst candidate
// in a bounded result set sits on top.
type maxHeap []Result

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// minHeap of results ordered by ascending distance: the frontier of a beam
// search.
type minHeap []Result

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Dist < h[j].Dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// graphIndex is the shared machinery of all proximity-graph indexes: vectors,
// adjacency, an entry point, and beam-search routing.
type graphIndex struct {
	vecs  [][]float32
	adj   [][]int32
	entry int
	beam  int // default ef for search, ≥ k
}

// Len implements Index.
func (g *graphIndex) Len() int { return len(g.vecs) }

// medoid returns the index of the vector closest to the dataset mean; used
// as the routing entry point.
func medoid(vecs [][]float32) int {
	if len(vecs) == 0 {
		return -1
	}
	m := vecmath.Mean(vecs)
	best, _ := vecmath.ArgNearest(m, vecs)
	return best
}

// beamSearch routes from the entry point toward q keeping up to ef
// candidates, the standard best-first search used by graph ANN indexes.
func (g *graphIndex) beamSearch(q []float32, ef int) ([]Result, SearchStats) {
	var stats SearchStats
	if len(g.vecs) == 0 || ef <= 0 {
		return nil, stats
	}
	visited := make(map[int32]bool, ef*4)
	start := Result{ID: g.entry, Dist: vecmath.L2(q, g.vecs[g.entry])}
	stats.DistComps++
	frontier := minHeap{start}
	best := maxHeap{start}
	visited[int32(g.entry)] = true
	for frontier.Len() > 0 {
		cur := heap.Pop(&frontier).(Result)
		if best.Len() >= ef && cur.Dist > best[0].Dist {
			break
		}
		stats.Hops++
		for _, nb := range g.adj[cur.ID] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := vecmath.L2(q, g.vecs[nb])
			stats.DistComps++
			if best.Len() < ef || d < best[0].Dist {
				heap.Push(&frontier, Result{ID: int(nb), Dist: d})
				heap.Push(&best, Result{ID: int(nb), Dist: d})
				if best.Len() > ef {
					heap.Pop(&best)
				}
			}
		}
	}
	out := make([]Result, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&best).(Result)
	}
	return out, stats
}

// GreedyRoute performs the paper's single-path greedy routing: from the
// entry point repeatedly move to the neighbor closest to q; stop when no
// neighbor improves. It returns the final node and the routing stats. On a
// τ-monotonic graph this finds the exact nearest neighbor of queries whose
// nearest neighbor is within τ of the query (the τ-MG guarantee).
func (g *graphIndex) GreedyRoute(q []float32) (Result, SearchStats) {
	var stats SearchStats
	if len(g.vecs) == 0 {
		return Result{ID: -1, Dist: float32(math.Inf(1))}, stats
	}
	cur := g.entry
	curDist := vecmath.L2(q, g.vecs[cur])
	stats.DistComps++
	for {
		stats.Hops++
		improved := false
		for _, nb := range g.adj[cur] {
			d := vecmath.L2(q, g.vecs[nb])
			stats.DistComps++
			if d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return Result{ID: cur, Dist: curDist}, stats
		}
	}
}

// Degrees returns the out-degree of every node, for index-size diagnostics.
func (g *graphIndex) Degrees() []int {
	ds := make([]int, len(g.adj))
	for i, a := range g.adj {
		ds[i] = len(a)
	}
	return ds
}

// AvgDegree returns the mean out-degree of the proximity graph.
func (g *graphIndex) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return float64(total) / float64(len(g.adj))
}

func checkVectors(vecs [][]float32) error {
	if len(vecs) == 0 {
		return fmt.Errorf("ann: empty vector set")
	}
	d := len(vecs[0])
	if d == 0 {
		return fmt.Errorf("ann: zero-dimensional vectors")
	}
	for i, v := range vecs {
		if len(v) != d {
			return fmt.Errorf("ann: vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	return nil
}
