// Package ann implements approximate nearest-neighbor search over dense
// vectors. Its centerpiece is the τ-monotonic graph (τ-MG) proximity-graph
// index from the paper's §II-D (Definitions 2–3), which ChatGraph uses to
// retrieve graph-analysis APIs whose description embeddings are closest to
// the user's prompt embedding.
//
// Besides τ-MG the package provides the baselines the paper's performance
// claim is made against: exact brute force, an MRNG-style monotonic graph
// (τ-MG with τ = 0), and an NSW-style incrementally built graph. All indexes
// share the Index interface so the retrieval module and the benchmark
// harness can swap them freely.
//
// Every index stores its vectors in a contiguous vecmath.Matrix and
// computes distances with fused dot-trick kernels against precomputed row
// norms. Per-search working state (visited stamps, heaps, distance tiles)
// recycles through a sync.Pool, so single searches allocate only their
// result slice and SearchBatch serves concurrent queries over one shared
// index without locks or garbage.
package ann

import (
	"fmt"
	"math"

	"chatgraph/internal/vecmath"
)

// Result is one search hit: the vector's ID (its position in the build slice)
// and its distance to the query.
type Result struct {
	ID   int
	Dist float32
}

// SearchStats reports the work a single search performed, used by the E5
// benchmark to compare routing efficiency across proximity graphs.
type SearchStats struct {
	// DistComps counts distance computations.
	DistComps int
	// Hops counts routing steps (nodes expanded).
	Hops int
}

// Index is a built ANN index over a fixed vector set. Implementations are
// immutable after construction, so all methods are safe for concurrent use.
type Index interface {
	// Search returns the k nearest candidates to q, closest first.
	Search(q []float32, k int) []Result
	// SearchWithStats is Search plus per-query work counters.
	SearchWithStats(q []float32, k int) ([]Result, SearchStats)
	// SearchBatch answers many queries in one call, fanning them across a
	// bounded worker pool. out[i] is the result list for qs[i].
	SearchBatch(qs [][]float32, k int) [][]Result
	// Len reports how many vectors are indexed.
	Len() int
}

// BruteForce is the exact baseline: a fused linear scan over the flat
// matrix with a k-bounded heap, O(n·d + n·log k) per query. With the
// quantized tier enabled the scan runs over int8 codes and only the
// rerank·k best candidates touch f32 rows, making it approximate (recall
// bounded by the rerank factor) but far cheaper per candidate.
type BruteForce struct {
	mat   *vecmath.Matrix
	quant quantStore
}

// NewBruteForce copies vecs into a contiguous matrix. It panics on ragged
// input; an empty input yields a searchable empty index.
func NewBruteForce(vecs [][]float32) *BruteForce {
	return &BruteForce{mat: mustMatrix(vecs)}
}

// NewBruteForceQuant is NewBruteForce plus the two-stage quantized scan
// described by cfg. With cfg.Enabled false it is exactly NewBruteForce.
func NewBruteForceQuant(vecs [][]float32, cfg QuantConfig) *BruteForce {
	b := NewBruteForce(vecs)
	b.quant = newQuantStore(b.mat, cfg)
	return b
}

// newBruteForceMatrix shares an already-built matrix (used by index
// construction to avoid duplicating vector storage).
func newBruteForceMatrix(m *vecmath.Matrix) *BruteForce { return &BruteForce{mat: m} }

// Len implements Index.
func (b *BruteForce) Len() int { return b.mat.Rows() }

// Search implements Index.
func (b *BruteForce) Search(q []float32, k int) []Result {
	rs, _ := b.SearchWithStats(q, k)
	return rs
}

// bruteTile is the row-tile width of the fused brute-force scan: small
// enough for the distance buffer to stay cache-hot, large enough to
// amortize loop overhead.
const bruteTile = 256

// SearchWithStats implements Index. The scan computes squared distances a
// tile at a time with the fused kernel and feeds them into a k-bounded
// max-heap, so no n-sized buffer is ever materialized.
func (b *BruteForce) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	n := b.mat.Rows()
	if k <= 0 || n == 0 {
		return nil, SearchStats{}
	}
	if k > n {
		k = n
	}
	sc := getScratch(0)
	defer putScratch(sc)
	if b.quant.enabled() {
		return b.searchQuant(q, k, sc)
	}
	qn := vecmath.SquaredNorm(q)
	tile := sc.distTile(bruteTile)
	for base := 0; base < n; base += bruteTile {
		hi := base + bruteTile
		if hi > n {
			hi = n
		}
		b.mat.L2SquaredRange(q, qn, base, hi, tile)
		for j, d := range tile[:hi-base] {
			boundedInsert(&sc.best, Result{ID: base + j, Dist: d}, k)
		}
	}
	return drainSorted(&sc.best, k), SearchStats{DistComps: n, Hops: 1}
}

// searchQuant is the two-stage brute-force scan: tile the int8 codes into a
// rerank·k-bounded heap, then rerank those candidates against the f32 rows.
func (b *BruteForce) searchQuant(q []float32, k int, sc *searchScratch) ([]Result, SearchStats) {
	n := b.mat.Rows()
	m := b.quant.overfetch(k, n)
	b.quant.qmat.QuantizeQuery(q, &sc.qq)
	tile := sc.distTile(bruteTile)
	for base := 0; base < n; base += bruteTile {
		hi := base + bruteTile
		if hi > n {
			hi = n
		}
		b.quant.qmat.L2SquaredRange(&sc.qq, base, hi, tile)
		for j, d := range tile[:hi-base] {
			boundedInsert(&sc.best, Result{ID: base + j, Dist: d}, m)
		}
	}
	stats := SearchStats{DistComps: n, Hops: 1}
	return rerankExact(b.mat, q, vecmath.SquaredNorm(q), sc, k, &stats), stats
}

// SearchBatch implements Index.
func (b *BruteForce) SearchBatch(qs [][]float32, k int) [][]Result {
	return searchBatch(b, qs, k)
}

// Recall computes |approx ∩ exact| / |exact| treating the result lists as ID
// sets; it is the standard recall@k quality metric.
func Recall(approx, exact []Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]bool, len(exact))
	for _, r := range exact {
		in[r.ID] = true
	}
	hit := 0
	for _, r := range approx {
		if in[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// graphIndex is the shared machinery of all proximity-graph indexes: the
// flat vector matrix, adjacency, an entry point, and beam-search routing.
type graphIndex struct {
	mat   *vecmath.Matrix
	adj   [][]int32
	entry int
	beam  int        // default ef for search, ≥ k
	quant quantStore // optional int8 routing tier (see quantBeam)
}

// Len implements Index.
func (g *graphIndex) Len() int { return g.mat.Rows() }

// medoid returns the index of the row closest to the matrix mean; used as
// the routing entry point.
func medoid(m *vecmath.Matrix) int {
	n := m.Rows()
	if n == 0 {
		return -1
	}
	mean := m.Mean()
	qn := vecmath.SquaredNorm(mean)
	best, bestDist := -1, float32(0)
	for i := 0; i < n; i++ {
		if d := m.L2SquaredTo(mean, qn, i); best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// beamSearch routes from the entry point toward q keeping up to ef
// candidates and returning the closest k, the standard best-first search
// used by graph ANN indexes. Scratch state comes from the shared pool, so
// concurrent searches over one index are race-free and allocation-free
// apart from the result slice.
func (g *graphIndex) beamSearch(q []float32, ef, k int) ([]Result, SearchStats) {
	var stats SearchStats
	if g.mat.Rows() == 0 || ef <= 0 || k <= 0 {
		return nil, stats
	}
	sc := getScratch(g.mat.Rows())
	defer putScratch(sc)
	qn := vecmath.SquaredNorm(q)
	return beamSearchAdj(g.mat, g.adj, g.entry, ef, k, q, qn, sc, &stats), stats
}

// GreedyRoute performs the paper's single-path greedy routing: from the
// entry point repeatedly move to the neighbor closest to q; stop when no
// neighbor improves. It returns the final node and the routing stats. On a
// τ-monotonic graph this finds the exact nearest neighbor of queries whose
// nearest neighbor is within τ of the query (the τ-MG guarantee). The walk
// compares squared distances and allocates nothing.
func (g *graphIndex) GreedyRoute(q []float32) (Result, SearchStats) {
	var stats SearchStats
	if g.mat.Rows() == 0 {
		return Result{ID: -1, Dist: float32(math.Inf(1))}, stats
	}
	qn := vecmath.SquaredNorm(q)
	cur := g.entry
	curDist := g.mat.L2SquaredTo(q, qn, cur)
	stats.DistComps++
	for {
		stats.Hops++
		improved := false
		for _, nb := range g.adj[cur] {
			d := g.mat.L2SquaredTo(q, qn, int(nb))
			stats.DistComps++
			if d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return Result{ID: cur, Dist: sqrtf(curDist)}, stats
		}
	}
}

// Degrees returns the out-degree of every node, for index-size diagnostics.
func (g *graphIndex) Degrees() []int {
	ds := make([]int, len(g.adj))
	for i, a := range g.adj {
		ds[i] = len(a)
	}
	return ds
}

// AvgDegree returns the mean out-degree of the proximity graph.
func (g *graphIndex) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return float64(total) / float64(len(g.adj))
}

func checkVectors(vecs [][]float32) error {
	if len(vecs) == 0 {
		return fmt.Errorf("ann: empty vector set")
	}
	d := len(vecs[0])
	if d == 0 {
		return fmt.Errorf("ann: zero-dimensional vectors")
	}
	for i, v := range vecs {
		if len(v) != d {
			return fmt.Errorf("ann: vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	return nil
}

// mustMatrix copies validated rows into a Matrix; it panics on ragged
// input, which checkVectors-gated constructors have already excluded.
func mustMatrix(vecs [][]float32) *vecmath.Matrix {
	m, err := vecmath.FromRows(vecs)
	if err != nil {
		panic("ann: " + err.Error())
	}
	return m
}
