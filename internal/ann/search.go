package ann

import (
	"math"
	"sync"

	"chatgraph/internal/parallel"
	"chatgraph/internal/vecmath"
)

// searchScratch is the per-search working set every index reuses: the
// epoch-stamped visited buffer, the two beam-search heaps, and the fused
// distance tile. Instances recycle through scratchPool, so a steady-state
// search allocates nothing but its result slice; concurrent searches each
// Get their own scratch, which keeps the shared indexes race-free.
type searchScratch struct {
	// visited[i] == epoch marks node i seen by the current search. Bumping
	// epoch invalidates the whole buffer in O(1) instead of clearing it.
	visited []uint32
	epoch   uint32
	// frontier (min-heap) and best (bounded max-heap) hold squared
	// distances during routing.
	frontier []Result
	best     []Result
	// dists is the tile buffer for fused distance kernels.
	dists []float32
	// cells ranks IVF cells by centroid distance.
	cells []Result
	// qq holds the quantized query for two-stage search; its code buffer
	// recycles with the scratch, so quantizing a query allocates nothing at
	// steady state.
	qq vecmath.QuantizedQuery
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// getScratch leases a scratch sized for an index of n nodes with a fresh
// visited epoch and empty heaps.
func getScratch(n int) *searchScratch {
	sc := scratchPool.Get().(*searchScratch)
	if cap(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.visited = sc.visited[:cap(sc.visited)]
	sc.nextEpoch()
	sc.frontier = sc.frontier[:0]
	sc.best = sc.best[:0]
	sc.cells = sc.cells[:0]
	return sc
}

// nextEpoch invalidates the visited buffer in O(1). Called once per
// routing pass — a search that routes several times over one scratch
// (HNSW's layers) must not see a previous pass's stamps.
func (sc *searchScratch) nextEpoch() {
	sc.epoch++
	if sc.epoch == 0 {
		// Epoch wrapped: stale stamps could collide, so really clear once.
		clear(sc.visited)
		sc.epoch = 1
	}
}

func putScratch(sc *searchScratch) { scratchPool.Put(sc) }

// distTile returns sc.dists grown to at least n entries.
func (sc *searchScratch) distTile(n int) []float32 {
	if cap(sc.dists) < n {
		sc.dists = make([]float32, n)
	}
	return sc.dists[:n]
}

func (sc *searchScratch) seen(i int32) bool { return sc.visited[i] == sc.epoch }
func (sc *searchScratch) mark(i int32)      { sc.visited[i] = sc.epoch }

// worse reports whether a ranks strictly after b in the canonical
// (Dist, ID) result order — the single comparator both heaps and the
// bounded top-k share, so every index breaks distance ties identically.
func worse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// The heaps below are hand-rolled over []Result rather than container/heap
// because interface{} boxing on every Push/Pop is exactly the per-candidate
// allocation this package is built to avoid.

// minPush adds r to the min-heap h (closest on top).
func minPush(h *[]Result, r Result) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s[p], s[i]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// minPop removes and returns the closest entry of h.
func minPop(h *[]Result) Result {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < n && worse(s[next], s[l]) {
			next = l
		}
		if r < n && worse(s[next], s[r]) {
			next = r
		}
		if next == i {
			return top
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
}

// maxPush adds r to the max-heap h (worst on top), the bounded result set.
func maxPush(h *[]Result, r Result) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// maxPop removes and returns the worst entry of h.
func maxPop(h *[]Result) Result {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < n && worse(s[l], s[next]) {
			next = l
		}
		if r < n && worse(s[r], s[next]) {
			next = r
		}
		if next == i {
			return top
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
}

// boundedInsert offers r to the k-bounded max-heap h, evicting the current
// worst when full and r improves on it.
func boundedInsert(h *[]Result, r Result, k int) bool {
	if len(*h) < k {
		maxPush(h, r)
		return true
	}
	if worse(r, (*h)[0]) {
		return false
	}
	maxPop(h)
	maxPush(h, r)
	return true
}

// drainSorted empties the bounded max-heap into a fresh slice of at most k
// results, closest first, converting the squared distances the heaps work
// in back to linear.
func drainSorted(h *[]Result, k int) []Result {
	for len(*h) > k {
		maxPop(h)
	}
	out := make([]Result, len(*h))
	for i := len(out) - 1; i >= 0; i-- {
		r := maxPop(h)
		r.Dist = sqrtf(r.Dist)
		out[i] = r
	}
	return out
}

func sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// beamSearchAdj is the routing core shared by every proximity-graph index:
// best-first search over one adjacency table from entry toward q, keeping
// up to ef candidates and returning the closest k, sorted. All distances
// are computed fused against mat's precomputed norms and compared squared;
// only the k returned results pay a sqrt. The caller provides the scratch
// (heaps + visited epochs), so the search itself allocates only its result
// slice.
func beamSearchAdj(mat *vecmath.Matrix, adj [][]int32, entry, ef, k int, q []float32, qn float32, sc *searchScratch, stats *SearchStats) []Result {
	if mat.Rows() == 0 || ef <= 0 || k <= 0 {
		return nil
	}
	sc.nextEpoch()
	start := Result{ID: entry, Dist: mat.L2SquaredTo(q, qn, entry)}
	stats.DistComps++
	sc.frontier = sc.frontier[:0]
	sc.best = sc.best[:0]
	minPush(&sc.frontier, start)
	maxPush(&sc.best, start)
	sc.mark(int32(entry))
	for len(sc.frontier) > 0 {
		cur := minPop(&sc.frontier)
		if len(sc.best) >= ef && cur.Dist > sc.best[0].Dist {
			break
		}
		stats.Hops++
		for _, nb := range adj[cur.ID] {
			if sc.seen(nb) {
				continue
			}
			sc.mark(nb)
			d := mat.L2SquaredTo(q, qn, int(nb))
			stats.DistComps++
			if len(sc.best) < ef || d < sc.best[0].Dist {
				minPush(&sc.frontier, Result{ID: int(nb), Dist: d})
				maxPush(&sc.best, Result{ID: int(nb), Dist: d})
				if len(sc.best) > ef {
					maxPop(&sc.best)
				}
			}
		}
	}
	return drainSorted(&sc.best, k)
}

// searchBatch fans qs across a bounded worker pool (at most GOMAXPROCS
// goroutines) and returns one result list per query, in input order. Every
// worker leases its own scratch through the pool, so batches over one
// shared index are race-free and per-query allocation-free; out[i] is nil
// only when qs[i] produced no results.
func searchBatch(ix Index, qs [][]float32, k int) [][]Result {
	out := make([][]Result, len(qs))
	if len(qs) == 0 || k <= 0 {
		return out
	}
	parallel.ForEach(len(qs), func(i int) {
		out[i] = ix.Search(qs[i], k)
	})
	return out
}
