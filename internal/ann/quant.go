package ann

import "chatgraph/internal/vecmath"

// QuantConfig gates the two-stage quantized search path every index can
// carry: stage 1 ranks candidates with int8 kernels over a
// vecmath.QuantizedMatrix (¼ the scanned bytes of the f32 store), stage 2
// reranks the RerankFactor·k best quantized candidates exactly against the
// retained f32 Matrix. The f32 matrix stays resident (rerank needs it), so
// the ÷4 applies to the tier every candidate touches, not total RSS.
type QuantConfig struct {
	// Enabled turns the quantized tier on.
	Enabled bool
	// RerankFactor is the stage-1 over-fetch multiple: the quantized scan
	// keeps RerankFactor·k candidates for the exact rerank
	// (0 → DefaultRerankFactor). Higher factors buy recall with more f32
	// distance computations.
	RerankFactor int
}

// DefaultRerankFactor is the over-fetch multiple used when
// QuantConfig.RerankFactor is 0. At 4 the rerank touches 4·k f32 rows —
// recall@10 holds ≥ 0.95 on the package's random and clustered fixtures.
const DefaultRerankFactor = 4

// quantStore is the per-index quantized tier: the int8 view of the index's
// matrix plus the resolved rerank factor. A zero quantStore means the f32
// path (enabled reports false).
type quantStore struct {
	qmat   *vecmath.QuantizedMatrix
	rerank int
}

func newQuantStore(m *vecmath.Matrix, cfg QuantConfig) quantStore {
	if !cfg.Enabled || m.Rows() == 0 {
		return quantStore{}
	}
	f := cfg.RerankFactor
	if f <= 0 {
		f = DefaultRerankFactor
	}
	return quantStore{qmat: vecmath.Quantize(m), rerank: f}
}

func (qs *quantStore) enabled() bool { return qs.qmat != nil }

// overfetch resolves the stage-1 candidate count for a top-k query over n
// rows: rerank·k, clamped to n.
func (qs *quantStore) overfetch(k, n int) int {
	m := k * qs.rerank
	if m > n {
		m = n
	}
	return m
}

// rerankExact is stage 2: recompute exact f32 distances for every candidate
// sitting in sc.best (stage 1's quantized top-m) and return the closest k,
// sorted. Candidates stage through sc.frontier — idle between stages — so
// the rerank allocates nothing beyond the result slice.
func rerankExact(mat *vecmath.Matrix, q []float32, qn float32, sc *searchScratch, k int, stats *SearchStats) []Result {
	cands := append(sc.frontier[:0], sc.best...)
	sc.best = sc.best[:0]
	for _, c := range cands {
		boundedInsert(&sc.best, Result{ID: c.ID, Dist: mat.L2SquaredTo(q, qn, c.ID)}, k)
	}
	stats.DistComps += len(cands)
	sc.frontier = cands[:0]
	return drainSorted(&sc.best, k)
}

// beamSearchAdjQ is beamSearchAdj's stage-1 twin: the same best-first
// routing over one adjacency table, but with every distance computed by the
// fused int8 kernel against the quantized matrix. It leaves the ef best
// quantized candidates in sc.best (squared quantized distances, undrained)
// for rerankExact; sc.qq must already hold the quantized query.
func beamSearchAdjQ(qmat *vecmath.QuantizedMatrix, adj [][]int32, entry, ef int, sc *searchScratch, stats *SearchStats) {
	if qmat.Rows() == 0 || ef <= 0 {
		return
	}
	sc.nextEpoch()
	start := Result{ID: entry, Dist: qmat.L2SquaredTo(&sc.qq, entry)}
	stats.DistComps++
	sc.frontier = sc.frontier[:0]
	sc.best = sc.best[:0]
	minPush(&sc.frontier, start)
	maxPush(&sc.best, start)
	sc.mark(int32(entry))
	for len(sc.frontier) > 0 {
		cur := minPop(&sc.frontier)
		if len(sc.best) >= ef && cur.Dist > sc.best[0].Dist {
			break
		}
		stats.Hops++
		for _, nb := range adj[cur.ID] {
			if sc.seen(nb) {
				continue
			}
			sc.mark(nb)
			d := qmat.L2SquaredTo(&sc.qq, int(nb))
			stats.DistComps++
			if len(sc.best) < ef || d < sc.best[0].Dist {
				minPush(&sc.frontier, Result{ID: int(nb), Dist: d})
				maxPush(&sc.best, Result{ID: int(nb), Dist: d})
				if len(sc.best) > ef {
					maxPop(&sc.best)
				}
			}
		}
	}
}

// quantBeam is the quantized two-stage search shared by the graph indexes:
// route with int8 distances keeping max(ef, rerank·k) candidates, then
// rerank the rerank·k best exactly.
func (g *graphIndex) quantBeam(q []float32, ef, k int) ([]Result, SearchStats) {
	var stats SearchStats
	n := g.mat.Rows()
	if n == 0 || ef <= 0 || k <= 0 {
		return nil, stats
	}
	if k > n {
		k = n
	}
	m := g.quant.overfetch(k, n)
	if ef < m {
		ef = m
	}
	sc := getScratch(n)
	defer putScratch(sc)
	g.quant.qmat.QuantizeQuery(q, &sc.qq)
	beamSearchAdjQ(g.quant.qmat, g.adj, g.entry, ef, sc, &stats)
	for len(sc.best) > m {
		maxPop(&sc.best)
	}
	return rerankExact(g.mat, q, vecmath.SquaredNorm(q), sc, k, &stats), stats
}
