package ann

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chatgraph/internal/vecmath"
)

func testVectors(n, d int, seed int64) [][]float32 {
	return RandomVectors(n, d, rand.New(rand.NewSource(seed)))
}

func TestBruteForceExact(t *testing.T) {
	vecs := [][]float32{{0, 0}, {1, 0}, {0, 2}, {3, 3}}
	bf := NewBruteForce(vecs)
	rs := bf.Search([]float32{0.9, 0.1}, 2)
	if len(rs) != 2 || rs[0].ID != 1 || rs[1].ID != 0 {
		t.Fatalf("Search = %+v", rs)
	}
	if bf.Len() != 4 {
		t.Fatalf("Len = %d", bf.Len())
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	bf := NewBruteForce(nil)
	if got := bf.Search([]float32{1}, 3); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	bf = NewBruteForce([][]float32{{1, 1}})
	if got := bf.Search([]float32{0, 0}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := bf.Search([]float32{0, 0}, 10); len(got) != 1 {
		t.Fatalf("k>n returned %d results", len(got))
	}
}

func TestRecall(t *testing.T) {
	exact := []Result{{ID: 1}, {ID: 2}, {ID: 3}}
	approx := []Result{{ID: 2}, {ID: 9}, {ID: 1}}
	if got := Recall(approx, exact); got < 0.66 || got > 0.67 {
		t.Fatalf("Recall = %v, want 2/3", got)
	}
	if Recall(nil, nil) != 1 {
		t.Fatal("Recall with empty truth should be 1")
	}
}

func TestTauMGRejectsBadInput(t *testing.T) {
	if _, err := NewTauMG(nil, TauMGConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := NewTauMG([][]float32{{}}, TauMGConfig{}); err == nil {
		t.Fatal("zero-dim input accepted")
	}
	if _, err := NewTauMG([][]float32{{1, 2}, {1}}, TauMGConfig{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestTauMGHighRecall(t *testing.T) {
	vecs := testVectors(800, 16, 1)
	idx, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	queries := testVectors(50, 16, 2)
	ev := Evaluate(idx, bf, queries, 10, 0.05)
	if ev.RecallAtK < 0.9 {
		t.Fatalf("recall@10 = %.3f, want ≥ 0.9 (%s)", ev.RecallAtK, ev)
	}
	if ev.AvgDistComps >= float64(len(vecs)) {
		t.Fatalf("beam search did %f dist comps, no better than brute force", ev.AvgDistComps)
	}
}

func TestMRNGIsTauZero(t *testing.T) {
	vecs := testVectors(200, 8, 3)
	idx, err := NewMRNG(vecs, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tau() != 0 {
		t.Fatalf("MRNG tau = %v", idx.Tau())
	}
	if idx.Len() != 200 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestTauMGLargerTauKeepsMoreEdges(t *testing.T) {
	vecs := testVectors(300, 8, 4)
	small, err := NewTauMG(vecs, TauMGConfig{Tau: 0})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewTauMG(vecs, TauMGConfig{Tau: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if big.AvgDegree() < small.AvgDegree() {
		t.Fatalf("tau=0.3 degree %.2f < tau=0 degree %.2f; occlusion should weaken with tau",
			big.AvgDegree(), small.AvgDegree())
	}
}

func TestGreedyRouteFindsNearOptimal(t *testing.T) {
	vecs := testVectors(500, 8, 5)
	idx, err := NewTauMG(vecs, TauMGConfig{Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	queries := testVectors(40, 8, 6)
	okCount := 0
	for _, q := range queries {
		got, stats := idx.GreedyRoute(q)
		truth := bf.Search(q, 1)[0]
		if got.ID == truth.ID || float64(got.Dist) <= 1.25*float64(truth.Dist) {
			okCount++
		}
		if stats.Hops == 0 {
			t.Fatal("greedy route took zero hops")
		}
	}
	if okCount < 30 {
		t.Fatalf("greedy routing acceptable on only %d/40 queries", okCount)
	}
}

func TestGreedyRouteEmpty(t *testing.T) {
	g := &graphIndex{}
	r, _ := g.GreedyRoute([]float32{1})
	if r.ID != -1 {
		t.Fatalf("empty route ID = %d", r.ID)
	}
}

func TestAllNodesReachable(t *testing.T) {
	// Duplicate points are the degenerate case occlusion struggles with.
	vecs := make([][]float32, 60)
	rng := rand.New(rand.NewSource(7))
	for i := range vecs {
		if i%3 == 0 {
			vecs[i] = []float32{1, 1, 1}
		} else {
			v := make([]float32, 3)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			vecs[i] = v
		}
	}
	idx, err := NewTauMG(vecs, TauMGConfig{Tau: 0.1, MaxDegree: 4, CandidatePool: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(vecs))
	stack := []int{idx.entry}
	seen[idx.entry] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range idx.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, int(v))
			}
		}
	}
	if count != len(vecs) {
		t.Fatalf("only %d/%d nodes reachable from entry", count, len(vecs))
	}
}

func TestNSWRecall(t *testing.T) {
	vecs := testVectors(600, 16, 8)
	idx, err := NewNSW(vecs, NSWConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	ev := Evaluate(idx, bf, testVectors(40, 16, 9), 10, 0.05)
	if ev.RecallAtK < 0.8 {
		t.Fatalf("NSW recall@10 = %.3f (%s)", ev.RecallAtK, ev)
	}
}

func TestNSWRejectsBadInput(t *testing.T) {
	if _, err := NewNSW(nil, NSWConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEvaluateEmptyQueries(t *testing.T) {
	vecs := testVectors(10, 4, 10)
	bf := NewBruteForce(vecs)
	ev := Evaluate(bf, bf, nil, 5, 0.1)
	if ev.Queries != 0 {
		t.Fatalf("Queries = %d", ev.Queries)
	}
}

func TestEvaluateSelfIsPerfect(t *testing.T) {
	vecs := testVectors(100, 8, 11)
	bf := NewBruteForce(vecs)
	ev := Evaluate(bf, bf, testVectors(20, 8, 12), 5, 0.01)
	if ev.RecallAt1 != 1 || ev.RecallAtK != 1 || ev.EpsilonOK != 1 {
		t.Fatalf("self evaluation imperfect: %s", ev)
	}
	if ev.String() == "" {
		t.Fatal("empty String")
	}
}

func TestClusteredVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vs := ClusteredVectors(100, 8, 5, 0.05, rng)
	if len(vs) != 100 || len(vs[0]) != 8 {
		t.Fatalf("shape %dx%d", len(vs), len(vs[0]))
	}
	vs = ClusteredVectors(10, 4, 0, 0.1, rng) // c<1 clamps to 1
	if len(vs) != 10 {
		t.Fatal("c=0 not clamped")
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{{ID: 2, Dist: 1}, {ID: 1, Dist: 1}, {ID: 0, Dist: 0.5}}
	sortResults(rs)
	if rs[0].ID != 0 || rs[1].ID != 1 || rs[2].ID != 2 {
		t.Fatalf("sortResults = %+v", rs)
	}
}

// Property: beam search distances are consistent with vecmath.L2 (up to the
// float rounding of the fused dot-trick kernel) and results arrive sorted.
func TestQuickTauMGResultsSorted(t *testing.T) {
	vecs := testVectors(150, 8, 20)
	idx, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05, MaxDegree: 12, CandidatePool: 24})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		q := testVectors(1, 8, seed)[0]
		rs := idx.Search(q, 5)
		for i := range rs {
			if d := vecmath.L2(q, vecs[rs[i].ID]) - rs[i].Dist; d > 1e-3 || d < -1e-3 {
				return false
			}
			if i > 0 && rs[i].Dist < rs[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: recall of an index against itself as truth is always 1.
func TestQuickRecallIdentity(t *testing.T) {
	f := func(ids []int) bool {
		rs := make([]Result, len(ids))
		for i, id := range ids {
			rs[i] = Result{ID: id}
		}
		return Recall(rs, rs) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
