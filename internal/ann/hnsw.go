package ann

import (
	"container/heap"
	"math"
	"math/rand"

	"chatgraph/internal/vecmath"
)

// HNSW is the hierarchical navigable-small-world baseline: NSW layers
// stacked so upper layers provide exponentially sparser long-range "express
// lanes" into the dense bottom layer. It is the strongest practical ANN
// baseline in the surveys the paper cites, so benchmark E5 includes it next
// to τ-MG.
type HNSW struct {
	vecs   [][]float32
	layers [][][]int32 // layers[l][node] = neighbors at level l
	levels []int       // levels[node] = highest layer of node
	entry  int
	maxLvl int
	m      int
	beam   int
}

// HNSWConfig tunes construction.
type HNSWConfig struct {
	// M is the per-layer link budget (0 → 16; layer 0 gets 2·M).
	M int
	// EFConstruction is the insert-time beam width (0 → 64).
	EFConstruction int
	// Beam is the default query-time beam width (0 → 64).
	Beam int
	// Seed drives level sampling.
	Seed int64
}

func (c *HNSWConfig) setDefaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EFConstruction <= 0 {
		c.EFConstruction = 64
	}
	if c.Beam <= 0 {
		c.Beam = 64
	}
}

// NewHNSW builds an HNSW index over vecs.
func NewHNSW(vecs [][]float32, cfg HNSWConfig) (*HNSW, error) {
	if err := checkVectors(vecs); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(len(vecs))))
	levelMult := 1 / math.Log(float64(cfg.M))
	h := &HNSW{
		vecs:   vecs,
		levels: make([]int, len(vecs)),
		m:      cfg.M,
		beam:   cfg.Beam,
	}
	for i := range vecs {
		lvl := int(math.Floor(-math.Log(rng.Float64()+1e-12) * levelMult))
		h.levels[i] = lvl
		for lvl >= len(h.layers) {
			h.layers = append(h.layers, make([][]int32, len(vecs)))
		}
		if i == 0 {
			h.entry = 0
			h.maxLvl = lvl
			continue
		}
		h.insert(i, cfg.EFConstruction)
		if lvl > h.maxLvl {
			h.maxLvl = lvl
			h.entry = i
		}
	}
	return h, nil
}

// insert links node i into every layer up to its level.
func (h *HNSW) insert(i, efc int) {
	q := h.vecs[i]
	cur := h.entry
	// Greedy descent through layers above the node's level.
	for l := h.maxLvl; l > h.levels[i]; l-- {
		cur = h.greedyLayer(q, cur, l)
	}
	// Beam insert on the node's layers, top-down.
	for l := min(h.levels[i], h.maxLvl); l >= 0; l-- {
		cands := h.searchLayer(q, cur, efc, l)
		budget := h.m
		if l == 0 {
			budget = 2 * h.m
		}
		if len(cands) > budget {
			cands = cands[:budget]
		}
		for _, c := range cands {
			h.layers[l][i] = append(h.layers[l][i], int32(c.ID))
			h.layers[l][c.ID] = append(h.layers[l][c.ID], int32(i))
			// Prune over-budget reverse lists, keeping the closest.
			if len(h.layers[l][c.ID]) > budget*2 {
				h.pruneNeighbors(c.ID, l, budget*2)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].ID
		}
	}
}

// pruneNeighbors keeps node u's `keep` nearest links at layer l.
func (h *HNSW) pruneNeighbors(u, l, keep int) {
	nbs := h.layers[l][u]
	rs := make([]Result, len(nbs))
	for i, v := range nbs {
		rs[i] = Result{ID: int(v), Dist: vecmath.L2(h.vecs[u], h.vecs[v])}
	}
	sortResults(rs)
	if keep > len(rs) {
		keep = len(rs)
	}
	out := make([]int32, keep)
	for i := 0; i < keep; i++ {
		out[i] = int32(rs[i].ID)
	}
	h.layers[l][u] = out
}

// greedyLayer walks greedily toward q within one layer.
func (h *HNSW) greedyLayer(q []float32, start, l int) int {
	cur := start
	curDist := vecmath.L2(q, h.vecs[cur])
	for {
		improved := false
		for _, nb := range h.layers[l][cur] {
			if d := vecmath.L2(q, h.vecs[nb]); d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is a beam search within one layer, returning up to ef results
// sorted by distance.
func (h *HNSW) searchLayer(q []float32, start, ef, l int) []Result {
	rs, _ := h.searchLayerStats(q, start, ef, l, nil)
	return rs
}

func (h *HNSW) searchLayerStats(q []float32, start, ef, l int, stats *SearchStats) ([]Result, *SearchStats) {
	if stats == nil {
		stats = &SearchStats{}
	}
	visited := map[int32]bool{int32(start): true}
	d0 := vecmath.L2(q, h.vecs[start])
	stats.DistComps++
	frontier := minHeap{{ID: start, Dist: d0}}
	best := maxHeap{{ID: start, Dist: d0}}
	for frontier.Len() > 0 {
		cur := heap.Pop(&frontier).(Result)
		if best.Len() >= ef && cur.Dist > best[0].Dist {
			break
		}
		stats.Hops++
		for _, nb := range h.layers[l][cur.ID] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := vecmath.L2(q, h.vecs[nb])
			stats.DistComps++
			if best.Len() < ef || d < best[0].Dist {
				heap.Push(&frontier, Result{ID: int(nb), Dist: d})
				heap.Push(&best, Result{ID: int(nb), Dist: d})
				if best.Len() > ef {
					heap.Pop(&best)
				}
			}
		}
	}
	out := make([]Result, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&best).(Result)
	}
	return out, stats
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.vecs) }

// Search implements Index.
func (h *HNSW) Search(q []float32, k int) []Result {
	rs, _ := h.SearchWithStats(q, k)
	return rs
}

// SearchWithStats implements Index.
func (h *HNSW) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	if len(h.vecs) == 0 || k <= 0 {
		return nil, SearchStats{}
	}
	ef := h.beam
	if ef < k {
		ef = k
	}
	stats := &SearchStats{}
	cur := h.entry
	for l := h.maxLvl; l > 0; l-- {
		before := cur
		cur = h.greedyLayer(q, cur, l)
		if cur != before {
			stats.Hops++
		}
	}
	rs, stats := h.searchLayerStats(q, cur, ef, 0, stats)
	if k < len(rs) {
		rs = rs[:k]
	}
	return rs, *stats
}

// MaxLevel reports the top layer index (diagnostics).
func (h *HNSW) MaxLevel() int { return h.maxLvl }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
