package ann

import (
	"math"
	"math/rand"

	"chatgraph/internal/vecmath"
)

// HNSW is the hierarchical navigable-small-world baseline: NSW layers
// stacked so upper layers provide exponentially sparser long-range "express
// lanes" into the dense bottom layer. It is the strongest practical ANN
// baseline in the surveys the paper cites, so benchmark E5 includes it next
// to τ-MG.
type HNSW struct {
	mat    *vecmath.Matrix
	layers [][][]int32 // layers[l][node] = neighbors at level l
	levels []int       // levels[node] = highest layer of node
	entry  int
	maxLvl int
	m      int
	beam   int
	quant  quantStore
}

// HNSWConfig tunes construction.
type HNSWConfig struct {
	// M is the per-layer link budget (0 → 16; layer 0 gets 2·M).
	M int
	// EFConstruction is the insert-time beam width (0 → 64).
	EFConstruction int
	// Beam is the default query-time beam width (0 → 64).
	Beam int
	// Seed drives level sampling.
	Seed int64
	// Quant gates two-stage search: the upper-layer greedy descent stays
	// f32 (it touches a handful of sparse nodes), the layer-0 beam routes
	// over int8 codes, and the rerank·k best are reranked exactly.
	// Construction always links with f32 distances.
	Quant QuantConfig
}

func (c *HNSWConfig) setDefaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EFConstruction <= 0 {
		c.EFConstruction = 64
	}
	if c.Beam <= 0 {
		c.Beam = 64
	}
}

// NewHNSW builds an HNSW index over vecs, copied once into a flat matrix.
func NewHNSW(vecs [][]float32, cfg HNSWConfig) (*HNSW, error) {
	if err := checkVectors(vecs); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(len(vecs))))
	levelMult := 1 / math.Log(float64(cfg.M))
	h := &HNSW{
		mat:    mustMatrix(vecs),
		levels: make([]int, len(vecs)),
		m:      cfg.M,
		beam:   cfg.Beam,
	}
	for i := range vecs {
		lvl := int(math.Floor(-math.Log(rng.Float64()+1e-12) * levelMult))
		h.levels[i] = lvl
		for lvl >= len(h.layers) {
			h.layers = append(h.layers, make([][]int32, len(vecs)))
		}
		if i == 0 {
			h.entry = 0
			h.maxLvl = lvl
			continue
		}
		h.insert(i, cfg.EFConstruction)
		if lvl > h.maxLvl {
			h.maxLvl = lvl
			h.entry = i
		}
	}
	h.quant = newQuantStore(h.mat, cfg.Quant)
	return h, nil
}

// insert links node i into every layer up to its level.
func (h *HNSW) insert(i, efc int) {
	q := h.mat.Row(i)
	qn := h.mat.SquaredNorm(i)
	cur := h.entry
	// Greedy descent through layers above the node's level.
	for l := h.maxLvl; l > h.levels[i]; l-- {
		cur = h.greedyLayer(q, qn, cur, l)
	}
	sc := getScratch(h.mat.Rows())
	defer putScratch(sc)
	var stats SearchStats // required by beamSearchAdj; construction discards it
	// Beam insert on the node's layers, top-down.
	for l := min(h.levels[i], h.maxLvl); l >= 0; l-- {
		cands := beamSearchAdj(h.mat, h.layers[l], cur, efc, efc, q, qn, sc, &stats)
		budget := h.m
		if l == 0 {
			budget = 2 * h.m
		}
		if len(cands) > budget {
			cands = cands[:budget]
		}
		for _, c := range cands {
			h.layers[l][i] = append(h.layers[l][i], int32(c.ID))
			h.layers[l][c.ID] = append(h.layers[l][c.ID], int32(i))
			// Prune over-budget reverse lists, keeping the closest.
			if len(h.layers[l][c.ID]) > budget*2 {
				h.pruneNeighbors(c.ID, l, budget*2)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].ID
		}
	}
}

// pruneNeighbors keeps node u's `keep` nearest links at layer l. Squared
// distances suffice: only the ordering matters.
func (h *HNSW) pruneNeighbors(u, l, keep int) {
	nbs := h.layers[l][u]
	rs := make([]Result, len(nbs))
	for i, v := range nbs {
		rs[i] = Result{ID: int(v), Dist: h.mat.L2SquaredRows(u, int(v))}
	}
	sortResults(rs)
	if keep > len(rs) {
		keep = len(rs)
	}
	out := make([]int32, keep)
	for i := 0; i < keep; i++ {
		out[i] = int32(rs[i].ID)
	}
	h.layers[l][u] = out
}

// greedyLayer walks greedily toward q within one layer, comparing squared
// distances against the precomputed norms.
func (h *HNSW) greedyLayer(q []float32, qn float32, start, l int) int {
	cur := start
	curDist := h.mat.L2SquaredTo(q, qn, cur)
	for {
		improved := false
		for _, nb := range h.layers[l][cur] {
			if d := h.mat.L2SquaredTo(q, qn, int(nb)); d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// Len implements Index.
func (h *HNSW) Len() int { return h.mat.Rows() }

// Search implements Index.
func (h *HNSW) Search(q []float32, k int) []Result {
	rs, _ := h.SearchWithStats(q, k)
	return rs
}

// SearchWithStats implements Index: greedy descent through the upper
// layers, then a beam search on layer 0, all over pooled scratch state.
func (h *HNSW) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	var stats SearchStats
	if h.mat.Rows() == 0 || k <= 0 {
		return nil, stats
	}
	ef := h.beam
	if ef < k {
		ef = k
	}
	qn := vecmath.SquaredNorm(q)
	cur := h.entry
	for l := h.maxLvl; l > 0; l-- {
		before := cur
		cur = h.greedyLayer(q, qn, cur, l)
		if cur != before {
			stats.Hops++
		}
	}
	sc := getScratch(h.mat.Rows())
	defer putScratch(sc)
	if h.quant.enabled() {
		n := h.mat.Rows()
		if k > n {
			k = n
		}
		m := h.quant.overfetch(k, n)
		if ef < m {
			ef = m
		}
		h.quant.qmat.QuantizeQuery(q, &sc.qq)
		beamSearchAdjQ(h.quant.qmat, h.layers[0], cur, ef, sc, &stats)
		for len(sc.best) > m {
			maxPop(&sc.best)
		}
		return rerankExact(h.mat, q, qn, sc, k, &stats), stats
	}
	rs := beamSearchAdj(h.mat, h.layers[0], cur, ef, k, q, qn, sc, &stats)
	return rs, stats
}

// SearchBatch implements Index.
func (h *HNSW) SearchBatch(qs [][]float32, k int) [][]Result {
	return searchBatch(h, qs, k)
}

// MaxLevel reports the top layer index (diagnostics).
func (h *HNSW) MaxLevel() int { return h.maxLvl }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
