package ann

import (
	"testing"
)

func TestIVFRejectsBadInput(t *testing.T) {
	if _, err := NewIVFFlat(nil, IVFConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestIVFExactWhenProbingAll(t *testing.T) {
	vecs := testVectors(300, 8, 41)
	ix, err := NewIVFFlat(vecs, IVFConfig{NList: 8, NProbe: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	for _, q := range testVectors(20, 8, 42) {
		got := ix.Search(q, 5)
		want := bf.Search(q, 5)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("full-probe IVF differs from exact: %v vs %v", got, want)
			}
		}
	}
}

func TestIVFPartialProbeRecall(t *testing.T) {
	vecs := ClusteredVectors(1000, 16, 10, 0.2, newRng(43))
	ix, err := NewIVFFlat(vecs, IVFConfig{NList: 16, NProbe: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	ev := Evaluate(ix, bf, ClusteredVectors(50, 16, 10, 0.2, newRng(44)), 10, 0.05)
	if ev.RecallAtK < 0.8 {
		t.Fatalf("IVF recall@10 = %.3f (%s)", ev.RecallAtK, ev)
	}
	if ev.AvgDistComps >= float64(len(vecs)) {
		t.Fatalf("IVF scanned everything: %v", ev.AvgDistComps)
	}
}

func TestIVFDefaults(t *testing.T) {
	vecs := testVectors(100, 4, 45)
	ix, err := NewIVFFlat(vecs, IVFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.NProbe() < 1 {
		t.Fatalf("NProbe = %d", ix.NProbe())
	}
	if got := ix.Search(vecs[0], 0); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
	if got := ix.Search(vecs[3], 1); len(got) != 1 {
		t.Fatalf("search = %v", got)
	}
}

func TestIVFNListClamped(t *testing.T) {
	vecs := testVectors(5, 4, 46)
	if _, err := NewIVFFlat(vecs, IVFConfig{NList: 50, NProbe: 50}); err != nil {
		t.Fatal(err)
	}
}
