package ann

import (
	"fmt"
	"math/rand"
)

// Evaluation aggregates quality and work metrics over a query batch; the E5
// benchmark prints one of these per (index, n) cell.
type Evaluation struct {
	Queries        int
	RecallAt1      float64
	RecallAtK      float64
	K              int
	AvgHops        float64
	AvgDistComps   float64
	EpsilonOK      float64 // fraction of queries satisfying Definition 2
	Epsilon        float64
	AvgNeighborGap float64 // mean (approx1Dist − exact1Dist)
}

// Evaluate runs every query through idx and an exact baseline and aggregates
// recall@1, recall@k, routing work, and the Definition 2 ε-approximation
// rate: d(h′,h) < (1+ε)·d(h*,h).
func Evaluate(idx Index, exact *BruteForce, queries [][]float32, k int, epsilon float64) Evaluation {
	ev := Evaluation{Queries: len(queries), K: k, Epsilon: epsilon}
	if len(queries) == 0 {
		return ev
	}
	for _, q := range queries {
		truth := exact.Search(q, k)
		got, stats := idx.SearchWithStats(q, k)
		ev.RecallAtK += Recall(got, truth)
		if len(got) > 0 && len(truth) > 0 {
			if got[0].ID == truth[0].ID {
				ev.RecallAt1++
			}
			if float64(got[0].Dist) <= (1+epsilon)*float64(truth[0].Dist)+1e-9 {
				ev.EpsilonOK++
			}
			ev.AvgNeighborGap += float64(got[0].Dist - truth[0].Dist)
		}
		ev.AvgHops += float64(stats.Hops)
		ev.AvgDistComps += float64(stats.DistComps)
	}
	n := float64(len(queries))
	ev.RecallAt1 /= n
	ev.RecallAtK /= n
	ev.AvgHops /= n
	ev.AvgDistComps /= n
	ev.EpsilonOK /= n
	ev.AvgNeighborGap /= n
	return ev
}

// String renders one benchmark table row.
func (e Evaluation) String() string {
	return fmt.Sprintf("queries=%d recall@1=%.3f recall@%d=%.3f eps(%.2f)-ok=%.3f hops=%.1f distcomps=%.1f",
		e.Queries, e.RecallAt1, e.K, e.RecallAtK, e.Epsilon, e.EpsilonOK, e.AvgHops, e.AvgDistComps)
}

// RandomVectors generates n unit-scale Gaussian vectors of dimension d, the
// synthetic workload for the ANN benchmarks.
func RandomVectors(n, d int, rng *rand.Rand) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// ClusteredVectors generates n vectors around c Gaussian cluster centers with
// the given intra-cluster spread — a harder, more realistic workload than
// uniform noise because proximity graphs must route between clusters.
func ClusteredVectors(n, d, c int, spread float64, rng *rand.Rand) [][]float32 {
	if c < 1 {
		c = 1
	}
	centers := RandomVectors(c, d, rng)
	out := make([][]float32, n)
	for i := range out {
		ctr := centers[rng.Intn(c)]
		v := make([]float32, d)
		for j := range v {
			v[j] = ctr[j] + float32(rng.NormFloat64()*spread)
		}
		out[i] = v
	}
	return out
}
