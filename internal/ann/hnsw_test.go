package ann

import (
	"testing"
)

func TestHNSWRejectsBadInput(t *testing.T) {
	if _, err := NewHNSW(nil, HNSWConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestHNSWRecall(t *testing.T) {
	vecs := testVectors(800, 16, 21)
	idx, err := NewHNSW(vecs, HNSWConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 800 {
		t.Fatalf("Len = %d", idx.Len())
	}
	bf := NewBruteForce(vecs)
	ev := Evaluate(idx, bf, testVectors(50, 16, 22), 10, 0.05)
	if ev.RecallAtK < 0.9 {
		t.Fatalf("HNSW recall@10 = %.3f (%s)", ev.RecallAtK, ev)
	}
	if ev.AvgDistComps >= float64(len(vecs)) {
		t.Fatalf("HNSW did %f dist comps, no better than brute force", ev.AvgDistComps)
	}
}

func TestHNSWClusteredData(t *testing.T) {
	vecs := ClusteredVectors(600, 16, 8, 0.2, newRng(23))
	idx, err := NewHNSW(vecs, HNSWConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	ev := Evaluate(idx, bf, ClusteredVectors(40, 16, 8, 0.2, newRng(24)), 5, 0.05)
	if ev.RecallAtK < 0.8 {
		t.Fatalf("clustered recall = %.3f", ev.RecallAtK)
	}
}

func TestHNSWHasLayers(t *testing.T) {
	vecs := testVectors(2000, 8, 25)
	idx, err := NewHNSW(vecs, HNSWConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.MaxLevel() < 1 {
		t.Fatalf("2000-point HNSW has max level %d, expected hierarchy", idx.MaxLevel())
	}
}

func TestHNSWSmallK(t *testing.T) {
	vecs := testVectors(50, 4, 26)
	idx, err := NewHNSW(vecs, HNSWConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Search(vecs[7], 1); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("self search = %v", got)
	}
	if got := idx.Search(vecs[0], 0); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
}
