package ann

import (
	"math/rand"
	"sort"
)

// TauMG is the τ-monotonic proximity graph of the paper's Definition 3
// ("Efficient approximate nearest neighbor search in multi-dimensional
// databases", Peng et al., SIGMOD 2023), built here from its edge-occlusion
// rule:
//
//	Given nodes u, u′, v with edge (u,u′) already selected, the edge (u,v)
//	is occluded (not added) if u′ lies in ball(u, δ(u,v)) ∩ ball(v, δ(u,v)−3τ),
//	i.e. δ(u,u′) < δ(u,v) and δ(v,u′) < δ(u,v) − 3τ.
//
// With τ = 0 the rule degenerates to the MRNG rule, so NewMRNG simply calls
// NewTauMG with τ = 0. Larger τ keeps more long edges, which shortens greedy
// routing paths at the cost of degree — the trade-off benchmark E5 sweeps.
type TauMG struct {
	graphIndex
	tau float32
}

// TauMGConfig tunes construction.
type TauMGConfig struct {
	// Tau is the τ parameter of the occlusion rule. Zero yields MRNG.
	Tau float32
	// MaxDegree caps per-node out-degree (0 means the default 32).
	MaxDegree int
	// CandidatePool is how many nearest neighbors are considered per node
	// during construction (0 means the default 96). Larger pools build
	// better graphs more slowly.
	CandidatePool int
	// RandomCandidates adds this many uniformly sampled far candidates to
	// each node's pool (0 means the default 16). On clustered data a pure
	// kNN pool leaves clusters mutually unreachable; the long candidates
	// give the occlusion rule long edges to keep, restoring navigability.
	RandomCandidates int
	// Beam is the default beam width (ef) for Search (0 means 64).
	Beam int
	// Seed drives the random candidate sampling (build is deterministic
	// for a fixed seed).
	Seed int64
	// Quant gates two-stage search: beam routing over int8 codes, exact f32
	// rerank of the rerank·k best. Construction always uses f32 distances —
	// the graph itself is identical either way.
	Quant QuantConfig
}

func (c *TauMGConfig) setDefaults() {
	if c.MaxDegree <= 0 {
		c.MaxDegree = 32
	}
	if c.CandidatePool <= 0 {
		c.CandidatePool = 96
	}
	if c.RandomCandidates == 0 {
		c.RandomCandidates = 16
	}
	if c.RandomCandidates < 0 {
		c.RandomCandidates = 0
	}
	if c.Beam <= 0 {
		c.Beam = 64
	}
}

// NewTauMG builds a τ-MG over vecs. Construction computes, for every node,
// its CandidatePool exact nearest neighbors (O(n²·d) — fine at retrieval
// scale; the API registry has tens to thousands of entries) and then applies
// the occlusion rule in ascending distance order. The vectors are copied
// once into a flat matrix shared by construction and search.
func NewTauMG(vecs [][]float32, cfg TauMGConfig) (*TauMG, error) {
	if err := checkVectors(vecs); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	n := len(vecs)
	t := &TauMG{tau: cfg.Tau}
	t.mat = mustMatrix(vecs)
	t.beam = cfg.Beam
	t.adj = make([][]int32, n)

	// Exact candidate pools via per-node fused scans over the shared matrix.
	bf := newBruteForceMatrix(t.mat)
	pool := cfg.CandidatePool
	if pool > n-1 {
		pool = n - 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	for u := 0; u < n; u++ {
		cands := bf.Search(t.mat.Row(u), pool+1) // +1: the node itself is returned first
		for r := 0; r < cfg.RandomCandidates; r++ {
			v := rng.Intn(n)
			if v != u {
				cands = append(cands, Result{ID: v, Dist: sqrtf(t.mat.L2SquaredRows(u, v))})
			}
		}
		sortResults(cands)
		selected := make([]int32, 0, cfg.MaxDegree)
		prevID := -1
		for _, c := range cands {
			if c.ID == u || c.ID == prevID {
				continue
			}
			prevID = c.ID
			if len(selected) >= cfg.MaxDegree {
				break
			}
			if !t.occluded(c, selected) {
				selected = append(selected, int32(c.ID))
			}
		}
		t.adj[u] = selected
	}
	t.entry = medoid(t.mat)
	t.ensureReachable()
	t.quant = newQuantStore(t.mat, cfg.Quant)
	return t, nil
}

// occluded applies Definition 3: candidate edge (u,v) is blocked if any
// already-selected neighbor u′ of u satisfies δ(u,u′) < δ(u,v) and
// δ(v,u′) < δ(u,v) − 3τ. Candidates arrive in ascending δ(u,v) order, so
// δ(u,u′) < δ(u,v) holds for all selected u′ automatically; only the second
// ball test is evaluated, squared against the precomputed row norms.
func (t *TauMG) occluded(v Result, selected []int32) bool {
	limit := v.Dist - 3*t.tau
	if limit <= 0 {
		return false // the second ball is empty; nothing can occlude
	}
	limitSq := limit * limit
	for _, up := range selected {
		if t.mat.L2SquaredRows(v.ID, int(up)) < limitSq {
			return true
		}
	}
	return false
}

// ensureReachable adds an edge from the entry point to the first node of any
// weakly unreachable region so every vector is searchable. Occlusion can in
// rare degenerate datasets (many duplicate points) orphan nodes.
func (t *TauMG) ensureReachable() {
	n := t.mat.Rows()
	seen := make([]bool, n)
	stack := []int{t.entry}
	seen[t.entry] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range t.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, int(v))
			}
		}
	}
	if count == n {
		return
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			t.adj[t.entry] = append(t.adj[t.entry], int32(v))
			// Mark the whole newly connected region.
			stack = append(stack, v)
			seen[v] = true
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range t.adj[u] {
					if !seen[w] {
						seen[w] = true
						stack = append(stack, int(w))
					}
				}
			}
		}
	}
}

// Tau returns the τ the graph was built with.
func (t *TauMG) Tau() float32 { return t.tau }

// Search implements Index using beam search with the configured beam width.
func (t *TauMG) Search(q []float32, k int) []Result {
	rs, _ := t.SearchWithStats(q, k)
	return rs
}

// SearchWithStats implements Index.
func (t *TauMG) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	ef := t.beam
	if ef < k {
		ef = k
	}
	if t.quant.enabled() {
		return t.quantBeam(q, ef, k)
	}
	return t.beamSearch(q, ef, k)
}

// SearchBatch implements Index.
func (t *TauMG) SearchBatch(qs [][]float32, k int) [][]Result {
	return searchBatch(t, qs, k)
}

// NewMRNG builds the MRNG baseline: a τ-MG with τ = 0, whose occlusion rule
// is exactly the monotonic relative neighborhood rule.
func NewMRNG(vecs [][]float32, maxDegree, beam int) (*TauMG, error) {
	return NewTauMG(vecs, TauMGConfig{Tau: 0, MaxDegree: maxDegree, Beam: beam})
}

// sortResults orders hits by distance then ID, the canonical result order.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}
