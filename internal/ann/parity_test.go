package ann

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// naiveTopK is the pre-refactor brute-force baseline, reimplemented the way
// the seed did it: direct [][]float32 subtraction distances, a full n-sized
// result slice, and a complete (Dist, ID) sort. The matrix-backed indexes
// must reproduce its answers.
func naiveTopK(vecs [][]float32, q []float32, k int) []Result {
	rs := make([]Result, 0, len(vecs))
	for i, v := range vecs {
		var s float64
		for j := range q {
			d := float64(q[j] - v[j])
			s += d * d
		}
		rs = append(rs, Result{ID: i, Dist: float32(math.Sqrt(s))})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
	if k > len(rs) {
		k = len(rs)
	}
	return rs[:k]
}

// sameIDs reports whether two result lists rank the same vectors in the
// same order; distances are compared to a tolerance because the fused
// dot-trick kernel rounds differently than direct subtraction.
func sameIDs(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: result %d ID = %d, want %d (got %+v want %+v)", label, i, got[i].ID, want[i].ID, got, want)
		}
		if d := float64(got[i].Dist - want[i].Dist); d > 1e-3 || d < -1e-3 {
			t.Fatalf("%s: result %d dist = %v, want %v", label, i, got[i].Dist, want[i].Dist)
		}
	}
}

// parityFixture is one deterministic dataset every parity test shares.
func parityFixture() (vecs, queries [][]float32) {
	rng := rand.New(rand.NewSource(99))
	return ClusteredVectors(300, 12, 6, 0.25, rng), ClusteredVectors(40, 12, 6, 0.25, rng)
}

// TestBruteForceParity: the tiled fused scan with a bounded heap must
// return exactly what the seed's sort-everything scan returned.
func TestBruteForceParity(t *testing.T) {
	vecs, queries := parityFixture()
	bf := NewBruteForce(vecs)
	for _, k := range []int{1, 5, 10, 300, 500} {
		for _, q := range queries {
			sameIDs(t, "bruteforce", bf.Search(q, k), naiveTopK(vecs, q, k))
		}
	}
}

// TestGraphIndexParity: with the beam opened to n, a connected proximity
// graph explores every node, so τ-MG and NSW must agree exactly with the
// brute-force baseline on every query — the recall-parity proof that the
// matrix/scratch rewrite changed no results.
func TestGraphIndexParity(t *testing.T) {
	vecs, queries := parityFixture()
	n := len(vecs)
	taumg, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05, Beam: n})
	if err != nil {
		t.Fatal(err)
	}
	nsw, err := NewNSW(vecs, NSWConfig{Beam: n, EFConstruction: n})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want := naiveTopK(vecs, q, 10)
		sameIDs(t, "taumg", taumg.Search(q, 10), want)
		sameIDs(t, "nsw", nsw.Search(q, 10), want)
	}
}

// TestIVFFullProbeParity: probing every cell is an exact search, so IVF
// must match the baseline too.
func TestIVFFullProbeParity(t *testing.T) {
	vecs, queries := parityFixture()
	ivf, err := NewIVFFlat(vecs, IVFConfig{NList: 8, NProbe: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		sameIDs(t, "ivf", ivf.Search(q, 10), naiveTopK(vecs, q, 10))
	}
}

// TestHNSWParityRecall: HNSW's pruning keeps no exactness guarantee even
// at full beam, so it is held to perfect recall@10 on the fixture instead
// of per-rank identity.
func TestHNSWParityRecall(t *testing.T) {
	vecs, queries := parityFixture()
	idx, err := NewHNSW(vecs, HNSWConfig{Seed: 7, Beam: len(vecs)})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, q := range queries {
		total += Recall(idx.Search(q, 10), naiveTopK(vecs, q, 10))
	}
	if avg := total / float64(len(queries)); avg < 0.99 {
		t.Fatalf("HNSW full-beam recall@10 = %.3f, want ≥ 0.99", avg)
	}
}

// TestSearchBatchMatchesSearch: the batch surface must be a pure fan-out —
// identical results to the one-query loop, in input order, for every index
// type.
func TestSearchBatchMatchesSearch(t *testing.T) {
	vecs, queries := parityFixture()
	indexes := map[string]Index{
		"bruteforce": NewBruteForce(vecs),
	}
	if idx, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05}); err == nil {
		indexes["taumg"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := NewHNSW(vecs, HNSWConfig{Seed: 1}); err == nil {
		indexes["hnsw"] = idx
	} else {
		t.Fatal(err)
	}
	if idx, err := NewIVFFlat(vecs, IVFConfig{Seed: 1}); err == nil {
		indexes["ivf"] = idx
	} else {
		t.Fatal(err)
	}
	for name, idx := range indexes {
		batch := idx.SearchBatch(queries, 5)
		if len(batch) != len(queries) {
			t.Fatalf("%s: batch returned %d lists", name, len(batch))
		}
		for i, q := range queries {
			if want := idx.Search(q, 5); !reflect.DeepEqual(batch[i], want) {
				t.Fatalf("%s: batch[%d] = %+v, loop = %+v", name, i, batch[i], want)
			}
		}
	}
	empty := indexes["bruteforce"].SearchBatch(nil, 5)
	if len(empty) != 0 {
		t.Fatalf("empty batch returned %d lists", len(empty))
	}
}

// TestSearchBatchRace hammers one shared index from many goroutines mixing
// SearchBatch and single Search calls — the scratch-pool concurrency
// contract, verified by CI's -race run.
func TestSearchBatchRace(t *testing.T) {
	vecs, queries := parityFixture()
	idx, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want := idx.SearchBatch(queries, 5)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					got := idx.SearchBatch(queries, 5)
					if !reflect.DeepEqual(got, want) {
						errs <- "concurrent SearchBatch diverged"
						return
					}
				} else {
					qi := (w + i) % len(queries)
					if got := idx.Search(queries[qi], 5); !reflect.DeepEqual(got, want[qi]) {
						errs <- "concurrent Search diverged"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestGraphSearchAllocs: steady-state graph search must allocate only its
// result slice — the visited buffer, heaps, and distance tiles all come
// from the scratch pool.
func TestGraphSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	vecs, queries := parityFixture()
	taumg, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	bf := NewBruteForce(vecs)
	ivf, err := NewIVFFlat(vecs, IVFConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"taumg":      func() { taumg.Search(queries[0], 10) },
		"bruteforce": func() { bf.Search(queries[0], 10) },
		"ivf":        func() { ivf.Search(queries[0], 10) },
		"greedy":     func() { taumg.GreedyRoute(queries[0]) },
	} {
		fn() // warm the pool
		allocs := testing.AllocsPerRun(100, fn)
		limit := 2.0 // the result slice (+ occasional pool refill)
		if name == "greedy" {
			limit = 0
		}
		if allocs > limit {
			t.Errorf("%s: %.1f allocs/op, want ≤ %.0f", name, allocs, limit)
		}
	}
}
