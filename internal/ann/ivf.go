package ann

import (
	"math"
	"math/rand"

	"chatgraph/internal/vecmath"
)

// IVFFlat is the inverted-file baseline: vectors are partitioned into
// nlist k-means cells; a query scans only the nprobe nearest cells. It is
// the classic non-graph competitor in the ANN surveys the paper cites, so
// E5 can show the graph-vs-partition trade-off. Vectors and centroids both
// live in flat matrices, and cell scans run the fused row-list kernel.
type IVFFlat struct {
	mat       *vecmath.Matrix
	centroids *vecmath.Matrix
	cells     [][]int32
	nprobe    int
	quant     quantStore
}

// IVFConfig tunes construction.
type IVFConfig struct {
	// NList is the number of k-means cells (0 → √n rounded).
	NList int
	// NProbe is how many cells a query scans (0 → max(1, NList/8)).
	NProbe int
	// KMeansIters bounds Lloyd iterations (0 → 12).
	KMeansIters int
	// Seed drives centroid initialization.
	Seed int64
	// Quant gates the two-stage quantized cell scan: cells are scanned with
	// int8 kernels, and only the rerank·k survivors touch f32 rows.
	// Centroid ranking stays f32 (centroids are few and accuracy there
	// decides which cells are probed at all).
	Quant QuantConfig
}

// NewIVFFlat builds the index with Lloyd's k-means.
func NewIVFFlat(vecs [][]float32, cfg IVFConfig) (*IVFFlat, error) {
	if err := checkVectors(vecs); err != nil {
		return nil, err
	}
	n := len(vecs)
	if cfg.NList <= 0 {
		cfg.NList = int(math.Sqrt(float64(n)))
		if cfg.NList < 1 {
			cfg.NList = 1
		}
	}
	if cfg.NList > n {
		cfg.NList = n
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = cfg.NList / 8
		if cfg.NProbe < 1 {
			cfg.NProbe = 1
		}
	}
	if cfg.KMeansIters <= 0 {
		cfg.KMeansIters = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	// k-means++ style seeding: first centroid uniform, rest biased toward
	// far points (simple squared-distance sampling).
	centroids := make([][]float32, 0, cfg.NList)
	centroids = append(centroids, vecmath.Clone(vecs[rng.Intn(n)]))
	for len(centroids) < cfg.NList {
		dists := make([]float64, n)
		var total float64
		for i, v := range vecs {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := float64(vecmath.L2Squared(v, c)); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			centroids = append(centroids, vecmath.Clone(vecs[rng.Intn(n)]))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, vecmath.Clone(vecs[idx]))
	}
	assign := make([]int, n)
	for iter := 0; iter < cfg.KMeansIters; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestDist := 0, float32(math.Inf(1))
			for ci, c := range centroids {
				if d := vecmath.L2Squared(v, c); d < bestDist {
					best, bestDist = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, len(centroids))
		sums := make([][]float32, len(centroids))
		for ci := range sums {
			sums[ci] = make([]float32, len(vecs[0]))
		}
		for i, v := range vecs {
			counts[assign[i]]++
			vecmath.Add(sums[assign[i]], v)
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				// Re-seed empty cells from a random point.
				centroids[ci] = vecmath.Clone(vecs[rng.Intn(n)])
				continue
			}
			vecmath.Scale(sums[ci], 1/float32(counts[ci]))
			centroids[ci] = sums[ci]
		}
	}
	cells := make([][]int32, len(centroids))
	for i := range vecs {
		cells[assign[i]] = append(cells[assign[i]], int32(i))
	}
	cmat, err := vecmath.FromRows(centroids)
	if err != nil {
		return nil, err
	}
	ix := &IVFFlat{mat: mustMatrix(vecs), centroids: cmat, cells: cells, nprobe: cfg.NProbe}
	ix.quant = newQuantStore(ix.mat, cfg.Quant)
	return ix, nil
}

// Len implements Index.
func (ix *IVFFlat) Len() int { return ix.mat.Rows() }

// Search implements Index.
func (ix *IVFFlat) Search(q []float32, k int) []Result {
	rs, _ := ix.SearchWithStats(q, k)
	return rs
}

// SearchWithStats implements Index: rank cells by centroid distance, scan
// the nprobe nearest with the fused kernel into a k-bounded heap.
func (ix *IVFFlat) SearchWithStats(q []float32, k int) ([]Result, SearchStats) {
	var stats SearchStats
	if k <= 0 || ix.mat.Rows() == 0 {
		return nil, stats
	}
	sc := getScratch(0)
	defer putScratch(sc)
	qn := vecmath.SquaredNorm(q)
	nc := ix.centroids.Rows()
	tile := sc.distTile(nc)
	ix.centroids.L2SquaredRange(q, qn, 0, nc, tile)
	stats.DistComps += nc
	probe := ix.nprobe
	if probe > nc {
		probe = nc
	}
	// Keep only the probe nearest cells, via the allocation-free bounded
	// heap (sort.Slice would allocate its reflection closure every search).
	// Probing order doesn't matter: the candidate heap below keeps an exact,
	// order-independent top-k under the total (Dist, ID) order.
	for i, d := range tile {
		boundedInsert(&sc.cells, Result{ID: i, Dist: d}, probe)
	}
	// With the quantized tier, cell scans rank with int8 kernels into an
	// over-fetched heap; the exact rerank below restores f32 precision.
	quant := ix.quant.enabled()
	heapK := k
	if quant {
		heapK = ix.quant.overfetch(k, ix.mat.Rows())
		ix.quant.qmat.QuantizeQuery(q, &sc.qq)
	}
	for p := range sc.cells {
		stats.Hops++
		ids := ix.cells[sc.cells[p].ID]
		if len(ids) == 0 {
			continue
		}
		tile = sc.distTile(len(ids))
		if quant {
			ix.quant.qmat.L2SquaredToRows(&sc.qq, ids, tile)
		} else {
			ix.mat.L2SquaredToRows(q, qn, ids, tile)
		}
		stats.DistComps += len(ids)
		for j, d := range tile[:len(ids)] {
			boundedInsert(&sc.best, Result{ID: int(ids[j]), Dist: d}, heapK)
		}
	}
	if quant {
		return rerankExact(ix.mat, q, qn, sc, k, &stats), stats
	}
	return drainSorted(&sc.best, k), stats
}

// SearchBatch implements Index.
func (ix *IVFFlat) SearchBatch(qs [][]float32, k int) [][]Result {
	return searchBatch(ix, qs, k)
}

// NProbe returns the configured probe count (diagnostics).
func (ix *IVFFlat) NProbe() int { return ix.nprobe }
