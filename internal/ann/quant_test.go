package ann

import (
	"math/rand"
	"reflect"
	"testing"
)

// quantFixtures returns the two dataset shapes the quantized tier is held
// to: isotropic random vectors and clustered vectors (the regime retrieval
// embeddings live in, where per-row quantization ranges differ a lot).
func quantFixtures() map[string]struct{ vecs, queries [][]float32 } {
	rngR := rand.New(rand.NewSource(41))
	rngC := rand.New(rand.NewSource(42))
	return map[string]struct{ vecs, queries [][]float32 }{
		"random":    {RandomVectors(400, 32, rngR), RandomVectors(50, 32, rngR)},
		"clustered": {ClusteredVectors(400, 32, 8, 0.2, rngC), ClusteredVectors(50, 32, 8, 0.2, rngC)},
	}
}

// TestQuantRecallParity: at the default rerank factor, every index's
// quantized two-stage search must keep recall@10 ≥ 0.95 against its own f32
// answers on both fixture shapes. This is the acceptance gate for the
// quantized tier: ÷4 scanned bytes at (near-)equal quality.
func TestQuantRecallParity(t *testing.T) {
	for shape, fx := range quantFixtures() {
		vecs, queries := fx.vecs, fx.queries
		n := len(vecs)
		quant := QuantConfig{Enabled: true}
		pairs := map[string][2]Index{}
		pairs["bruteforce"] = [2]Index{NewBruteForce(vecs), NewBruteForceQuant(vecs, quant)}
		{
			f32, err := NewIVFFlat(vecs, IVFConfig{NList: 8, NProbe: 8, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			q8, err := NewIVFFlat(vecs, IVFConfig{NList: 8, NProbe: 8, Seed: 3, Quant: quant})
			if err != nil {
				t.Fatal(err)
			}
			pairs["ivf"] = [2]Index{f32, q8}
		}
		{
			f32, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05, Beam: n})
			if err != nil {
				t.Fatal(err)
			}
			q8, err := NewTauMG(vecs, TauMGConfig{Tau: 0.05, Beam: n, Quant: quant})
			if err != nil {
				t.Fatal(err)
			}
			pairs["taumg"] = [2]Index{f32, q8}
		}
		{
			f32, err := NewNSW(vecs, NSWConfig{Beam: n})
			if err != nil {
				t.Fatal(err)
			}
			q8, err := NewNSW(vecs, NSWConfig{Beam: n, Quant: quant})
			if err != nil {
				t.Fatal(err)
			}
			pairs["nsw"] = [2]Index{f32, q8}
		}
		{
			f32, err := NewHNSW(vecs, HNSWConfig{Seed: 7, Beam: n})
			if err != nil {
				t.Fatal(err)
			}
			q8, err := NewHNSW(vecs, HNSWConfig{Seed: 7, Beam: n, Quant: quant})
			if err != nil {
				t.Fatal(err)
			}
			pairs["hnsw"] = [2]Index{f32, q8}
		}
		for name, pair := range pairs {
			f32, q8 := pair[0], pair[1]
			total := 0.0
			for _, q := range queries {
				total += Recall(q8.Search(q, 10), f32.Search(q, 10))
			}
			if avg := total / float64(len(queries)); avg < 0.95 {
				t.Errorf("%s/%s: quantized recall@10 = %.3f vs f32, want ≥ 0.95", shape, name, avg)
			}
		}
	}
}

// TestQuantRerankDistancesExact: reranked hits must carry exact f32
// distances — quantization may only change which candidates reach stage 2,
// never the reported distance of a survivor.
func TestQuantRerankDistancesExact(t *testing.T) {
	fx := quantFixtures()["clustered"]
	bf := NewBruteForce(fx.vecs)
	q8 := NewBruteForceQuant(fx.vecs, QuantConfig{Enabled: true})
	for _, q := range fx.queries {
		exact := map[int]float32{}
		for _, r := range bf.Search(q, len(fx.vecs)) {
			exact[r.ID] = r.Dist
		}
		for _, r := range q8.Search(q, 10) {
			if r.Dist != exact[r.ID] {
				t.Fatalf("hit %d dist %v, exact %v", r.ID, r.Dist, exact[r.ID])
			}
		}
	}
}

// TestQuantRerankFactorFullIsExact: with the rerank window opened to n the
// two-stage scan degenerates to exact search, so results must be identical
// to the f32 index — the end-to-end correctness anchor for both stages.
func TestQuantRerankFactorFullIsExact(t *testing.T) {
	fx := quantFixtures()["random"]
	n := len(fx.vecs)
	bf := NewBruteForce(fx.vecs)
	q8 := NewBruteForceQuant(fx.vecs, QuantConfig{Enabled: true, RerankFactor: n})
	for _, q := range fx.queries {
		if got, want := q8.Search(q, 10), bf.Search(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("full-rerank search diverged: got %+v want %+v", got, want)
		}
	}
}

// TestQuantDisabledIsSameIndex: QuantConfig zero value must leave every
// constructor byte-for-byte on the f32 path.
func TestQuantDisabledIsSameIndex(t *testing.T) {
	fx := quantFixtures()["random"]
	bf := NewBruteForce(fx.vecs)
	off := NewBruteForceQuant(fx.vecs, QuantConfig{})
	for _, q := range fx.queries {
		if got, want := off.Search(q, 10), bf.Search(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("disabled quant diverged: got %+v want %+v", got, want)
		}
	}
}

// TestQuantSearchAllocs extends the steady-state allocation contract to the
// quantized path: the quantized query codes and the rerank staging buffer
// recycle through the scratch pool, so two-stage search allocates only its
// result slice, same as f32.
func TestQuantSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	fx := quantFixtures()["clustered"]
	quant := QuantConfig{Enabled: true}
	bf := NewBruteForceQuant(fx.vecs, quant)
	taumg, err := NewTauMG(fx.vecs, TauMGConfig{Tau: 0.05, Quant: quant})
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := NewIVFFlat(fx.vecs, IVFConfig{Seed: 1, Quant: quant})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"bruteforce-quant": func() { bf.Search(fx.queries[0], 10) },
		"taumg-quant":      func() { taumg.Search(fx.queries[0], 10) },
		"ivf-quant":        func() { ivf.Search(fx.queries[0], 10) },
	} {
		fn() // warm the pool
		if allocs := testing.AllocsPerRun(100, fn); allocs > 2.0 {
			t.Errorf("%s: %.1f allocs/op, want ≤ 2", name, allocs)
		}
	}
}

// BenchmarkQuantSearch is the E15 end-to-end search row: single-query
// top-10 over the same index with the f32 scan vs the int8 two-stage scan.
func BenchmarkQuantSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	vecs := RandomVectors(4096, 512, rng)
	query := RandomVectors(1, 512, rng)[0]
	bf := NewBruteForce(vecs)
	q8 := NewBruteForceQuant(vecs, QuantConfig{Enabled: true})
	b.Run("bruteforce-f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf.Search(query, 10)
		}
	})
	b.Run("bruteforce-int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q8.Search(query, 10)
		}
	})
	taumg, err := NewTauMG(vecs[:2048], TauMGConfig{Tau: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	taumgQ, err := NewTauMG(vecs[:2048], TauMGConfig{Tau: 0.05, Quant: QuantConfig{Enabled: true}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("taumg-f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			taumg.Search(query, 10)
		}
	})
	b.Run("taumg-int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			taumgQ.Search(query, 10)
		}
	})
}
