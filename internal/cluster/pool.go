// Package cluster is the scale-out tier: a pool of chatgraphd replica
// backends with rendezvous (highest-random-weight) hashing, health-probed
// failure marking with half-open recovery, and the reverse-proxy Router
// that fronts the pool (see router.go). One chatgraphd saturates one core;
// this package is how N of them serve as one endpoint.
//
// Routing model, in one paragraph: every piece of per-conversation state
// (a session, a job) lives on exactly one backend — nothing is replicated.
// Identity is therefore the routing key: the Router mints session and job
// IDs itself and hashes id → backend with HRW, so any later request
// carrying that id deterministically re-derives its owner, with no routing
// table, across router restarts, for any router replica fed the same
// backend list. Graph-bearing uploads with no pinned identity (job
// submissions, legacy /chat) are placed by the graph's canonical content
// hash instead, so identical interned graphs concentrate on one shard's
// caches rather than duplicating across the pool. Stateless routes spread
// round-robin over healthy backends and may retry on the next hop.
package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"net/url"
	"strings"
	"sync"
	"time"

	"chatgraph/internal/metrics"
)

// State is one backend's health, as seen by the failure-marking machine.
type State int32

const (
	// StateDown backends receive no traffic. Backends are born down and
	// earn StateUp from their first successful probe, so a router booted
	// against a half-started pool never routes into the void.
	StateDown State = iota
	// StateUp backends receive traffic.
	StateUp
	// StateHalfOpen marks a down backend whose cooldown has expired and
	// whose recovery probe is in flight: still no traffic, but one probe
	// is allowed to test the water.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateHalfOpen:
		return "half-open"
	default:
		return "down"
	}
}

// Policy tunes the failure-marking state machine.
type Policy struct {
	// FailAfter is how many consecutive failures (probe or transport) mark
	// an up backend down. 0 → 3.
	FailAfter int
	// RecoverAfter is how long a down backend rests before a half-open
	// recovery probe may test it. 0 → 5s.
	RecoverAfter time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.FailAfter <= 0 {
		p.FailAfter = 3
	}
	if p.RecoverAfter <= 0 {
		p.RecoverAfter = 5 * time.Second
	}
	return p
}

// Backend is one chatgraphd replica in the pool.
type Backend struct {
	// Name labels the backend in metrics and the X-Backend response
	// header: the URL's host:port.
	Name string
	// URL is the backend's base URL (scheme + host, no path).
	URL *url.URL

	policy Policy

	mu        sync.Mutex
	state     State
	fails     int
	downSince time.Time

	// Metric handles, resolved once at pool construction.
	up       *metrics.Gauge
	requests *metrics.Counter
	errors   *metrics.Counter
	duration *metrics.Histogram
}

// State reports the backend's current health state.
func (b *Backend) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Routable reports whether the backend may receive traffic right now.
func (b *Backend) Routable() bool { return b.State() == StateUp }

// MarkSuccess records a successful probe or proxied request: failures
// reset, and a down or half-open backend returns to service.
func (b *Backend) MarkSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state != StateUp {
		b.state = StateUp
		b.up.Set(1)
	}
}

// MarkFailure records a failed probe or a transport-level proxy failure.
// An up backend goes down after FailAfter consecutive failures; a
// half-open backend goes straight back down (the recovery probe failed),
// with a fresh cooldown either way.
func (b *Backend) MarkFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == StateUp && b.fails < b.policy.FailAfter {
		return
	}
	if b.state != StateDown {
		b.state = StateDown
		b.up.Set(0)
	}
	b.downSince = time.Now()
}

// BeginProbe asks to transition a rested down backend to half-open so the
// caller can run the one allowed recovery probe. It reports false when the
// backend is not down, still cooling down, or already half-open.
func (b *Backend) BeginProbe(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateDown || now.Sub(b.downSince) < b.policy.RecoverAfter {
		return false
	}
	b.state = StateHalfOpen
	return true
}

// Pool is the fixed set of backends the router fronts. Membership is
// static for the pool's lifetime (restart the router to resize), which is
// what makes HRW owners stable identities.
type Pool struct {
	backends []*Backend
	policy   Policy
}

// NewPool builds a pool over the given backend base URLs (scheme + host,
// e.g. "http://10.0.0.1:8080"), instrumenting each backend into reg (nil →
// metrics.Default()). Backends start down and are promoted by the first
// successful health probe.
func NewPool(rawURLs []string, policy Policy, reg *metrics.Registry) (*Pool, error) {
	if reg == nil {
		reg = metrics.Default()
	}
	policy = policy.withDefaults()
	if len(rawURLs) == 0 {
		return nil, fmt.Errorf("cluster: pool needs at least one backend")
	}
	p := &Pool{policy: policy}
	seen := make(map[string]bool, len(rawURLs))
	for _, raw := range rawURLs {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: backend url %q: %w", raw, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("cluster: backend url %q: scheme must be http or https", raw)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("cluster: backend url %q: missing host", raw)
		}
		name := u.Host
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", name)
		}
		seen[name] = true
		labels := metrics.Labels{"backend": name}
		b := &Backend{
			Name:   name,
			URL:    &url.URL{Scheme: u.Scheme, Host: u.Host},
			policy: policy,
			state:  StateDown,
			up: reg.Gauge("chatgraph_router_backend_up",
				"1 while the backend is routable, 0 while it is marked down or half-open.", labels),
			requests: reg.Counter("chatgraph_router_requests_total",
				"Requests proxied to the backend.", labels),
			errors: reg.Counter("chatgraph_router_errors_total",
				"Proxied requests that failed in transport or answered 5xx.", labels),
			duration: reg.Histogram("chatgraph_router_request_duration_seconds",
				"Proxied request latency by backend.", metrics.DefBuckets, labels),
		}
		b.up.Set(0)
		p.backends = append(p.backends, b)
	}
	if len(p.backends) == 0 {
		return nil, fmt.Errorf("cluster: pool needs at least one backend")
	}
	return p, nil
}

// Backends returns the pool members in configuration order.
func (p *Pool) Backends() []*Backend { return p.backends }

// UpCount reports how many backends are currently routable.
func (p *Pool) UpCount() int {
	n := 0
	for _, b := range p.backends {
		if b.Routable() {
			n++
		}
	}
	return n
}

// hrwScore is the rendezvous weight of (backend, key): each backend hashes
// the key independently and the highest score owns it, so removing one
// backend re-homes only that backend's keys (~1/N of the keyspace) and
// adding one steals only the keys it now wins.
func hrwScore(backend, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, backend) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})         //nolint:errcheck
	io.WriteString(h, key)     //nolint:errcheck
	// FNV-1a diffuses weakly on short inputs, enough to visibly skew the
	// keyspace split across similar backend names; a splitmix64 finalizer
	// restores the balance.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the backend whose rendezvous score for key is highest,
// over the full membership and regardless of health: ownership is an
// identity, not an availability fact — a session on a dead backend is
// unavailable, not re-homed (nothing is replicated to re-home it to).
func (p *Pool) Owner(key string) *Backend {
	var best *Backend
	var bestScore uint64
	for _, b := range p.backends {
		if s := hrwScore(b.Name, key); best == nil || s > bestScore || (s == bestScore && b.Name < best.Name) {
			best, bestScore = b, s
		}
	}
	return best
}

// Rank returns every backend ordered by descending rendezvous score for
// key — the hop order for placement fallback and retry-on-next-hop.
func (p *Pool) Rank(key string) []*Backend {
	out := make([]*Backend, len(p.backends))
	copy(out, p.backends)
	scores := make(map[*Backend]uint64, len(out))
	for _, b := range out {
		scores[b] = hrwScore(b.Name, key)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (scores[out[j]] > scores[out[j-1]] ||
			(scores[out[j]] == scores[out[j-1]] && out[j].Name < out[j-1].Name)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FirstRoutable returns the highest-ranked routable backend for key, or
// nil when the whole pool is down.
func (p *Pool) FirstRoutable(key string) *Backend {
	for _, b := range p.Rank(key) {
		if b.Routable() {
			return b
		}
	}
	return nil
}

// mintAttempts bounds MintKeyFor's rejection sampling. Each draw lands on
// the target with probability ~1/N, so 256 attempts miss with probability
// (1-1/N)^256 — about 1e-7 at N=16.
const mintAttempts = 256

// MintKeyFor generates a random hex key whose Owner is target — how the
// router pins a freshly created session or job onto the backend placement
// chose, while keeping the id → owner derivation purely hash-based. The
// extremely unlikely sampling failure returns the last key drawn (the
// object stays reachable wherever it was created; only cache locality is
// lost), so callers route by Owner(key), never by assuming target.
func (p *Pool) MintKeyFor(target *Backend) string {
	var key string
	for i := 0; i < mintAttempts; i++ {
		key = randomHex(12)
		if p.Owner(key) == target {
			return key
		}
	}
	return key
}

// MintRoutableKey draws random keys until one is owned by a routable
// backend — uniform placement over live backends, weighted by keyspace
// share. It returns the key and its owner, or ("", nil) when the whole
// pool is down.
func (p *Pool) MintRoutableKey() (string, *Backend) {
	for i := 0; i < mintAttempts; i++ {
		key := randomHex(12)
		if b := p.Owner(key); b != nil && b.Routable() {
			return key, b
		}
	}
	return "", nil
}

// randomHex returns 2n hex characters of crypto/rand entropy.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("cluster: id entropy: %v", err))
	}
	return hex.EncodeToString(b)
}
