package cluster

import (
	"io"
	"net/http"
	"sync"
	"time"
)

// Prober actively health-checks the pool: every interval each up backend
// gets a liveness (/healthz) plus readiness (/readyz) probe, and each down
// backend whose cooldown has expired gets one half-open recovery probe. A
// backend is routable only while both probes pass — a daemon that is alive
// but still replaying its WAL (healthz 200, readyz 503) stays out of
// rotation until replay lands, instead of shedding 503s at clients.
type Prober struct {
	pool     *Pool
	interval time.Duration
	client   *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewProber builds a prober over pool. interval ≤ 0 → 1s; timeout ≤ 0 →
// 2s per probe request.
func NewProber(pool *Pool, interval, timeout time.Duration) *Prober {
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Prober{
		pool:     pool,
		interval: interval,
		client:   &http.Client{Timeout: timeout},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the probe loop. The first round runs immediately, so a
// healthy pool becomes routable after one round-trip, not one interval.
func (p *Prober) Start() {
	go func() {
		defer close(p.done)
		p.ProbeOnce()
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.ProbeOnce()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// ProbeOnce runs one probe round over every backend. Up backends are
// re-verified; down backends past their cooldown get the half-open
// recovery probe. Exported so tests (and a router that wants a synchronous
// first look) can drive rounds directly.
func (p *Prober) ProbeOnce() {
	now := time.Now()
	for _, b := range p.pool.Backends() {
		switch b.State() {
		case StateUp:
			if p.probe(b) {
				b.MarkSuccess()
			} else {
				b.MarkFailure()
			}
		case StateDown:
			if !b.BeginProbe(now) {
				continue // still cooling down
			}
			fallthrough
		case StateHalfOpen:
			if p.probe(b) {
				b.MarkSuccess()
			} else {
				b.MarkFailure()
			}
		}
	}
}

// probe runs the liveness + readiness pair against one backend.
func (p *Prober) probe(b *Backend) bool {
	if !p.get(b, "/healthz", false) {
		return false
	}
	// A 404 readyz marks a daemon predating the readiness endpoint: alive
	// implies ready for those.
	return p.get(b, "/readyz", true)
}

func (p *Prober) get(b *Backend, path string, notFoundOK bool) bool {
	resp, err := p.client.Get(b.URL.String() + path)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return true
	}
	return notFoundOK && resp.StatusCode == http.StatusNotFound
}
