package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"chatgraph/internal/metrics"
)

func jsonBody(v any) io.Reader {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return bytes.NewReader(data)
}

func jsonRaw(b []byte) io.Reader { return bytes.NewReader(b) }

// testPool builds a pool over synthetic backend names (no live servers)
// with an isolated metrics registry.
func testPool(t *testing.T, hosts ...string) *Pool {
	t.Helper()
	urls := make([]string, len(hosts))
	for i, h := range hosts {
		urls[i] = "http://" + h
	}
	p, err := NewPool(urls, Policy{}, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHRWStability pins rendezvous hashing's defining property: removing
// one backend re-homes exactly the keys it owned (~1/N of the keyspace)
// and not one key owned by a survivor. This is what makes sessions survive
// a pool member's death without a routing table.
func TestHRWStability(t *testing.T) {
	hosts := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}
	full := testPool(t, hosts...)
	reduced := testPool(t, hosts[:3]...) // drop 10.0.0.4
	const removed = "10.0.0.4:8080"

	const n = 10000
	moved, ownedByRemoved := 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("session-%d", i)
		before := full.Owner(key).Name
		after := reduced.Owner(key).Name
		if before == removed {
			ownedByRemoved++
			continue // must move; anywhere among survivors is correct
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by survivors re-homed; rendezvous must move zero", moved)
	}
	// The removed backend should have owned ~1/4 of the keyspace.
	frac := float64(ownedByRemoved) / n
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("removed backend owned %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// TestHRWBalance checks the four backends split the keyspace roughly
// evenly — a skewed split would make one replica the hot shard.
func TestHRWBalance(t *testing.T) {
	p := testPool(t, "a:1", "b:1", "c:1", "d:1")
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[p.Owner(fmt.Sprintf("key-%d", i)).Name]++
	}
	for name, c := range counts {
		frac := float64(c) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("backend %s owns %.1f%% of keys, want ~25%%", name, 100*frac)
		}
	}
}

// TestOwnerIgnoresHealth pins the identity-vs-availability split: Owner is
// computed over full membership even when the owner is down (the session
// is unavailable, not re-homed), while FirstRoutable walks past it.
func TestOwnerIgnoresHealth(t *testing.T) {
	p := testPool(t, "a:1", "b:1", "c:1")
	const key = "some-session-id"
	owner := p.Owner(key)
	for _, b := range p.backends {
		if b != owner {
			b.MarkSuccess()
		}
	}
	// Owner stays down (born down, never probed up).
	if got := p.Owner(key); got != owner {
		t.Fatalf("Owner moved to %s when the true owner went down", got.Name)
	}
	fr := p.FirstRoutable(key)
	if fr == nil || fr == owner {
		t.Fatalf("FirstRoutable = %v, want a routable non-owner", fr)
	}
	// It must also be the *next* hop in rank order, not an arbitrary one.
	rank := p.Rank(key)
	if rank[0] != owner || fr != rank[1] {
		t.Fatalf("rank order violated: rank[0]=%s rank[1]=%s first-routable=%s",
			rank[0].Name, rank[1].Name, fr.Name)
	}
}

// TestMintKeyFor verifies minted keys land on the requested backend — the
// mechanism that pins freshly created sessions and jobs to the placement
// target.
func TestMintKeyFor(t *testing.T) {
	p := testPool(t, "a:1", "b:1", "c:1", "d:1")
	for _, target := range p.backends {
		for i := 0; i < 8; i++ {
			key := p.MintKeyFor(target)
			if got := p.Owner(key); got != target {
				t.Fatalf("minted key %q owned by %s, want %s", key, got.Name, target.Name)
			}
		}
	}
}

// TestFailureStateMachine walks the marking machine end to end: born down,
// promoted by success, tolerant of FailAfter-1 blips, down on the Nth,
// cooled down before half-open, and straight back down on a failed
// recovery probe.
func TestFailureStateMachine(t *testing.T) {
	reg := metrics.NewRegistry()
	p, err := NewPool([]string{"http://a:1"}, Policy{FailAfter: 3, RecoverAfter: 50 * time.Millisecond}, reg)
	if err != nil {
		t.Fatal(err)
	}
	b := p.backends[0]

	if b.State() != StateDown || b.Routable() {
		t.Fatalf("born state = %s, want down", b.State())
	}
	b.MarkSuccess()
	if b.State() != StateUp || !b.Routable() {
		t.Fatalf("after success state = %s, want up", b.State())
	}
	// FailAfter-1 consecutive failures keep it up; a success resets.
	b.MarkFailure()
	b.MarkFailure()
	if b.State() != StateUp {
		t.Fatalf("after 2 failures state = %s, want up", b.State())
	}
	b.MarkSuccess()
	b.MarkFailure()
	b.MarkFailure()
	if b.State() != StateUp {
		t.Fatalf("success must reset the failure count; state = %s", b.State())
	}
	b.MarkFailure()
	if b.State() != StateDown {
		t.Fatalf("after 3 consecutive failures state = %s, want down", b.State())
	}
	// Cooldown gates the recovery probe.
	if b.BeginProbe(time.Now()) {
		t.Fatal("BeginProbe allowed before cooldown")
	}
	if !b.BeginProbe(time.Now().Add(60 * time.Millisecond)) {
		t.Fatal("BeginProbe refused after cooldown")
	}
	if b.State() != StateHalfOpen || b.Routable() {
		t.Fatalf("state = %s, want half-open (and not routable)", b.State())
	}
	// A half-open backend is not probed twice concurrently.
	if b.BeginProbe(time.Now().Add(time.Hour)) {
		t.Fatal("BeginProbe allowed while half-open")
	}
	// Failed recovery probe: straight back down, one strike.
	b.MarkFailure()
	if b.State() != StateDown {
		t.Fatalf("failed recovery probe left state %s, want down", b.State())
	}
	if !b.BeginProbe(time.Now().Add(time.Hour)) {
		t.Fatal("BeginProbe refused after fresh cooldown")
	}
	b.MarkSuccess()
	if b.State() != StateUp {
		t.Fatalf("successful recovery probe left state %s, want up", b.State())
	}
}

// --- router tests against fake backends ---

// fakeBackend is a minimal chatgraphd stand-in: healthy, ready, and it
// records what the router forwarded.
type fakeBackend struct {
	ts *httptest.Server

	mu        sync.Mutex
	hits      []string
	jobBodies [][]byte
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) { ok(w, map[string]string{"status": "ok"}) })
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) { ok(w, map[string]string{"status": "ok"}) })
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			SessionID string `json:"session_id"`
		}
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		w.WriteHeader(http.StatusCreated)
		ok(w, map[string]string{"session_id": req.SessionID})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, _ *http.Request) {
		ok(w, map[string][]string{"sessions": {f.name() + "-s1", f.name() + "-s2"}})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, 0, 1024)
		buf := make([]byte, 1024)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		f.mu.Lock()
		f.jobBodies = append(f.jobBodies, body)
		f.mu.Unlock()
		var req struct {
			JobID string `json:"job_id"`
		}
		json.Unmarshal(body, &req) //nolint:errcheck
		w.WriteHeader(http.StatusAccepted)
		ok(w, map[string]string{"job_id": req.JobID})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		ok(w, map[string]string{"served_by": f.name(), "path": r.URL.Path})
	})
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.hits = append(f.hits, r.Method+" "+r.URL.Path)
		f.mu.Unlock()
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeBackend) name() string { return f.ts.Listener.Addr().String() }

func (f *fakeBackend) hitCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.hits)
}

// testRouter wires fakes into a pool, probes them up synchronously, and
// serves the router.
func testRouter(t *testing.T, fakes ...*fakeBackend) (*Pool, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(fakes))
	for i, f := range fakes {
		urls[i] = f.ts.URL
	}
	reg := metrics.NewRegistry()
	pool, err := NewPool(urls, Policy{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	NewProber(pool, time.Hour, time.Second).ProbeOnce()
	for _, b := range pool.Backends() {
		if !b.Routable() {
			t.Fatalf("backend %s not up after probe", b.Name)
		}
	}
	rt := httptest.NewServer(NewRouter(pool, Options{Registry: reg}).Handler())
	t.Cleanup(rt.Close)
	return pool, rt
}

// TestRouterSessionAffinity creates sessions through the router and checks
// every follow-up request for a session lands on the backend that created
// it — and that the backend matches the rendezvous owner of the minted id.
func TestRouterSessionAffinity(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	pool, rt := testRouter(t, f1, f2)

	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		resp, err := http.Post(rt.URL+"/v1/sessions", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var created struct {
			SessionID string `json:"session_id"`
		}
		json.NewDecoder(resp.Body).Decode(&created) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated || created.SessionID == "" {
			t.Fatalf("create: status=%d id=%q", resp.StatusCode, created.SessionID)
		}
		createdOn := resp.Header.Get("X-Backend")
		if want := pool.Owner(created.SessionID).Name; createdOn != want {
			t.Fatalf("session %s created on %s, but rendezvous owner is %s", created.SessionID, createdOn, want)
		}
		seen[createdOn] = true
		for j := 0; j < 3; j++ {
			hr, err := http.Get(rt.URL + "/v1/sessions/" + created.SessionID + "/history")
			if err != nil {
				t.Fatal(err)
			}
			hr.Body.Close()
			if got := hr.Header.Get("X-Backend"); got != createdOn {
				t.Fatalf("session %s follow-up landed on %s, created on %s", created.SessionID, got, createdOn)
			}
		}
	}
	// 16 sessions over 2 backends: both sides of the hash should be hit.
	if len(seen) != 2 {
		t.Fatalf("all sessions landed on one backend: %v", seen)
	}
}

// TestRouterOwnerDownIs503 pins the no-re-home rule: when a session's
// owner is down, its requests answer 503 naming the owner — they are never
// silently served by a backend that has no such session.
func TestRouterOwnerDownIs503(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	pool, rt := testRouter(t, f1, f2)

	resp, err := http.Post(rt.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	json.NewDecoder(resp.Body).Decode(&created) //nolint:errcheck
	resp.Body.Close()

	owner := pool.Owner(created.SessionID)
	var other *Backend
	for _, b := range pool.Backends() {
		if b != owner {
			other = b
		}
	}
	otherHits := 0
	for _, f := range []*fakeBackend{f1, f2} {
		if f.name() == other.Name {
			otherHits = f.hitCount()
		}
	}
	// Take the owner down administratively.
	for i := 0; i < 3; i++ {
		owner.MarkFailure()
	}

	hr, err := http.Get(rt.URL + "/v1/sessions/" + created.SessionID + "/history")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("owner-down status = %d, want 503", hr.StatusCode)
	}
	if got := hr.Header.Get("X-Backend"); got != owner.Name {
		t.Fatalf("503 names backend %q, want the down owner %q", got, owner.Name)
	}
	for _, f := range []*fakeBackend{f1, f2} {
		if f.name() == other.Name && f.hitCount() != otherHits {
			t.Fatal("surviving backend was asked about a session it does not own")
		}
	}
}

// TestRouterNeverRetriesNonIdempotent sends a chat POST whose owner is
// unreachable (marked up, but the socket is dead): the router must answer
// 502 without replaying the POST onto the surviving backend.
func TestRouterNeverRetriesNonIdempotent(t *testing.T) {
	dead := newFakeBackend(t)
	live := newFakeBackend(t)
	pool, rt := testRouter(t, dead, live)
	deadName := dead.name()
	dead.ts.Close() // socket gone, state still up

	var deadB *Backend
	for _, b := range pool.Backends() {
		if b.Name == deadName {
			deadB = b
		}
	}
	key := pool.MintKeyFor(deadB)
	liveBefore := live.hitCount()

	resp, err := http.Post(rt.URL+"/v1/sessions/"+key+"/chat", "application/json",
		jsonBody(map[string]string{"question": "q"}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-owner chat status = %d, want 502", resp.StatusCode)
	}
	if live.hitCount() != liveBefore {
		t.Fatal("non-idempotent chat POST was replayed onto another backend")
	}
}

// TestRouterRetriesIdempotent drives idempotent GETs through a pool with a
// dead-but-marked-up member: every request must still succeed via the next
// hop, and the retry counter must move.
func TestRouterRetriesIdempotent(t *testing.T) {
	dead := newFakeBackend(t)
	live := newFakeBackend(t)
	urls := []string{dead.ts.URL, live.ts.URL}
	reg := metrics.NewRegistry()
	pool, err := NewPool(urls, Policy{FailAfter: 100}, reg) // high threshold: stays "up" while dead
	if err != nil {
		t.Fatal(err)
	}
	NewProber(pool, time.Hour, time.Second).ProbeOnce()
	router := NewRouter(pool, Options{Registry: reg})
	rt := httptest.NewServer(router.Handler())
	t.Cleanup(rt.Close)
	dead.ts.Close()

	for i := 0; i < 4; i++ {
		resp, err := http.Get(rt.URL + "/apis")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("idempotent GET %d status = %d, want 200 via next hop", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Backend"); got != live.name() {
			t.Fatalf("GET served by %q, want %q", got, live.name())
		}
	}
	if router.retries.Value() == 0 {
		t.Fatal("round-robin never started on the dead backend; retry path untested")
	}
}

// TestRouterFanoutMergesLists checks GET /v1/sessions through the router
// is the union of every backend's list.
func TestRouterFanoutMergesLists(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	_, rt := testRouter(t, f1, f2)

	resp, err := http.Get(rt.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanout status = %d", resp.StatusCode)
	}
	var payload struct {
		Sessions []string `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Sessions) != 4 {
		t.Fatalf("merged %d sessions, want 4 (2 per backend): %v", len(payload.Sessions), payload.Sessions)
	}
}

// TestRouterJobPlacementByContent submits the same graph-bearing job body
// twice: both must land on the same backend (content-hash placement) with
// a job id whose rendezvous owner is that backend, so later polls follow.
func TestRouterJobPlacementByContent(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	pool, rt := testRouter(t, f1, f2)

	body := []byte(`{"question":"Summarize the statistics of the graph","graph":{"nodes":[{"id":0},{"id":1},{"id":2}],"edges":[{"from":0,"to":1},{"from":1,"to":2}]}}`)
	var landed []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(rt.URL+"/v1/jobs", "application/json", jsonRaw(body))
		if err != nil {
			t.Fatal(err)
		}
		var created struct {
			JobID string `json:"job_id"`
		}
		json.NewDecoder(resp.Body).Decode(&created) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || created.JobID == "" {
			t.Fatalf("submit %d: status=%d id=%q", i, resp.StatusCode, created.JobID)
		}
		backend := resp.Header.Get("X-Backend")
		landed = append(landed, backend)
		if want := pool.Owner(created.JobID).Name; want != backend {
			t.Fatalf("job %s landed on %s but its id is owned by %s", created.JobID, backend, want)
		}
	}
	if landed[0] != landed[1] {
		t.Fatalf("same graph placed on two backends: %v", landed)
	}
	// The forwarded body must still carry the original fields next to the
	// injected job_id.
	for _, f := range []*fakeBackend{f1, f2} {
		f.mu.Lock()
		for _, b := range f.jobBodies {
			var req struct {
				JobID    string          `json:"job_id"`
				Question string          `json:"question"`
				Graph    json.RawMessage `json:"graph"`
			}
			if err := json.Unmarshal(b, &req); err != nil {
				f.mu.Unlock()
				t.Fatalf("forwarded job body unparseable: %v", err)
			}
			if req.JobID == "" || req.Question == "" || len(req.Graph) == 0 {
				f.mu.Unlock()
				t.Fatalf("forwarded job body lost fields: %s", b)
			}
		}
		f.mu.Unlock()
	}
}

// TestRouterReadyz follows the pool: ready with one backend up, 503 when
// the pool is dark.
func TestRouterReadyz(t *testing.T) {
	f1 := newFakeBackend(t)
	pool, rt := testRouter(t, f1)

	resp, err := http.Get(rt.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with pool up = %d", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		pool.Backends()[0].MarkFailure()
	}
	resp, err = http.Get(rt.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with pool dark = %d, want 503", resp.StatusCode)
	}
}

// TestInjectField pins the byte-splice used to pin job ids into bodies the
// router must not re-encode.
func TestInjectField(t *testing.T) {
	cases := []struct{ in, want string }{
		{`{}`, `{"job_id":"k"}`},
		{`{"a":1}`, `{"job_id":"k","a":1}`},
		{`  {"a":1}`, `  {"job_id":"k","a":1}`},
		{`{ }`, `{"job_id":"k" }`},
		{`not json`, `not json`},
	}
	for _, tc := range cases {
		got := string(injectField([]byte(tc.in), "job_id", "k"))
		if got != tc.want {
			t.Errorf("injectField(%q) = %q, want %q", tc.in, got, tc.want)
		}
		if tc.in == `not json` {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(got), &m); err != nil {
			t.Errorf("injectField(%q) produced invalid JSON %q: %v", tc.in, got, err)
		}
	}
}
