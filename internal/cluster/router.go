package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"chatgraph/internal/metrics"
	"chatgraph/internal/server"
	"chatgraph/internal/tenant"
)

// Options tunes the Router.
type Options struct {
	// MaxBody caps one buffered request body; larger uploads answer 413.
	// Bodies are buffered so placement can hash them and idempotent routes
	// can replay them on the next hop. 0 → 8MiB + headroom (the backend's
	// own chat/job body cap plus slack for the injected routing fields).
	MaxBody int64
	// Transport performs the proxied round trips. nil → a cloned
	// http.DefaultTransport with a deeper idle-connection pool.
	Transport http.RoundTripper
	// Registry receives the router-level series (retries, unroutable,
	// fanout); per-backend series were bound when the Pool was built.
	// nil → metrics.Default().
	Registry *metrics.Registry
	// Tenants, when set, labels router traffic per tenant (the same
	// bounded set the backends use, plus "unknown" for unrecognized
	// keys). The router never rejects on tenancy — backends own
	// enforcement — it only forwards the API key header and observes.
	Tenants *tenant.Registry
}

// Router is the cluster front door: an HTTP reverse proxy that owns
// nothing but routing state. Session and job identities are minted here
// and pinned onto backends via the pool's rendezvous hash (see the package
// comment for the routing model); the daemons behind it are stock
// chatgraphd processes that do not know the cluster exists.
type Router struct {
	pool      *Pool
	transport http.RoundTripper
	maxBody   int64
	reg       *metrics.Registry

	// rr rotates stateless traffic across up backends.
	rr atomic.Uint64

	retries       *metrics.Counter
	unroutable    *metrics.Counter
	fanoutPartial *metrics.Counter

	// tenants maps API keys to bounded label values; tenantSeries holds
	// one pre-resolved counter per possible value (nil without -tenants).
	tenants      *tenant.Registry
	tenantSeries map[string]*metrics.Counter
}

// NewRouter builds a Router over pool.
func NewRouter(pool *Pool, opts Options) *Router {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	tr := opts.Transport
	if tr == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConns = 512
		t.MaxIdleConnsPerHost = 128
		tr = t
	}
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = 8<<20 + 64<<10
	}
	rt := &Router{
		pool:      pool,
		transport: tr,
		maxBody:   maxBody,
		reg:       reg,
		retries: reg.Counter("chatgraph_router_retries_total",
			"Idempotent requests replayed on the next hop after a failed attempt.", nil),
		unroutable: reg.Counter("chatgraph_router_unroutable_total",
			"Requests refused because no backend could serve them (owner down or pool empty).", nil),
		fanoutPartial: reg.Counter("chatgraph_router_fanout_partial_total",
			"List fan-outs that merged fewer backends than are configured.", nil),
	}
	if opts.Tenants != nil {
		rt.tenants = opts.Tenants
		rt.tenantSeries = make(map[string]*metrics.Counter)
		for _, name := range append(opts.Tenants.Names(), "unknown") {
			rt.tenantSeries[name] = reg.Counter("chatgraph_router_tenant_requests_total",
				"Proxied requests per tenant (by API key; unknown keys pool under \"unknown\").",
				metrics.Labels{"tenant": name})
		}
	}
	return rt
}

// Handler returns the router's route table: its own health/readiness/
// metrics endpoints, and the proxy catch-all for everything else.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		rtWriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// The router is ready while it can route somewhere: readiness follows
	// the pool, so an orchestrator in front of N routers drains one whose
	// entire backend set is gone.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		up := rt.pool.UpCount()
		if up == 0 {
			w.Header().Set("Retry-After", "1")
			rtWriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no backends up", "backends_up": 0})
			return
		}
		rtWriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "backends_up": up})
	})
	mux.Handle("GET /metrics", rt.reg.Handler())
	mux.HandleFunc("/", rt.route)
	return mux
}

// route is the proxy catch-all: classify, buffer, dispatch.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	if rt.tenants != nil {
		// Observation only: the label set is bounded at construction, so
		// key-spraying cannot mint series.
		rt.tenantSeries[rt.tenants.NameForKey(r.Header.Get(server.APIKeyHeader))].Inc()
	}
	aff := server.ClassifyRoute(r.Method, r.URL.Path)
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	switch aff.Class {
	case server.AffinitySession:
		if aff.Key == "" {
			rt.createSession(w, r, body)
			return
		}
		rt.toOwner(w, r, body, aff.Key)
	case server.AffinityJob:
		if aff.Key == "" {
			rt.createJob(w, r, body)
			return
		}
		rt.toOwner(w, r, body, aff.Key)
	case server.AffinityUpload:
		rt.placed(w, r, body)
	case server.AffinityFanout:
		rt.fanout(w, r)
	default:
		rt.spread(w, r, body, aff.Idempotent)
	}
}

// readBody buffers the request body up to MaxBody, answering 413 itself
// when the cap is exceeded.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		rtWriteJSON(w, http.StatusRequestEntityTooLarge, errBody(fmt.Sprintf("request body too large or unreadable: %v", err)))
		return nil, false
	}
	return body, true
}

// createSession routes POST /v1/sessions: mint a session id, derive its
// owner from the rendezvous hash, and forward the create with the id
// pinned — after which every request carrying the id re-derives the same
// owner with no routing table. A client-pinned id is honored (its owner
// must be up).
func (rt *Router) createSession(w http.ResponseWriter, r *http.Request, body []byte) {
	var req server.SessionCreateRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			rtWriteJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("decode request: %v", err)))
			return
		}
	}
	if req.SessionID != "" {
		rt.toOwner(w, r, body, req.SessionID)
		return
	}
	key, target := rt.pool.MintRoutableKey()
	if target == nil {
		rt.refuse(w, nil, "no backends up")
		return
	}
	pinned, err := json.Marshal(server.SessionCreateRequest{SessionID: key})
	if err != nil {
		rtWriteJSON(w, http.StatusInternalServerError, errBody(err.Error()))
		return
	}
	rt.forwardTo(w, r, pinned, target)
}

// createJob routes POST /v1/jobs. Placement prefers the content hash of
// the uploaded graph — identical interned graphs then concentrate on one
// shard's graphstore, invoke cache, and CSR memos instead of duplicating
// across the pool — and falls back to spreading for graph-less jobs. The
// job id is then minted to hash onto the placed backend, so polls and
// cancels re-derive the owner from the id alone.
func (rt *Router) createJob(w http.ResponseWriter, r *http.Request, body []byte) {
	var req struct {
		JobID string `json:"job_id"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			rtWriteJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("decode request: %v", err)))
			return
		}
	}
	if req.JobID != "" {
		rt.toOwner(w, r, body, req.JobID)
		return
	}
	var target *Backend
	if ck, ok := server.UploadContentKey(body); ok {
		target = rt.pool.Owner(ck)
		if target != nil && !target.Routable() {
			// The content's home shard is down: place on the next hop in
			// its rank order (stable while the outage lasts) rather than
			// refusing — placement is an optimization, not correctness.
			target = rt.pool.FirstRoutable(ck)
		}
	} else {
		_, target = rt.pool.MintRoutableKey()
	}
	if target == nil {
		rt.refuse(w, nil, "no backends up")
		return
	}
	key := rt.pool.MintKeyFor(target)
	// Route by the key's actual owner: on the (≈1e-7) sampling miss the
	// job still lands where its id points, so it remains pollable.
	owner := rt.pool.Owner(key)
	if owner == nil || !owner.Routable() {
		rt.refuse(w, owner, "job owner down")
		return
	}
	rt.forwardTo(w, r, injectField(body, "job_id", key), owner)
}

// toOwner routes a request bound to existing state: the rendezvous owner
// of key serves it or nobody does — per-session and per-job state is not
// replicated, so a down owner means 503 (plus Retry-After: the half-open
// prober may be about to bring it back), never a silent re-home that would
// answer 404 from a backend that never saw the session.
func (rt *Router) toOwner(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	b := rt.pool.Owner(key)
	if b == nil || !b.Routable() {
		rt.refuse(w, b, "owner backend down")
		return
	}
	rt.forwardTo(w, r, body, b)
}

// placed routes the legacy /chat endpoint: content-hash placement when a
// graph rides along, round-robin otherwise. Never retried — the chain may
// have executed before a transport failure.
func (rt *Router) placed(w http.ResponseWriter, r *http.Request, body []byte) {
	var b *Backend
	if ck, ok := server.UploadContentKey(body); ok {
		b = rt.pool.Owner(ck)
		if b != nil && !b.Routable() {
			b = rt.pool.FirstRoutable(ck)
		}
	} else {
		b = rt.nextUp()
	}
	if b == nil {
		rt.refuse(w, nil, "no backends up")
		return
	}
	rt.forwardTo(w, r, body, b)
}

// spread routes stateless traffic round-robin over up backends. Idempotent
// requests that fail in transport, or that land on a backend answering
// 502/503 (mid-recovery replicas shed 503), are replayed on the next hop;
// non-idempotent ones surface the first failure.
func (rt *Router) spread(w http.ResponseWriter, r *http.Request, body []byte, idempotent bool) {
	ups := rt.upBackends()
	if len(ups) == 0 {
		rt.refuse(w, nil, "no backends up")
		return
	}
	start := int(rt.rr.Add(1))
	var lastErr error
	var lastBackend *Backend
	for i := 0; i < len(ups); i++ {
		b := ups[(start+i)%len(ups)]
		lastBackend = b
		resp, err := rt.attempt(r, b, body)
		if err != nil {
			lastErr = err
			if idempotent && i+1 < len(ups) {
				rt.retries.Inc()
				continue
			}
			break
		}
		if idempotent && i+1 < len(ups) &&
			(resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable) {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			rt.retries.Inc()
			continue
		}
		rt.forwardResponse(w, resp, b)
		return
	}
	name := ""
	if lastBackend != nil {
		name = lastBackend.Name
	}
	w.Header().Set("X-Backend", name)
	rtWriteJSON(w, http.StatusBadGateway, errBody(fmt.Sprintf("all hops failed: %v", lastErr)))
}

// fanout answers a list route by merging every up backend's reply: the
// union of per-backend state is the cluster's state. Partial outages merge
// what answered (and bump the partial counter); a total outage is 502.
func (rt *Router) fanout(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string][]json.RawMessage)
	var served []string
	partial := false
	for _, b := range rt.pool.Backends() {
		if !b.Routable() {
			partial = true
			continue
		}
		resp, err := rt.attempt(r, b, nil)
		if err != nil {
			partial = true
			continue
		}
		var payload map[string][]json.RawMessage
		err = json.NewDecoder(io.LimitReader(resp.Body, rt.maxBody)).Decode(&payload)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			partial = true
			continue
		}
		for k, items := range payload {
			merged[k] = append(merged[k], items...)
		}
		served = append(served, b.Name)
	}
	if len(served) == 0 {
		rt.refuse(w, nil, "no backends up")
		return
	}
	if partial {
		rt.fanoutPartial.Inc()
		w.Header().Set("X-Cluster-Partial", "1")
	}
	sort.Strings(served)
	w.Header().Set("X-Backend", strings.Join(served, ","))
	out := make(map[string]any, len(merged))
	for k, items := range merged {
		out[k] = items
	}
	rtWriteJSON(w, http.StatusOK, out)
}

// refuse answers 503 for a request nothing can serve right now. b names
// the down owner when there is one.
func (rt *Router) refuse(w http.ResponseWriter, b *Backend, msg string) {
	rt.unroutable.Inc()
	if b != nil {
		w.Header().Set("X-Backend", b.Name)
	}
	w.Header().Set("Retry-After", "1")
	rtWriteJSON(w, http.StatusServiceUnavailable, errBody(msg))
}

// forwardTo runs one attempt against b and relays the outcome; transport
// failure is 502 (and counts toward b's failure marking).
func (rt *Router) forwardTo(w http.ResponseWriter, r *http.Request, body []byte, b *Backend) {
	resp, err := rt.attempt(r, b, body)
	if err != nil {
		w.Header().Set("X-Backend", b.Name)
		rtWriteJSON(w, http.StatusBadGateway, errBody(fmt.Sprintf("backend %s: %v", b.Name, err)))
		return
	}
	rt.forwardResponse(w, resp, b)
}

// attempt proxies one buffered request to b, instrumenting the round trip
// and feeding the failure-marking machine: transport errors mark a
// failure, any response marks connectivity success. The caller owns the
// returned response body.
func (rt *Router) attempt(r *http.Request, b *Backend, body []byte) (*http.Response, error) {
	u := *b.URL
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	var reader io.Reader
	if len(body) > 0 {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), reader)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	req.ContentLength = int64(len(body))
	if prior := r.Header.Get("X-Forwarded-For"); prior != "" {
		req.Header.Set("X-Forwarded-For", prior+", "+remoteIP(r))
	} else {
		req.Header.Set("X-Forwarded-For", remoteIP(r))
	}
	b.requests.Inc()
	start := time.Now()
	resp, err := rt.transport.RoundTrip(req)
	b.duration.Observe(time.Since(start).Seconds())
	if err != nil {
		// A cancelled client context is not the backend's failure.
		if r.Context().Err() == nil {
			b.errors.Inc()
			b.MarkFailure()
		}
		return nil, err
	}
	b.MarkSuccess()
	if resp.StatusCode >= 500 {
		b.errors.Inc()
	}
	return resp, nil
}

// forwardResponse relays the backend response, flushing after every chunk
// so NDJSON chat and job streams pass through live.
func (rt *Router) forwardResponse(w http.ResponseWriter, resp *http.Response, b *Backend) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Backend", b.Name)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// upBackends snapshots the routable backends in configuration order.
func (rt *Router) upBackends() []*Backend {
	out := make([]*Backend, 0, len(rt.pool.Backends()))
	for _, b := range rt.pool.Backends() {
		if b.Routable() {
			out = append(out, b)
		}
	}
	return out
}

// nextUp returns the next up backend in round-robin order, nil when the
// pool is dark.
func (rt *Router) nextUp() *Backend {
	ups := rt.upBackends()
	if len(ups) == 0 {
		return nil
	}
	return ups[int(rt.rr.Add(1))%len(ups)]
}

// hopByHop are the headers a proxy must not forward (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection":          true,
	"Proxy-Connection":    true,
	"Keep-Alive":          true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

func remoteIP(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return strings.Trim(host, "[]")
}

// injectField splices `"field":"value"` into the front of a JSON object
// body without re-encoding it — re-marshalling through a map would disturb
// number formatting in graph payloads. A body that is not a JSON object
// passes through untouched (the backend will reject it with its own 400).
func injectField(body []byte, field, value string) []byte {
	i := bytes.IndexByte(body, '{')
	if i < 0 {
		return body
	}
	rest := bytes.TrimLeft(body[i+1:], " \t\r\n")
	var out bytes.Buffer
	out.Grow(len(body) + len(field) + len(value) + 8)
	out.Write(body[:i+1])
	fmt.Fprintf(&out, "%q:%q", field, value)
	if len(rest) > 0 && rest[0] != '}' {
		out.WriteByte(',')
	}
	out.Write(body[i+1:])
	return out.Bytes()
}

// errBody is the router's error JSON shape, mirroring the backend's.
func errBody(msg string) map[string]string { return map[string]string{"error": msg} }

func rtWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once status is written
}
