package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", Labels{"route": "chat"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("requests_total", "", Labels{"route": "chat"}) != c {
		t.Fatal("get-or-create returned a new counter")
	}
	// Different labels, different instance, same family.
	c2 := r.Counter("requests_total", "", Labels{"route": "retrieve"})
	if c2 == c {
		t.Fatal("distinct label sets share a counter")
	}

	g := r.Gauge("in_flight", "in flight", nil)
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge after Set = %d", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1}, nil)
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // ≤ 0.01 bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // ≤ 0.1 bucket
	}
	h.Observe(5) // +Inf bucket

	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 90*0.005 + 9*0.05 + 5
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shapes: %d bounds, %d cum", len(bounds), len(cum))
	}
	if cum[0] != 90 || cum[1] != 99 || cum[2] != 99 || cum[3] != 100 {
		t.Fatalf("cumulative = %v", cum)
	}
	// Upper-bound attribution: p50 lands in the first bucket, p95 in the
	// second, p999 overflows to +Inf.
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %g", got)
	}
	if got := h.Quantile(0.95); got != 0.1 {
		t.Fatalf("p95 = %g", got)
	}
	if got := h.Quantile(0.999); !math.IsInf(got, 1) {
		t.Fatalf("p999 = %g", got)
	}
	// Empty histogram quantile is 0, not NaN.
	h2 := r.Histogram("empty_seconds", "", nil, nil)
	if got := h2.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge name conflict")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("chatgraph_http_requests_total", "HTTP requests", Labels{"route": "chat", "class": "2xx"}).Add(3)
	r.Gauge("chatgraph_http_in_flight", "in-flight", nil).Set(2)
	h := r.Histogram("chatgraph_http_request_duration_seconds", "latency", []float64{0.1, 1}, Labels{"route": "chat"})
	h.Observe(0.05)
	h.Observe(0.5)
	r.GaugeFunc("chatgraph_sessions_live", "live sessions", nil, func() float64 { return 42 })
	r.CounterFunc("chatgraph_cache_hits_total", "hits", nil, func() float64 { return 7 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE chatgraph_http_requests_total counter",
		`chatgraph_http_requests_total{class="2xx",route="chat"} 3`,
		"# TYPE chatgraph_http_in_flight gauge",
		"chatgraph_http_in_flight 2",
		`chatgraph_http_request_duration_seconds_bucket{route="chat",le="0.1"} 1`,
		`chatgraph_http_request_duration_seconds_bucket{route="chat",le="+Inf"} 2`,
		`chatgraph_http_request_duration_seconds_sum{route="chat"} 0.55`,
		`chatgraph_http_request_duration_seconds_count{route="chat"} 2`,
		"chatgraph_sessions_live 42",
		"chatgraph_cache_hits_total 7",
		"# HELP chatgraph_http_requests_total HTTP requests",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name: cache before http before sessions.
	if strings.Index(out, "chatgraph_cache_hits_total") > strings.Index(out, "chatgraph_http_in_flight") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "", Labels{"q": "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `q="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

// TestRegistryConcurrentHammer is the -race stress: concurrent registration,
// increments, observations, and scrapes on one registry must be data-race
// free and must not lose counted increments.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	routes := []string{"chat", "retrieve", "history"}
	// Register one metric up front so scrapers started before the first
	// worker increment still see a non-empty exposition.
	r.Gauge("hammer_in_flight", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				route := routes[(w+i)%len(routes)]
				// Exercise the get-or-create path deliberately: real hot
				// paths hold handles, but creation must also be safe.
				r.Counter("hammer_requests_total", "", Labels{"route": route}).Inc()
				r.Gauge("hammer_in_flight", "", nil).Inc()
				r.Histogram("hammer_latency_seconds", "", nil, Labels{"route": route}).Observe(float64(i%100) / 1000)
				r.Gauge("hammer_in_flight", "", nil).Dec()
			}
		}(w)
	}
	// Concurrent scrapers.
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrape.Add(1)
		go func() {
			defer scrape.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				r.WritePrometheus(&b)
				if b.Len() == 0 {
					t.Error("empty scrape mid-hammer")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrape.Wait()

	var total uint64
	for _, route := range routes {
		total += r.Counter("hammer_requests_total", "", Labels{"route": route}).Value()
	}
	if total != workers*iters {
		t.Fatalf("lost increments: %d != %d", total, workers*iters)
	}
	if got := r.Gauge("hammer_in_flight", "", nil).Value(); got != 0 {
		t.Fatalf("in-flight gauge should settle at 0, got %d", got)
	}
	var hcount uint64
	for _, route := range routes {
		hcount += r.Histogram("hammer_latency_seconds", "", nil, Labels{"route": route}).Count()
	}
	if hcount != workers*iters {
		t.Fatalf("lost observations: %d != %d", hcount, workers*iters)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil, nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}
