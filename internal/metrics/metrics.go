// Package metrics is the serving layer's observability substrate: lock-cheap
// counters, gauges, and fixed-bucket latency histograms, collected in a
// process-wide registry and exposed in the Prometheus text format.
//
// Design rules, in order:
//
//   - The hot path is atomic-only. Counter.Inc/Add, Gauge.Set/Add, and
//     Histogram.Observe touch nothing but atomics — no locks, no
//     allocations, no map lookups. Callers resolve their metric handles once
//     (package var or struct field) and hold them.
//   - Registration is slow-path. Registry.Counter/Gauge/Histogram get-or-
//     create under a mutex; call them at construction time, not per event.
//   - Reads are snapshots. WritePrometheus and the *Value accessors observe
//     each atomic independently; a scrape concurrent with writes may see a
//     histogram whose bucket sum trails its count by in-flight observations,
//     which Prometheus semantics tolerate.
//
// Labeled metrics share one family (one HELP/TYPE block) keyed by the
// canonicalized label set, mirroring the Prometheus data model closely
// enough that `GET /metrics` output is scrapeable verbatim.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric's label set. Nil or empty means an unlabeled metric.
type Labels map[string]string

// Counter is a monotonically increasing uint64. The zero value is unusable —
// obtain counters from a Registry so they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they wrap).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (in-flight requests, live sessions).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Inc adds one and returns the new value (handy for semaphore-style gauges).
func (g *Gauge) Inc() int64 { return g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency bounds in seconds: 500µs to 10s, the
// span a chat/retrieve request realistically lands in.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative
// upper-bound counters in the Prometheus style, with an implicit +Inf
// bucket; Observe is a binary search plus three atomic ops.
type Histogram struct {
	// bounds are the inclusive upper bounds, sorted ascending; counts has
	// len(bounds)+1 slots, the last being the +Inf overflow bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	// sum holds math.Float64bits of the running sum, advanced by CAS.
	sum atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; all larger samples overflow to +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns the bucket upper bounds and the cumulative count at or
// below each bound (the final entry is the +Inf total). The copy is
// internally consistent enough for quantile estimates; a scrape racing
// writers may trail by in-flight observations.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// attributing each bucket's mass to its upper bound — the same estimate
// Prometheus' histogram_quantile makes, good to within one bucket width.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Snapshot()
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	for i, c := range cum {
		if c >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return math.Inf(1) // landed in +Inf
		}
	}
	return math.Inf(1)
}

// metric is anything a family can hold.
type metric interface{ kind() string }

func (c *Counter) kind() string   { return "counter" }
func (g *Gauge) kind() string     { return "gauge" }
func (h *Histogram) kind() string { return "histogram" }

// funcMetric is a counter- or gauge-typed sample computed at scrape time —
// how externally owned values (cache counters, session counts) surface
// without double bookkeeping on their own hot paths.
type funcMetric struct {
	typ string // "counter" or "gauge"
	// fn holds a func() float64; atomic because scrapes read it outside the
	// registry lock while re-registration may replace it.
	fn atomic.Value
}

func (f *funcMetric) kind() string { return f.typ }

func (f *funcMetric) eval() (float64, bool) {
	if fn, ok := f.fn.Load().(func() float64); ok && fn != nil {
		return fn(), true
	}
	return 0, false
}

// family is every metric sharing one name (and so one HELP/TYPE block).
type family struct {
	name string
	help string
	typ  string
	// metrics is keyed by the canonical label string, which is also the
	// rendered exposition form.
	metrics map[string]metric
	// order remembers insertion order of label keys for stable output.
	order []string
}

// Registry is a concurrent, process-wide metric catalog. The zero value is
// not usable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry everything instruments into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Production code registers here
// so one `GET /metrics` scrape sees the whole process; tests wanting
// isolation build their own with NewRegistry.
func Default() *Registry { return defaultRegistry }

// canonicalLabels renders labels as a deterministic `k="v",...` string —
// both the family map key and the exposition form.
func canonicalLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get-or-create machinery. mk builds the metric when absent; a name reused
// with a different metric type panics — that is a programming error best
// caught at startup, not a runtime condition.
func (r *Registry) metric(name, help, typ string, labels Labels, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:    name,
			help:    help,
			typ:     typ,
			metrics: make(map[string]metric),
		}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if f.help == "" {
		f.help = help
	}
	key := canonicalLabels(labels)
	m, ok := f.metrics[key]
	if !ok {
		m = mk()
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns (creating if needed) the counter with the given name and
// label set. help is recorded on first registration and may be "" later.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.metric(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns (creating if needed) the gauge with the given name/labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.metric(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating if needed) the histogram with the given
// name/labels. buckets (upper bounds, seconds for latencies) is consulted
// only on first creation; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	return r.metric(name, help, "histogram", labels, func() metric { return newHistogram(buckets) }).(*Histogram)
}

// CounterFunc registers a counter-typed sample evaluated at scrape time.
// fn must be safe for concurrent use and monotonic for Prometheus rate()
// to behave. Re-registering the same name+labels replaces the function.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "counter", labels, fn)
}

// GaugeFunc registers a gauge-typed sample evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "gauge", labels, fn)
}

func (r *Registry) registerFunc(name, help, typ string, labels Labels, fn func() float64) {
	m := r.metric(name, help, typ, labels, func() metric { return &funcMetric{typ: typ} })
	f, ok := m.(*funcMetric)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as a non-func %s", name, typ))
	}
	f.fn.Store(fn)
}

// famSnapshot is one family's rows copied out under the registry lock, so
// rendering (which evaluates func metrics) runs without holding it.
type famSnapshot struct {
	name, help, typ string
	keys            []string
	metrics         []metric
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, families sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		snap := famSnapshot{
			name: f.name, help: f.help, typ: f.typ,
			keys:    append([]string(nil), f.order...),
			metrics: make([]metric, len(f.order)),
		}
		for i, key := range f.order {
			snap.metrics[i] = f.metrics[key]
		}
		fams = append(fams, snap)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, key := range f.keys {
			writeMetric(w, f, key, f.metrics[i])
		}
	}
}

func writeMetric(w io.Writer, f famSnapshot, labelKey string, m metric) {
	suffix := ""
	if labelKey != "" {
		suffix = "{" + labelKey + "}"
	}
	switch v := m.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, v.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, v.Value())
	case *funcMetric:
		if val, ok := v.eval(); ok {
			fmt.Fprintf(w, "%s%s %s\n", f.name, suffix, formatFloat(val))
		}
	case *Histogram:
		bounds, cum := v.Snapshot()
		for i, b := range bounds {
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, joinLabels(labelKey, fmt.Sprintf(`le="%s"`, formatFloat(b))), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, joinLabels(labelKey, `le="+Inf"`), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, suffix, formatFloat(v.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, suffix, v.Count())
	}
}

func joinLabels(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "," + extra
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler serves the registry in the Prometheus text format — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
