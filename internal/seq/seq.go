// Package seq implements the graph sequentializer of the paper's §II-B: it
// decomposes a graph into sequences an LLM can consume. Two mechanisms are
// combined:
//
//  1. A length-constrained path cover — for every node u, paths starting at
//     u of length at most l that cover the subgraph within l hops of u
//     (following the cited prior work on localized pattern queries). Paths
//     are extracted from the BFS tree rooted at u, so the per-node path
//     count is bounded by the size of u's l-hop neighborhood and the total
//     is O(|G|²·l) rather than the exponential count of all simple paths.
//
//  2. A motif super-graph (following RUM, ICDE 2019) — triangles are merged
//     into motif super-nodes and the induced super-graph is sequentialized
//     the same way, giving the LLM a second, coarser level that exposes
//     multi-level structure (communities, protein tertiary structure, ...).
package seq

import (
	"fmt"
	"strings"

	"chatgraph/internal/graph"
)

// Path is one node sequence extracted from the graph.
type Path []graph.NodeID

// Options configures sequentialization.
type Options struct {
	// MaxLength is l, the maximum number of edges per path (and the hop
	// radius each node's paths must cover). Zero means the default 3.
	MaxLength int
	// MaxPathsPerNode truncates pathological fans; zero means unlimited.
	MaxPathsPerNode int
	// Levels selects how many structure levels to emit: 1 = paths only,
	// 2 = paths plus motif super-graph paths. Zero means 2.
	Levels int
}

func (o *Options) setDefaults() {
	if o.MaxLength <= 0 {
		o.MaxLength = 3
	}
	if o.Levels <= 0 {
		o.Levels = 2
	}
}

// Result carries the sequentializer output for one graph.
type Result struct {
	// Paths is the level-0 length-constrained path cover.
	Paths []Path
	// SuperPaths is the level-1 path cover over the motif super-graph
	// (empty when Levels < 2 or the graph has no motifs to merge).
	SuperPaths []Path
	// Super is the motif super-graph itself; SuperMembers[i] lists the
	// original nodes merged into super-node i.
	Super        *graph.Graph
	SuperMembers [][]graph.NodeID
}

// Sequentialize decomposes g according to opts.
func Sequentialize(g *graph.Graph, opts Options) Result {
	opts.setDefaults()
	res := Result{Paths: PathCover(g, opts.MaxLength, opts.MaxPathsPerNode)}
	if opts.Levels >= 2 && g.NumNodes() > 0 {
		super, members := SuperGraph(g)
		res.Super = super
		res.SuperMembers = members
		// Only sequentialize the super level when it actually coarsens the
		// graph; otherwise it duplicates level 0.
		if super.NumNodes() < g.NumNodes() {
			res.SuperPaths = PathCover(super, opts.MaxLength, opts.MaxPathsPerNode)
		}
	}
	return res
}

// PathCover returns, for every node u of g, root-to-leaf paths of u's
// depth-limited BFS tree. Every node within l hops of u appears on at least
// one path starting at u (the covering property the paper requires), and
// every path has at most l edges. maxPerNode ≤ 0 means unlimited.
func PathCover(g *graph.Graph, l int, maxPerNode int) []Path {
	var out []Path
	for _, n := range g.Nodes() {
		paths := coverFrom(g, n.ID, l)
		if maxPerNode > 0 && len(paths) > maxPerNode {
			paths = paths[:maxPerNode]
		}
		out = append(out, paths...)
	}
	return out
}

// coverFrom builds the BFS tree of radius l rooted at u and returns its
// root-to-leaf paths.
func coverFrom(g *graph.Graph, u graph.NodeID, l int) []Path {
	parent := map[graph.NodeID]graph.NodeID{u: u}
	depth := map[graph.NodeID]int{u: 0}
	var order []graph.NodeID
	c := g.Freeze()
	c.BFS(u, func(id graph.NodeID, d int) bool {
		if d > l {
			return false
		}
		order = append(order, id)
		for _, nb := range c.OutNeighbors(id) {
			if _, seen := parent[nb]; !seen && d < l {
				parent[nb] = id
				depth[nb] = d + 1
			}
		}
		return true
	})
	// Drop nodes BFS reported but the radius excluded from the tree.
	inTree := make(map[graph.NodeID]bool, len(parent))
	for id := range parent {
		inTree[id] = true
	}
	hasChild := make(map[graph.NodeID]bool, len(parent))
	for id, p := range parent {
		if id != u && inTree[p] {
			hasChild[p] = true
		}
	}
	var paths []Path
	for _, id := range order {
		if !inTree[id] || hasChild[id] {
			continue
		}
		// id is a leaf: walk up to the root.
		var rev Path
		for cur := id; ; cur = parent[cur] {
			rev = append(rev, cur)
			if cur == u {
				break
			}
		}
		p := make(Path, len(rev))
		for i := range rev {
			p[i] = rev[len(rev)-1-i]
		}
		paths = append(paths, p)
	}
	if len(paths) == 0 {
		paths = append(paths, Path{u}) // isolated node still yields itself
	}
	return paths
}

// Render writes one path as the token sequence fed to the LLM, e.g.
// "v0[C] - v3[O] - v4[N]". Labels are included when present because they
// carry the semantics (element symbols, entity names).
func Render(g *graph.Graph, p Path) string {
	var b strings.Builder
	for i, id := range p {
		if i > 0 {
			b.WriteString(" - ")
		}
		n := g.Node(id)
		if n.Label != "" {
			fmt.Fprintf(&b, "v%d[%s]", id, n.Label)
		} else {
			fmt.Fprintf(&b, "v%d", id)
		}
	}
	return b.String()
}

// RenderAll renders every path, one per line, capped at maxLines (≤ 0 means
// no cap) with a trailing elision marker when truncated. This is the exact
// text block the prompt builder injects.
func RenderAll(g *graph.Graph, ps []Path, maxLines int) string {
	var b strings.Builder
	for i, p := range ps {
		if maxLines > 0 && i >= maxLines {
			fmt.Fprintf(&b, "... (%d more paths)\n", len(ps)-maxLines)
			break
		}
		b.WriteString(Render(g, p))
		b.WriteByte('\n')
	}
	return b.String()
}

// CoverageOK verifies the covering property: every node within l hops of u
// appears on at least one path starting at u, for every u. Tests and the E6
// bench assert this invariant.
func CoverageOK(g *graph.Graph, paths []Path, l int) bool {
	covered := make(map[graph.NodeID]map[graph.NodeID]bool) // start → nodes on its paths
	for _, p := range paths {
		if len(p) == 0 {
			return false
		}
		start := p[0]
		if covered[start] == nil {
			covered[start] = make(map[graph.NodeID]bool)
		}
		for _, id := range p {
			covered[start][id] = true
		}
	}
	for _, n := range g.Nodes() {
		want := g.KHopSubgraphNodes(n.ID, l)
		got := covered[n.ID]
		for _, w := range want {
			if !got[w] {
				return false
			}
		}
	}
	return true
}
