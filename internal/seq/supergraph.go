package seq

import (
	"fmt"
	"sort"

	"chatgraph/internal/graph"
)

// SuperGraph computes the motif super-graph of g in the style of RUM:
// triangle motifs that share an edge are merged into one super-node, every
// remaining node becomes a singleton super-node, and super-nodes are joined
// when any original edge crosses between their member sets. The returned
// members slice maps each super-node to its original nodes.
//
// Triangles are the motif family used here because they are the smallest
// non-trivial motif, cheap to enumerate, and dense regions (communities,
// rings) collapse into single super-nodes — exactly the multi-level signal
// the sequentializer wants to expose.
func SuperGraph(g *graph.Graph) (*graph.Graph, [][]graph.NodeID) {
	n := g.NumNodes()
	uf := newUnionFind(n)
	// Merge the three corners of every triangle.
	neigh := make([]map[graph.NodeID]bool, n)
	for i := 0; i < n; i++ {
		neigh[i] = make(map[graph.NodeID]bool)
	}
	for _, e := range g.Edges() {
		neigh[e.From][e.To] = true
		neigh[e.To][e.From] = true
	}
	for u := 0; u < n; u++ {
		for v := range neigh[u] {
			if int(v) <= u {
				continue
			}
			for w := range neigh[u] {
				if w <= v || !neigh[v][w] {
					continue
				}
				uf.union(u, int(v))
				uf.union(u, int(w))
			}
		}
	}
	// Build super-nodes per union-find root, ordered by smallest member so
	// output is deterministic.
	rootMembers := make(map[int][]graph.NodeID)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		rootMembers[r] = append(rootMembers[r], graph.NodeID(i))
	}
	roots := make([]int, 0, len(rootMembers))
	for r := range rootMembers {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		return rootMembers[roots[i]][0] < rootMembers[roots[j]][0]
	})
	super := graph.New()
	super.Name = g.Name + "_super"
	superOf := make([]graph.NodeID, n)
	members := make([][]graph.NodeID, 0, len(roots))
	for _, r := range roots {
		ms := rootMembers[r]
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		label := superLabel(g, ms)
		sid := super.AddNode(label)
		super.SetNodeAttr(sid, "size", fmt.Sprintf("%d", len(ms)))
		for _, m := range ms {
			superOf[m] = sid
		}
		members = append(members, ms)
	}
	// Cross edges between distinct super-nodes, deduplicated.
	seen := make(map[[2]graph.NodeID]bool)
	for _, e := range g.Edges() {
		a, b := superOf[e.From], superOf[e.To]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]graph.NodeID{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		super.AddEdge(a, b) //nolint:errcheck // endpoints valid by construction
	}
	return super, members
}

// superLabel names a super-node after its dominant member label, prefixed
// with "motif:" when it merges several nodes.
func superLabel(g *graph.Graph, ms []graph.NodeID) string {
	if len(ms) == 1 {
		return g.Node(ms[0]).Label
	}
	counts := make(map[string]int)
	for _, m := range ms {
		counts[g.Node(m).Label]++
	}
	best, bestCount := "", -1
	for l, c := range counts {
		if c > bestCount || c == bestCount && l < best {
			best, bestCount = l, c
		}
	}
	return fmt.Sprintf("motif:%s*%d", best, len(ms))
}

// unionFind is a standard path-halving union-find over [0, n).
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
