package seq

import (
	"math/rand"
	"testing"

	"chatgraph/internal/graph"
)

func BenchmarkSequentialize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BarabasiAlbert(200, 2, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sequentialize(g, Options{MaxLength: 2, Levels: 2})
	}
}

func BenchmarkSuperGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.PlantedCommunities(5, 40, 0.3, 0.01, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SuperGraph(g)
	}
}

func BenchmarkRenderAll(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.BarabasiAlbert(100, 2, rng)
	paths := PathCover(g, 2, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderAll(g, paths, 40)
	}
}
