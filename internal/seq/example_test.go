package seq_test

import (
	"fmt"

	"chatgraph/internal/graph"
	"chatgraph/internal/seq"
)

func ExamplePathCover() {
	// A triangle: every node's 1-hop neighborhood is covered by paths of
	// length ≤ 1 starting at it.
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b) //nolint:errcheck
	g.AddEdge(b, c) //nolint:errcheck
	g.AddEdge(c, a) //nolint:errcheck
	paths := seq.PathCover(g, 1, 0)
	fmt.Println("paths:", len(paths))
	fmt.Println("covers 1-hop neighborhoods:", seq.CoverageOK(g, paths, 1))
	// Output:
	// paths: 6
	// covers 1-hop neighborhoods: true
}

func ExampleRender() {
	g := graph.New()
	c := g.AddNode("C")
	o := g.AddNode("O")
	g.AddEdge(c, o) //nolint:errcheck
	fmt.Println(seq.Render(g, seq.Path{c, o}))
	// Output:
	// v0[C] - v1[O]
}
