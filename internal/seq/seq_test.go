package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"chatgraph/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)) //nolint:errcheck
	}
	return g
}

func triangle() *graph.Graph {
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b) //nolint:errcheck
	g.AddEdge(b, c) //nolint:errcheck
	g.AddEdge(c, a) //nolint:errcheck
	return g
}

func TestPathCoverLengthBound(t *testing.T) {
	g := lineGraph(10)
	for _, l := range []int{1, 2, 3} {
		for _, p := range PathCover(g, l, 0) {
			if len(p)-1 > l {
				t.Fatalf("path %v exceeds length %d", p, l)
			}
		}
	}
}

func TestPathCoverCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, l := range []int{1, 2, 3} {
		g := graph.BarabasiAlbert(40, 2, rng)
		paths := PathCover(g, l, 0)
		if !CoverageOK(g, paths, l) {
			t.Fatalf("coverage violated at l=%d", l)
		}
	}
}

func TestPathCoverIsolatedNode(t *testing.T) {
	g := graph.New()
	g.AddNode("solo")
	paths := PathCover(g, 2, 0)
	if len(paths) != 1 || len(paths[0]) != 1 || paths[0][0] != 0 {
		t.Fatalf("isolated node paths = %v", paths)
	}
}

func TestPathCoverQuadraticBound(t *testing.T) {
	// E6 invariant: path count stays within |G|² (actually |G|·|N_l|).
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyi(30, 0.15, rng)
	n := g.NumNodes()
	for _, l := range []int{1, 2, 3} {
		paths := PathCover(g, l, 0)
		if len(paths) > n*n*l {
			t.Fatalf("l=%d produced %d paths for n=%d, exceeds n²·l", l, len(paths), n)
		}
	}
}

func TestPathCoverMaxPerNode(t *testing.T) {
	g := graph.New()
	hub := g.AddNode("hub")
	for i := 0; i < 10; i++ {
		leaf := g.AddNode("leaf")
		g.AddEdge(hub, leaf) //nolint:errcheck
	}
	paths := PathCover(g, 1, 3)
	perStart := make(map[graph.NodeID]int)
	for _, p := range paths {
		perStart[p[0]]++
	}
	if perStart[hub] > 3 {
		t.Fatalf("hub emitted %d paths, cap was 3", perStart[hub])
	}
}

func TestRender(t *testing.T) {
	g := graph.New()
	g.AddNode("C")
	g.AddNode("")
	got := Render(g, Path{0, 1})
	if got != "v0[C] - v1" {
		t.Fatalf("Render = %q", got)
	}
}

func TestRenderAllTruncation(t *testing.T) {
	g := lineGraph(8)
	paths := PathCover(g, 2, 0)
	out := RenderAll(g, paths, 2)
	if lines := strings.Count(out, "\n"); lines != 3 { // 2 paths + elision line
		t.Fatalf("RenderAll emitted %d lines:\n%s", lines, out)
	}
	if !strings.Contains(out, "more paths") {
		t.Fatalf("missing elision marker:\n%s", out)
	}
	full := RenderAll(g, paths, 0)
	if strings.Contains(full, "more paths") {
		t.Fatal("uncapped RenderAll truncated")
	}
}

func TestSuperGraphMergesTriangle(t *testing.T) {
	g := triangle()
	super, members := SuperGraph(g)
	if super.NumNodes() != 1 {
		t.Fatalf("triangle super-graph has %d nodes, want 1", super.NumNodes())
	}
	if len(members[0]) != 3 {
		t.Fatalf("super-node members = %v", members[0])
	}
	if !strings.HasPrefix(super.Node(0).Label, "motif:") {
		t.Fatalf("super-node label = %q", super.Node(0).Label)
	}
}

func TestSuperGraphKeepsTreeIntact(t *testing.T) {
	g := lineGraph(5) // no triangles → no merging
	super, members := SuperGraph(g)
	if super.NumNodes() != 5 {
		t.Fatalf("tree super-graph has %d nodes, want 5", super.NumNodes())
	}
	for i, m := range members {
		if len(m) != 1 || m[0] != graph.NodeID(i) {
			t.Fatalf("members[%d] = %v", i, m)
		}
	}
	if super.NumEdges() != 4 {
		t.Fatalf("super edges = %d, want 4", super.NumEdges())
	}
}

func TestSuperGraphCrossEdges(t *testing.T) {
	// Two triangles joined by one bridge edge → 2 super-nodes, 1 edge.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddNode("v")
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1]) //nolint:errcheck
	}
	super, members := SuperGraph(g)
	if super.NumNodes() != 2 || super.NumEdges() != 1 {
		t.Fatalf("super = %s", super)
	}
	if len(members[0]) != 3 || len(members[1]) != 3 {
		t.Fatalf("members = %v", members)
	}
}

func TestSequentializeLevels(t *testing.T) {
	g := triangle()
	res := Sequentialize(g, Options{MaxLength: 2, Levels: 2})
	if len(res.Paths) == 0 {
		t.Fatal("no level-0 paths")
	}
	if res.Super == nil || res.Super.NumNodes() != 1 {
		t.Fatal("super graph missing")
	}
	// A single super-node: super paths exist (the single node's own path).
	if len(res.SuperPaths) == 0 {
		t.Fatal("no super paths for collapsed triangle")
	}
	res1 := Sequentialize(g, Options{MaxLength: 2, Levels: 1})
	if res1.Super != nil || len(res1.SuperPaths) != 0 {
		t.Fatal("Levels=1 still produced super level")
	}
}

func TestSequentializeDefaults(t *testing.T) {
	res := Sequentialize(lineGraph(4), Options{})
	if len(res.Paths) == 0 {
		t.Fatal("defaults produced no paths")
	}
}

func TestSequentializeEmptyGraph(t *testing.T) {
	res := Sequentialize(graph.New(), Options{})
	if len(res.Paths) != 0 || res.Super != nil {
		t.Fatal("empty graph produced output")
	}
}

// Property: for random graphs, every path is a valid walk (consecutive nodes
// adjacent) and starts are within bounds.
func TestQuickPathsAreWalks(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		n := int(nRaw%25) + 2
		l := int(lRaw%3) + 1
		g := graph.ErdosRenyi(n, 0.2, rand.New(rand.NewSource(seed)))
		for _, p := range PathCover(g, l, 0) {
			if len(p) == 0 || len(p)-1 > l {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: super-graph members partition the node set.
func TestQuickSuperGraphPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 3
		g := graph.ErdosRenyi(n, 0.25, rand.New(rand.NewSource(seed)))
		_, members := SuperGraph(g)
		seen := make(map[graph.NodeID]bool)
		total := 0
		for _, ms := range members {
			for _, m := range ms {
				if seen[m] {
					return false
				}
				seen[m] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
