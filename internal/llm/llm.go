// Package llm abstracts the language model that turns a (text, graph) prompt
// into an API chain. The paper plugs HuggingFace models (ChatGLM, MOSS,
// Vicuna) into this slot; offline this package provides two interchangeable
// implementations of the same Client interface:
//
//   - SimClient — a deterministic graph-aware model backed by the finetuned
//     transition model from internal/finetune. It consumes the exact same
//     prompt text (question, graph kind, candidate APIs, graph path
//     sequences) a real LLM would receive, so the full prompt-construction
//     code path is exercised.
//   - HTTPClient — an OpenAI-style chat-completions client over net/http
//     for use against any locally hosted model endpoint.
package llm

import (
	"context"
	"fmt"
	"strings"

	"chatgraph/internal/chain"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
	"chatgraph/internal/seq"
)

// Message is one chat turn.
type Message struct {
	Role    string `json:"role"` // "system", "user", or "assistant"
	Content string `json:"content"`
}

// Client generates a completion for a chat transcript.
type Client interface {
	Complete(ctx context.Context, messages []Message) (string, error)
}

// Prompt section markers. The builder writes them; SimClient parses them;
// real LLMs simply see well-structured text.
const (
	sectionQuestion = "### Question"
	sectionKind     = "### GraphKind"
	sectionAPIs     = "### CandidateAPIs"
	sectionPaths    = "### GraphPaths"
	sectionSuper    = "### GraphMotifPaths"
)

// PromptConfig tunes prompt construction.
type PromptConfig struct {
	// MaxPathLines caps how many path lines are injected (0 → 40).
	MaxPathLines int
	// PathLength is the sequentializer's l (0 → 3).
	PathLength int
	// MaxChainLength caps generated chains for clients that honor it
	// (0 → 8). It is carried here so session config travels as one value.
	MaxChainLength int
}

// BuildPrompt renders the ChatGraph prompt: the user question, the predicted
// graph kind, the retrieved candidate APIs with descriptions, and the graph
// serialized by the sequentializer at both structure levels.
func BuildPrompt(question string, g *graph.Graph, kind graph.Kind, candidates []string, descriptions map[string]string, cfg PromptConfig) []Message {
	if cfg.MaxPathLines <= 0 {
		cfg.MaxPathLines = 40
	}
	if cfg.PathLength <= 0 {
		cfg.PathLength = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", sectionQuestion, question)
	fmt.Fprintf(&b, "%s\n%s\n\n", sectionKind, kind)
	fmt.Fprintf(&b, "%s\n", sectionAPIs)
	for _, c := range candidates {
		if d := descriptions[c]; d != "" {
			fmt.Fprintf(&b, "- %s: %s\n", c, d)
		} else {
			fmt.Fprintf(&b, "- %s\n", c)
		}
	}
	b.WriteString("\n")
	if g != nil && g.NumNodes() > 0 {
		res := seq.Sequentialize(g, seq.Options{MaxLength: cfg.PathLength, Levels: 2})
		fmt.Fprintf(&b, "%s\n%s\n", sectionPaths, seq.RenderAll(g, res.Paths, cfg.MaxPathLines))
		if len(res.SuperPaths) > 0 {
			fmt.Fprintf(&b, "%s\n%s\n", sectionSuper, seq.RenderAll(res.Super, res.SuperPaths, cfg.MaxPathLines/2))
		}
	}
	system := "You are ChatGraph. Given the user question, the graph kind, the candidate " +
		"APIs, and the graph path sequences, answer with exactly one API chain in the form " +
		"\"api1 -> api2(arg=value) -> api3\" using only candidate APIs."
	return []Message{
		{Role: "system", Content: system},
		{Role: "user", Content: b.String()},
	}
}

// parsePrompt recovers the structured fields from a BuildPrompt message list.
func parsePrompt(messages []Message) (question string, kind graph.Kind, candidates []string, err error) {
	var user string
	for _, m := range messages {
		if m.Role == "user" {
			user = m.Content
		}
	}
	if user == "" {
		return "", graph.KindUnknown, nil, fmt.Errorf("llm: prompt has no user message")
	}
	section := ""
	for _, line := range strings.Split(user, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "### "):
			section = trimmed
		case trimmed == "":
		default:
			switch section {
			case sectionQuestion:
				if question == "" {
					question = trimmed
				}
			case sectionKind:
				kind = parseKind(trimmed)
			case sectionAPIs:
				name := strings.TrimPrefix(trimmed, "- ")
				if i := strings.IndexByte(name, ':'); i > 0 {
					name = name[:i]
				}
				candidates = append(candidates, strings.TrimSpace(name))
			}
		}
	}
	if question == "" {
		return "", graph.KindUnknown, nil, fmt.Errorf("llm: prompt missing %s section", sectionQuestion)
	}
	return question, kind, candidates, nil
}

func parseKind(s string) graph.Kind {
	switch s {
	case "social":
		return graph.KindSocial
	case "molecule":
		return graph.KindMolecule
	case "knowledge":
		return graph.KindKnowledge
	default:
		return graph.KindUnknown
	}
}

// SimClient is the deterministic offline LLM: it parses the structured
// prompt and decodes an API chain from the finetuned transition model,
// restricted to the candidate APIs when candidates are present.
type SimClient struct {
	model *finetune.Model
	// maxLen caps generated chains.
	maxLen int
}

// NewSimClient wraps a finetuned model. maxLen ≤ 0 means 8.
func NewSimClient(model *finetune.Model, maxLen int) *SimClient {
	if maxLen <= 0 {
		maxLen = 8
	}
	return &SimClient{model: model, maxLen: maxLen}
}

// Complete implements Client.
func (c *SimClient) Complete(_ context.Context, messages []Message) (string, error) {
	question, kind, candidates, err := parsePrompt(messages)
	if err != nil {
		return "", err
	}
	generated := c.model.Decode(question, kind, c.maxLen)
	if len(candidates) > 0 {
		allowed := make(map[string]bool, len(candidates))
		for _, a := range candidates {
			allowed[a] = true
		}
		filtered := generated[:0]
		for _, s := range generated {
			if allowed[s.API] {
				filtered = append(filtered, s)
			}
		}
		// If filtering removed everything, fall back to the top candidate
		// so the session always has a chain to confirm.
		if len(filtered) == 0 && len(candidates) > 0 {
			filtered = chain.Chain{chain.Step{API: candidates[0]}}
		}
		generated = filtered
	}
	if len(generated) == 0 {
		return "", fmt.Errorf("llm: model generated an empty chain for %q", question)
	}
	return generated.String(), nil
}
