package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTPClient talks to an OpenAI-style chat-completions endpoint
// (POST {BaseURL}/v1/chat/completions). Any locally hosted model server
// speaking that wire format (llama.cpp, vLLM, FastChat serving the paper's
// Vicuna, ...) can be plugged into ChatGraph through it.
type HTTPClient struct {
	// BaseURL is the server root, e.g. "http://localhost:8000".
	BaseURL string
	// Model is the model identifier sent in the request.
	Model string
	// APIKey, when set, is sent as a Bearer token.
	APIKey string
	// Temperature is passed through (0 recommended for chain generation).
	Temperature float64
	// HTTP is the underlying client; nil means a 30 s-timeout default.
	HTTP *http.Client
}

type completionRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Temperature float64   `json:"temperature"`
}

type completionResponse struct {
	Choices []struct {
		Message Message `json:"message"`
	} `json:"choices"`
	Error *struct {
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// Complete implements Client.
func (c *HTTPClient) Complete(ctx context.Context, messages []Message) (string, error) {
	if c.BaseURL == "" {
		return "", fmt.Errorf("llm: HTTPClient requires a BaseURL")
	}
	body, err := json.Marshal(completionRequest{Model: c.Model, Messages: messages, Temperature: c.Temperature})
	if err != nil {
		return "", fmt.Errorf("llm: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("llm: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", fmt.Errorf("llm: request failed: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", fmt.Errorf("llm: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("llm: server returned %s: %.200s", resp.Status, data)
	}
	var cr completionResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		return "", fmt.Errorf("llm: decode response: %w", err)
	}
	if cr.Error != nil {
		return "", fmt.Errorf("llm: server error: %s", cr.Error.Message)
	}
	if len(cr.Choices) == 0 {
		return "", fmt.Errorf("llm: response has no choices")
	}
	return cr.Choices[0].Message.Content, nil
}
