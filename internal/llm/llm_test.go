package llm

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
)

func trainedModel() *finetune.Model {
	rng := rand.New(rand.NewSource(1))
	ds := finetune.GenerateDataset(300, rng)
	return finetune.Train(apis.Default(nil).Names(), ds, finetune.TrainConfig{Epochs: 1, Search: finetune.SearchConfig{Rollouts: 2}, Seed: 2})
}

func TestBuildPromptSections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Molecule(12, rng)
	msgs := BuildPrompt("Is this molecule toxic", g, graph.KindMolecule,
		[]string{"molecule.toxicity"}, map[string]string{"molecule.toxicity": "Predict toxicity."}, PromptConfig{})
	if len(msgs) != 2 || msgs[0].Role != "system" || msgs[1].Role != "user" {
		t.Fatalf("messages = %+v", msgs)
	}
	u := msgs[1].Content
	for _, want := range []string{sectionQuestion, sectionKind, sectionAPIs, sectionPaths, "molecule.toxicity", "Is this molecule toxic", "molecule"} {
		if !strings.Contains(u, want) {
			t.Fatalf("prompt missing %q:\n%s", want, u)
		}
	}
}

func TestBuildPromptNoGraph(t *testing.T) {
	msgs := BuildPrompt("hello", nil, graph.KindUnknown, nil, nil, PromptConfig{})
	if strings.Contains(msgs[1].Content, sectionPaths) {
		t.Fatal("paths section emitted without a graph")
	}
}

func TestParsePromptRoundTrip(t *testing.T) {
	msgs := BuildPrompt("Clean G", nil, graph.KindKnowledge,
		[]string{"kg.detect_all", "graph.apply_edits"},
		map[string]string{"kg.detect_all": "Detect issues."}, PromptConfig{})
	q, kind, cands, err := parsePrompt(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if q != "Clean G" || kind != graph.KindKnowledge {
		t.Fatalf("parsed %q, %v", q, kind)
	}
	if len(cands) != 2 || cands[0] != "kg.detect_all" {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestParsePromptErrors(t *testing.T) {
	if _, _, _, err := parsePrompt(nil); err == nil {
		t.Fatal("empty messages accepted")
	}
	if _, _, _, err := parsePrompt([]Message{{Role: "user", Content: "no sections"}}); err == nil {
		t.Fatal("unstructured prompt accepted")
	}
}

func TestSimClientGeneratesValidChain(t *testing.T) {
	m := trainedModel()
	c := NewSimClient(m, 0)
	msgs := BuildPrompt("Clean G", nil, graph.KindKnowledge,
		[]string{"graph.classify", "kg.detect_all", "graph.apply_edits", "kg.detect_incorrect"},
		nil, PromptConfig{})
	out, err := c.Complete(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := chain.Parse(out)
	if err != nil {
		t.Fatalf("unparseable chain %q: %v", out, err)
	}
	if len(parsed) == 0 {
		t.Fatal("empty chain")
	}
	allowed := map[string]bool{"graph.classify": true, "kg.detect_all": true, "graph.apply_edits": true, "kg.detect_incorrect": true}
	for _, s := range parsed {
		if !allowed[s.API] {
			t.Fatalf("chain used non-candidate API %s", s.API)
		}
	}
	if !strings.Contains(out, "kg.detect") {
		t.Fatalf("cleaning chain lacks detection: %s", out)
	}
}

func TestSimClientFallbackToTopCandidate(t *testing.T) {
	// Model knows nothing relevant; candidates force the fallback.
	m := finetune.NewModel([]string{"a.b"})
	c := NewSimClient(m, 4)
	msgs := BuildPrompt("whatever", nil, graph.KindUnknown, []string{"x.y"}, nil, PromptConfig{})
	out, err := c.Complete(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if out != "x.y" {
		t.Fatalf("fallback = %q", out)
	}
}

func TestHTTPClientCompletes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/chat/completions" {
			http.NotFound(w, r)
			return
		}
		if got := r.Header.Get("Authorization"); got != "Bearer secret" {
			http.Error(w, "no auth", http.StatusUnauthorized)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"choices":[{"message":{"role":"assistant","content":"graph.stats -> report.compose"}}]}`)) //nolint:errcheck
	}))
	defer srv.Close()
	c := &HTTPClient{BaseURL: srv.URL, Model: "vicuna-13b", APIKey: "secret"}
	out, err := c.Complete(context.Background(), []Message{{Role: "user", Content: "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	if out != "graph.stats -> report.compose" {
		t.Fatalf("out = %q", out)
	}
}

func TestHTTPClientErrors(t *testing.T) {
	c := &HTTPClient{}
	if _, err := c.Complete(context.Background(), nil); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c = &HTTPClient{BaseURL: srv.URL}
	if _, err := c.Complete(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("err = %v", err)
	}
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"choices":[]}`)) //nolint:errcheck
	}))
	defer empty.Close()
	c = &HTTPClient{BaseURL: empty.URL}
	if _, err := c.Complete(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "no choices") {
		t.Fatalf("err = %v", err)
	}
	apiErr := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"error":{"message":"model overloaded"}}`)) //nolint:errcheck
	}))
	defer apiErr.Close()
	c = &HTTPClient{BaseURL: apiErr.URL}
	if _, err := c.Complete(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPClientContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &HTTPClient{BaseURL: srv.URL}
	if _, err := c.Complete(ctx, nil); err == nil {
		t.Fatal("cancelled request succeeded")
	}
}
