// Package moldb is the molecule graph database behind the paper's
// chat-based graph comparison scenario (Fig. 5): it stores molecule graphs
// and answers "what molecules are similar to G" via a Weisfeiler–Lehman
// subtree kernel, the standard label-refinement similarity for labeled
// graphs.
package moldb

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"

	"chatgraph/internal/graph"
)

// Entry is one stored molecule.
type Entry struct {
	ID    int
	Name  string
	Graph *graph.Graph
	// fingerprint caches the WL feature multiset for fast scoring.
	fingerprint map[uint64]float64
	norm        float64
}

// DB is an in-memory molecule database safe for concurrent reads after the
// last Add.
type DB struct {
	mu         sync.RWMutex
	entries    []Entry
	iterations int
}

// New returns an empty DB whose similarity uses the given number of WL
// refinement iterations (≤ 0 means the default 3).
func New(wlIterations int) *DB {
	if wlIterations <= 0 {
		wlIterations = 3
	}
	return &DB{iterations: wlIterations}
}

// Len reports how many molecules are stored.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Add stores g under name and returns its ID.
func (db *DB) Add(name string, g *graph.Graph) int {
	fp := Fingerprint(g, db.iterations)
	db.mu.Lock()
	defer db.mu.Unlock()
	id := len(db.entries)
	db.entries = append(db.entries, Entry{
		ID: id, Name: name, Graph: g,
		fingerprint: fp, norm: fpNorm(fp),
	})
	return id
}

// Get returns the entry with the given ID.
func (db *DB) Get(id int) (Entry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if id < 0 || id >= len(db.entries) {
		return Entry{}, fmt.Errorf("moldb: no molecule with id %d", id)
	}
	return db.entries[id], nil
}

// Match is one similarity-search hit.
type Match struct {
	ID         int
	Name       string
	Similarity float64 // normalized WL kernel in [0, 1]
}

// Search returns the k stored molecules most similar to q, best first.
// Ties break by ID for determinism.
func (db *DB) Search(q *graph.Graph, k int) []Match {
	if k <= 0 {
		return nil
	}
	qfp := Fingerprint(q, db.iterations)
	qn := fpNorm(qfp)
	db.mu.RLock()
	defer db.mu.RUnlock()
	ms := make([]Match, 0, len(db.entries))
	for _, e := range db.entries {
		ms = append(ms, Match{ID: e.ID, Name: e.Name, Similarity: cosineKernel(qfp, qn, e.fingerprint, e.norm)})
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Similarity != ms[j].Similarity {
			return ms[i].Similarity > ms[j].Similarity
		}
		return ms[i].ID < ms[j].ID
	})
	if k > len(ms) {
		k = len(ms)
	}
	return ms[:k]
}

// Similarity returns the normalized WL kernel between two graphs, using the
// DB's iteration count.
func (db *DB) Similarity(a, b *graph.Graph) float64 {
	fa := Fingerprint(a, db.iterations)
	fb := Fingerprint(b, db.iterations)
	return cosineKernel(fa, fpNorm(fa), fb, fpNorm(fb))
}

// Fingerprint computes the WL subtree feature multiset of g: labels are
// iteratively refined by hashing each node's label with the sorted labels of
// its neighbors, and every (iteration, label) occurrence increments a
// feature bucket.
func Fingerprint(g *graph.Graph, iterations int) map[uint64]float64 {
	n := g.NumNodes()
	fp := make(map[uint64]float64)
	if n == 0 {
		return fp
	}
	labels := make([]uint64, n)
	for i, nd := range g.Nodes() {
		l := nd.Label
		if e := nd.Attrs["element"]; e != "" {
			l = e
		}
		labels[i] = hash64("L0:" + l)
		fp[labels[i]]++
	}
	c := g.Freeze()
	var nbLabels []uint64
	for it := 1; it <= iterations; it++ {
		next := make([]uint64, n)
		for i := 0; i < n; i++ {
			nbLabels = nbLabels[:0]
			for _, nb := range c.OutNeighbors(graph.NodeID(i)) {
				nbLabels = append(nbLabels, labels[nb])
			}
			sort.Slice(nbLabels, func(a, b int) bool { return nbLabels[a] < nbLabels[b] })
			h := fnv.New64a()
			writeU64(h, uint64(it))
			writeU64(h, labels[i])
			for _, nl := range nbLabels {
				writeU64(h, nl)
			}
			next[i] = h.Sum64()
			fp[next[i]]++
		}
		labels = next
	}
	return fp
}

func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:]) //nolint:errcheck // fnv never errors
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck
	return h.Sum64()
}

func fpNorm(fp map[uint64]float64) float64 {
	var s float64
	for _, v := range fp {
		s += v * v
	}
	return math.Sqrt(s)
}

// cosineKernel is the cosine-normalized dot product of two feature
// multisets, 1 for identical structures.
func cosineKernel(a map[uint64]float64, an float64, b map[uint64]float64, bn float64) float64 {
	if an == 0 || bn == 0 {
		return 0
	}
	// Iterate the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for k, av := range a {
		if bv, ok := b[k]; ok {
			dot += av * bv
		}
	}
	return dot / (an * bn)
}

// Describe renders a stored molecule as a one-line summary for chat output.
func Describe(e Entry) string {
	stats := graph.ComputeStats(e.Graph)
	return fmt.Sprintf("%s (id %s): %d atoms, %d bonds, %d rings",
		e.Name, strconv.Itoa(e.ID), stats.Nodes, stats.Edges, stats.Edges-stats.Nodes+stats.Components)
}
