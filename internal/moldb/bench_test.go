package moldb

import (
	"math/rand"
	"testing"

	"chatgraph/internal/graph"
)

func BenchmarkFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Molecule(40, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fingerprint(g, 3)
	}
}

func BenchmarkSearch1k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := New(3)
	for i := 0; i < 1000; i++ {
		db.Add("m", graph.Molecule(8+rng.Intn(20), rng))
	}
	q := graph.Molecule(16, rng)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Search(q, 2)
	}
}
