package moldb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"chatgraph/internal/graph"
)

// Persistence: the molecule database round-trips through JSON so a curated
// collection can be shipped with a deployment instead of regenerated.

type persistedEntry struct {
	Name  string       `json:"name"`
	Graph *graph.Graph `json:"graph"`
}

type persistedDB struct {
	WLIterations int              `json:"wl_iterations"`
	Molecules    []persistedEntry `json:"molecules"`
}

// Write serializes the database as JSON.
func (db *DB) Write(w io.Writer) error {
	db.mu.RLock()
	p := persistedDB{WLIterations: db.iterations}
	for _, e := range db.entries {
		p.Molecules = append(p.Molecules, persistedEntry{Name: e.Name, Graph: e.Graph})
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("moldb: encode: %w", err)
	}
	return nil
}

// ReadFrom loads a database serialized by Write. Fingerprints are
// recomputed on load, so the format stays stable if the kernel changes.
func ReadFrom(r io.Reader) (*DB, error) {
	var p persistedDB
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("moldb: decode: %w", err)
	}
	db := New(p.WLIterations)
	for i, e := range p.Molecules {
		if e.Graph == nil {
			return nil, fmt.Errorf("moldb: molecule %d has no graph", i)
		}
		db.Add(e.Name, e.Graph)
	}
	return db, nil
}

// Save writes the database to a file, crash-safely: the data lands in a
// same-directory temp file that is fsynced and renamed over path, so a
// crash mid-save leaves the previous file intact instead of a torn half.
// (The old implementation wrote path in place — and closed the file twice,
// once via defer and once explicitly, so the Write error could be masked by
// a spurious "file already closed".)
func (db *DB) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".moldb-*")
	if err != nil {
		return fmt.Errorf("moldb: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { os.Remove(tmp) } //nolint:errcheck
	if err := db.Write(f); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("moldb: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("moldb: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		cleanup()
		return fmt.Errorf("moldb: %w", err)
	}
	return nil
}

// Load reads a database from a file written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("moldb: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}
