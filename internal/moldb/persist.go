package moldb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"chatgraph/internal/graph"
)

// Persistence: the molecule database round-trips through JSON so a curated
// collection can be shipped with a deployment instead of regenerated.

type persistedEntry struct {
	Name  string       `json:"name"`
	Graph *graph.Graph `json:"graph"`
}

type persistedDB struct {
	WLIterations int              `json:"wl_iterations"`
	Molecules    []persistedEntry `json:"molecules"`
}

// Write serializes the database as JSON.
func (db *DB) Write(w io.Writer) error {
	db.mu.RLock()
	p := persistedDB{WLIterations: db.iterations}
	for _, e := range db.entries {
		p.Molecules = append(p.Molecules, persistedEntry{Name: e.Name, Graph: e.Graph})
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("moldb: encode: %w", err)
	}
	return nil
}

// ReadFrom loads a database serialized by Write. Fingerprints are
// recomputed on load, so the format stays stable if the kernel changes.
func ReadFrom(r io.Reader) (*DB, error) {
	var p persistedDB
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("moldb: decode: %w", err)
	}
	db := New(p.WLIterations)
	for i, e := range p.Molecules {
		if e.Graph == nil {
			return nil, fmt.Errorf("moldb: molecule %d has no graph", i)
		}
		db.Add(e.Name, e.Graph)
	}
	return db, nil
}

// Save writes the database to a file.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("moldb: %w", err)
	}
	defer f.Close()
	if err := db.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a database from a file written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("moldb: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}
