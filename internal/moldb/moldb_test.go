package moldb

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"chatgraph/internal/graph"
)

func benzeneLike(label string) *graph.Graph {
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddNode(label)
	}
	for i := 0; i < 6; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6)) //nolint:errcheck
	}
	return g
}

func TestFingerprintIdenticalGraphsEqual(t *testing.T) {
	a, b := benzeneLike("C"), benzeneLike("C")
	fa, fb := Fingerprint(a, 3), Fingerprint(b, 3)
	if len(fa) != len(fb) {
		t.Fatalf("fingerprint sizes differ: %d vs %d", len(fa), len(fb))
	}
	for k, v := range fa {
		if fb[k] != v {
			t.Fatal("fingerprints differ for identical graphs")
		}
	}
}

func TestFingerprintEmptyGraph(t *testing.T) {
	if fp := Fingerprint(graph.New(), 3); len(fp) != 0 {
		t.Fatalf("empty graph fingerprint = %v", fp)
	}
}

func TestSimilaritySelfIsOne(t *testing.T) {
	db := New(3)
	g := benzeneLike("C")
	if s := db.Similarity(g, g); s < 0.999 {
		t.Fatalf("self similarity = %v", s)
	}
}

func TestSimilarityRespectsLabels(t *testing.T) {
	db := New(3)
	carbon, nitrogen := benzeneLike("C"), benzeneLike("N")
	if s := db.Similarity(carbon, nitrogen); s > 0.01 {
		t.Fatalf("label-disjoint rings similarity = %v, want ~0", s)
	}
}

func TestSearchRanksIdenticalFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := New(3)
	for i := 0; i < 30; i++ {
		db.Add("rand", graph.Molecule(12, rng))
	}
	target := benzeneLike("C")
	id := db.Add("benzene", target)
	ms := db.Search(benzeneLike("C"), 2)
	if len(ms) != 2 {
		t.Fatalf("Search returned %d", len(ms))
	}
	if ms[0].ID != id || ms[0].Similarity < 0.999 {
		t.Fatalf("top hit = %+v, want benzene", ms[0])
	}
	if ms[1].Similarity > ms[0].Similarity {
		t.Fatal("results not sorted")
	}
}

func TestSearchEdgeCases(t *testing.T) {
	db := New(0) // default iterations
	if got := db.Search(benzeneLike("C"), 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := db.Search(benzeneLike("C"), 5); len(got) != 0 {
		t.Fatalf("empty DB returned %v", got)
	}
	db.Add("one", benzeneLike("C"))
	if got := db.Search(benzeneLike("C"), 5); len(got) != 1 {
		t.Fatalf("k>len returned %d", len(got))
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestGet(t *testing.T) {
	db := New(2)
	id := db.Add("mol", benzeneLike("C"))
	e, err := db.Get(id)
	if err != nil || e.Name != "mol" {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	if _, err := db.Get(99); err == nil {
		t.Fatal("Get(99) succeeded")
	}
	if _, err := db.Get(-1); err == nil {
		t.Fatal("Get(-1) succeeded")
	}
}

func TestDescribe(t *testing.T) {
	db := New(2)
	id := db.Add("benzene", benzeneLike("C"))
	e, _ := db.Get(id)
	d := Describe(e)
	if !strings.Contains(d, "benzene") || !strings.Contains(d, "6 atoms") {
		t.Fatalf("Describe = %q", d)
	}
}

// Property: similarity is symmetric and within [0, 1].
func TestQuickSimilaritySymmetricBounded(t *testing.T) {
	db := New(2)
	f := func(sa, sb int64) bool {
		a := graph.Molecule(8, rand.New(rand.NewSource(sa)))
		b := graph.Molecule(8, rand.New(rand.NewSource(sb)))
		s1, s2 := db.Similarity(a, b), db.Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := New(2)
	for i := 0; i < 10; i++ {
		db.Add("m", graph.Molecule(10, rng))
	}
	q := benzeneLike("C")
	db.Add("benzene", q.Clone())
	path := filepath.Join(t.TempDir(), "mols.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), db.Len())
	}
	// Search behaves identically after reload.
	want := db.Search(q, 1)
	have := got.Search(q, 1)
	if len(have) != 1 || have[0].Name != want[0].Name || have[0].Similarity != want[0].Similarity {
		t.Fatalf("search after reload = %+v, want %+v", have, want)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if _, err := ReadFrom(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed JSON loaded")
	}
	if _, err := ReadFrom(strings.NewReader(`{"wl_iterations":2,"molecules":[{"name":"x"}]}`)); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestLoadPartialFile pins the corruption contract for Load: a database file
// cut short mid-write (the torn half the old non-atomic Save could leave)
// must error cleanly at every truncation point — never panic, never yield a
// partial database.
func TestLoadPartialFile(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db := New(2)
	for i := 0; i < 5; i++ {
		db.Add("m", graph.Molecule(8, rng))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "mols.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
		cut := int(float64(len(data)) * frac)
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(torn); err == nil {
			t.Fatalf("truncated at %d/%d bytes: loaded without error", cut, len(data))
		}
	}
	// Same-length corruption inside the JSON must also fail, not half-parse.
	// NUL bytes are invalid anywhere in a JSON document — inside or outside
	// a string — so this fails regardless of where the midpoint lands.
	rot := append([]byte(nil), data...)
	copy(rot[len(rot)/2:], make([]byte, 13))
	if err := os.WriteFile(torn, rot, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(torn); err == nil {
		t.Fatal("bit-rotted file loaded without error")
	}
}

// TestSaveLeavesNoTempLitter checks the atomic Save cleans up after itself:
// the directory ends with exactly the target file.
func TestSaveLeavesNoTempLitter(t *testing.T) {
	db := New(2)
	db.Add("benzene", benzeneLike("C"))
	dir := t.TempDir()
	path := filepath.Join(dir, "mols.json")
	for i := 0; i < 3; i++ {
		if err := db.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "mols.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("dir after saves = %v", names)
	}
}
