package moldb_test

import (
	"fmt"

	"chatgraph/internal/graph"
	"chatgraph/internal/moldb"
)

func ExampleDB_Search() {
	db := moldb.New(3)

	ring := graph.New()
	for i := 0; i < 6; i++ {
		ring.AddNode("C")
	}
	for i := 0; i < 6; i++ {
		ring.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6)) //nolint:errcheck
	}
	db.Add("benzene-like", ring)

	chainMol := graph.New()
	for i := 0; i < 4; i++ {
		chainMol.AddNode("C")
	}
	for i := 0; i+1 < 4; i++ {
		chainMol.AddEdge(graph.NodeID(i), graph.NodeID(i+1)) //nolint:errcheck
	}
	db.Add("butane-like", chainMol)

	// Query with another 6-ring: the ring molecule must rank first.
	hits := db.Search(ring.Clone(), 2)
	fmt.Println(hits[0].Name, hits[0].Similarity >= hits[1].Similarity)
	// Output:
	// benzene-like true
}
