package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/config"
	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

var (
	srvOnce   sync.Once
	srvTest   *httptest.Server
	srvEngine *core.Engine
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		env := &apis.Env{}
		reg := apis.Default(env)
		core.SeedMoleculeDB(env, 30, rand.New(rand.NewSource(1)))
		eng, err := core.NewEngine(core.Config{Registry: reg, Env: env, TrainSeed: 1, TrainExamples: 250})
		if err != nil {
			panic(err)
		}
		srvEngine = eng
		srvTest = httptest.NewServer(New(eng, Options{}).Handler())
	})
	return srvTest
}

func postChat(t *testing.T, body any) (*http.Response, ChatResponse) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(testServer(t).URL+"/chat", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr ChatResponse
	json.NewDecoder(resp.Body).Decode(&cr) //nolint:errcheck
	return resp, cr
}

func TestChatEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.PlantedCommunities(2, 10, 0.5, 0.05, rng)
	gj, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	resp, cr := postChat(t, ChatRequest{Question: "Write a brief report for G", Graph: gj})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if cr.Kind != "social" || cr.Answer == "" || cr.Chain == "" {
		t.Fatalf("response = %+v", cr)
	}
	if len(cr.Events) < 4 {
		t.Fatalf("events = %d", len(cr.Events))
	}
	if cr.Events[0].Type != "chain_start" {
		t.Fatalf("first event = %s", cr.Events[0].Type)
	}
}

func TestChatValidation(t *testing.T) {
	resp, _ := postChat(t, ChatRequest{Question: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty question status = %d", resp.StatusCode)
	}
	resp, _ = postChat(t, map[string]any{"question": "hi", "graph": map[string]any{"nodes": []any{map[string]any{"id": 1}}, "edges": []any{map[string]any{"from": 1, "to": 9}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad graph status = %d", resp.StatusCode)
	}
	r, err := http.Get(testServer(t).URL + "/chat")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /chat status = %d", r.StatusCode)
	}
}

func TestChatMalformedJSON(t *testing.T) {
	resp, err := http.Post(testServer(t).URL+"/chat", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAPIsEndpoint(t *testing.T) {
	resp, err := http.Get(testServer(t).URL + "/apis")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []APIInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) < 25 {
		t.Fatalf("apis = %d", len(infos))
	}
	for _, i := range infos {
		if i.Name == "" || i.Description == "" {
			t.Fatalf("bad entry %+v", i)
		}
	}
}

func TestSuggestEndpoint(t *testing.T) {
	for _, kind := range []string{"social", "molecule", "knowledge", ""} {
		resp, err := http.Get(testServer(t).URL + "/suggest?kind=" + kind)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string][]string
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
		resp.Body.Close()
		if len(out["questions"]) < 2 {
			t.Fatalf("kind %q suggestions = %v", kind, out)
		}
	}
}

func TestHealthz(t *testing.T) {
	resp, err := http.Get(testServer(t).URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestConfigEndpoint(t *testing.T) {
	resp, err := http.Get(testServer(t).URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got config.Config
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ANN.TopK == 0 || got.LLM.Backend == "" {
		t.Fatalf("config = %+v", got)
	}
}
