package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestMaxRPSShedding pins the global rate gate: a MaxRPS=1 server admits
// the bucket's burst and sheds the rest of a tight loop with 429 +
// Retry-After. This is the knob the cluster experiments use to model
// per-replica provisioned capacity.
func TestMaxRPSShedding(t *testing.T) {
	eng := slowEngine(t, 0)
	srv, ts := newAdmissionServer(t, eng, Options{MaxRPS: 1})

	sess := mustCreateSession(t, ts) // session create spends one token
	body := chatBody(t)
	var admitted, shed int
	for i := 0; i < 10; i++ {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.SessionID+"/chat", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			admitted++
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	// At 1 rps with burst 1 and the create having drained the bucket, a
	// tight 10-request loop can admit at most a token or two of refill.
	if shed < 8 {
		t.Fatalf("admitted=%d shed=%d; want ≥8 shed", admitted, shed)
	}
	if got := srv.hm.shedRPS.Value(); got != uint64(shed) {
		t.Fatalf("shedRPS metric = %v, want %d", got, shed)
	}
}
