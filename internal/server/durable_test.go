package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/core"
	"chatgraph/internal/durable"
	"chatgraph/internal/finetune"
	"chatgraph/internal/graph"
	"chatgraph/internal/tenant"
)

var (
	durModelOnce sync.Once
	durModel     *finetune.Model
)

// durableEngine builds a fresh engine (own env, registry, graph store) for
// crash-recovery tests. The finetuned model is trained once and shared —
// training dominates engine construction and the durability layer never
// touches it, while a fresh graph store per engine is exactly what proves
// recovery re-interns blobs instead of inheriting warm state.
func durableEngine(t *testing.T) *core.Engine {
	t.Helper()
	mk := func(model *finetune.Model) *core.Engine {
		env := &apis.Env{}
		reg := apis.Default(env)
		core.SeedMoleculeDB(env, 30, rand.New(rand.NewSource(1)))
		eng, err := core.NewEngine(core.Config{Registry: reg, Env: env, Model: model, TrainSeed: 1, TrainExamples: 250})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		return eng
	}
	durModelOnce.Do(func() { durModel = mk(nil).Model() })
	return mk(durModel)
}

func TestReadyzWithoutDurable(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz without durable store = %d, want 200", resp.StatusCode)
	}
}

// TestCrashRecovery is the kill-and-recover pin: sessions, transcripts,
// interned graphs, and terminal job records written before an unflushed
// crash must all come back in a fresh process (fresh engine, fresh graph
// store), and the restored session must keep serving chats.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	dstore, state, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	eng1 := durableEngine(t)
	srv1 := New(eng1, Options{Durable: dstore, Tenants: durTenants(t)})
	ts1 := httptest.NewServer(srv1.Handler())

	// Before Recover the server must refuse gated work and fail readiness.
	resp, err := http.Get(ts1.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Recover = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts1.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated route before Recover = %d, want 503", resp.StatusCode)
	}
	if err := srv1.Recover(state); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts1.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after Recover = %d, want 200", resp.StatusCode)
	}

	// Build committed state: one session with two chats over an uploaded
	// graph, plus one async job driven to completion.
	gj, err := json.Marshal(graph.PlantedCommunities(2, 10, 0.5, 0.05, rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	var si SessionInfo
	postTo(t, ts1.URL+"/v1/sessions", nil, http.StatusCreated, &si)
	var answers []string
	for _, q := range []string{"Write a brief report for G", "How many communities does G have?"} {
		var cr ChatResponse
		postTo(t, ts1.URL+"/v1/sessions/"+si.SessionID+"/chat", ChatRequest{Question: q, Graph: gj}, http.StatusOK, &cr)
		if cr.Answer == "" {
			t.Fatalf("chat %q: empty answer", q)
		}
		answers = append(answers, cr.Answer)
	}
	var ji JobInfo
	postTo(t, ts1.URL+"/v1/jobs", JobRequest{Question: "Write a brief report for G", Graph: gj}, http.StatusAccepted, &ji)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur JobInfo
		getTo(t, ts1.URL+"/v1/jobs/"+ji.JobID, &cur)
		if cur.State == "done" {
			ji = cur
			break
		}
		if cur.State == "failed" || cur.State == "cancelled" {
			t.Fatalf("job settled %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ji.Result == nil || ji.Result.Answer == "" {
		t.Fatalf("done job result = %+v", ji.Result)
	}
	interned := eng1.Graphs().Len()
	if interned < 1 {
		t.Fatalf("interned graphs = %d", interned)
	}

	// Tenant ownership must survive the crash: a keyed tenant's session and
	// job have to come back owned (a fresh rate bucket is fine, lost
	// ownership is not). The job is deliberately left running so its owner
	// rides the submit record alone.
	ownedResp := doReqJSON(t, http.MethodPost, ts1.URL+"/v1/sessions", "k-dur", nil)
	if ownedResp.status != http.StatusCreated {
		t.Fatalf("owned session create = %d", ownedResp.status)
	}
	ownedSID := ownedResp.body["session_id"].(string)
	ownedChat, err := json.Marshal(ChatRequest{Question: "Write a brief report for G", Graph: gj})
	if err != nil {
		t.Fatal(err)
	}
	if r := doReq(t, http.MethodPost, ts1.URL+"/v1/sessions/"+ownedSID+"/chat", "k-dur", ownedChat); r.StatusCode != http.StatusOK {
		t.Fatalf("owned chat = %d", r.StatusCode)
	}
	ownedJobResp := doReqJSON(t, http.MethodPost, ts1.URL+"/v1/jobs", "k-dur", ownedChat)
	if ownedJobResp.status != http.StatusAccepted {
		t.Fatalf("owned job submit = %d", ownedJobResp.status)
	}
	ownedJID := ownedJobResp.body["job_id"].(string)

	// Crash: the store drops its file handle without flushing; nothing on
	// the serving side gets a goodbye.
	dstore.Abort()
	ts1.Close()

	// Second incarnation: new store over the same dir, new engine with an
	// empty graph store.
	dstore2, state2, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer dstore2.Close()
	if state2.Truncations != 0 {
		// SyncNone writes reach the page cache whole; an in-process "crash"
		// must not tear frames.
		t.Fatalf("truncations = %d", state2.Truncations)
	}
	eng2 := durableEngine(t)
	if eng2.Graphs().Len() != 0 {
		t.Fatalf("fresh engine graph store = %d", eng2.Graphs().Len())
	}
	srv2 := New(eng2, Options{Durable: dstore2, Tenants: durTenants(t)})
	defer srv2.Close()
	if err := srv2.Recover(state2); err != nil {
		t.Fatal(err)
	}

	// 100% of committed state must be back: the session with both turns...
	m, err := srv2.mgr.Get(si.SessionID)
	if err != nil {
		t.Fatalf("session %s not recovered: %v", si.SessionID, err)
	}
	hist := m.Session.History()
	if len(hist) != len(answers) {
		t.Fatalf("recovered turns = %d, want %d", len(hist), len(answers))
	}
	for i, a := range answers {
		if hist[i].Answer != a {
			t.Fatalf("turn %d answer = %q, want %q", i, hist[i].Answer, a)
		}
		if hist[i].Chain == nil {
			t.Fatalf("turn %d chain lost", i)
		}
	}
	// ...the graph re-interned into the fresh store...
	if eng2.Graphs().Len() != interned {
		t.Fatalf("recovered graphs = %d, want %d", eng2.Graphs().Len(), interned)
	}
	// ...and the job's terminal record, result included.
	j2, ok := srv2.jobs.Get(ji.JobID)
	if !ok {
		t.Fatalf("job %s not recovered", ji.JobID)
	}
	st2 := j2.Status()
	if st2.State.String() != "done" {
		t.Fatalf("recovered job state = %s", st2.State)
	}
	recovered, ok := st2.Result.(ChatResponse)
	if !ok || recovered.Answer != ji.Result.Answer {
		t.Fatalf("recovered job result = %+v, want answer %q", st2.Result, ji.Result.Answer)
	}

	// Ownership came back from the log: the restored session and job carry
	// their tenant.
	ownedM, err := srv2.mgr.Get(ownedSID)
	if err != nil {
		t.Fatalf("owned session not recovered: %v", err)
	}
	if ownedM.Tenant != "dur" {
		t.Fatalf("recovered session tenant = %q, want dur", ownedM.Tenant)
	}
	ownedJ, ok := srv2.jobs.Get(ownedJID)
	if !ok {
		t.Fatalf("owned job %s not recovered", ownedJID)
	}
	if ownedJ.Owner != "dur" {
		t.Fatalf("recovered job owner = %q, want dur", ownedJ.Owner)
	}

	// The restored session keeps serving: one more chat over HTTP, on the
	// same session ID, against the re-interned graph.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var cr ChatResponse
	postTo(t, ts2.URL+"/v1/sessions/"+si.SessionID+"/chat", ChatRequest{Question: "How many nodes does G have?", Graph: gj}, http.StatusOK, &cr)
	if cr.Answer == "" {
		t.Fatal("chat on recovered session: empty answer")
	}
	// And ownership is enforced over HTTP exactly as before the crash:
	// another tenant sees 404, the owner sees its state.
	if r := doReq(t, http.MethodGet, ts2.URL+"/v1/sessions/"+ownedSID+"/history", "k-other", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant history after recovery = %d, want 404", r.StatusCode)
	}
	if r := doReq(t, http.MethodGet, ts2.URL+"/v1/sessions/"+ownedSID+"/history", "k-dur", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("owner history after recovery = %d", r.StatusCode)
	}
	if r := doReq(t, http.MethodGet, ts2.URL+"/v1/jobs/"+ownedJID, "k-other", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant job after recovery = %d, want 404", r.StatusCode)
	}
	if r := doReq(t, http.MethodGet, ts2.URL+"/v1/jobs/"+ownedJID, "k-dur", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("owner job after recovery = %d", r.StatusCode)
	}
	if got := len(m.Session.History()); got != len(answers)+1 {
		t.Fatalf("history after post-recovery chat = %d", got)
	}

	// A checkpoint of the recovered state must round-trip through a third
	// incarnation: snapshot manifest + empty WAL tail carry everything.
	if err := srv2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := dstore2.Close(); err != nil {
		t.Fatal(err)
	}
	dstore3, state3, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer dstore3.Close()
	s3, ok := state3.Sessions[si.SessionID]
	if !ok || len(s3.Turns) != len(answers)+1 {
		t.Fatalf("post-checkpoint session = %+v", s3)
	}
	if _, ok := state3.Jobs[ji.JobID]; !ok {
		t.Fatalf("post-checkpoint jobs = %v", state3.Jobs)
	}
	if len(state3.Graphs) == 0 {
		t.Fatal("post-checkpoint graphs empty")
	}
	if s3o, ok := state3.Sessions[ownedSID]; !ok || s3o.Tenant != "dur" {
		t.Fatalf("post-checkpoint owned session = %+v, want tenant dur", s3o)
	}
}

// durTenants is the two-tenant registry the crash-recovery test runs under:
// ownership must come back from the WAL, not from process memory.
func durTenants(t *testing.T) *tenant.Registry {
	t.Helper()
	return mustRegistry(t, &tenant.Config{Tenants: []tenant.TenantConfig{
		{Name: "dur", Keys: []string{"k-dur"}},
		{Name: "other", Keys: []string{"k-other"}},
	}})
}

func postTo(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getTo(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverExpiredSessions checks the TTL policy is applied during
// recovery: a session idle past the TTL while the daemon was down stays
// dead, exactly as the sweeper would have decided.
func TestRecoverExpiredSessions(t *testing.T) {
	dir := t.TempDir()
	dstore, _, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := dstore.Append(&durable.Record{Type: durable.RecSessionCreate, TS: old.UnixNano(),
		Session: &durable.SessionRecord{ID: "stale", CreatedUnixNS: old.UnixNano()}}); err != nil {
		t.Fatal(err)
	}
	if err := dstore.LogSessionCreate("fresh", time.Now(), ""); err != nil {
		t.Fatal(err)
	}
	dstore.Abort()

	dstore2, state, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer dstore2.Close()
	srv := New(durableEngine(t), Options{Durable: dstore2, SessionTTL: time.Hour})
	defer srv.Close()
	if err := srv.Recover(state); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.mgr.Get("stale"); err == nil {
		t.Fatal("stale session resurrected past its TTL")
	}
	if _, err := srv.mgr.Get("fresh"); err != nil {
		t.Fatalf("fresh session not recovered: %v", err)
	}
	if srv.mgr.Restored() != 1 {
		t.Fatalf("restored = %d, want 1", srv.mgr.Restored())
	}
}

// TestRecoverInterruptedJob checks a job whose submit record survived without
// a terminal record is restored failed, with the interruption spelled out.
func TestRecoverInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	dstore, _, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := dstore.LogJobSubmit(durable.JobRecord{
		ID: "iob-1", Priority: "high", Question: "count nodes", State: "queued",
		SubmittedUnixNS: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	dstore.Abort()

	dstore2, state, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer dstore2.Close()
	srv := New(durableEngine(t), Options{Durable: dstore2})
	defer srv.Close()
	if err := srv.Recover(state); err != nil {
		t.Fatal(err)
	}
	j, ok := srv.jobs.Get("iob-1")
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	st := j.Status()
	if st.State.String() != "failed" || st.Err == nil {
		t.Fatalf("interrupted job = %s err %v, want failed", st.State, st.Err)
	}
	if want := "interrupted by restart"; st.Err != nil && !bytes.Contains([]byte(st.Err.Error()), []byte(want)) {
		t.Fatalf("error %q does not mention %q", st.Err, want)
	}
	if fmt.Sprint(st.Priority) != "high" {
		t.Fatalf("priority = %s", st.Priority)
	}
}
