package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"chatgraph/internal/metrics"
	"chatgraph/internal/tenant"
)

// APIKeyHeader carries the caller's tenant credential. The cluster
// router forwards it untouched (it is not hop-by-hop), so backends make
// the same admission decision a single-node deployment would.
const APIKeyHeader = "X-API-Key"

// tenantCtxKey carries the resolved *tenant.Tenant in the request
// context once admission has authenticated the request.
type tenantCtxKey struct{}

// currentTenant returns the tenant admission resolved for r. Handlers
// behind the admission gate always find one; the anonymous tenant is the
// fallback for anything reached outside the gate.
func (s *Server) currentTenant(r *http.Request) *tenant.Tenant {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*tenant.Tenant); ok {
		return t
	}
	return s.tenants.Anonymous()
}

// authTenant resolves the request's tenant from its API key, writing the
// 401/403 itself on failure. Admission-gated routes already carry the
// resolved tenant in context; the ungated job routes (status, stream,
// cancel) resolve here because ownership checks need an identity even
// where overload shedding must not apply.
func (s *Server) authTenant(w http.ResponseWriter, r *http.Request) (*tenant.Tenant, bool) {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*tenant.Tenant); ok {
		return t, true
	}
	t, err := s.tenants.Resolve(r.Header.Get(APIKeyHeader))
	if err != nil {
		s.writeAuthError(w, r, err)
		return nil, false
	}
	return t, true
}

// writeAuthError maps a resolution failure to its HTTP status and counts
// it. Failures are counted by reason, never by key — an attacker spraying
// random keys must not mint metric series.
func (s *Server) writeAuthError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, tenant.ErrDisabled):
		s.tm.authDisabled.Inc()
		writeError(w, r, http.StatusForbidden, "tenant disabled")
	case errors.Is(err, tenant.ErrKeyRequired):
		s.tm.authMissing.Inc()
		writeError(w, r, http.StatusUnauthorized, "api key required")
	default:
		s.tm.authUnknown.Inc()
		writeError(w, r, http.StatusUnauthorized, "unknown api key")
	}
}

// ownedBy reports whether a stored owner name matches the caller's
// tenant. Records written before tenancy existed (empty owner) belong to
// the anonymous tenant, so old WALs recover with sane ownership.
func ownedBy(owner string, t *tenant.Tenant) bool {
	if owner == "" {
		owner = tenant.AnonymousName
	}
	return owner == t.Name
}

// tenantSeries is one tenant's pre-resolved metric handles.
type tenantSeries struct {
	requests  *metrics.Counter
	shedFair  *metrics.Counter
	shedQuota *metrics.Counter
	shedRate  *metrics.Counter
	duration  *metrics.Histogram
}

// tenantMetrics holds the per-tenant series for the bounded label set
// (configured tenants + anonymous), resolved once at construction, plus
// the by-reason auth failure counters. Cardinality is fixed at boot: no
// request can create a series.
type tenantMetrics struct {
	byName       map[string]*tenantSeries
	authMissing  *metrics.Counter
	authUnknown  *metrics.Counter
	authDisabled *metrics.Counter
}

func newTenantMetrics(reg *metrics.Registry, tr *tenant.Registry) *tenantMetrics {
	authHelp := "Requests rejected at tenant resolution, by reason."
	tm := &tenantMetrics{
		byName:       make(map[string]*tenantSeries),
		authMissing:  reg.Counter("chatgraph_auth_failures_total", authHelp, metrics.Labels{"reason": "key_required"}),
		authUnknown:  reg.Counter("chatgraph_auth_failures_total", authHelp, metrics.Labels{"reason": "unknown_key"}),
		authDisabled: reg.Counter("chatgraph_auth_failures_total", authHelp, metrics.Labels{"reason": "disabled"}),
	}
	shedHelp := "Admission-gated requests shed per tenant, by reason."
	for _, name := range tr.Names() {
		tm.byName[name] = &tenantSeries{
			requests: reg.Counter("chatgraph_tenant_requests_total",
				"Admission-gated requests per tenant.", metrics.Labels{"tenant": name}),
			shedFair:  reg.Counter("chatgraph_tenant_shed_total", shedHelp, metrics.Labels{"tenant": name, "reason": "fair_share"}),
			shedQuota: reg.Counter("chatgraph_tenant_shed_total", shedHelp, metrics.Labels{"tenant": name, "reason": "tenant_inflight"}),
			shedRate:  reg.Counter("chatgraph_tenant_shed_total", shedHelp, metrics.Labels{"tenant": name, "reason": "tenant_rate"}),
			duration: reg.Histogram("chatgraph_tenant_request_duration_seconds",
				"Admitted request latency per tenant.", metrics.DefBuckets, metrics.Labels{"tenant": name}),
		}
	}
	return tm
}

// series returns the handles for t (always present: the registry's
// tenant set is exactly what newTenantMetrics enumerated).
func (tm *tenantMetrics) series(t *tenant.Tenant) *tenantSeries { return tm.byName[t.Name] }

// tenantAdmission runs the tenancy half of the admission policy: resolve
// the API key (401/403), then the weighted-fair in-flight gate (with the
// tenant's own in-flight quota), then the tenant's rate bucket. It
// returns the request annotated with the tenant, the fair-gate release
// (to defer), and the tenant series for latency observation; ok=false
// means the response has been written.
func (s *Server) tenantAdmission(w http.ResponseWriter, r *http.Request) (_ *http.Request, release func(), ts *tenantSeries, ok bool) {
	tn, err := s.tenants.Resolve(r.Header.Get(APIKeyHeader))
	if err != nil {
		s.writeAuthError(w, r, err)
		return r, nil, nil, false
	}
	r = r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tn))
	ts = s.tm.series(tn)
	ts.requests.Inc()
	release, verdict := s.tenants.Acquire(tn)
	if verdict != tenant.Admitted {
		s.hm.shedInFlight.Inc()
		if verdict == tenant.RejectedQuota {
			ts.shedQuota.Inc()
		} else {
			ts.shedFair.Inc()
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusTooManyRequests, "tenant over capacity, retry later")
		return r, nil, nil, false
	}
	if allowed, retry := tn.TakeToken(time.Now()); !allowed {
		release()
		s.hm.shedTenantRate.Inc()
		ts.shedRate.Inc()
		setRetryAfter(w, retry)
		writeError(w, r, http.StatusTooManyRequests, "tenant rate limit exceeded, retry later")
		return r, nil, nil, false
	}
	return r, release, ts, true
}
