package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"chatgraph/internal/graph"
)

// postJob submits a job and decodes the JobInfo reply (whatever the status).
func postJob(t *testing.T, base string, req JobRequest) (*http.Response, JobInfo) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	json.NewDecoder(resp.Body).Decode(&info) //nolint:errcheck // error bodies aren't JobInfo
	return resp, info
}

// mustSubmitJob submits a job and requires 202 Accepted.
func mustSubmitJob(t *testing.T, base string, req JobRequest) JobInfo {
	t.Helper()
	resp, info := postJob(t, base, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if info.JobID == "" {
		t.Fatal("submit returned no job_id")
	}
	return info
}

// getJob fetches one job's status, requiring 200.
func getJob(t *testing.T, base, id string) JobInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job status = %d, want 200", resp.StatusCode)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitJobState polls until the job reports state (or fails the test).
func waitJobState(t *testing.T, base, id, state string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		info := getJob(t, base, id)
		if info.State == state {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q (last: %q)", id, state, getJob(t, base, id).State)
	return JobInfo{}
}

// cancelJob issues DELETE /v1/jobs/{id} and returns the response status plus
// the state echoed back (empty on error statuses).
func cancelJob(t *testing.T, base, id string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		State string `json:"state"`
	}
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	return resp.StatusCode, body.State
}

// jobStreamLine is one NDJSON line of GET /v1/jobs/{id}?stream=1: either a
// progress event (Type = executor event name) or the terminal result/error.
type jobStreamLine struct {
	Type   string        `json:"type"`
	Step   string        `json:"step,omitempty"`
	Result *ChatResponse `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// streamJobLines tails a job's NDJSON stream to completion.
func streamJobLines(t *testing.T, base, id string) []jobStreamLine {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var lines []jobStreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line jobStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestJobCompletesBeyondRequestTimeout is the acceptance criterion for the
// async path: a chat that blows through the synchronous RequestTimeout (504)
// completes when submitted as a job, with its progress stream readable both
// live (while the job runs) and as a replay (after it finished).
func TestJobCompletesBeyondRequestTimeout(t *testing.T) {
	eng := slowEngine(t, 300*time.Millisecond)
	_, ts := newAdmissionServer(t, eng, Options{RequestTimeout: 50 * time.Millisecond, JobWorkers: 1})

	// Synchronously the chain cannot fit inside the deadline.
	sess := mustCreateSession(t, ts)
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.SessionID+"/chat", "application/json", bytes.NewReader(chatBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("sync chat status = %d, want 504", resp.StatusCode)
	}

	// The same payload as a job escapes the request deadline.
	info := mustSubmitJob(t, ts.URL, JobRequest{
		Question: "Summarize the statistics of the graph",
		Graph:    socialGraphJSON(t, 7),
	})
	if info.State != "queued" && info.State != "running" {
		t.Fatalf("fresh job state = %q", info.State)
	}

	// Live tail: attached while the job is still executing, the stream must
	// follow it to the terminal result line.
	live := streamJobLines(t, ts.URL, info.JobID)
	if len(live) < 2 {
		t.Fatalf("live stream produced %d lines, want events + result", len(live))
	}
	last := live[len(live)-1]
	if last.Type != "result" || last.Result == nil || last.Result.Answer == "" {
		t.Fatalf("live stream terminal line = %+v", last)
	}

	// Replay: the same URL after completion serves the persisted events again.
	replay := streamJobLines(t, ts.URL, info.JobID)
	if len(replay) != len(live) {
		t.Fatalf("replay produced %d lines, live produced %d", len(replay), len(live))
	}
	if rl := replay[len(replay)-1]; rl.Type != "result" || rl.Result == nil || rl.Result.Answer != last.Result.Answer {
		t.Fatalf("replay terminal line = %+v", rl)
	}

	// And the plain status view agrees.
	done := waitJobState(t, ts.URL, info.JobID, "done")
	if done.Result == nil || done.Result.Answer == "" {
		t.Fatalf("done job has no result: %+v", done)
	}
	if done.Events != len(live)-1 {
		t.Fatalf("done job persisted %d events, stream emitted %d", done.Events, len(live)-1)
	}
	if done.FinishedAt == nil || done.StartedAt == nil {
		t.Fatalf("done job missing timestamps: %+v", done)
	}
}

// TestJobQueueFullSheds fills a 1-worker/1-slot pool and checks the next
// submission is shed with 429 + Retry-After while earlier ones stand.
func TestJobQueueFullSheds(t *testing.T) {
	eng := slowEngine(t, 2*time.Second)
	_, ts := newAdmissionServer(t, eng, Options{JobWorkers: 1, JobQueue: 1})

	req := JobRequest{Question: "Summarize the statistics of the graph", Graph: socialGraphJSON(t, 7)}
	running := mustSubmitJob(t, ts.URL, req)
	waitJobState(t, ts.URL, running.JobID, "running")
	queued := mustSubmitJob(t, ts.URL, req)

	resp, _ := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The accepted jobs were not disturbed by the shed.
	if st := getJob(t, ts.URL, running.JobID).State; st != "running" {
		t.Fatalf("running job state after shed = %q", st)
	}
	if st := getJob(t, ts.URL, queued.JobID).State; st != "queued" {
		t.Fatalf("queued job state after shed = %q", st)
	}

	// Cancelling the queued job frees the slot for a new submission.
	if status, state := cancelJob(t, ts.URL, queued.JobID); status != http.StatusAccepted || state != "cancelled" {
		t.Fatalf("cancel queued: status %d state %q", status, state)
	}
	mustSubmitJob(t, ts.URL, req)
}

// TestJobCancel covers the cancel semantics over HTTP: a queued job settles
// immediately, a running one settles when the executor sees the dead
// context, cancelling a finished job is an idempotent no-op, and unknown
// ids are 404 on every method.
func TestJobCancel(t *testing.T) {
	eng := slowEngine(t, 2*time.Second)
	_, ts := newAdmissionServer(t, eng, Options{JobWorkers: 1})

	req := JobRequest{Question: "Summarize the statistics of the graph", Graph: socialGraphJSON(t, 7)}
	run := mustSubmitJob(t, ts.URL, req)
	waitJobState(t, ts.URL, run.JobID, "running")
	wait := mustSubmitJob(t, ts.URL, req)

	// Queued: cancelled synchronously.
	if status, state := cancelJob(t, ts.URL, wait.JobID); status != http.StatusAccepted || state != "cancelled" {
		t.Fatalf("cancel queued: status %d state %q", status, state)
	}

	// Running: DELETE returns the in-flight state, then the job settles.
	if status, state := cancelJob(t, ts.URL, run.JobID); status != http.StatusAccepted || state != "running" {
		t.Fatalf("cancel running: status %d state %q", status, state)
	}
	settled := waitJobState(t, ts.URL, run.JobID, "cancelled")
	if settled.Error == "" {
		t.Fatalf("cancelled job carries no error: %+v", settled)
	}

	// Idempotent: a second DELETE reports the settled state.
	if status, state := cancelJob(t, ts.URL, run.JobID); status != http.StatusAccepted || state != "cancelled" {
		t.Fatalf("re-cancel: status %d state %q", status, state)
	}

	if status, _ := cancelJob(t, ts.URL, "no-such-job"); status != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", status)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/no-such-job"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("get unknown: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestJobValidation checks every synchronously rejectable payload comes back
// 400 instead of becoming a job that fails later.
func TestJobValidation(t *testing.T) {
	base := testServer(t).URL
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"empty question", JobRequest{}},
		{"bad priority", JobRequest{Question: "q", Priority: "urgent"}},
		{"unknown chain api", JobRequest{Question: "q", Chain: "no.such_api"}},
		{"malformed chain", JobRequest{Question: "q", Chain: "graph.stats -> ("}},
		{"bad graph", JobRequest{Question: "q", Graph: json.RawMessage(`{"nodes": 3}`)}},
	}
	for _, tc := range cases {
		resp, _ := postJob(t, base, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestJobList submits jobs and checks the listing includes them newest
// first with their terminal state.
func TestJobList(t *testing.T) {
	base := testServer(t).URL
	req := JobRequest{
		Question: "Run the pinned stats chain",
		Graph:    socialGraphJSON(t, 11),
		Chain:    "graph.stats",
		Priority: "high",
	}
	first := mustSubmitJob(t, base, req)
	waitJobState(t, base, first.JobID, "done")
	second := mustSubmitJob(t, base, req)
	waitJobState(t, base, second.JobID, "done")

	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, j := range body.Jobs {
		pos[j.JobID] = i
		if !j.SubmittedAt.IsZero() && i > 0 && body.Jobs[i-1].SubmittedAt.Before(j.SubmittedAt) {
			t.Fatalf("listing not newest-first at index %d", i)
		}
	}
	fi, ok1 := pos[first.JobID]
	si, ok2 := pos[second.JobID]
	if !ok1 || !ok2 {
		t.Fatalf("listing missing submitted jobs (have %d jobs)", len(body.Jobs))
	}
	if si > fi {
		t.Fatalf("second job listed after first (%d > %d)", si, fi)
	}
	if body.Jobs[fi].Priority != "high" {
		t.Fatalf("listed priority = %q", body.Jobs[fi].Priority)
	}
}

// TestAsyncMutatingChainUsesClone is the regression for mutating chains on
// interned graphs run asynchronously: the job's chain edits the graph, but
// the edit must land on the executor's private clone — the shared interned
// instance stays byte-identical, and (under -race) the store's mutation
// tripwire stays silent.
func TestAsyncMutatingChainUsesClone(t *testing.T) {
	base := testServer(t).URL
	gj := socialGraphJSON(t, 99)
	orig, err := graph.ParseJSON(gj)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := orig.NumEdges()

	info := mustSubmitJob(t, base, JobRequest{
		Question: "Add an audit edge and recount",
		Graph:    gj,
		Chain:    fmt.Sprintf("graph.add_edge(from=%d, to=%d, label=async-audit) -> graph.stats", 0, 1),
	})
	done := waitJobState(t, base, info.JobID, "done")
	if done.Result == nil || done.Result.Answer == "" {
		t.Fatalf("mutating job has no result: %+v", done)
	}

	// Re-interning the same payload must resolve to the instance uploaded by
	// the job — and that shared instance must not carry the job's edit.
	again, err := graph.ParseJSON(gj)
	if err != nil {
		t.Fatal(err)
	}
	shared := srvEngine.Graphs().Intern(again)
	if shared == again {
		t.Fatal("job upload was not interned: re-intern produced a fresh instance")
	}
	if !shared.Shared() {
		t.Fatal("interned graph not marked shared")
	}
	if got := shared.NumEdges(); got != wantEdges {
		t.Fatalf("shared graph mutated by async job: %d edges, want %d", got, wantEdges)
	}
}
