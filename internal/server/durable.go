package server

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"sort"
	"time"

	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/durable"
	"chatgraph/internal/graph"
	"chatgraph/internal/jobs"
)

// This file threads the durability layer through the serving stack. Every
// hook is a no-op when Options.Durable is nil, and every append failure is
// log-and-continue: the durable store counts its own errors
// (chatgraph_wal_append_errors_total), and a sick disk must degrade
// durability, not availability.

// handleReadyz is the readiness probe: 200 once recovery has completed
// (or immediately when the server has no durable store), 503 while the
// persisted state is still being replayed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
}

// Ready reports whether the server is accepting gated traffic.
func (s *Server) Ready() bool { return s.ready.Load() }

func unixNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// logSessionCreate records a freshly minted session and attaches the
// transcript hook so its future turns reach the WAL.
func (s *Server) logSessionCreate(m *managed) {
	if s.opts.Durable == nil {
		return
	}
	if err := s.opts.Durable.LogSessionCreate(m.ID, m.Created, m.Tenant); err != nil {
		log.Printf("server: durable: session create %s: %v", m.ID, err)
	}
	s.attachTurnLog(m)
}

// logSessionDelete records an explicit delete so recovery does not
// resurrect the session.
func (s *Server) logSessionDelete(id string) {
	if s.opts.Durable == nil {
		return
	}
	if err := s.opts.Durable.LogSessionDelete(id); err != nil {
		log.Printf("server: durable: session delete %s: %v", id, err)
	}
}

// attachTurnLog registers the session's turn observer: every completed
// exchange is appended to the WAL with its dense history index, which is
// what makes replay idempotent across snapshot overlap.
func (s *Server) attachTurnLog(m *managed) {
	store := s.opts.Durable
	id := m.ID
	m.Session.SetTurnObserver(func(index int, t core.Turn) {
		if err := store.LogTurn(turnRecord(id, index, t)); err != nil {
			log.Printf("server: durable: turn %s[%d]: %v", id, index, err)
		}
	})
}

// turnRecord converts a completed turn to its durable wire form (the same
// text shapes the transcript files use).
func turnRecord(sessionID string, index int, t core.Turn) durable.TurnRecord {
	return durable.TurnRecord{
		SessionID: sessionID,
		Index:     index,
		Question:  t.Question,
		Kind:      t.Kind.String(),
		Chain:     t.Chain.String(),
		Answer:    t.Answer,
		ElapsedMS: t.Elapsed.Milliseconds(),
	}
}

// persistGraph commits an uploaded graph to the blob store, returning its
// durable SHA ("" without a durable store or on failure).
func (s *Server) persistGraph(g *graph.Graph) string {
	if s.opts.Durable == nil || g == nil {
		return ""
	}
	sha, err := s.opts.Durable.PersistGraph(g)
	if err != nil {
		log.Printf("server: durable: persist graph: %v", err)
		return ""
	}
	return sha
}

// logJobSubmit records an accepted async job.
func (s *Server) logJobSubmit(j *jobs.Job, req JobRequest, graphSHA string) {
	if s.opts.Durable == nil {
		return
	}
	st := j.Status()
	err := s.opts.Durable.LogJobSubmit(durable.JobRecord{
		ID:              st.ID,
		Tenant:          st.Owner,
		Priority:        st.Priority.String(),
		Question:        req.Question,
		Chain:           req.Chain,
		GraphSHA:        graphSHA,
		State:           jobs.StateQueued.String(),
		SubmittedUnixNS: unixNS(st.Submitted),
	})
	if err != nil {
		log.Printf("server: durable: job submit %s: %v", st.ID, err)
	}
}

// onJobTerminal is the job pool's OnTerminal hook: it records the settled
// outcome — including the result payload for completed jobs — so a restart
// can answer GET /v1/jobs/{id} for work that finished in a previous
// incarnation. The pool invokes it outside its locks.
func (s *Server) onJobTerminal(st jobs.Status) {
	if s.opts.Durable == nil {
		return
	}
	rec := durable.JobRecord{
		ID:              st.ID,
		Tenant:          st.Owner,
		Priority:        st.Priority.String(),
		State:           st.State.String(),
		SubmittedUnixNS: unixNS(st.Submitted),
		StartedUnixNS:   unixNS(st.Started),
		FinishedUnixNS:  unixNS(st.Finished),
	}
	if st.Err != nil {
		rec.Error = st.Err.Error()
	}
	if resp, ok := st.Result.(ChatResponse); ok && st.State == jobs.StateDone {
		if data, err := json.Marshal(resp); err == nil {
			rec.Result = data
		} else {
			log.Printf("server: durable: encode job %s result: %v", st.ID, err)
		}
	}
	if err := s.opts.Durable.LogJobDone(rec); err != nil {
		log.Printf("server: durable: job done %s: %v", st.ID, err)
	}
}

// Recover rebuilds the server from a recovered State: graphs are re-parsed
// from their blobs and re-interned (so the content-addressed invoke cache
// re-warms under the fresh process hash seed), live sessions get their IDs,
// idle clocks, and transcripts back, and terminal job records become
// queryable again. Jobs that were queued or running at the crash are
// restored as failed ("interrupted by restart") — their submission was
// durable, their execution was not. Sessions idle past the TTL at recovery
// time are dropped, exactly as the sweeper would have.
//
// Recover must be called exactly once, before traffic, whenever
// Options.Durable is set (a fresh data dir yields an empty state); it
// flips the server ready at the end.
func (s *Server) Recover(st *durable.State) error {
	if s.opts.Durable == nil {
		s.ready.Store(true)
		return nil
	}
	if st == nil {
		st = durable.NewState()
	}
	start := time.Now()

	graphs := 0
	for _, sha := range st.Graphs {
		g, err := s.opts.Durable.LoadGraph(sha)
		if err != nil {
			log.Printf("server: recover: graph blob %s: %v", sha, err)
			continue
		}
		s.eng.Graphs().Intern(g)
		graphs++
	}

	now := time.Now()
	ttl := s.mgr.TTL()
	sessions, turns, expired := 0, 0, 0
	for _, ss := range st.Sessions {
		if now.Sub(ss.LastUsed) > ttl {
			expired++
			continue
		}
		m, err := s.mgr.Restore(ss.ID, ss.Created, ss.LastUsed, ss.Tenant)
		if err != nil {
			log.Printf("server: recover: session %s: %v", ss.ID, err)
			continue
		}
		restored := make([]core.Turn, 0, len(ss.Turns))
		for _, tr := range ss.Turns {
			c, err := chain.Parse(tr.Chain)
			if err != nil {
				// A chain that fails to re-parse (version skew) loses its
				// structured form but not the exchange itself.
				log.Printf("server: recover: session %s turn %d chain: %v", ss.ID, tr.Index, err)
				c = nil
			}
			restored = append(restored, core.Turn{
				Question: tr.Question,
				Kind:     core.ParseKind(tr.Kind),
				Chain:    c,
				Answer:   tr.Answer,
				Elapsed:  time.Duration(tr.ElapsedMS) * time.Millisecond,
			})
		}
		m.Session.RestoreHistory(restored)
		turns += len(restored)
		// Attach the WAL hook only after the bulk load, so restored turns
		// are not re-logged.
		s.attachTurnLog(m)
		sessions++
	}

	// Jobs restore in finish order to preserve the retention sweep's
	// eviction-queue invariant. Interrupted jobs settle "now".
	recs := make([]durable.JobRecord, 0, len(st.Jobs))
	for _, jr := range st.Jobs {
		rec := *jr
		if jst, ok := jobs.ParseState(rec.State); !ok || !jst.Terminal() {
			rec.State = jobs.StateFailed.String()
			rec.Error = "interrupted by restart before completion"
			rec.FinishedUnixNS = now.UnixNano()
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].FinishedUnixNS < recs[j].FinishedUnixNS })
	restoredJobs := 0
	for _, rec := range recs {
		jst, _ := jobs.ParseState(rec.State)
		pri, err := jobs.ParsePriority(rec.Priority)
		if err != nil {
			pri = jobs.PriorityNormal
		}
		var result any
		if jst == jobs.StateDone && len(rec.Result) > 0 {
			var resp ChatResponse
			if err := json.Unmarshal(rec.Result, &resp); err == nil {
				result = resp
			} else {
				log.Printf("server: recover: job %s result: %v", rec.ID, err)
			}
		}
		var jerr error
		if rec.Error != "" {
			jerr = errors.New(rec.Error)
		}
		toTime := func(ns int64) time.Time {
			if ns == 0 {
				return time.Time{}
			}
			return time.Unix(0, ns)
		}
		if s.jobs.Restore(rec.ID, rec.Tenant, pri, jst, toTime(rec.SubmittedUnixNS), toTime(rec.StartedUnixNS), toTime(rec.FinishedUnixNS), result, jerr) {
			restoredJobs++
		}
	}

	log.Printf("server: recovered %d sessions (%d turns, %d expired in absence), %d graphs, %d job records from %d WAL records in %s",
		sessions, turns, expired, graphs, restoredJobs, st.Records, time.Since(start).Round(time.Millisecond))
	s.ready.Store(true)
	return nil
}

// Checkpoint takes a snapshot of the live serving state through the durable
// store: the WAL rotates, the manifest captures every live session
// (transcript included) and every stored job, and superseded segments and
// snapshots are pruned. Daemons call it periodically and once more during
// graceful shutdown (after Close, so final job cancellations are covered).
// A server without a durable store returns nil immediately.
func (s *Server) Checkpoint() error {
	if s.opts.Durable == nil {
		return nil
	}
	return s.opts.Durable.Snapshot(func() ([]durable.ManifestSession, []durable.JobRecord) {
		var sessions []durable.ManifestSession
		s.mgr.sessions.Range(func(_, value any) bool {
			m := value.(*managed)
			hist := m.Session.History()
			ms := durable.ManifestSession{
				ID:             m.ID,
				Tenant:         m.Tenant,
				CreatedUnixNS:  m.Created.UnixNano(),
				LastUsedUnixNS: m.lastUsed.Load(),
				Turns:          make([]durable.TurnRecord, 0, len(hist)),
			}
			for i, t := range hist {
				ms.Turns = append(ms.Turns, turnRecord(m.ID, i, t))
			}
			sessions = append(sessions, ms)
			return true
		})
		all := s.jobs.All()
		recs := make([]durable.JobRecord, 0, len(all))
		for _, st := range all {
			rec := durable.JobRecord{
				ID:              st.ID,
				Tenant:          st.Owner,
				Priority:        st.Priority.String(),
				State:           st.State.String(),
				SubmittedUnixNS: unixNS(st.Submitted),
				StartedUnixNS:   unixNS(st.Started),
				FinishedUnixNS:  unixNS(st.Finished),
			}
			if st.Err != nil {
				rec.Error = st.Err.Error()
			}
			if resp, ok := st.Result.(ChatResponse); ok && st.State == jobs.StateDone {
				if data, err := json.Marshal(resp); err == nil {
					rec.Result = data
				}
			}
			recs = append(recs, rec)
		}
		return sessions, recs
	})
}
