package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestClassifyRoute pins the affinity contract to the actual route table:
// the cluster router dispatches on exactly these classifications, so a new
// route that lands in the wrong class silently breaks session stickiness.
func TestClassifyRoute(t *testing.T) {
	cases := []struct {
		method, path string
		class        AffinityClass
		key          string
		idempotent   bool
	}{
		{http.MethodPost, "/v1/sessions", AffinitySession, "", false},
		{http.MethodGet, "/v1/sessions", AffinityFanout, "", true},
		{http.MethodDelete, "/v1/sessions/abc123", AffinitySession, "abc123", true},
		{http.MethodPost, "/v1/sessions/abc123/chat", AffinitySession, "abc123", false},
		{http.MethodGet, "/v1/sessions/abc123/history", AffinitySession, "abc123", true},
		{http.MethodPost, "/v1/jobs", AffinityJob, "", false},
		{http.MethodGet, "/v1/jobs", AffinityFanout, "", true},
		{http.MethodGet, "/v1/jobs/j1", AffinityJob, "j1", true},
		{http.MethodDelete, "/v1/jobs/j1", AffinityJob, "j1", true},
		{http.MethodPost, "/v1/retrieve", AffinityNone, "", true},
		{http.MethodPost, "/chat", AffinityUpload, "", false},
		{http.MethodGet, "/apis", AffinityNone, "", true},
		{http.MethodGet, "/suggest", AffinityNone, "", true},
		{http.MethodGet, "/config", AffinityNone, "", true},
		{http.MethodGet, "/healthz", AffinityNone, "", true},
		{http.MethodGet, "/readyz", AffinityNone, "", true},
		// Unknown routes must classify as non-idempotent AffinityNone: the
		// router forwards them somewhere but never replays them.
		{http.MethodPost, "/no/such/route", AffinityNone, "", false},
	}
	for _, tc := range cases {
		aff := ClassifyRoute(tc.method, tc.path)
		if aff.Class != tc.class || aff.Key != tc.key || aff.Idempotent != tc.idempotent {
			t.Errorf("ClassifyRoute(%s %s) = {%s key=%q idem=%v}, want {%s key=%q idem=%v}",
				tc.method, tc.path, aff.Class, aff.Key, aff.Idempotent, tc.class, tc.key, tc.idempotent)
		}
	}
}

// TestUploadContentKey verifies the placement key is the graph's content
// hash: stable for the same graph regardless of surrounding fields, and
// absent for graph-less or malformed bodies.
func TestUploadContentKey(t *testing.T) {
	gj := socialGraphJSON(t, 11)
	b1, _ := json.Marshal(map[string]any{"question": "report", "graph": json.RawMessage(gj)})
	b2, _ := json.Marshal(map[string]any{"question": "different question", "graph": json.RawMessage(gj)})
	k1, ok1 := UploadContentKey(b1)
	k2, ok2 := UploadContentKey(b2)
	if !ok1 || !ok2 {
		t.Fatalf("ok = %v, %v", ok1, ok2)
	}
	if k1 == "" || k1 != k2 {
		t.Fatalf("same graph produced keys %q vs %q", k1, k2)
	}
	other, _ := json.Marshal(map[string]any{"graph": json.RawMessage(socialGraphJSON(t, 12))})
	if k3, ok := UploadContentKey(other); !ok || k3 == k1 {
		t.Fatalf("different graph: ok=%v key=%q (want distinct from %q)", ok, k3, k1)
	}
	for name, body := range map[string][]byte{
		"no graph":  []byte(`{"question":"q"}`),
		"bad graph": []byte(`{"graph":{"nodes":3}}`),
		"not json":  []byte(`hello`),
		"empty":     nil,
	} {
		if _, ok := UploadContentKey(body); ok {
			t.Errorf("%s: UploadContentKey ok = true, want false", name)
		}
	}
}

// TestPinnedSessionID exercises the caller-pinned id path the cluster
// router depends on: accept a valid pin, 409 a duplicate, 400 a bad id.
func TestPinnedSessionID(t *testing.T) {
	base := testServer(t).URL
	post := func(body string) (*http.Response, SessionInfo) {
		t.Helper()
		resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info SessionInfo
		json.NewDecoder(resp.Body).Decode(&info) //nolint:errcheck
		return resp, info
	}

	const pin = "deadbeef42a1"
	resp, info := post(`{"session_id":"` + pin + `"}`)
	if resp.StatusCode != http.StatusCreated || info.SessionID != pin {
		t.Fatalf("pinned create: status=%d id=%q", resp.StatusCode, info.SessionID)
	}
	if resp, _ := post(`{"session_id":"` + pin + `"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate pin status = %d, want 409", resp.StatusCode)
	}
	for _, bad := range []string{"short", "UPPERHEX99", "has-dash-00", "zz00zz00zz"} {
		if resp, _ := post(`{"session_id":"` + bad + `"}`); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad pin %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
	// The pinned session is a real session: history answers on it.
	hr, err := http.Get(base + "/v1/sessions/" + pin + "/history")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("history on pinned session = %d", hr.StatusCode)
	}
}

// TestPinnedJobID mirrors TestPinnedSessionID for the jobs surface.
func TestPinnedJobID(t *testing.T) {
	base := testServer(t).URL
	submit := func(req JobRequest) (*http.Response, JobInfo) {
		t.Helper()
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info JobInfo
		json.NewDecoder(resp.Body).Decode(&info) //nolint:errcheck
		return resp, info
	}

	const pin = "cafef00d1234"
	resp, info := submit(JobRequest{Question: "Summarize the statistics of the graph", JobID: pin})
	if resp.StatusCode != http.StatusAccepted || info.JobID != pin {
		t.Fatalf("pinned submit: status=%d id=%q", resp.StatusCode, info.JobID)
	}
	if resp, _ := submit(JobRequest{Question: "q", JobID: pin}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate pin status = %d, want 409", resp.StatusCode)
	}
	if resp, _ := submit(JobRequest{Question: "q", JobID: "NOT-HEX"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pin status = %d, want 400", resp.StatusCode)
	}
	// The pinned job is pollable under its pinned identity.
	gr, err := http.Get(base + "/v1/jobs/" + pin)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusOK {
		t.Fatalf("poll pinned job = %d", gr.StatusCode)
	}
}
