package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chatgraph/internal/graph"
)

func createSession(t *testing.T) SessionInfo {
	t.Helper()
	resp, err := http.Post(testServer(t).URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.SessionID == "" {
		t.Fatal("empty session_id")
	}
	return info
}

func socialGraphJSON(t *testing.T, seed int64) []byte {
	t.Helper()
	g := graph.PlantedCommunities(2, 10, 0.5, 0.05, rand.New(rand.NewSource(seed)))
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postSessionChat(t *testing.T, id, query string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	url := testServer(t).URL + "/v1/sessions/" + id + "/chat" + query
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestV1SessionLifecycle drives the full create → chat → history → delete
// round trip, then confirms the deleted session 404s.
func TestV1SessionLifecycle(t *testing.T) {
	info := createSession(t)
	gj := socialGraphJSON(t, 3)

	for i := 0; i < 2; i++ {
		resp := postSessionChat(t, info.SessionID, "", ChatRequest{Question: "Write a brief report for G", Graph: gj})
		var cr ChatResponse
		err := json.NewDecoder(resp.Body).Decode(&cr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("chat %d: status %d err %v", i, resp.StatusCode, err)
		}
		if cr.Answer == "" || cr.Kind != "social" || len(cr.Events) < 4 {
			t.Fatalf("chat %d response = %+v", i, cr)
		}
	}

	resp, err := http.Get(testServer(t).URL + "/v1/sessions/" + info.SessionID + "/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist struct {
		SessionID string        `json:"session_id"`
		Turns     []HistoryTurn `json:"turns"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hist)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hist.SessionID != info.SessionID || len(hist.Turns) != 2 {
		t.Fatalf("history = %+v", hist)
	}
	if hist.Turns[0].Answer == "" || hist.Turns[0].Chain == "" {
		t.Fatalf("turn = %+v", hist.Turns[0])
	}

	req, _ := http.NewRequest(http.MethodDelete, testServer(t).URL+"/v1/sessions/"+info.SessionID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}

	// Everything about the dead session is now a 404 with a request_id.
	resp = postSessionChat(t, info.SessionID, "", ChatRequest{Question: "hi"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("chat after delete status = %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error == "" || eb.RequestID == "" {
		t.Fatalf("error body = %+v", eb)
	}
	if got := resp.Header.Get("X-Request-ID"); got != eb.RequestID {
		t.Fatalf("header request id %q != body %q", got, eb.RequestID)
	}
}

// TestV1ChatStreaming exercises the NDJSON path: progress events arrive one
// per line, terminated by a result line carrying the answer.
func TestV1ChatStreaming(t *testing.T) {
	info := createSession(t)
	resp := postSessionChat(t, info.SessionID, "?stream=1", ChatRequest{Question: "Write a brief report for G", Graph: socialGraphJSON(t, 4)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var types []string
	var result struct {
		Type   string       `json:"type"`
		Result ChatResponse `json:"result"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		types = append(types, probe.Type)
		if probe.Type == "result" {
			if err := json.Unmarshal(line, &result); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) < 5 {
		t.Fatalf("stream lines = %v", types)
	}
	if types[0] != "chain_start" || types[len(types)-1] != "result" {
		t.Fatalf("stream order = %v", types)
	}
	if result.Result.Answer == "" || result.Result.Kind != "social" {
		t.Fatalf("result = %+v", result.Result)
	}
}

// TestV1SessionExpiry runs its own server with a tiny TTL: an idle session
// must 404 once its TTL elapses.
func TestV1SessionExpiry(t *testing.T) {
	testServer(t) // ensure the shared engine exists
	srv := New(srvEngine, Options{SessionTTL: 30 * time.Millisecond, MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	json.NewDecoder(resp.Body).Decode(&info) //nolint:errcheck
	resp.Body.Close()

	time.Sleep(60 * time.Millisecond)
	hresp, err := http.Get(ts.URL + "/v1/sessions/" + info.SessionID + "/history")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session status = %d", hresp.StatusCode)
	}
	if srv.Sessions().Len() != 0 {
		t.Fatalf("expired session still counted: %d", srv.Sessions().Len())
	}
}

// TestV1MaxSessions fills the cap and expects 503 on the next create.
func TestV1MaxSessions(t *testing.T) {
	testServer(t)
	srv := New(srvEngine, Options{SessionTTL: time.Hour, MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d status = %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap create status = %d", resp.StatusCode)
	}
}

// TestV1ConcurrentChat runs parallel conversations against the one shared
// engine — the race detector proves per-session locking suffices.
func TestV1ConcurrentChat(t *testing.T) {
	const nSessions = 3
	infos := make([]SessionInfo, nSessions)
	for i := range infos {
		infos[i] = createSession(t)
	}
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for i, info := range infos {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			gj := socialGraphJSON(t, int64(10+i))
			for j := 0; j < 2; j++ {
				data, _ := json.Marshal(ChatRequest{Question: "Write a brief report for G", Graph: gj})
				resp, err := http.Post(testServer(t).URL+"/v1/sessions/"+id+"/chat", "application/json", bytes.NewReader(data))
				if err != nil {
					errs <- err
					return
				}
				var cr ChatResponse
				err = json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || cr.Answer == "" {
					errs <- fmt.Errorf("session %d chat %d: status %d resp %+v", i, j, resp.StatusCode, cr)
					return
				}
			}
		}(i, info.SessionID)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		resp, err := http.Get(testServer(t).URL + "/v1/sessions/" + info.SessionID + "/history")
		if err != nil {
			t.Fatal(err)
		}
		var hist struct {
			Turns []HistoryTurn `json:"turns"`
		}
		json.NewDecoder(resp.Body).Decode(&hist) //nolint:errcheck
		resp.Body.Close()
		if len(hist.Turns) != 2 {
			t.Fatalf("session %s history = %d turns", info.SessionID, len(hist.Turns))
		}
	}
}

func TestV1ChatValidation(t *testing.T) {
	info := createSession(t)
	resp := postSessionChat(t, info.SessionID, "", ChatRequest{Question: ""})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty question status = %d", resp.StatusCode)
	}
	r, err := http.Post(testServer(t).URL+"/v1/sessions/"+info.SessionID+"/chat", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d", r.StatusCode)
	}
	// Unknown session id.
	resp = postSessionChat(t, "deadbeef", "", ChatRequest{Question: "hi"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status = %d", resp.StatusCode)
	}
}

// TestSuggestUnknownKind covers the 400-on-bad-kind contract (formerly a
// silent KindUnknown fallback) and the request_id correlation field.
func TestSuggestUnknownKind(t *testing.T) {
	resp, err := http.Get(testServer(t).URL + "/suggest?kind=starfish")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "starfish") || eb.RequestID == "" {
		t.Fatalf("error body = %+v", eb)
	}
}

func TestV1SessionList(t *testing.T) {
	info := createSession(t)
	resp, err := http.Get(testServer(t).URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range out.Sessions {
		if s.SessionID == info.SessionID {
			found = true
		}
	}
	if !found {
		t.Fatalf("created session %s missing from list of %d", info.SessionID, len(out.Sessions))
	}
}

func postRetrieve(t *testing.T, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(testServer(t).URL+"/v1/retrieve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestV1RetrieveBatch(t *testing.T) {
	resp := postRetrieve(t, `{"queries":["detect communities in the network","how toxic is this molecule"],"k":5}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out RetrieveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d lists", len(out.Results))
	}
	for i, hits := range out.Results {
		if len(hits) != 5 {
			t.Fatalf("query %d returned %d hits, want 5", i, len(hits))
		}
		for j, h := range hits {
			if h.Name == "" || h.Description == "" {
				t.Fatalf("query %d hit %d incomplete: %+v", i, j, h)
			}
			if j > 0 && h.Distance < hits[j-1].Distance {
				t.Fatalf("query %d hits not sorted: %+v", i, hits)
			}
		}
	}
	// The engine-side single-query ranking must agree with the wire reply.
	want := srvEngine.Retrieval().TopAPIs("detect communities in the network", 5)
	for j := range want {
		if out.Results[0][j].Name != want[j].Name {
			t.Fatalf("wire hit %d = %s, engine = %s", j, out.Results[0][j].Name, want[j].Name)
		}
	}
}

func TestV1RetrieveValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{nope`},
		{"no queries", `{"k":5}`},
		{"empty query string", `{"queries":["ok",""]}`},
		{"negative k", `{"queries":["ok"],"k":-1}`},
		{"huge k", `{"queries":["ok"],"k":101}`},
	}
	for _, c := range cases {
		resp := postRetrieve(t, c.body)
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decode error body: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
		if body.Error == "" || body.RequestID == "" {
			t.Fatalf("%s: error body incomplete: %+v", c.name, body)
		}
	}
	// Too many queries.
	qs := make([]string, maxRetrieveQueries+1)
	for i := range qs {
		qs[i] = "q"
	}
	data, err := json.Marshal(RetrieveRequest{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	resp := postRetrieve(t, string(data))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status = %d, want 400", resp.StatusCode)
	}
}
