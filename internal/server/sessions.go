package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chatgraph/internal/core"
)

// DefaultSessionTTL is how long an idle session survives when Options does
// not say otherwise.
const DefaultSessionTTL = 30 * time.Minute

// DefaultMaxSessions caps live sessions when Options does not say otherwise.
const DefaultMaxSessions = 4096

// ErrTooManySessions is returned by Create when the manager is at capacity
// even after expiring idle sessions.
var ErrTooManySessions = fmt.Errorf("server: session limit reached")

// ErrNoSession is returned by Get for unknown or expired session IDs.
var ErrNoSession = fmt.Errorf("server: no such session")

// ErrSessionExists is returned by Create when a caller-pinned session ID
// collides with a live session.
var ErrSessionExists = fmt.Errorf("server: session id already exists")

// ErrBadID is returned when a caller-pinned session or job ID is not
// lowercase hex of a sane length.
var ErrBadID = fmt.Errorf("server: pinned id must be 8-64 lowercase hex characters")

// managed is one live conversation plus its bookkeeping.
type managed struct {
	ID      string
	Session *core.Session
	Created time.Time
	// Tenant names the owning tenant; cross-tenant access is answered as
	// if the session did not exist. Empty means the anonymous tenant
	// (sessions recovered from pre-tenancy WALs).
	Tenant string
	// lastUsed is unix nanoseconds, advanced on every touch.
	lastUsed atomic.Int64
	// bucket rate-limits this session's chat requests (see Server.rateLimit).
	bucket tokenBucket
}

func (m *managed) touch(now time.Time)  { m.lastUsed.Store(now.UnixNano()) }
func (m *managed) idleSince() time.Time { return time.Unix(0, m.lastUsed.Load()) }
func (m *managed) expired(now time.Time, ttl time.Duration) bool {
	return now.Sub(m.idleSince()) > ttl
}

// SessionManager mints, finds, and expires per-conversation sessions over
// one shared Engine. The registry is a sync.Map so session lookups on the
// hot chat path never contend with each other; only the live-session count
// is shared, as an atomic. Expiry is lazy (checked on every access) plus a
// sweep on each Create, so no janitor goroutine is required — long-lived
// daemons may still run one via Sweep.
type SessionManager struct {
	eng *core.Engine
	ttl time.Duration
	max int

	sessions sync.Map // id → *managed
	count    atomic.Int64
	// createMu makes the capacity check-then-insert atomic so a burst of
	// creates cannot overshoot max.
	createMu sync.Mutex
	// Lifecycle tallies, read by the metrics counter funcs at scrape time.
	created  atomic.Int64
	expired  atomic.Int64
	deleted  atomic.Int64
	restored atomic.Int64
}

// NewSessionManager returns a manager minting sessions from eng. ttl ≤ 0
// uses DefaultSessionTTL; max ≤ 0 uses DefaultMaxSessions.
func NewSessionManager(eng *core.Engine, ttl time.Duration, max int) *SessionManager {
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &SessionManager{eng: eng, ttl: ttl, max: max}
}

// TTL reports the idle timeout sessions are expired after.
func (sm *SessionManager) TTL() time.Duration { return sm.ttl }

// Len reports the number of live (possibly idle-but-unexpired) sessions.
func (sm *SessionManager) Len() int { return int(sm.count.Load()) }

// Create mints a new session owned by tenant, expiring idle ones first if
// at capacity.
func (sm *SessionManager) Create(tenant string) (*managed, error) {
	return sm.CreateWithID("", tenant)
}

// CreateWithID creates a session under a caller-chosen ID — the hook a
// cluster router uses to pin a session onto the backend its rendezvous hash
// selects: the router mints the ID, derives the owner from it, and forwards
// the create with the ID attached, so every later request for that session
// hashes back to the same backend with no routing table. An empty id mints
// a random one (plain Create). Pinned IDs must be 8-64 lowercase hex
// characters (ErrBadID) and must not collide with a live session
// (ErrSessionExists). tenant records the owning tenant's name.
func (sm *SessionManager) CreateWithID(id, tenant string) (*managed, error) {
	if id != "" && !validPinnedID(id) {
		return nil, ErrBadID
	}
	sm.createMu.Lock()
	defer sm.createMu.Unlock()
	if id != "" {
		if _, exists := sm.sessions.Load(id); exists {
			return nil, ErrSessionExists
		}
	} else {
		id = newSessionID()
	}
	if int(sm.count.Load()) >= sm.max {
		sm.Sweep()
		if int(sm.count.Load()) >= sm.max {
			return nil, ErrTooManySessions
		}
	}
	now := time.Now()
	m := &managed{
		ID:      id,
		Session: sm.eng.NewSession(),
		Created: now,
		Tenant:  tenant,
	}
	m.touch(now)
	sm.sessions.Store(m.ID, m)
	sm.count.Add(1)
	sm.created.Add(1)
	return m, nil
}

// Restore re-inserts a session recovered from the durability layer under
// its original ID, with its original creation time, idle clock, and tenant
// ownership (the caller applies TTL policy before deciding to restore).
// The rate bucket comes back empty — a fresh bucket is fine, lost
// ownership is not. The restored session's history is empty; the caller
// rebuilds it via core.Session.RestoreHistory.
func (sm *SessionManager) Restore(id string, created, lastUsed time.Time, tenant string) (*managed, error) {
	if id == "" {
		return nil, fmt.Errorf("server: restore: empty session id")
	}
	sm.createMu.Lock()
	defer sm.createMu.Unlock()
	if _, exists := sm.sessions.Load(id); exists {
		return nil, fmt.Errorf("server: restore: session %s already live", id)
	}
	if int(sm.count.Load()) >= sm.max {
		return nil, ErrTooManySessions
	}
	m := &managed{
		ID:      id,
		Session: sm.eng.NewSession(),
		Created: created,
		Tenant:  tenant,
	}
	m.lastUsed.Store(lastUsed.UnixNano())
	sm.sessions.Store(m.ID, m)
	sm.count.Add(1)
	sm.restored.Add(1)
	return m, nil
}

// Restored reports how many sessions were rebuilt from the durability layer
// at boot.
func (sm *SessionManager) Restored() int { return int(sm.restored.Load()) }

// Get returns the live session with the given ID, touching its idle clock.
// Expired sessions are removed on sight and reported as ErrNoSession.
func (sm *SessionManager) Get(id string) (*managed, error) {
	v, ok := sm.sessions.Load(id)
	if !ok {
		return nil, ErrNoSession
	}
	m := v.(*managed)
	now := time.Now()
	if m.expired(now, sm.ttl) {
		sm.removeExpired(id)
		return nil, ErrNoSession
	}
	m.touch(now)
	return m, nil
}

// Delete removes the session with the given ID, reporting whether it was
// live.
func (sm *SessionManager) Delete(id string) bool {
	if sm.remove(id) {
		sm.deleted.Add(1)
		return true
	}
	return false
}

// Sweep removes every expired session and returns how many it removed.
func (sm *SessionManager) Sweep() int {
	now := time.Now()
	removed := 0
	sm.sessions.Range(func(key, value any) bool {
		if value.(*managed).expired(now, sm.ttl) {
			if sm.removeExpired(key.(string)) {
				removed++
			}
		}
		return true
	})
	return removed
}

func (sm *SessionManager) removeExpired(id string) bool {
	if sm.remove(id) {
		sm.expired.Add(1)
		return true
	}
	return false
}

func (sm *SessionManager) remove(id string) bool {
	if _, loaded := sm.sessions.LoadAndDelete(id); loaded {
		sm.count.Add(-1)
		return true
	}
	return false
}

// newSessionID returns a 128-bit random hex session identifier.
func newSessionID() string { return randomHex(16) }

// validPinnedID accepts 8-64 lowercase hex characters — the shape randomHex
// produces, so pinned and minted IDs are indistinguishable on the wire.
func validPinnedID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// randomHex returns 2n hex characters of crypto/rand entropy.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; panic beats
		// silently handing out colliding IDs.
		panic(fmt.Sprintf("server: id entropy: %v", err))
	}
	return hex.EncodeToString(b)
}
