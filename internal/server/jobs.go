package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"chatgraph/internal/chain"
	"chatgraph/internal/core"
	"chatgraph/internal/executor"
	"chatgraph/internal/graph"
	"chatgraph/internal/jobs"
)

// JobRequest is the POST /v1/jobs payload: the same question/graph shape as
// a chat, plus the async-only knobs. A request with a Chain skips LLM
// generation and runs exactly that chain — the path heavy, known analytics
// take — while one without goes through the full pipeline (retrieval,
// prompt, generation, execution) like a synchronous chat would.
type JobRequest struct {
	Question string `json:"question"`
	// Graph is the uploaded graph in the graph JSON wire format (optional).
	Graph json.RawMessage `json:"graph,omitempty"`
	// Chain optionally pins the exact chain to execute, in the chain text
	// form ("graph.stats -> report.compose"); it is validated at submission
	// so a bad chain fails fast with 400, not asynchronously.
	Chain string `json:"chain,omitempty"`
	// Priority is low, normal (default), or high.
	Priority string `json:"priority,omitempty"`
	// JobID optionally pins the new job's identity (8-64 lowercase hex).
	// The cluster router mints it so the rendezvous hash of job id →
	// backend keeps polls and cancels on the backend that owns the job.
	JobID string `json:"job_id,omitempty"`
}

// JobInfo describes one job on the wire.
type JobInfo struct {
	JobID       string     `json:"job_id"`
	State       string     `json:"state"`
	Priority    string     `json:"priority"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// QueueWaitMS is how long the job waited for a worker (present once it
	// has started); ElapsedMS is execution time so far (running) or total
	// (finished).
	QueueWaitMS int64 `json:"queue_wait_ms,omitempty"`
	ElapsedMS   int64 `json:"elapsed_ms,omitempty"`
	// Events is how many progress events have been persisted; tail them at
	// GET /v1/jobs/{id}?stream=1.
	Events int `json:"events"`
	// Result is the chat response once the job is done.
	Result *ChatResponse `json:"result,omitempty"`
	// Error is set for failed and cancelled jobs.
	Error string `json:"error,omitempty"`
}

// jobInfo converts a job status snapshot to its wire form.
func jobInfo(st jobs.Status) JobInfo {
	info := JobInfo{
		JobID:       st.ID,
		State:       st.State.String(),
		Priority:    st.Priority.String(),
		SubmittedAt: st.Submitted,
		Events:      st.Events,
	}
	if !st.Started.IsZero() {
		started := st.Started
		info.StartedAt = &started
		info.QueueWaitMS = started.Sub(st.Submitted).Milliseconds()
		end := time.Now()
		if !st.Finished.IsZero() {
			end = st.Finished
		}
		info.ElapsedMS = end.Sub(started).Milliseconds()
	}
	if !st.Finished.IsZero() {
		finished := st.Finished
		info.FinishedAt = &finished
	}
	if resp, ok := st.Result.(ChatResponse); ok && st.State == jobs.StateDone {
		info.Result = &resp
	}
	if st.Err != nil && st.State.Terminal() && st.State != jobs.StateDone {
		info.Error = st.Err.Error()
	}
	return info
}

// handleJobCreate accepts a chat/chain payload for asynchronous execution.
// Everything that can be rejected is rejected here, synchronously — bad
// JSON, bad graph, bad chain, bad priority — so an accepted job only fails
// for execution reasons. The uploaded graph flows through the same intern
// layer as chat uploads (one shared instance per content), and the executor
// deep-clones it if the chain mutates, exactly as on the synchronous path.
// A full queue sheds with 429 + Retry-After, mirroring the admission gate.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if req.Question == "" {
		writeError(w, r, http.StatusBadRequest, "question is required")
		return
	}
	pri, err := jobs.ParsePriority(req.Priority)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if req.JobID != "" && !validPinnedID(req.JobID) {
		writeError(w, r, http.StatusBadRequest, ErrBadID.Error())
		return
	}
	var g *graph.Graph
	var graphSHA string
	if len(req.Graph) > 0 {
		if g, err = graph.ParseJSON(req.Graph); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad graph: %v", err))
			return
		}
		if !s.opts.DisableGraphIntern {
			g = s.eng.Graphs().Intern(g)
		}
		graphSHA = s.persistGraph(g)
	}
	var c chain.Chain
	if req.Chain != "" {
		if c, err = chain.Parse(req.Chain); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad chain: %v", err))
			return
		}
		if len(c) == 0 {
			writeError(w, r, http.StatusBadRequest, "chain is empty")
			return
		}
		if err := chain.Validate(c, s.eng.Registry()); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad chain: %v", err))
			return
		}
	}
	// Each job runs on its own private session over the shared engine — the
	// job store, not the session manager, owns its lifetime, so job history
	// can neither collide with nor expire under a live conversation.
	sess := s.eng.NewSession()
	question := req.Question
	task := func(ctx context.Context, emit func(executor.Event)) (any, error) {
		opts := core.AskOptions{OnEvent: emit}
		var turn core.Turn
		var err error
		if len(c) > 0 {
			turn, err = sess.AskWithChain(ctx, question, g, c, opts)
		} else {
			turn, err = sess.Ask(ctx, question, g, opts)
		}
		if err != nil {
			return nil, err
		}
		return chatResponse(turn), nil
	}
	j, err := s.jobs.SubmitOwned(req.JobID, s.currentTenant(r).Name, pri, task)
	switch {
	case errors.Is(err, jobs.ErrDuplicateID):
		writeError(w, r, http.StatusConflict, err.Error())
		return
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusTooManyRequests, "job queue full, retry later")
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, r, http.StatusServiceUnavailable, "job pool shut down")
		return
	case err != nil:
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	s.logJobSubmit(j, req, graphSHA)
	writeJSON(w, http.StatusAccepted, jobInfo(j.Status()))
}

// handleJobList reports the calling tenant's stored jobs (queued,
// running, retained finished), newest submission first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	tn := s.currentTenant(r)
	all := s.jobs.All()
	sort.Slice(all, func(i, j int) bool { return all[i].Submitted.After(all[j].Submitted) })
	out := []JobInfo{}
	for _, st := range all {
		if ownedBy(st.Owner, tn) {
			out = append(out, jobInfo(st))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// getOwnedJob fetches a job and checks the caller's tenant owns it. These
// routes sit outside the admission gate (a long stream must outlive
// RequestTimeout, cancel must work on an overloaded server), so the
// tenant is resolved here; cross-tenant and unknown IDs are the same 404.
func (s *Server) getOwnedJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	tn, ok := s.authTenant(w, r)
	if !ok {
		return nil, false
	}
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok || !ownedBy(j.Owner, tn) {
		writeError(w, r, http.StatusNotFound, "no such job")
		return nil, false
	}
	return j, true
}

// handleJobGet serves one job's status, or — with ?stream=1 — an NDJSON
// tail of its progress events: persisted events replay immediately, then
// the stream follows live until the job reaches a terminal state. The same
// stream works during and after execution, so a client may watch a running
// job or replay a finished one with the same request.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getOwnedJob(w, r)
	if !ok {
		return
	}
	if stream := r.URL.Query().Get("stream"); stream == "1" || stream == "true" {
		s.streamJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, jobInfo(j.Status()))
}

// streamJob writes the job's event tail as NDJSON in the chat-stream wire
// format: one line per execution event, then a final "result" or "error"
// line once the job is terminal.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *jobs.Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		enc.Encode(v) //nolint:errcheck // best effort once streaming
		if flusher != nil {
			flusher.Flush()
		}
	}
	n := 0
	for {
		evs, state, changed := j.EventsSince(n)
		for _, e := range evs {
			writeLine(chatEventOf(e))
		}
		n += len(evs)
		if state.Terminal() {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-changed:
		}
	}
	st := j.Status()
	if resp, ok := st.Result.(ChatResponse); ok && st.State == jobs.StateDone {
		resp.Events = nil // already streamed line by line
		writeLine(streamResult{Type: "result", Result: resp})
		return
	}
	msg := st.State.String()
	if st.Err != nil {
		msg = st.Err.Error()
	}
	writeLine(streamError{Type: "error", Error: msg, RequestID: requestID(r)})
}

// handleJobCancel cancels the job: a queued job lands in "cancelled"
// immediately, a running one keeps reporting "running" until the executor
// observes the dead context between steps. Cancelling a finished job is a
// no-op that reports the settled state, so DELETE is safely idempotent.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.getOwnedJob(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	st, ok := s.jobs.Cancel(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"job_id": id, "state": st.String()})
}
