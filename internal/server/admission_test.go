package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/core"
	"chatgraph/internal/llm"
	"chatgraph/internal/metrics"
	"chatgraph/internal/parallel"
)

// slowClient is an llm.Client that holds every completion for delay (or
// until the context dies), then emits a fixed one-step chain — the knob the
// admission tests use to keep requests in flight.
type slowClient struct {
	delay time.Duration
}

func (c *slowClient) Complete(ctx context.Context, _ []llm.Message) (string, error) {
	select {
	case <-time.After(c.delay):
		return "graph.stats", nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// slowEngine builds a tiny engine whose chats block for delay.
func slowEngine(t *testing.T, delay time.Duration) *core.Engine {
	t.Helper()
	env := &apis.Env{}
	eng, err := core.NewEngine(core.Config{
		Registry:      apis.Default(env),
		Env:           env,
		Client:        &slowClient{delay: delay},
		TrainSeed:     1,
		TrainExamples: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func newAdmissionServer(t *testing.T, eng *core.Engine, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	srv := New(eng, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

func chatBody(t *testing.T) []byte {
	t.Helper()
	data, err := json.Marshal(ChatRequest{Question: "Summarize the statistics of the graph", Graph: socialGraphJSON(t, 7)})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestInFlightShedding holds a MaxInFlight=1 server's only slot with a slow
// background chat, then fans in 6 more requests via parallel.ForEach: every
// one must come back 429 with Retry-After (never any other error), the
// admitted chat must succeed, and the gate must reopen afterwards. The
// ForEach fan-in works on any GOMAXPROCS — the slot is provably occupied for
// the whole burst, so the burst's concurrency level doesn't matter.
func TestInFlightShedding(t *testing.T) {
	eng := slowEngine(t, 600*time.Millisecond)
	srv, ts := newAdmissionServer(t, eng, Options{MaxInFlight: 1})

	holder := mustCreateSession(t, ts)
	burster := mustCreateSession(t, ts)
	body := chatBody(t)

	heldStatus := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+holder.SessionID+"/chat", "application/json", bytes.NewReader(body))
		if err != nil {
			heldStatus <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		heldStatus <- resp.StatusCode
	}()
	// Wait until the holder actually occupies the gate.
	deadline := time.Now().Add(5 * time.Second)
	for srv.hm.gatedInFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder chat never entered the gate")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const n = 6
	var shed, other atomic.Int64
	var missingRetryAfter atomic.Int64
	parallel.ForEach(n, func(i int) {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+burster.SessionID+"/chat", "application/json", bytes.NewReader(body))
		if err != nil {
			other.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			other.Add(1)
			return
		}
		shed.Add(1)
		if resp.Header.Get("Retry-After") == "" {
			missingRetryAfter.Add(1)
		}
	})
	if other.Load() != 0 {
		t.Fatalf("non-429 responses while the gate was held: %d (shed=%d)", other.Load(), shed.Load())
	}
	if shed.Load() != n {
		t.Fatalf("shed %d of %d burst requests", shed.Load(), n)
	}
	if missingRetryAfter.Load() != 0 {
		t.Fatalf("%d shed responses lacked Retry-After", missingRetryAfter.Load())
	}
	// The admitted request was never disturbed by the burst.
	if got := <-heldStatus; got != http.StatusOK {
		t.Fatalf("holder chat status = %d", got)
	}
	// The shed counter and the exposition agree.
	if got := srv.hm.shedInFlight.Value(); got != uint64(shed.Load()) {
		t.Fatalf("shed metric = %d, observed %d", got, shed.Load())
	}
	var b strings.Builder
	srv.Metrics().WritePrometheus(&b)
	if !strings.Contains(b.String(), `chatgraph_http_shed_total{reason="in_flight"}`) {
		t.Fatalf("exposition missing shed counter:\n%s", b.String())
	}
	// Gate reopens once the holder finishes: a fresh chat succeeds.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+burster.SessionID+"/chat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst chat status = %d", resp.StatusCode)
	}
}

// TestNoSheddingBelowCap proves the gate is invisible under the cap: as
// many concurrent chats as MaxInFlight, zero 429s, zero errors.
func TestNoSheddingBelowCap(t *testing.T) {
	const slots = 4
	eng := slowEngine(t, 100*time.Millisecond)
	_, ts := newAdmissionServer(t, eng, Options{MaxInFlight: slots})

	// One session per request: per-session Ask serialization must not make
	// requests pile up in the gate.
	ids := make([]string, slots)
	for i := range ids {
		ids[i] = mustCreateSession(t, ts).SessionID
	}
	body := chatBody(t)
	var bad atomic.Int64
	parallel.ForEach(slots, func(i int) {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+ids[i]+"/chat", "application/json", bytes.NewReader(body))
		if err != nil {
			bad.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d requests failed below the in-flight cap", bad.Load())
	}
}

// TestHealthzAndMetricsBypassGate: with the server saturated, /healthz and
// /metrics must still answer 200 — an overloaded server has to be able to
// say so.
func TestHealthzAndMetricsBypassGate(t *testing.T) {
	eng := slowEngine(t, 500*time.Millisecond)
	srv, ts := newAdmissionServer(t, eng, Options{MaxInFlight: 1})

	info := mustCreateSession(t, ts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/sessions/"+info.SessionID+"/chat", "application/json", bytes.NewReader(chatBody(t)))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	// Wait until the chat occupies the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.hm.gatedInFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("chat never entered the gate")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s during saturation: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during saturation: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "chatgraph_http_gated_in_flight 1") {
			t.Fatalf("/metrics does not show the saturated gate:\n%s", body)
		}
	}
	<-done
}

// TestSessionRateLimit drives one session past its token bucket with a
// parallel.ForEach burst: exactly burst requests pass, the rest are 429
// with Retry-After, and a second session is unaffected.
func TestSessionRateLimit(t *testing.T) {
	eng := slowEngine(t, 0)
	srv, ts := newAdmissionServer(t, eng, Options{
		SessionRate:  0.5, // refill far slower than the test runs
		SessionBurst: 2,
	})
	limited := mustCreateSession(t, ts)
	fresh := mustCreateSession(t, ts)
	body := chatBody(t)

	const n = 6
	var ok2xx, shed, other atomic.Int64
	parallel.ForEach(n, func(i int) {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+limited.SessionID+"/chat", "application/json", bytes.NewReader(body))
		if err != nil {
			other.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok2xx.Add(1)
		case http.StatusTooManyRequests:
			shed.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				other.Add(1)
			}
		default:
			other.Add(1)
		}
	})
	if other.Load() != 0 {
		t.Fatalf("unexpected failures: %d", other.Load())
	}
	if ok2xx.Load() != 2 || shed.Load() != n-2 {
		t.Fatalf("burst=2 over %d requests: ok=%d shed=%d", n, ok2xx.Load(), shed.Load())
	}
	if got := srv.hm.shedRate.Value(); got != uint64(shed.Load()) {
		t.Fatalf("rate shed metric = %d, observed %d", got, shed.Load())
	}
	// The other session's bucket is untouched.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+fresh.SessionID+"/chat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh session status = %d", resp.StatusCode)
	}
}

// TestTokenBucketRefill pins the bucket math directly: drained bucket,
// deterministic clock, token-per-second refill.
func TestTokenBucketRefill(t *testing.T) {
	var b tokenBucket
	now := time.Unix(1000, 0)
	if ok, _ := b.take(1, 1, now); !ok {
		t.Fatal("first take from a full bucket failed")
	}
	ok, retry := b.take(1, 1, now)
	if ok {
		t.Fatal("second immediate take should fail at burst 1")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 1s]", retry)
	}
	// Half a second later: still empty.
	if ok, _ := b.take(1, 1, now.Add(500*time.Millisecond)); ok {
		t.Fatal("bucket refilled too fast")
	}
	// After the advertised wait, a token is available. The failed take at
	// +500ms already banked half a token, so +1.5s is comfortably enough.
	if ok, _ := b.take(1, 1, now.Add(1500*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill after 1.5s at 1 rps")
	}
}

// TestRequestTimeout bounds a stuck chain: the LLM hangs longer than the
// request deadline, so the chat answers 504 and the session lock frees in
// deadline time, not hang time.
func TestRequestTimeout(t *testing.T) {
	eng := slowEngine(t, 10*time.Second)
	_, ts := newAdmissionServer(t, eng, Options{RequestTimeout: 200 * time.Millisecond})
	info := mustCreateSession(t, ts)

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/sessions/"+info.SessionID+"/chat", "application/json", bytes.NewReader(chatBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %+v)", resp.StatusCode, eb)
	}
	if eb.Error == "" || eb.RequestID == "" {
		t.Fatalf("error body = %+v", eb)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; the deadline did not bound the request", elapsed)
	}
	// The session is usable again immediately — the stuck chain released it.
	hresp, err := http.Get(ts.URL + "/v1/sessions/" + info.SessionID + "/history")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("history after timeout = %d", hresp.StatusCode)
	}
}

// TestMetricsEndpointShape asserts the acceptance-criteria metrics exist on
// a served /metrics after real traffic: latency histograms per route, cache
// hit/miss counters, and session gauges.
func TestMetricsEndpointShape(t *testing.T) {
	// The shared test server instruments into the default registry and has
	// taken chat + retrieve traffic from the other tests; drive one of each
	// here so this test also passes under -run.
	ts := testServer(t)
	info := mustCreateSession(t, ts)
	resp, err := http.Post(ts.URL+"/v1/sessions/"+info.SessionID+"/chat", "application/json", bytes.NewReader(chatBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status = %d", resp.StatusCode)
	}
	rresp := postRetrieve(t, `{"queries":["communities"],"k":3}`)
	io.Copy(io.Discard, rresp.Body) //nolint:errcheck
	rresp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`chatgraph_http_requests_total{class="2xx",route="v1.chat"}`,
		`chatgraph_http_request_duration_seconds_bucket{route="v1.chat",le="+Inf"}`,
		`chatgraph_http_request_duration_seconds_count{route="v1.retrieve"}`,
		"chatgraph_http_in_flight",
		"chatgraph_sessions_live",
		"chatgraph_sessions_created_total",
		"chatgraph_invoke_cache_hits_total",
		"chatgraph_invoke_cache_misses_total",
		"chatgraph_invoke_cache_evictions_total",
		"chatgraph_engine_asks_total",
		"chatgraph_engine_ask_duration_seconds_bucket",
		"chatgraph_executor_steps_total",
		`chatgraph_executor_chains_total{outcome="ok"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q\n---\n%s", want, out)
		}
	}
}

// mustCreateSession creates a session on an arbitrary test server (the
// createSession helper is pinned to the shared one).
func mustCreateSession(t *testing.T, ts *httptest.Server) SessionInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}
