package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chatgraph/internal/tenant"
)

// doReq issues one request with an optional API key, returning the response
// with its body drained and closed (headers and status remain readable).
func doReq(t *testing.T, method, url, key string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set(APIKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp
}

// mustRegistry builds a tenant registry or fails the test.
func mustRegistry(t *testing.T, cfg *tenant.Config) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestLegacyChatRateLimited is the regression test for the rate-limit bypass
// on the legacy endpoint: POST /chat used to call the shared conversation
// directly, skipping the session token bucket entirely, so a client that
// never upgraded to /v1 could sidestep -session-rate. The legacy path now
// owns a bucket under the same policy: burst requests past it must shed 429
// with Retry-After, exactly like a v1 session would.
func TestLegacyChatRateLimited(t *testing.T) {
	eng := slowEngine(t, 0)
	srv, ts := newAdmissionServer(t, eng, Options{
		SessionRate:  0.5, // refill far slower than the test runs
		SessionBurst: 2,
	})
	body := chatBody(t)

	var ok2xx, shed, other int
	for i := 0; i < 6; i++ {
		resp := doReq(t, http.MethodPost, ts.URL+"/chat", "", body)
		switch resp.StatusCode {
		case http.StatusOK:
			ok2xx++
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("legacy 429 without Retry-After")
			}
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("unexpected non-200/429 responses: %d", other)
	}
	if ok2xx != 2 || shed != 4 {
		t.Fatalf("burst=2 over 6 legacy chats: ok=%d shed=%d (bypass regressed?)", ok2xx, shed)
	}
	if got := srv.hm.shedRate.Value(); got != uint64(shed) {
		t.Fatalf("session_rate shed metric = %d, observed %d", got, shed)
	}
}

// TestRetryAfterRounding pins the Retry-After contract across all three
// bucket layers — per-session, per-tenant, and global -max-rps: every shed
// path must answer with the same correctly-rounded integer seconds
// (ceil of the refill wait, minimum 1). At 0.25 tokens/sec with burst 1 the
// wait after a drain is just under 4s, so all three layers must say "4".
func TestRetryAfterRounding(t *testing.T) {
	retrieveBody := []byte(`{"queries":["communities"],"k":3}`)
	cases := []struct {
		name string
		opts Options
		key  string
	}{
		{
			name: "session_bucket",
			opts: Options{SessionRate: 0.25, SessionBurst: 1},
		},
		{
			name: "tenant_bucket",
			opts: Options{}, // registry injected below
			key:  "k-metered",
		},
		{
			name: "global_max_rps",
			opts: Options{MaxRPS: 0.25},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			if tc.name == "tenant_bucket" {
				opts.Tenants = mustRegistry(t, &tenant.Config{
					Tenants: []tenant.TenantConfig{{
						Name:  "metered",
						Keys:  []string{"k-metered"},
						Quota: tenant.Quota{RPS: 0.25, Burst: 1},
					}},
				})
			}
			eng := slowEngine(t, 0)
			_, ts := newAdmissionServer(t, eng, opts)

			var shedResp *http.Response
			if tc.name == "session_bucket" {
				info := mustCreateSession(t, ts)
				url := ts.URL + "/v1/sessions/" + info.SessionID + "/chat"
				if resp := doReq(t, http.MethodPost, url, "", chatBody(t)); resp.StatusCode != http.StatusOK {
					t.Fatalf("first chat = %d", resp.StatusCode)
				}
				shedResp = doReq(t, http.MethodPost, url, "", chatBody(t))
			} else {
				url := ts.URL + "/v1/retrieve"
				if resp := doReq(t, http.MethodPost, url, tc.key, retrieveBody); resp.StatusCode != http.StatusOK {
					t.Fatalf("first retrieve = %d", resp.StatusCode)
				}
				shedResp = doReq(t, http.MethodPost, url, tc.key, retrieveBody)
			}
			if shedResp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("second request = %d, want 429", shedResp.StatusCode)
			}
			ra := shedResp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil {
				t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
			}
			if secs != 4 {
				t.Fatalf("Retry-After = %d, want 4 (ceil of the 0.25 rps refill wait)", secs)
			}
		})
	}
}

// TestAuthSemantics pins the API-key contract: no key rides as anonymous
// when anonymous is enabled, an unknown key is 401 (never silently
// downgraded to anonymous), a disabled tenant's key is 403, and with
// anonymous disabled a keyless request is 401.
func TestAuthSemantics(t *testing.T) {
	eng := slowEngine(t, 0)
	reg := mustRegistry(t, &tenant.Config{
		Tenants: []tenant.TenantConfig{
			{Name: "acme", Keys: []string{"k-acme"}},
			{Name: "mothballed", Keys: []string{"k-mothballed"}, Disabled: true},
		},
	})
	srv, ts := newAdmissionServer(t, eng, Options{Tenants: reg})

	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/sessions", "", nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("anonymous create = %d, want 201", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/sessions", "k-acme", nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("keyed create = %d, want 201", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/sessions", "k-bogus", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key = %d, want 401", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/sessions", "k-mothballed", nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled tenant = %d, want 403", resp.StatusCode)
	}
	var b strings.Builder
	srv.Metrics().WritePrometheus(&b)
	for _, want := range []string{
		`chatgraph_auth_failures_total{reason="unknown_key"} 1`,
		`chatgraph_auth_failures_total{reason="disabled"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}

	// Anonymous disabled: a keyless request is rejected up front.
	lockedReg := mustRegistry(t, &tenant.Config{
		Tenants:   []tenant.TenantConfig{{Name: "acme", Keys: []string{"k-acme"}}},
		Anonymous: &tenant.AnonymousConfig{Disabled: true},
	})
	srv2, ts2 := newAdmissionServer(t, slowEngine(t, 0), Options{Tenants: lockedReg})
	if resp := doReq(t, http.MethodPost, ts2.URL+"/v1/sessions", "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless with anonymous disabled = %d, want 401", resp.StatusCode)
	}
	b.Reset()
	srv2.Metrics().WritePrometheus(&b)
	if !strings.Contains(b.String(), `chatgraph_auth_failures_total{reason="key_required"} 1`) {
		t.Fatalf("exposition missing key_required counter:\n%s", b.String())
	}
}

// TestCrossTenantOwnership proves sessions and jobs are invisible across
// tenant boundaries: another tenant's (or anonymous's) access to a resource
// is indistinguishable from the resource not existing — 404, absent from
// lists — so IDs cannot be probed, while the owner retains full access.
func TestCrossTenantOwnership(t *testing.T) {
	eng := slowEngine(t, 0)
	reg := mustRegistry(t, &tenant.Config{
		Tenants: []tenant.TenantConfig{
			{Name: "alpha", Keys: []string{"ka"}},
			{Name: "beta", Keys: []string{"kb"}},
		},
	})
	_, ts := newAdmissionServer(t, eng, Options{Tenants: reg})

	// Sessions.
	resp := doReqJSON(t, http.MethodPost, ts.URL+"/v1/sessions", "ka", nil)
	if resp.status != http.StatusCreated {
		t.Fatalf("alpha create = %d", resp.status)
	}
	sid := resp.body["session_id"].(string)
	for _, probe := range []struct{ key, who string }{{"kb", "beta"}, {"", "anonymous"}} {
		if r := doReq(t, http.MethodGet, ts.URL+"/v1/sessions/"+sid+"/history", probe.key, nil); r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s reading alpha's history = %d, want 404", probe.who, r.StatusCode)
		}
		if r := doReq(t, http.MethodDelete, ts.URL+"/v1/sessions/"+sid, probe.key, nil); r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s deleting alpha's session = %d, want 404", probe.who, r.StatusCode)
		}
		if r := doReq(t, http.MethodPost, ts.URL+"/v1/sessions/"+sid+"/chat", probe.key, chatBody(t)); r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s chatting on alpha's session = %d, want 404", probe.who, r.StatusCode)
		}
	}
	if ids := listSessionIDs(t, ts, "kb"); len(ids) != 0 {
		t.Fatalf("beta's session list leaks: %v", ids)
	}
	if ids := listSessionIDs(t, ts, "ka"); len(ids) != 1 || ids[0] != sid {
		t.Fatalf("alpha's session list = %v, want [%s]", ids, sid)
	}
	if r := doReq(t, http.MethodGet, ts.URL+"/v1/sessions/"+sid+"/history", "ka", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("owner reading own history = %d", r.StatusCode)
	}

	// Jobs.
	resp = doReqJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "ka", chatBody(t))
	if resp.status != http.StatusAccepted {
		t.Fatalf("alpha job submit = %d", resp.status)
	}
	jid := resp.body["job_id"].(string)
	for _, probe := range []struct{ key, who string }{{"kb", "beta"}, {"", "anonymous"}} {
		if r := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+jid, probe.key, nil); r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s reading alpha's job = %d, want 404", probe.who, r.StatusCode)
		}
		if r := doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+jid, probe.key, nil); r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s cancelling alpha's job = %d, want 404", probe.who, r.StatusCode)
		}
	}
	if r := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+jid, "ka", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("owner reading own job = %d", r.StatusCode)
	}
	jl := doReqJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "kb", nil)
	if jobsArr, ok := jl.body["jobs"].([]any); !ok || len(jobsArr) != 0 {
		t.Fatalf("beta's job list leaks: %v", jl.body["jobs"])
	}
}

// TestTenantMetricsBounded proves per-tenant label cardinality is bounded by
// configuration: every configured tenant plus anonymous gets a series, and
// traffic with unknown keys mints nothing — an attacker spraying random keys
// cannot grow the exposition.
func TestTenantMetricsBounded(t *testing.T) {
	eng := slowEngine(t, 0)
	reg := mustRegistry(t, &tenant.Config{
		Tenants: []tenant.TenantConfig{{Name: "acme", Keys: []string{"k-acme"}}},
	})
	srv, ts := newAdmissionServer(t, eng, Options{Tenants: reg})

	doReq(t, http.MethodPost, ts.URL+"/v1/sessions", "k-acme", nil)
	doReq(t, http.MethodPost, ts.URL+"/v1/sessions", "", nil)
	for i := 0; i < 5; i++ {
		sprayed := "sprayed-key-" + strconv.Itoa(i)
		if r := doReq(t, http.MethodPost, ts.URL+"/v1/sessions", sprayed, nil); r.StatusCode != http.StatusUnauthorized {
			t.Fatalf("sprayed key %d = %d, want 401", i, r.StatusCode)
		}
	}
	var b strings.Builder
	srv.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`chatgraph_tenant_requests_total{tenant="acme"} 1`,
		`chatgraph_tenant_requests_total{tenant="anonymous"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sprayed") {
		t.Fatalf("unknown keys minted tenant series:\n%s", out)
	}
	// Exactly the configured names + anonymous appear under the tenant label.
	labels := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, `tenant="`); i >= 0 && !strings.HasPrefix(line, "#") {
			rest := line[i+len(`tenant="`):]
			labels[rest[:strings.Index(rest, `"`)]] = true
		}
	}
	if len(labels) != 2 || !labels["acme"] || !labels["anonymous"] {
		t.Fatalf("tenant label values = %v, want exactly {acme, anonymous}", labels)
	}
}

// TestNoisyNeighborIsolation is the fairness acceptance test: a hostile
// tenant flooding at far beyond its share must not raise a compliant
// tenant's error rate above zero, shed a single compliant request, or blow
// its p99 past a sane bound. With anonymous disabled, capacity 8 at weights
// 3:1 partitions into guaranteed shares of exactly 6 and 2 (no slack). The
// compliant tenant keeps at most 4 chats in flight — safely under its share
// — while the hostile tenant runs 16 concurrent workers against a share of
// 2. Chats (not retrieves) carry the flood because a chat holds its
// admission slot for the engine's full service time, which is what builds
// real occupancy pressure on the gate.
func TestNoisyNeighborIsolation(t *testing.T) {
	eng := slowEngine(t, 10*time.Millisecond)
	reg := mustRegistry(t, &tenant.Config{
		Tenants: []tenant.TenantConfig{
			{Name: "compliant", Keys: []string{"ck"}, Weight: 3},
			{Name: "hostile", Keys: []string{"hk"}, Weight: 1},
		},
		Anonymous: &tenant.AnonymousConfig{Disabled: true},
	})
	_, ts := newAdmissionServer(t, eng, Options{Tenants: reg, MaxInFlight: 8})

	createSession := func(key string) string {
		resp := doReqJSON(t, http.MethodPost, ts.URL+"/v1/sessions", key, nil)
		if resp.status != http.StatusCreated {
			t.Fatalf("create session for %s = %d", key, resp.status)
		}
		return resp.body["session_id"].(string)
	}
	body := chatBody(t)

	// All 16 hostile workers hammer one session: admitted chats serialize on
	// the session lock while still occupying their admission slots, so the
	// hostile tenant's in-flight count is pinned at its ceiling throughout.
	hostileSession := createSession("hk")
	stop := make(chan struct{})
	var hostileShed, hostileSent atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp := doReq(t, http.MethodPost, ts.URL+"/v1/sessions/"+hostileSession+"/chat", "hk", body)
				hostileSent.Add(1)
				if resp.StatusCode == http.StatusTooManyRequests {
					hostileShed.Add(1)
				}
			}
		}()
	}

	var latMu sync.Mutex
	var compliantLat []time.Duration
	var compliantShed, compliantErr atomic.Int64
	deadline := time.Now().Add(700 * time.Millisecond)
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		sid := createSession("ck")
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				resp := doReq(t, http.MethodPost, ts.URL+"/v1/sessions/"+sid+"/chat", "ck", body)
				elapsed := time.Since(start)
				switch {
				case resp.StatusCode == http.StatusOK:
					latMu.Lock()
					compliantLat = append(compliantLat, elapsed)
					latMu.Unlock()
				case resp.StatusCode == http.StatusTooManyRequests:
					compliantShed.Add(1)
				default:
					compliantErr.Add(1)
				}
			}
		}()
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	if compliantErr.Load() != 0 {
		t.Fatalf("compliant tenant saw %d errors under hostile flood", compliantErr.Load())
	}
	if compliantShed.Load() != 0 {
		t.Fatalf("compliant tenant below its guaranteed share was shed %d times", compliantShed.Load())
	}
	if len(compliantLat) == 0 {
		t.Fatal("compliant tenant completed no requests")
	}
	if hostileShed.Load() == 0 {
		t.Fatalf("hostile tenant was never shed (sent %d) — the flood produced no pressure, so the test proves nothing", hostileSent.Load())
	}
	sort.Slice(compliantLat, func(i, j int) bool { return compliantLat[i] < compliantLat[j] })
	p99 := compliantLat[(len(compliantLat)*99)/100]
	if p99 > 2*time.Second {
		t.Fatalf("compliant p99 = %v under hostile flood, want < 2s", p99)
	}
}

// jsonResp is a decoded response for the ownership assertions.
type jsonResp struct {
	status int
	body   map[string]any
}

func doReqJSON(t *testing.T, method, url, key string, body []byte) jsonResp {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set(APIKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := jsonResp{status: resp.StatusCode, body: map[string]any{}}
	json.NewDecoder(resp.Body).Decode(&out.body) //nolint:errcheck // error bodies may be empty
	return out
}

func listSessionIDs(t *testing.T, ts *httptest.Server, key string) []string {
	t.Helper()
	resp := doReqJSON(t, http.MethodGet, ts.URL+"/v1/sessions", key, nil)
	if resp.status != http.StatusOK {
		t.Fatalf("session list = %d", resp.status)
	}
	var ids []string
	if arr, ok := resp.body["sessions"].([]any); ok {
		for _, v := range arr {
			if m, ok := v.(map[string]any); ok {
				ids = append(ids, m["session_id"].(string))
			}
		}
	}
	return ids
}
