package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

func deleteSession(t *testing.T, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, testServer(t).URL+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
}

func chatAnswer(t *testing.T, sessionID, question string, gj []byte) ChatResponse {
	t.Helper()
	resp := postSessionChat(t, sessionID, "", ChatRequest{Question: question, Graph: gj})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status = %d", resp.StatusCode)
	}
	var cr ChatResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// TestReuploadAfterSessionDeleteNoStaleCrossTalk is the regression test for
// the pointer-keyed cache hazard: with pointer keys, a session's graph
// could be freed and a later upload could (in principle) reuse its address,
// aliasing stale entries. Content keys make the scenario well-defined:
// re-uploading the same content after the owning session is deleted must
// HIT (same answer, served from cache), and uploading different content
// must never see the dead session's entries.
func TestReuploadAfterSessionDeleteNoStaleCrossTalk(t *testing.T) {
	gj1 := socialGraphJSON(t, 21)
	gj2 := socialGraphJSON(t, 22)
	const q = "Summarize the statistics of the graph"

	s1 := createSession(t)
	answer1 := chatAnswer(t, s1.SessionID, q, gj1).Answer
	deleteSession(t, s1.SessionID)

	// Different content in a fresh session: no cross-talk with the deleted
	// session's cached results.
	s2 := createSession(t)
	if a := chatAnswer(t, s2.SessionID, q, gj2).Answer; a == answer1 {
		t.Fatal("different graph content produced the deleted session's answer")
	}

	// Same content re-uploaded: identical answer, and the invoke cache
	// served it (hits advanced, misses did not).
	hitsBefore, missesBefore := srvEngine.Env().Cache.Counters()
	s3 := createSession(t)
	if a := chatAnswer(t, s3.SessionID, q, gj1).Answer; a != answer1 {
		t.Fatalf("re-upload after delete changed the answer:\n%q\nvs\n%q", a, answer1)
	}
	hits, misses := srvEngine.Env().Cache.Counters()
	if hits <= hitsBefore {
		t.Fatalf("re-upload did not hit the invoke cache (hits %d → %d)", hitsBefore, hits)
	}
	if misses != missesBefore {
		t.Fatalf("re-upload of identical content missed (misses %d → %d)", missesBefore, misses)
	}
}

// TestUploadsInternToOneInstance: two sessions uploading the same payload
// share one graph instance in the engine store.
func TestUploadsInternToOneInstance(t *testing.T) {
	gj := socialGraphJSON(t, 31)
	const q = "Is the network connected?"
	a := createSession(t)
	b := createSession(t)
	chatAnswer(t, a.SessionID, q, gj)
	hitsBefore, _ := srvEngine.Graphs().Counters()
	chatAnswer(t, b.SessionID, q, gj)
	if hits, _ := srvEngine.Graphs().Counters(); hits <= hitsBefore {
		t.Fatalf("second upload did not intern-hit (hits %d → %d)", hitsBefore, hits)
	}
	g, err := graph.ParseJSON(gj)
	if err != nil {
		t.Fatal(err)
	}
	interned, ok := srvEngine.Graphs().Lookup(g.ContentHash())
	if !ok {
		t.Fatal("uploaded content not in the store")
	}
	if !interned.Shared() {
		t.Fatal("interned graph not marked shared")
	}
}

// stripTimings removes every elapsed_ms field so wall-clock noise does not
// defeat the byte-identity comparison.
func stripTimings(v any) any {
	switch x := v.(type) {
	case map[string]any:
		delete(x, "elapsed_ms")
		for k, val := range x {
			x[k] = stripTimings(val)
		}
	case []any:
		for i := range x {
			x[i] = stripTimings(x[i])
		}
	}
	return v
}

func canonicalResponse(t *testing.T, body []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode response: %v\n%s", err, body)
	}
	out, err := json.Marshal(stripTimings(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func parityEngine(t *testing.T, seed int64) *core.Engine {
	t.Helper()
	env := &apis.Env{}
	reg := apis.Default(env)
	core.SeedMoleculeDB(env, 20, rand.New(rand.NewSource(seed)))
	eng, err := core.NewEngine(core.Config{Registry: reg, Env: env, TrainSeed: seed, TrainExamples: 150})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestInternParity: the same request sequence against two identically
// seeded engines — one interning uploads, one not — must produce
// byte-identical chat responses (modulo wall-clock timings). Interning is a
// cache layer; it must never be observable in answers, chains, or events.
func TestInternParity(t *testing.T) {
	interned := httptest.NewServer(New(parityEngine(t, 77), Options{}).Handler())
	defer interned.Close()
	plain := httptest.NewServer(New(parityEngine(t, 77), Options{DisableGraphIntern: true}).Handler())
	defer plain.Close()

	social, err := json.Marshal(graph.PlantedCommunities(2, 8, 0.7, 0.1, rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	kg, err := json.Marshal(graph.KnowledgeGraph(10, 18, rand.New(rand.NewSource(6))))
	if err != nil {
		t.Fatal(err)
	}
	requests := []ChatRequest{
		{Question: "Summarize the statistics of the graph", Graph: social},
		{Question: "Summarize the statistics of the graph", Graph: social}, // re-upload: cache hit on one side
		{Question: "Is the network connected?", Graph: social},
		{Question: "Clean G", Graph: kg}, // cleaning chain may mutate → clone path
		{Question: "Clean G", Graph: kg}, // re-upload after a mutating chain
	}
	for i, req := range requests {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var got [2][]byte
		for j, base := range []string{interned.URL, plain.URL} {
			resp, err := http.Post(base+"/chat", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw := new(bytes.Buffer)
			if _, err := raw.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d to server %d: status %d: %s", i, j, resp.StatusCode, raw.Bytes())
			}
			got[j] = canonicalResponse(t, raw.Bytes())
		}
		if !bytes.Equal(got[0], got[1]) {
			t.Fatalf("request %d: interned and non-interned responses differ:\n%s\nvs\n%s", i, got[0], got[1])
		}
	}
}

// TestConcurrentInternedChats hammers the interning path end to end under
// -race: many sessions re-uploading the same payload (plus a few distinct
// ones) chat concurrently; every response for the same (question, graph)
// pair must agree.
func TestConcurrentInternedChats(t *testing.T) {
	const workers = 8
	payloads := [][]byte{socialGraphJSON(t, 41), socialGraphJSON(t, 42)}
	sessions := make([]SessionInfo, workers)
	for i := range sessions {
		sessions[i] = createSession(t)
	}
	answers := make(map[string]map[string]bool) // payload idx+question → answers seen
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				pi := (w + i) % len(payloads)
				q := "Summarize the statistics of the graph"
				cr := chatAnswer(t, sessions[w].SessionID, q, payloads[pi])
				if cr.Answer == "" {
					t.Errorf("empty answer for payload %d", pi)
					return
				}
				key := fmt.Sprintf("%d/%s", pi, q)
				mu.Lock()
				if answers[key] == nil {
					answers[key] = make(map[string]bool)
				}
				answers[key][cr.Answer] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for key, set := range answers {
		if len(set) != 1 {
			t.Fatalf("%s produced %d distinct answers", key, len(set))
		}
	}
}
