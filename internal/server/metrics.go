package server

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"chatgraph/internal/metrics"
)

// httpMetrics holds the server's pre-resolved metric handles: everything the
// per-request path touches is created once here, so handlers pay atomics
// only, never a registry lookup.
type httpMetrics struct {
	reg *metrics.Registry
	// inFlight counts requests inside any instrumented handler.
	inFlight *metrics.Gauge
	// gatedInFlight counts requests currently admitted past the max-in-flight
	// gate — the value the cap is enforced against.
	gatedInFlight  *metrics.Gauge
	shedInFlight   *metrics.Counter
	shedRate       *metrics.Counter
	shedTenantRate *metrics.Counter
	shedRPS        *metrics.Counter
	routes         map[string]*routeMetrics
}

// routeMetrics is one route's instrument set: a latency histogram plus one
// counter per status class (1xx..5xx), resolved at registration time.
type routeMetrics struct {
	classes  [6]*metrics.Counter
	duration *metrics.Histogram
}

var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

func newHTTPMetrics(reg *metrics.Registry) *httpMetrics {
	return &httpMetrics{
		reg: reg,
		inFlight: reg.Gauge("chatgraph_http_in_flight",
			"Requests currently being served.", nil),
		gatedInFlight: reg.Gauge("chatgraph_http_gated_in_flight",
			"Requests admitted past the max-in-flight gate and still running.", nil),
		shedInFlight: reg.Counter("chatgraph_http_shed_total",
			"Requests shed with 429.", metrics.Labels{"reason": "in_flight"}),
		shedRate: reg.Counter("chatgraph_http_shed_total",
			"Requests shed with 429.", metrics.Labels{"reason": "session_rate"}),
		shedTenantRate: reg.Counter("chatgraph_http_shed_total",
			"Requests shed with 429.", metrics.Labels{"reason": "tenant_rate"}),
		shedRPS: reg.Counter("chatgraph_http_shed_total",
			"Requests shed with 429.", metrics.Labels{"reason": "max_rps"}),
		routes: make(map[string]*routeMetrics),
	}
}

// route registers (or returns) the instrument set for one route name. Called
// only while the Handler route table is built.
func (hm *httpMetrics) route(name string) *routeMetrics {
	if rm, ok := hm.routes[name]; ok {
		return rm
	}
	rm := &routeMetrics{
		duration: hm.reg.Histogram("chatgraph_http_request_duration_seconds",
			"Request latency by route.", metrics.DefBuckets, metrics.Labels{"route": name}),
	}
	for class := 1; class <= 5; class++ {
		rm.classes[class] = hm.reg.Counter("chatgraph_http_requests_total",
			"Requests by route and status class.",
			metrics.Labels{"route": name, "class": statusClasses[class]})
	}
	hm.routes[name] = rm
	return rm
}

// statusWriter captures the response status for the class counter while
// passing Flush through so NDJSON streaming keeps working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps h with the per-route request counter, latency histogram,
// and the process-wide in-flight gauge.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	rm := s.hm.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hm.inFlight.Inc()
		defer s.hm.inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		rm.duration.Observe(time.Since(start).Seconds())
		class := sw.status / 100
		if class < 1 || class > 5 {
			class = 2 // a handler that never wrote implies an implicit 200
		}
		rm.classes[class].Inc()
	})
}

// admission gates h behind the server's overload policy: API-key → tenant
// resolution (401/403), the weighted-fair in-flight gate that partitions
// MaxInFlight into per-tenant guaranteed shares, the tenant's rate bucket,
// the global MaxRPS bucket, and a per-request context deadline so a stuck
// chain cannot pin a session lock forever. Every 429 carries a Retry-After
// derived from the actual refill time (minimum 1s). Health and metrics
// routes are never gated — an overloaded server must still report that it
// is overloaded.
func (s *Server) admission(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// A server mid-recovery refuses work outright: its session and job
		// state is still being rebuilt, so admitting a request would answer
		// from a half-restored world.
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusServiceUnavailable, "server recovering, retry later")
			return
		}
		r, release, ts, ok := s.tenantAdmission(w, r)
		if !ok {
			return
		}
		defer release()
		// The gauge tracks total admitted occupancy across tenants — the
		// value the old single semaphore enforced, kept for dashboards.
		s.hm.gatedInFlight.Inc()
		defer s.hm.gatedInFlight.Dec()
		if rate := s.opts.MaxRPS; rate > 0 {
			// Burst is ~a quarter second of budget so short arrival spikes
			// ride through while the sustained rate holds at the cap.
			burst := math.Max(1, math.Ceil(rate/4))
			if ok, retry := s.globalBucket.take(rate, burst, time.Now()); !ok {
				s.hm.shedRPS.Inc()
				setRetryAfter(w, retry)
				writeError(w, r, http.StatusTooManyRequests, "server rate capacity exceeded, retry later")
				return
			}
		}
		if t := s.opts.RequestTimeout; t > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), t)
			defer cancel()
			r = r.WithContext(ctx)
		}
		start := time.Now()
		next(w, r)
		ts.duration.Observe(time.Since(start).Seconds())
	}
}

// retryAfterSecs rounds a bucket refill wait up to the integer seconds an
// HTTP Retry-After header carries, never below 1 — every shed path goes
// through this one rounding so all 429 layers agree.
func retryAfterSecs(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// setRetryAfter stamps the unified Retry-After header for a shed reply.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(d)))
}

// tokenBucket is a classic continuous-refill rate limiter; one lives on each
// managed session. The mutex is per-session, so concurrent chats on
// different sessions never contend.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	primed bool
}

// take removes one token, refilling at rate tokens/sec up to burst. When the
// bucket is empty it reports how long until a token is available.
func (b *tokenBucket) take(rate, burst float64, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		b.tokens = burst
		b.last = now
		b.primed = true
	}
	// Refill and advance the clock only for forward time: now is read
	// before the mutex is taken, so a late-arriving earlier timestamp must
	// not rewind last (that would refill the same interval twice).
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(burst, b.tokens+elapsed*rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}

// sessionBurst resolves the configured burst: default is one second's worth
// of tokens, never less than 1.
func (s *Server) sessionBurst() float64 {
	if s.opts.SessionBurst > 0 {
		return float64(s.opts.SessionBurst)
	}
	return math.Max(1, math.Ceil(s.opts.SessionRate))
}

// rateLimit applies the session-scoped token bucket b, writing the 429
// itself when the budget is spent. A zero SessionRate disables limiting.
// The bucket is passed in rather than pulled off a managed session so the
// legacy shared conversation's bucket rides the same arithmetic (and the
// same Retry-After rounding) as the v1 per-session buckets.
func (s *Server) rateLimit(w http.ResponseWriter, r *http.Request, b *tokenBucket) (ok bool) {
	if s.opts.SessionRate <= 0 {
		return true
	}
	allowed, retry := b.take(s.opts.SessionRate, s.sessionBurst(), time.Now())
	if allowed {
		return true
	}
	s.hm.shedRate.Inc()
	setRetryAfter(w, retry)
	writeError(w, r, http.StatusTooManyRequests, "session rate limit exceeded, retry later")
	return false
}
