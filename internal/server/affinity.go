package server

import (
	"encoding/json"
	"strings"

	"chatgraph/internal/graph"
)

// This file is the routing contract shared between the server and the
// chatgraph-router proxy tier (internal/cluster). The router never imports
// the engine — it imports these helpers so that what the proxy believes
// about a route (which backend owns it, whether a failed attempt may be
// retried on another hop) is defined next to the handlers that implement
// the route, and pinned against the server's route table by a test.

// AffinityClass says which backend in a cluster may serve a route.
type AffinityClass int

const (
	// AffinityNone routes may be served by any healthy backend: they touch
	// only engine-immutable state (retrieval index, API registry, config).
	AffinityNone AffinityClass = iota
	// AffinitySession routes must reach the backend that owns the session
	// named in the path (conversation state is not replicated). An empty
	// Key marks session creation: the id does not exist yet, so the caller
	// mints one and derives the owner from it.
	AffinitySession
	// AffinityJob routes must reach the backend that owns the job named in
	// the path. An empty Key marks job submission.
	AffinityJob
	// AffinityUpload routes carry an optional graph upload and no path
	// identity: placement should follow the graph's content hash so
	// identical interned graphs concentrate on one shard.
	AffinityUpload
	// AffinityFanout routes aggregate state that lives on every backend
	// (list endpoints); a cluster tier answers them by merging per-backend
	// responses.
	AffinityFanout
)

// String names the class for logs and metrics labels.
func (c AffinityClass) String() string {
	switch c {
	case AffinitySession:
		return "session"
	case AffinityJob:
		return "job"
	case AffinityUpload:
		return "upload"
	case AffinityFanout:
		return "fanout"
	default:
		return "none"
	}
}

// RouteAffinity is one route's cluster-routing contract.
type RouteAffinity struct {
	Class AffinityClass
	// Key is the identity extracted from the path (session or job id);
	// empty for create/submit routes and for keyless classes.
	Key string
	// Idempotent reports whether a failed attempt may be replayed against
	// another backend. Chat and submission POSTs are never idempotent: the
	// first attempt may have executed before the connection died, and
	// replaying it would double-run the chain.
	Idempotent bool
}

// ClassifyRoute maps one request (method, URL path) onto its routing
// contract. Unknown paths classify as AffinityNone and non-idempotent, the
// conservative default: any backend may 404 them, and nothing retries.
func ClassifyRoute(method, path string) RouteAffinity {
	switch {
	case path == "/v1/sessions":
		if method == "GET" {
			return RouteAffinity{Class: AffinityFanout, Idempotent: true}
		}
		// POST: creation — the id is minted by the caller or the backend.
		return RouteAffinity{Class: AffinitySession}
	case strings.HasPrefix(path, "/v1/sessions/"):
		rest := strings.TrimPrefix(path, "/v1/sessions/")
		id, sub, _ := strings.Cut(rest, "/")
		// Chat executes a chain (side effects, rate-limit tokens); history
		// and delete are safe to replay — though all of them are bound to
		// the one owning backend regardless.
		idem := !(method == "POST" && sub == "chat")
		return RouteAffinity{Class: AffinitySession, Key: id, Idempotent: idem}
	case path == "/v1/jobs":
		if method == "GET" {
			return RouteAffinity{Class: AffinityFanout, Idempotent: true}
		}
		return RouteAffinity{Class: AffinityJob}
	case strings.HasPrefix(path, "/v1/jobs/"):
		id := strings.TrimPrefix(path, "/v1/jobs/")
		// GET polls; DELETE cancel is idempotent by contract (terminal
		// cancels echo the settled state).
		return RouteAffinity{Class: AffinityJob, Key: id, Idempotent: true}
	case path == "/v1/retrieve":
		// Stateless read over the engine-immutable index: any backend,
		// retry freely.
		return RouteAffinity{Class: AffinityNone, Idempotent: true}
	case path == "/chat":
		// The legacy shared conversation is per-backend state, but clients
		// of the legacy endpoint never had cross-request continuity
		// guarantees; place by uploaded content so repeat uploads hit one
		// shard's caches. Never retried: the chain may have run.
		return RouteAffinity{Class: AffinityUpload}
	case path == "/apis" || path == "/suggest" || path == "/config" || path == "/healthz" || path == "/readyz":
		return RouteAffinity{Class: AffinityNone, Idempotent: true}
	default:
		return RouteAffinity{}
	}
}

// uploadBody is the slice of the chat/job POST schema placement cares
// about: both ChatRequest and JobRequest carry the uploaded graph under the
// same field name.
type uploadBody struct {
	Graph json.RawMessage `json:"graph"`
}

// UploadContentKey extracts the content-hash routing key from a chat or job
// POST body: the canonical ContentHash of the uploaded graph, the same
// identity the graphstore interns by, so a cluster tier concentrates
// identical (even permuted-but-isomorphic-identical) uploads onto one
// shard. ok is false when the body has no parseable graph — the request
// then has no content identity and the caller falls back to spreading it.
//
// The hash is computed with this process's own seed, so the key is only
// meaningful within one router process — which is all placement needs: the
// same router sends the same content to the same shard.
func UploadContentKey(body []byte) (string, bool) {
	var req uploadBody
	if err := json.Unmarshal(body, &req); err != nil || len(req.Graph) == 0 {
		return "", false
	}
	g, err := graph.ParseJSON(req.Graph)
	if err != nil {
		return "", false
	}
	return g.ContentHash().String(), true
}
