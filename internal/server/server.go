// Package server exposes a ChatGraph session over HTTP with JSON endpoints
// mirroring the three panels of the paper's Gradio interface (Fig. 2):
// the dialog (POST /chat), the suggested questions (GET /suggest), and graph
// upload (the graph travels inline in the /chat payload). GET /apis lists
// the registry for the configuration view (Fig. 3).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"chatgraph/internal/config"
	"chatgraph/internal/core"
	"chatgraph/internal/graph"
)

// Server wraps a Session with HTTP handlers. A mutex serializes Ask calls
// because a chat session is a single conversation.
type Server struct {
	mu   sync.Mutex
	sess *core.Session
}

// New returns a Server over sess.
func New(sess *core.Session) *Server {
	return &Server{sess: sess}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/chat", s.handleChat)
	mux.HandleFunc("/apis", s.handleAPIs)
	mux.HandleFunc("/suggest", s.handleSuggest)
	mux.HandleFunc("/config", s.handleConfig)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// ChatRequest is the /chat payload.
type ChatRequest struct {
	Question string `json:"question"`
	// Graph is the uploaded graph in the graph JSON wire format (optional).
	Graph json.RawMessage `json:"graph,omitempty"`
}

// ChatEvent is one execution progress entry in the response.
type ChatEvent struct {
	Type      string `json:"type"`
	Step      string `json:"step,omitempty"`
	Text      string `json:"text,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// ChatResponse is the /chat reply.
type ChatResponse struct {
	Answer    string      `json:"answer"`
	Chain     string      `json:"chain"`
	Kind      string      `json:"kind"`
	Events    []ChatEvent `json:"events"`
	ElapsedMS int64       `json:"elapsed_ms"`
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ChatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if req.Question == "" {
		writeError(w, http.StatusBadRequest, "question is required")
		return
	}
	var g *graph.Graph
	if len(req.Graph) > 0 {
		var err error
		g, err = graph.ParseJSON(req.Graph)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad graph: %v", err))
			return
		}
	}
	s.mu.Lock()
	turn, err := s.sess.Ask(r.Context(), req.Question, g, core.AskOptions{})
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := ChatResponse{
		Answer:    turn.Answer,
		Chain:     turn.Chain.String(),
		Kind:      turn.Kind.String(),
		ElapsedMS: turn.Elapsed.Milliseconds(),
	}
	for _, e := range turn.Events {
		ce := ChatEvent{Type: e.Type.String(), Text: e.Text, ElapsedMS: e.Elapsed.Milliseconds()}
		if e.StepIndex >= 0 {
			ce.Step = e.Step.String()
		}
		if e.Err != nil {
			ce.Text = e.Err.Error()
		}
		resp.Events = append(resp.Events, ce)
	}
	writeJSON(w, http.StatusOK, resp)
}

// APIInfo is one /apis entry.
type APIInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Category    string `json:"category"`
}

func (s *Server) handleAPIs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var out []APIInfo
	for _, a := range s.sess.Registry().All() {
		out = append(out, APIInfo{Name: a.Name, Description: a.Description, Category: a.Category})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	kind := graph.KindUnknown
	switch r.URL.Query().Get("kind") {
	case "social":
		kind = graph.KindSocial
	case "molecule":
		kind = graph.KindMolecule
	case "knowledge":
		kind = graph.KindKnowledge
	}
	writeJSON(w, http.StatusOK, map[string][]string{"questions": core.SuggestedQuestions(kind)})
}

// handleConfig exposes the Fig. 3 parameter panel: the configuration the
// session was built with (defaults when the session was assembled in code).
func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if fc := s.sess.FileConfig(); fc != nil {
		writeJSON(w, http.StatusOK, fc)
		return
	}
	writeJSON(w, http.StatusOK, config.Default())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once status is written
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// ListenAndServe runs the server until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
