// Package server exposes a shared ChatGraph engine over HTTP. The v1 REST
// surface is multi-session: POST /v1/sessions mints a conversation, each
// conversation chats at POST /v1/sessions/{id}/chat (add ?stream=1 for
// NDJSON progress streaming), reads its dialog at GET
// /v1/sessions/{id}/history, and ends at DELETE /v1/sessions/{id}. Sessions
// idle past the manager's TTL expire automatically. Chains too heavy for
// the per-request deadline run asynchronously: POST /v1/jobs accepts the
// same chat payload (plus an optional pinned chain and priority), GET
// /v1/jobs/{id} polls status and result (?stream=1 tails progress events
// as NDJSON, live or replayed), and DELETE /v1/jobs/{id} cancels. The single-conversation
// endpoints mirroring the paper's Gradio panels (Fig. 2/3) remain: POST
// /chat (one shared legacy conversation), GET /suggest, GET /apis,
// GET /config, GET /healthz. All state shared between conversations lives
// in the immutable core.Engine, so handlers lock per session only and N
// users chat concurrently.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"chatgraph/internal/config"
	"chatgraph/internal/core"
	"chatgraph/internal/durable"
	"chatgraph/internal/executor"
	"chatgraph/internal/graph"
	"chatgraph/internal/jobs"
	"chatgraph/internal/metrics"
	"chatgraph/internal/tenant"
)

// Options tunes the server.
type Options struct {
	// SessionTTL is how long an idle session lives (0 → DefaultSessionTTL).
	SessionTTL time.Duration
	// MaxSessions caps live sessions (0 → DefaultMaxSessions).
	MaxSessions int
	// Metrics is the registry the server-layer series (HTTP middleware,
	// shedding, session gauges) instrument into, and the one GET /metrics
	// serves. nil → metrics.Default(). The engine, executor, and
	// invoke-cache series always live in metrics.Default() — they describe
	// the process, not one server — so pass a custom registry only to
	// isolate the server-layer series (tests do); production servers should
	// leave it nil so one scrape sees everything.
	Metrics *metrics.Registry
	// MaxInFlight caps concurrently admitted requests on the gated routes
	// (chat, retrieve, session CRUD); excess load is shed with 429 +
	// Retry-After. 0 disables the gate.
	MaxInFlight int
	// MaxRPS caps the aggregate admitted request rate on the gated routes
	// via a global token bucket; excess load is shed with 429 +
	// Retry-After. This is how a replica declares its provisioned capacity
	// to a fronting router tier: the router spreads load, each backend
	// enforces its own budget. 0 disables the cap.
	MaxRPS float64
	// SessionRate is the per-session token-bucket refill rate in requests
	// per second for chat; 0 disables rate limiting.
	SessionRate float64
	// SessionBurst is the token-bucket capacity (0 → one second's worth of
	// tokens, minimum 1).
	SessionBurst int
	// RequestTimeout bounds one gated request's lifetime via a context
	// deadline; expired chats answer 504. 0 disables the deadline.
	RequestTimeout time.Duration
	// DisableGraphIntern bypasses the engine's graph store, so every upload
	// keeps its private *graph.Graph (pre-interning behavior). Parity tests
	// use it; production servers should leave interning on.
	DisableGraphIntern bool
	// JobWorkers sizes the async job worker pool (0 → jobs.DefaultWorkers).
	JobWorkers int
	// JobQueue caps queued (not yet running) jobs; a full queue sheds
	// POST /v1/jobs with 429 (0 → jobs.DefaultQueueDepth).
	JobQueue int
	// JobRetention is how long finished jobs stay queryable (0 →
	// jobs.DefaultRetention).
	JobRetention time.Duration
	// Durable, when set, persists session lifecycle, transcripts, uploaded
	// graphs, and job records through the WAL + snapshot store, and the
	// server boots not-ready (/readyz 503, gated routes shed) until the
	// caller completes recovery with Recover — which must be called even
	// when the recovered state is empty.
	Durable *durable.Store
	// Tenants is the multi-tenant admission registry (API-key resolution,
	// per-tenant quotas, weighted-fair shares over MaxInFlight). nil means
	// single-tenant: everything runs as the anonymous tenant with no key
	// checking, and admission behaves like the pre-tenancy global
	// semaphore. The server calls SetCapacity(MaxInFlight) on it at
	// construction; don't share one registry across servers.
	Tenants *tenant.Registry
}

// Server routes HTTP traffic onto a shared core.Engine. Conversation state
// lives in per-session objects managed by the SessionManager; the engine
// itself is immutable, so no server-wide lock exists on the chat path.
type Server struct {
	eng  *core.Engine
	mgr  *SessionManager
	opts Options
	hm   *httpMetrics
	// jobs is the async execution pool behind the /v1/jobs surface.
	jobs *jobs.Manager
	// legacy backs the pre-v1 single-conversation POST /chat endpoint.
	legacy *core.Session
	// ready gates traffic during boot recovery: false answers /readyz with
	// 503 and sheds the admission-gated routes. Servers without a durable
	// store are born ready.
	ready atomic.Bool
	// globalBucket enforces Options.MaxRPS across every gated route.
	globalBucket tokenBucket
	// legacyBucket rate-limits the shared legacy /chat conversation under
	// the same SessionRate/SessionBurst arithmetic as v1 sessions.
	legacyBucket tokenBucket
	// tenants resolves API keys and runs the weighted-fair gate; tm holds
	// the per-tenant metric handles (bounded label set).
	tenants *tenant.Registry
	tm      *tenantMetrics
}

// New returns a Server over eng.
func New(eng *core.Engine, opts Options) *Server {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	s := &Server{
		eng:     eng,
		mgr:     NewSessionManager(eng, opts.SessionTTL, opts.MaxSessions),
		opts:    opts,
		hm:      newHTTPMetrics(reg),
		legacy:  eng.NewSession(),
		tenants: opts.Tenants,
	}
	if s.tenants == nil {
		// Single-tenant default: anonymous only, unlimited quota — the
		// fair gate then degenerates to the plain MaxInFlight semaphore.
		s.tenants, _ = tenant.New(nil)
	}
	s.tenants.SetCapacity(opts.MaxInFlight)
	s.tm = newTenantMetrics(reg, s.tenants)
	// The job pool's terminal hook needs s, so the pool is built after the
	// struct (onJobTerminal no-ops when no durable store is configured).
	s.jobs = jobs.New(jobs.Options{
		Workers:    opts.JobWorkers,
		QueueDepth: opts.JobQueue,
		Retention:  opts.JobRetention,
		Metrics:    reg,
		OnTerminal: s.onJobTerminal,
	})
	// With durability on, the server refuses traffic until Recover has
	// replayed the persisted state into it.
	s.ready.Store(opts.Durable == nil)
	// Session gauges read the manager's own bookkeeping at scrape time — no
	// extra work on the session hot path.
	reg.GaugeFunc("chatgraph_sessions_live",
		"Live (unexpired) v1 sessions.", nil,
		func() float64 { return float64(s.mgr.Len()) })
	reg.CounterFunc("chatgraph_sessions_created_total",
		"v1 sessions ever created.", nil,
		func() float64 { return float64(s.mgr.created.Load()) })
	reg.CounterFunc("chatgraph_sessions_expired_total",
		"v1 sessions evicted by TTL expiry.", nil,
		func() float64 { return float64(s.mgr.expired.Load()) })
	reg.CounterFunc("chatgraph_sessions_deleted_total",
		"v1 sessions explicitly deleted.", nil,
		func() float64 { return float64(s.mgr.deleted.Load()) })
	reg.CounterFunc("chatgraph_sessions_restored_total",
		"v1 sessions rebuilt from the durable log at boot.", nil,
		func() float64 { return float64(s.mgr.restored.Load()) })
	return s
}

// Metrics returns the registry the server instruments into.
func (s *Server) Metrics() *metrics.Registry { return s.hm.reg }

// Sessions exposes the session manager (daemons wire flags and sweepers to
// it; tests inspect it).
func (s *Server) Sessions() *SessionManager { return s.mgr }

// Jobs exposes the async job pool (daemons wire sweepers to it; tests
// inspect it).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close stops the async job pool: queued jobs are cancelled, running jobs
// have their contexts cancelled, and Close returns once every worker has
// exited. Call it after draining HTTP traffic.
func (s *Server) Close() { s.jobs.Close() }

// Handler returns the route table wrapped with request-ID tagging. Every
// route is instrumented (request counter, latency histogram, in-flight
// gauge) under a stable low-cardinality route name; the heavy routes are
// additionally gated by the admission policy (max-in-flight shedding and
// the per-request deadline). /healthz and /metrics bypass the gate so an
// overloaded server still reports that it is overloaded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc, gated bool) {
		if gated {
			h = s.admission(h)
		}
		mux.Handle(pattern, s.instrument(route, h))
	}
	// v1 multi-session surface.
	handle("POST /v1/sessions", "v1.sessions.create", s.handleSessionCreate, true)
	handle("GET /v1/sessions", "v1.sessions.list", s.handleSessionList, true)
	handle("DELETE /v1/sessions/{id}", "v1.sessions.delete", s.handleSessionDelete, true)
	handle("POST /v1/sessions/{id}/chat", "v1.chat", s.handleSessionChat, true)
	handle("GET /v1/sessions/{id}/history", "v1.history", s.handleSessionHistory, true)
	handle("POST /v1/retrieve", "v1.retrieve", s.handleRetrieve, true)
	// Async job surface. Submission and listing are admission-gated like
	// the other heavy routes (the per-request deadline only bounds the
	// enqueue, never the job); status, streaming, and cancel are not —
	// a long NDJSON tail must outlive RequestTimeout, and cancelling must
	// work on an overloaded server.
	handle("POST /v1/jobs", "v1.jobs.create", s.handleJobCreate, true)
	handle("GET /v1/jobs", "v1.jobs.list", s.handleJobList, true)
	handle("GET /v1/jobs/{id}", "v1.jobs.get", s.handleJobGet, false)
	handle("DELETE /v1/jobs/{id}", "v1.jobs.cancel", s.handleJobCancel, false)
	// Legacy single-conversation surface.
	handle("/chat", "chat", s.handleChat, true)
	handle("/apis", "apis", s.handleAPIs, false)
	handle("/suggest", "suggest", s.handleSuggest, false)
	handle("/config", "config", s.handleConfig, false)
	handle("/healthz", "healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}, false)
	// Readiness is distinct from liveness: a recovering server is alive
	// (healthz 200) but not ready (readyz 503), so orchestrators and load
	// generators wait for replay instead of hammering a server that sheds.
	// Like the other probe routes, readyz bypasses the admission gate.
	handle("GET /readyz", "readyz", s.handleReadyz, false)
	mux.Handle("GET /metrics", s.instrument("metrics", s.hm.reg.Handler()))
	return withRequestID(mux)
}

// requestIDKey carries the per-request correlation ID in the context.
type requestIDKey struct{}

// withRequestID tags every request with a random correlation ID, echoed in
// the X-Request-ID response header and in error JSON.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = randomHex(8)
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// SessionInfo describes one live session on the wire.
type SessionInfo struct {
	SessionID string    `json:"session_id"`
	CreatedAt time.Time `json:"created_at"`
	ExpiresAt time.Time `json:"expires_at"`
	Turns     int       `json:"turns"`
}

func (s *Server) sessionInfo(m *managed) SessionInfo {
	return SessionInfo{
		SessionID: m.ID,
		CreatedAt: m.Created,
		ExpiresAt: m.idleSince().Add(s.mgr.TTL()),
		Turns:     len(m.Session.History()),
	}
}

// SessionCreateRequest is the optional POST /v1/sessions body. SessionID
// pins the new session's identity — the cluster router mints the ID so the
// rendezvous hash of session id → backend lands every later request on the
// creating backend. Plain clients send no body and get a minted ID.
type SessionCreateRequest struct {
	SessionID string `json:"session_id,omitempty"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	if r.Body != nil {
		// An empty body is the common case and not an error; anything
		// present must parse.
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<10)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
			return
		}
	}
	m, err := s.mgr.CreateWithID(req.SessionID, s.currentTenant(r).Name)
	switch {
	case errors.Is(err, ErrBadID):
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrSessionExists):
		writeError(w, r, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.logSessionCreate(m)
	writeJSON(w, http.StatusCreated, s.sessionInfo(m))
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.mgr.Sweep()
	tn := s.currentTenant(r)
	out := []SessionInfo{}
	s.mgr.sessions.Range(func(_, value any) bool {
		if m := value.(*managed); ownedBy(m.Tenant, tn) {
			out = append(out, s.sessionInfo(m))
		}
		return true
	})
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// getOwnedSession fetches a live session and checks the caller's tenant
// owns it, answering cross-tenant (and unknown) IDs with an
// indistinguishable 404 so session IDs cannot be probed across tenants.
func (s *Server) getOwnedSession(w http.ResponseWriter, r *http.Request, id string) (*managed, bool) {
	m, err := s.mgr.Get(id)
	if err != nil || !ownedBy(m.Tenant, s.currentTenant(r)) {
		writeError(w, r, http.StatusNotFound, "no such session")
		return nil, false
	}
	return m, true
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.getOwnedSession(w, r, id); !ok {
		return
	}
	if !s.mgr.Delete(id) {
		writeError(w, r, http.StatusNotFound, "no such session")
		return
	}
	s.logSessionDelete(id)
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleSessionHistory(w http.ResponseWriter, r *http.Request) {
	m, ok := s.getOwnedSession(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	turns := []HistoryTurn{}
	for _, t := range m.Session.History() {
		turns = append(turns, HistoryTurn{
			Question:  t.Question,
			Kind:      t.Kind.String(),
			Chain:     t.Chain.String(),
			Answer:    t.Answer,
			ElapsedMS: t.Elapsed.Milliseconds(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"session_id": m.ID, "turns": turns})
}

// HistoryTurn is one dialog exchange in the /history reply.
type HistoryTurn struct {
	Question  string `json:"question"`
	Kind      string `json:"kind"`
	Chain     string `json:"chain"`
	Answer    string `json:"answer"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleSessionChat(w http.ResponseWriter, r *http.Request) {
	m, ok := s.getOwnedSession(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	if !s.rateLimit(w, r, &m.bucket) {
		return
	}
	q, g, ok := s.decodeChat(w, r)
	if !ok {
		return
	}
	stream := r.URL.Query().Get("stream")
	if stream == "1" || stream == "true" {
		s.streamChat(w, r, m.Session, q, g)
		return
	}
	turn, err := m.Session.Ask(r.Context(), q, g, core.AskOptions{})
	if err != nil {
		writeError(w, r, askStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, chatResponse(turn))
}

// askStatus maps an Ask failure to its HTTP status: a request that ran out
// of its deadline is the server's timeout (504), everything else is the
// question's fault (422).
func askStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// streamChat answers one Ask as NDJSON: one line per execution event as it
// happens, then a final "result" (or "error") line.
func (s *Server) streamChat(w http.ResponseWriter, r *http.Request, sess *core.Session, q string, g *graph.Graph) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		enc.Encode(v) //nolint:errcheck // best effort once streaming
		if flusher != nil {
			flusher.Flush()
		}
	}
	turn, err := sess.Ask(r.Context(), q, g, core.AskOptions{
		OnEvent: func(e executor.Event) {
			writeLine(chatEventOf(e))
		},
	})
	if err != nil {
		writeLine(streamError{Type: "error", Error: err.Error(), RequestID: requestID(r)})
		return
	}
	resp := chatResponse(turn)
	resp.Events = nil // already streamed line by line
	writeLine(streamResult{Type: "result", Result: resp})
}

// streamResult is the final NDJSON line of a successful streamed chat.
type streamResult struct {
	Type   string       `json:"type"`
	Result ChatResponse `json:"result"`
}

// streamError is the final NDJSON line of a failed streamed chat.
type streamError struct {
	Type      string `json:"type"`
	Error     string `json:"error"`
	RequestID string `json:"request_id"`
}

// Retrieval batch limits: one request embeds and searches every query, so
// both axes are bounded to keep a single POST from monopolizing the pool.
const (
	maxRetrieveQueries = 256
	maxRetrieveK       = 100
)

// RetrieveRequest is the POST /v1/retrieve payload: a batch of queries
// answered in one fused pass over the shared retrieval index.
type RetrieveRequest struct {
	Queries []string `json:"queries"`
	// K is how many APIs to return per query (0 → the engine's default).
	K int `json:"k,omitempty"`
}

// RetrieveHit is one ranked API for one query.
type RetrieveHit struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Distance    float32 `json:"distance"`
}

// RetrieveResponse answers a retrieval batch; Results[i] ranks the APIs for
// Queries[i], most relevant first.
type RetrieveResponse struct {
	Results [][]RetrieveHit `json:"results"`
}

// handleRetrieve serves the batched retrieval endpoint: many queries in,
// one engine-level RetrieveBatch (pooled embedding + ANN fan-out) out. It
// needs no session — retrieval state is engine-immutable.
func (s *Server) handleRetrieve(w http.ResponseWriter, r *http.Request) {
	var req RetrieveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, "queries is required")
		return
	}
	if len(req.Queries) > maxRetrieveQueries {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("too many queries (max %d)", maxRetrieveQueries))
		return
	}
	for i, q := range req.Queries {
		if q == "" {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("queries[%d] is empty", i))
			return
		}
	}
	if req.K < 0 || req.K > maxRetrieveK {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("k must be in [0, %d]", maxRetrieveK))
		return
	}
	ix := s.eng.Retrieval()
	resp := RetrieveResponse{Results: make([][]RetrieveHit, len(req.Queries))}
	for i, hits := range s.eng.RetrieveBatch(req.Queries, req.K) {
		out := make([]RetrieveHit, 0, len(hits))
		for _, h := range hits {
			out = append(out, RetrieveHit{Name: h.Name, Description: ix.Description(h.Name), Distance: h.Distance})
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// ChatRequest is the chat payload (legacy /chat and /v1 .../chat).
type ChatRequest struct {
	Question string `json:"question"`
	// Graph is the uploaded graph in the graph JSON wire format (optional).
	Graph json.RawMessage `json:"graph,omitempty"`
}

// ChatEvent is one execution progress entry in the response.
type ChatEvent struct {
	Type      string `json:"type"`
	Step      string `json:"step,omitempty"`
	Text      string `json:"text,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// ChatResponse is the chat reply.
type ChatResponse struct {
	Answer    string      `json:"answer"`
	Chain     string      `json:"chain"`
	Kind      string      `json:"kind"`
	Events    []ChatEvent `json:"events,omitempty"`
	ElapsedMS int64       `json:"elapsed_ms"`
}

// decodeChat parses and validates a chat body, writing the error response
// itself when ok is false. Uploaded graphs are interned through the
// engine's graph store: a payload whose content was seen before — in this
// session, another session, or a deleted one — resolves to the one shared
// instance, so the CSR, stats memo, and invoke-cache entries built for it
// are reused instead of rebuilt. Chains that edit the graph get a private
// clone inside the executor, so sharing is invisible to callers.
func (s *Server) decodeChat(w http.ResponseWriter, r *http.Request) (question string, g *graph.Graph, ok bool) {
	var req ChatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return "", nil, false
	}
	if req.Question == "" {
		writeError(w, r, http.StatusBadRequest, "question is required")
		return "", nil, false
	}
	if len(req.Graph) > 0 {
		var err error
		g, err = graph.ParseJSON(req.Graph)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad graph: %v", err))
			return "", nil, false
		}
		if !s.opts.DisableGraphIntern {
			g = s.eng.Graphs().Intern(g)
		}
		s.persistGraph(g)
	}
	return req.Question, g, true
}

// chatEventOf converts an execution event to its wire form.
func chatEventOf(e executor.Event) ChatEvent {
	ce := ChatEvent{Type: e.Type.String(), Text: e.Text, ElapsedMS: e.Elapsed.Milliseconds()}
	if e.StepIndex >= 0 {
		ce.Step = e.Step.String()
	}
	if e.Err != nil {
		ce.Text = e.Err.Error()
	}
	return ce
}

func chatResponse(turn core.Turn) ChatResponse {
	resp := ChatResponse{
		Answer:    turn.Answer,
		Chain:     turn.Chain.String(),
		Kind:      turn.Kind.String(),
		ElapsedMS: turn.Elapsed.Milliseconds(),
	}
	for _, e := range turn.Events {
		resp.Events = append(resp.Events, chatEventOf(e))
	}
	return resp
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// The shared legacy conversation pays the same per-session budget as a
	// v1 session — before this bucket existed, /chat bypassed
	// SessionRate entirely and was the cheap way around the rate policy.
	if !s.rateLimit(w, r, &s.legacyBucket) {
		return
	}
	q, g, ok := s.decodeChat(w, r)
	if !ok {
		return
	}
	// The legacy endpoint is one shared conversation; Session serializes
	// its own Ask calls, so no server-level lock is needed.
	turn, err := s.legacy.Ask(r.Context(), q, g, core.AskOptions{})
	if err != nil {
		writeError(w, r, askStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, chatResponse(turn))
}

// APIInfo is one /apis entry.
type APIInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Category    string `json:"category"`
}

func (s *Server) handleAPIs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var out []APIInfo
	for _, a := range s.eng.Registry().All() {
		out = append(out, APIInfo{Name: a.Name, Description: a.Description, Category: a.Category})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	kind := graph.KindUnknown
	switch v := r.URL.Query().Get("kind"); v {
	case "", "unknown":
		// No uploaded graph yet: generic suggestions.
	case "social":
		kind = graph.KindSocial
	case "molecule":
		kind = graph.KindMolecule
	case "knowledge":
		kind = graph.KindKnowledge
	default:
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("unknown kind %q (want social, molecule, knowledge, or unknown)", v))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"questions": core.SuggestedQuestions(kind)})
}

// handleConfig exposes the Fig. 3 parameter panel: the configuration the
// engine was built with (defaults when it was assembled in code).
func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if fc := s.eng.FileConfig(); fc != nil {
		writeJSON(w, http.StatusOK, fc)
		return
	}
	writeJSON(w, http.StatusOK, config.Default())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once status is written
}

// errorBody is the JSON shape of every error reply.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id"`
}

func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, RequestID: requestID(r)})
}

// ListenAndServe runs the server until the listener fails. Daemons that
// need graceful shutdown should build their own http.Server around
// Handler() instead.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
