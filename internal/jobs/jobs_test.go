package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"chatgraph/internal/executor"
	"chatgraph/internal/metrics"
)

// newTestManager builds a manager on a private metrics registry and closes
// it when the test ends.
func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	m := New(opts)
	t.Cleanup(m.Close)
	return m
}

// waitTerminal blocks until j finishes or the test deadline passes.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID)
	}
	return j.Status()
}

// gate is a task body that blocks until released (or its context dies),
// holding a worker hostage so tests control queue occupancy.
type gate struct {
	release chan struct{}
	once    sync.Once
}

func newGate() *gate { return &gate{release: make(chan struct{})} }

func (g *gate) open() { g.once.Do(func() { close(g.release) }) }

func (g *gate) task(result any) Task {
	return func(ctx context.Context, _ func(executor.Event)) (any, error) {
		select {
		case <-g.release:
			return result, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	j, err := m.Submit(PriorityNormal, func(ctx context.Context, emit func(executor.Event)) (any, error) {
		emit(executor.Event{Type: executor.EventChainStart, StepIndex: -1})
		emit(executor.Event{Type: executor.EventChainDone, StepIndex: -1, Text: "42"})
		return "42", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %v, want done (err %v)", st.State, st.Err)
	}
	if st.Result != "42" || st.Events != 2 || st.Err != nil {
		t.Fatalf("status = %+v", st)
	}
	if st.Started.IsZero() || st.Finished.IsZero() || st.Finished.Before(st.Started) {
		t.Fatalf("timestamps = started %v finished %v", st.Started, st.Finished)
	}
	evs, state, _ := j.EventsSince(0)
	if len(evs) != 2 || state != StateDone {
		t.Fatalf("EventsSince = %d events, state %v", len(evs), state)
	}
	if got, ok := m.Get(j.ID); !ok || got != j {
		t.Fatal("Get did not return the stored job")
	}
}

func TestPriorityFIFO(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 16})
	blocker := newGate()
	block, err := m.Submit(PriorityNormal, blocker.task(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the blocker so everything below queues in
	// submission order.
	for block.Status().State != StateRunning {
		time.Sleep(time.Millisecond)
	}

	var mu sync.Mutex
	var order []string
	record := func(name string) Task {
		return func(context.Context, func(executor.Event)) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return name, nil
		}
	}
	var last *Job
	for _, sub := range []struct {
		pri  Priority
		name string
	}{
		{PriorityLow, "low1"},
		{PriorityNormal, "normal1"},
		{PriorityHigh, "high1"},
		{PriorityLow, "low2"},
		{PriorityHigh, "high2"},
		{PriorityNormal, "normal2"},
	} {
		j, err := m.Submit(sub.pri, record(sub.name))
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	blocker.open()
	// low2 runs last of the records; waiting on the final low job is not
	// enough (low2 was submitted before normal2), so wait for all.
	waitTerminal(t, last)
	for m.QueueLen() > 0 || m.Busy() > 0 {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high1", "high2", "normal1", "normal2", "low1", "low2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueFullSheds(t *testing.T) {
	reg := metrics.NewRegistry()
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 2, Metrics: reg})
	blocker := newGate()
	first, err := m.Submit(PriorityNormal, blocker.task(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to hold first so the queue is provably empty.
	for first.Status().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(PriorityNormal, blocker.task(nil)); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := m.Submit(PriorityNormal, blocker.task(nil)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if got := reg.Counter("chatgraph_jobs_shed_total", "", nil).Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	blocker.open()
	// Once the backlog drains, the queue accepts again.
	for m.QueueLen() > 0 {
		time.Sleep(time.Millisecond)
	}
	j, err := m.Submit(PriorityNormal, blocker.task("ok"))
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("post-drain job state = %v", st.State)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	blocker := newGate()
	defer blocker.open()
	first, err := m.Submit(PriorityNormal, blocker.task(nil))
	if err != nil {
		t.Fatal(err)
	}
	for first.Status().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(PriorityNormal, blocker.task(nil))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.Cancel(queued.ID)
	if !ok || st != StateCancelled {
		t.Fatalf("Cancel = %v, %v", st, ok)
	}
	if m.QueueLen() != 0 {
		t.Fatalf("queue len = %d after cancelling the only queued job", m.QueueLen())
	}
	got := waitTerminal(t, queued)
	if got.State != StateCancelled || !errors.Is(got.Err, context.Canceled) {
		t.Fatalf("status = %+v", got)
	}
	if !got.Started.IsZero() {
		t.Fatal("cancelled-while-queued job reports a start time")
	}
	if _, ok := m.Cancel("nope"); ok {
		t.Fatal("Cancel of unknown ID reported ok")
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	started := make(chan struct{})
	j, err := m.Submit(PriorityHigh, func(ctx context.Context, _ func(executor.Event)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if st, ok := m.Cancel(j.ID); !ok || st != StateRunning {
		t.Fatalf("Cancel = %v, %v (want running, true)", st, ok)
	}
	got := waitTerminal(t, j)
	if got.State != StateCancelled || !errors.Is(got.Err, context.Canceled) {
		t.Fatalf("status = %+v", got)
	}
	// Cancelling a terminal job is a no-op that reports the settled state.
	if st, ok := m.Cancel(j.ID); !ok || st != StateCancelled {
		t.Fatalf("re-Cancel = %v, %v", st, ok)
	}
}

func TestFailedJob(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	boom := errors.New("boom")
	j, err := m.Submit(PriorityNormal, func(context.Context, func(executor.Event)) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateFailed || !errors.Is(st.Err, boom) {
		t.Fatalf("status = %+v", st)
	}
}

func TestPanickingJobFailsWithoutKillingWorker(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	j, err := m.Submit(PriorityNormal, func(context.Context, func(executor.Event)) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateFailed {
		t.Fatalf("state = %v", st.State)
	}
	// The pool's single worker must survive the panic.
	ok, err := m.Submit(PriorityNormal, func(context.Context, func(executor.Event)) (any, error) {
		return "alive", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, ok); st.State != StateDone || st.Result != "alive" {
		t.Fatalf("post-panic job = %+v", st)
	}
}

func TestRetentionCountBound(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, MaxFinished: 2, Retention: time.Hour})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m.Submit(PriorityNormal, func(context.Context, func(executor.Event)) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		ids = append(ids, j.ID)
	}
	if n := m.Len(); n != 2 {
		t.Fatalf("retained = %d, want 2", n)
	}
	for _, id := range ids[:3] {
		if _, ok := m.Get(id); ok {
			t.Fatalf("evicted job %s still readable", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("recent job %s evicted too early", id)
		}
	}
}

func TestRetentionTTL(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, Retention: 20 * time.Millisecond})
	j, err := m.Submit(PriorityNormal, func(context.Context, func(executor.Event)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if _, ok := m.Get(j.ID); !ok {
		t.Fatal("finished job evicted before its TTL")
	}
	time.Sleep(40 * time.Millisecond)
	if evicted := m.Sweep(); evicted != 1 {
		t.Fatalf("Sweep = %d, want 1", evicted)
	}
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("expired job still readable after Sweep")
	}
}

func TestCloseCancelsQueuedAndRunning(t *testing.T) {
	m := New(Options{Workers: 1, Metrics: metrics.NewRegistry()})
	blocker := newGate()
	running, err := m.Submit(PriorityNormal, blocker.task(nil))
	if err != nil {
		t.Fatal(err)
	}
	for running.Status().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(PriorityNormal, blocker.task(nil))
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // blocks until the worker exits
	if st := running.Status(); st.State != StateCancelled {
		t.Fatalf("running job state after Close = %v", st.State)
	}
	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("queued job state after Close = %v", st.State)
	}
	if _, err := m.Submit(PriorityNormal, blocker.task(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close err = %v, want ErrClosed", err)
	}
	// The store stays readable for post-mortem polling.
	if _, ok := m.Get(running.ID); !ok {
		t.Fatal("job store unreadable after Close")
	}
}

// TestEventsSinceTail exercises the live-tail contract: a waiter blocked on
// the changed channel wakes for each append and observes a consistent
// (events, state) pair.
func TestEventsSinceTail(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	step := make(chan struct{})
	j, err := m.Submit(PriorityNormal, func(ctx context.Context, emit func(executor.Event)) (any, error) {
		for i := 0; i < 3; i++ {
			<-step
			emit(executor.Event{Type: executor.EventStepDone, StepIndex: i})
		}
		return "tailed", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	deadline := time.After(10 * time.Second)
	for {
		evs, state, changed := j.EventsSince(seen)
		seen += len(evs)
		if state.Terminal() {
			break
		}
		select {
		case step <- struct{}{}:
			// Fed the task one step; loop to collect its event.
		default:
		}
		if seen == 3 {
			// All events collected; nothing left but the terminal flip.
			select {
			case <-changed:
			case <-deadline:
				t.Fatal("tail never observed the terminal transition")
			}
		}
	}
	if seen != 3 {
		t.Fatalf("tailed %d events, want 3", seen)
	}
}
