package jobs

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/executor"
	"chatgraph/internal/metrics"
)

// napRegistry builds a registry with one sleeping API so executor-driven
// jobs take long enough to be cancelled mid-chain.
func napRegistry(t *testing.T) (*apis.Registry, *apis.Env) {
	t.Helper()
	env := &apis.Env{}
	reg := apis.NewRegistry()
	if err := reg.Register(apis.API{
		Name:        "test.nap",
		Description: "sleeps briefly and reports back",
		Category:    "test",
		Fn: func(apis.Input) (apis.Output, error) {
			time.Sleep(time.Millisecond)
			return apis.Output{Text: "napped"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg, env
}

// napChain is a many-step chain of the sleeping API — long enough that a
// cancel lands between steps with overwhelming probability.
func napChain(steps int) chain.Chain {
	c := make(chain.Chain, steps)
	for i := range c {
		c[i] = chain.Step{API: "test.nap"}
	}
	return c
}

// TestExecutorCancellationHammer is the -race stress for the cancellation
// path: many goroutines submit executor-backed jobs, poll their status and
// events, and cancel them at random points (before, during, and after
// execution). It asserts that every job reaches a terminal state, that a
// job cancelled mid-chain carries the executor's EventCancelled as its last
// event, that cancelled workers are freed (a fresh job still completes),
// and that the pool leaks no goroutines.
func TestExecutorCancellationHammer(t *testing.T) {
	reg, env := napRegistry(t)
	exec := executor.New(reg, env)
	c := napChain(40)

	before := runtime.NumGoroutine()
	m := New(Options{Workers: 4, QueueDepth: 256, Metrics: metrics.NewRegistry()})

	const jobsN = 48
	var wg sync.WaitGroup
	results := make([]Status, jobsN)
	for i := 0; i < jobsN; i++ {
		j, err := m.Submit(PriorityNormal, func(ctx context.Context, emit func(executor.Event)) (any, error) {
			res, err := exec.Run(ctx, nil, c, executor.Options{OnEvent: emit})
			if err != nil {
				return nil, err
			}
			return res.Final.Text, nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		// Canceller: strikes at a jittered delay so cancels land while
		// queued, mid-chain, and after completion.
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			delay := time.Duration(rand.Int63n(int64(25 * time.Millisecond)))
			time.Sleep(delay)
			m.Cancel(j.ID)
		}(i, j)
		// Poller: hammers the read side concurrently with events/cancels.
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			seen := 0
			for {
				evs, state, changed := j.EventsSince(seen)
				seen += len(evs)
				j.Status()
				if state.Terminal() {
					return
				}
				select {
				case <-changed:
				case <-time.After(10 * time.Second):
					t.Errorf("poller stuck on job %s", j.ID)
					return
				}
			}
		}(j)
		// Waiter: records the terminal status.
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			select {
			case <-j.Done():
				results[i] = j.Status()
			case <-time.After(10 * time.Second):
				t.Errorf("job %s never finished", j.ID)
			}
		}(i, j)
	}
	wg.Wait()

	cancelled := 0
	for i, st := range results {
		switch st.State {
		case StateDone:
			if st.Result != "napped" {
				t.Fatalf("job %d done with result %v", i, st.Result)
			}
		case StateCancelled:
			cancelled++
			if st.Err == nil {
				t.Fatalf("job %d cancelled without an error", i)
			}
			// A job cancelled mid-chain must end on the executor's
			// EventCancelled; one cancelled while queued has no events.
			evs, _, _ := j0events(results[i].ID, m)
			if len(evs) > 0 && evs[len(evs)-1].Type != executor.EventCancelled {
				t.Fatalf("job %d cancelled mid-chain but last event = %v", i, evs[len(evs)-1].Type)
			}
		default:
			t.Fatalf("job %d landed in state %v (err %v)", i, st.State, st.Err)
		}
	}
	if cancelled == 0 {
		t.Fatal("hammer produced no cancelled jobs — cancellation path untested")
	}
	t.Logf("hammer: %d cancelled, %d completed", cancelled, jobsN-cancelled)

	// Cancelled jobs must free their workers: a fresh job still runs.
	fresh, err := m.Submit(PriorityHigh, func(ctx context.Context, emit func(executor.Event)) (any, error) {
		res, err := exec.Run(ctx, nil, napChain(2), executor.Options{OnEvent: emit})
		if err != nil {
			return nil, err
		}
		return res.Final.Text, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, fresh); st.State != StateDone {
		t.Fatalf("post-hammer job state = %v (err %v)", st.State, st.Err)
	}

	// No goroutine leaks: after Close the worker pool and every per-job
	// helper must be gone.
	m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before %d, after close %d", before, runtime.NumGoroutine())
}

// j0events reads a job's events by ID, tolerating retention eviction.
func j0events(id string, m *Manager) ([]executor.Event, State, <-chan struct{}) {
	j, ok := m.Get(id)
	if !ok {
		return nil, StateCancelled, nil
	}
	return j.EventsSince(0)
}
