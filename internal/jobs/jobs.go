// Package jobs runs heavy analytics chains asynchronously: a bounded,
// priority-ordered worker pool plus a job store, the escape hatch from the
// serving layer's per-request deadline. A chain too heavy for the
// synchronous chat path — betweenness on a huge graph, an all-pairs
// eccentricity sweep, large clique enumeration — is submitted as a job,
// answered immediately with an ID, and executed by the pool through the
// same executor the chat path uses; callers poll or tail the job instead of
// holding an HTTP request open.
//
// Semantics, in order of importance:
//
//   - Bounded. The queue has a fixed depth; Submit on a full queue returns
//     ErrQueueFull, which the HTTP layer surfaces as 429 — the same
//     backpressure contract as the admission gate, applied to deferred work.
//   - Priority FIFO. Three priorities (high/normal/low); a worker always
//     takes the oldest job of the highest non-empty priority, so submission
//     order is preserved within a priority and starvation is only ever
//     inflicted by higher-priority load.
//   - Cancellable. Every job runs under its own context.Context. Cancelling
//     a queued job removes it from the queue immediately; cancelling a
//     running job cancels its context, which the executor honors between
//     steps (emitting EventCancelled) — the worker is freed and the job
//     lands in StateCancelled.
//   - Observable. Per-step executor events are persisted on the job as they
//     happen; EventsSince supports both replay (finished jobs) and live
//     tailing (running jobs) through one API. State transitions, queue
//     depth, busy workers, durations, and queue waits are instrumented.
//   - Retained, then forgotten. Finished jobs stay queryable under a TTL
//     and a max-count bound, whichever evicts first, so the store cannot
//     grow without bound under sustained traffic.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chatgraph/internal/executor"
	"chatgraph/internal/metrics"
)

// State is a job's lifecycle position: Queued → Running → one of the three
// terminal states.
type State int32

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued State = iota
	// StateRunning means a worker is executing the job.
	StateRunning
	// StateDone means the job finished successfully.
	StateDone
	// StateFailed means the job's task returned an error.
	StateFailed
	// StateCancelled means the job was cancelled before or during execution.
	StateCancelled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// String names the state for the wire and for transcripts.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Priority orders jobs in the queue. Higher values are served first; FIFO
// within a priority.
type Priority int

const (
	// PriorityLow is for best-effort background sweeps.
	PriorityLow Priority = iota
	// PriorityNormal is the default.
	PriorityNormal
	// PriorityHigh jumps the queue ahead of normal and low work.
	PriorityHigh
	numPriorities = 3
)

// String names the priority for the wire.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return "unknown"
	}
}

// ParseState inverts State.String; ok is false for unrecognized names.
func ParseState(s string) (State, bool) {
	switch s {
	case "queued":
		return StateQueued, true
	case "running":
		return StateRunning, true
	case "done":
		return StateDone, true
	case "failed":
		return StateFailed, true
	case "cancelled":
		return StateCancelled, true
	default:
		return 0, false
	}
}

// ParsePriority reads a wire priority; the empty string is PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	default:
		return 0, fmt.Errorf("jobs: unknown priority %q (want low, normal, or high)", s)
	}
}

// Task is one job's work. It must honor ctx (the executor does so between
// chain steps) and may call emit to persist progress events on the job; the
// returned result is stored on the job for pollers.
type Task func(ctx context.Context, emit func(executor.Event)) (result any, err error)

// ErrQueueFull is returned by Submit when the queue is at capacity — the
// caller should shed (HTTP 429) and retry later.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// ErrDuplicateID is returned by SubmitWithID when the pinned job ID is
// already stored (queued, running, or retained finished).
var ErrDuplicateID = errors.New("jobs: job id already exists")

// Job is one submitted task plus its full lifecycle record. All mutable
// fields are guarded by mu; ID, Priority, task, ctx, and cancel are set at
// submission and never change.
type Job struct {
	// ID is the random identifier handed back to the submitter.
	ID string
	// Owner names the tenant the job was submitted under; the serving
	// layer answers cross-tenant access as if the job did not exist.
	// Empty means the anonymous tenant (pre-tenancy records).
	Owner string
	// Priority is the queue class the job was submitted under.
	Priority Priority

	task   Task
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    []executor.Event
	result    any
	err       error
	// changed is closed and replaced on every state transition and event
	// append — the broadcast primitive live tails select on (a sync.Cond
	// cannot be waited on together with a context).
	changed chan struct{}
	// done is closed exactly once, on the terminal transition.
	done chan struct{}
}

// Status is a point-in-time copy of a job's externally visible state.
type Status struct {
	ID        string
	Owner     string
	Priority  Priority
	State     State
	Submitted time.Time
	// Started is zero while the job is still queued (or was cancelled
	// before running); Finished is zero until the terminal transition.
	Started  time.Time
	Finished time.Time
	// Events is how many progress events have been persisted so far.
	Events int
	// Result is the task's return value once State is StateDone.
	Result any
	// Err is set for StateFailed and StateCancelled.
	Err error
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:        j.ID,
		Owner:     j.Owner,
		Priority:  j.Priority,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Events:    len(j.events),
		Result:    j.result,
		Err:       j.err,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// EventsSince returns the persisted events from index n on, the current
// state, and a channel closed on the next change (event append or state
// transition). The triple is read atomically, so a tail loop — write
// events, stop if terminal, otherwise wait on changed — never misses an
// event and never busy-polls.
func (j *Job) EventsSince(n int) (events []executor.Event, state State, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(j.events) {
		events = append(events, j.events[n:]...)
	}
	return events, j.state, j.changed
}

// notifyLocked broadcasts a change to every waiter. Callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Defaults applied by New when Options fields are zero.
const (
	DefaultWorkers     = 2
	DefaultQueueDepth  = 64
	DefaultRetention   = 15 * time.Minute
	DefaultMaxFinished = 256
)

// DurationBuckets are the job-duration histogram bounds in seconds. Jobs
// exist precisely because work can outlive the request deadline, so the
// range extends to ten minutes where request latencies stop at ten seconds.
var DurationBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Options tunes a Manager. The zero value gets working defaults.
type Options struct {
	// Workers is the pool size (0 → DefaultWorkers).
	Workers int
	// QueueDepth caps queued (not yet running) jobs; Submit beyond it
	// returns ErrQueueFull (0 → DefaultQueueDepth).
	QueueDepth int
	// Retention is how long finished jobs stay queryable (0 →
	// DefaultRetention).
	Retention time.Duration
	// MaxFinished caps retained finished jobs regardless of age (0 →
	// DefaultMaxFinished).
	MaxFinished int
	// Metrics is the registry the pool instruments into (nil →
	// metrics.Default()).
	Metrics *metrics.Registry
	// OnTerminal, when set, observes every live terminal transition (done,
	// failed, cancelled) with the job's settled status — the durability
	// layer's hook. It is invoked after the manager's and job's locks are
	// released, so it may call back into the Manager freely. Jobs inserted
	// via Restore are not re-observed.
	OnTerminal func(Status)
}

// Manager owns the worker pool, the priority queue, and the job store.
type Manager struct {
	opts Options

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu sync.Mutex
	// cond is signalled on every enqueue and broadcast on Close; workers
	// wait on it when all queues are empty.
	cond *sync.Cond
	// queues hold only StateQueued jobs, FIFO per priority — Cancel and
	// Close remove a job from its queue in the same critical section that
	// marks it cancelled, so a popped job is always runnable.
	queues [numPriorities][]*Job
	queued int
	jobs   map[string]*Job
	// finished is every terminal job in finish order — the retention
	// sweep's eviction queue.
	finished []*Job
	closed   bool

	busy atomic.Int64
	met  *managerMetrics
}

// New starts a Manager and its workers.
func New(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Retention <= 0 {
		opts.Retention = DefaultRetention
	}
	if opts.MaxFinished <= 0 {
		opts.MaxFinished = DefaultMaxFinished
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:    opts,
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		met:     newManagerMetrics(reg),
	}
	m.cond = sync.NewCond(&m.mu)
	// Pool gauges read the manager's own bookkeeping at scrape time.
	reg.GaugeFunc("chatgraph_jobs_queue_depth",
		"Jobs waiting for a worker.", nil,
		func() float64 { return float64(m.QueueLen()) })
	reg.GaugeFunc("chatgraph_jobs_workers_busy",
		"Workers currently executing a job.", nil,
		func() float64 { return float64(m.busy.Load()) })
	reg.GaugeFunc("chatgraph_jobs_retained",
		"Jobs held in the store (queued, running, and retained finished).", nil,
		func() float64 { return float64(m.Len()) })
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit enqueues task at the given priority, returning the stored Job. A
// full queue returns ErrQueueFull; a closed manager returns ErrClosed.
func (m *Manager) Submit(pri Priority, task Task) (*Job, error) {
	return m.SubmitWithID("", pri, task)
}

// SubmitWithID enqueues task under a caller-chosen job ID — the hook a
// cluster router uses to make job identity routable: the router mints an ID
// whose rendezvous hash selects the placement backend, so every later poll
// or cancel for that ID hashes back to the owning backend with no lookup
// table. An empty id mints a random one (plain Submit). A duplicate id
// returns ErrDuplicateID.
func (m *Manager) SubmitWithID(id string, pri Priority, task Task) (*Job, error) {
	return m.SubmitOwned(id, "", pri, task)
}

// SubmitOwned is SubmitWithID with the owning tenant's name recorded on
// the job; ownership decides who may poll, stream, or cancel it.
func (m *Manager) SubmitOwned(id, owner string, pri Priority, task Task) (*Job, error) {
	if pri < PriorityLow || pri > PriorityHigh {
		pri = PriorityNormal
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.queued >= m.opts.QueueDepth {
		m.met.shed.Inc()
		return nil, ErrQueueFull
	}
	if id == "" {
		id = newJobID()
	} else if _, exists := m.jobs[id]; exists {
		return nil, ErrDuplicateID
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:        id,
		Owner:     owner,
		Priority:  pri,
		task:      task,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: now,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.queues[pri] = append(m.queues[pri], j)
	m.queued++
	m.met.submitted.Inc()
	m.sweepLocked(now)
	m.cond.Signal()
	return j, nil
}

// Get returns the stored job with the given ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// All snapshots every stored job's status, in no particular order.
func (m *Manager) All() []Status {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	return out
}

// Cancel cancels the job with the given ID and returns its state after the
// call: a queued job transitions to StateCancelled immediately; a running
// job has its context cancelled and reports StateRunning until the worker
// observes the cancellation; a terminal job is left untouched. ok is false
// for unknown IDs.
func (m *Manager) Cancel(id string) (State, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return 0, false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		m.unqueueLocked(j)
		j.err = context.Canceled
		m.finishLocked(j, StateCancelled)
		j.mu.Unlock()
		m.mu.Unlock()
		j.cancel()
		m.observeTerminal(j)
		return StateCancelled, true
	case StateRunning:
		j.mu.Unlock()
		m.mu.Unlock()
		j.cancel()
		return StateRunning, true
	default:
		st := j.state
		j.mu.Unlock()
		m.mu.Unlock()
		return st, true
	}
}

// Sweep evicts finished jobs past the retention TTL (the count bound is
// enforced eagerly on every finish). Submission and completion already
// sweep; long-lived daemons may also call this from a janitor so idle
// processes release memory without waiting for traffic.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	before := len(m.finished)
	m.sweepLocked(time.Now())
	return before - len(m.finished)
}

// QueueLen reports how many jobs are waiting for a worker.
func (m *Manager) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued
}

// Busy reports how many workers are executing a job right now.
func (m *Manager) Busy() int { return int(m.busy.Load()) }

// Len reports how many jobs the store holds (queued, running, and retained
// finished).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Close stops the pool: queued jobs are cancelled, running jobs have their
// contexts cancelled, and Close blocks until every worker has exited.
// Subsequent Submits return ErrClosed; the store remains readable.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	var cancelled []*Job
	for pri := range m.queues {
		for _, j := range m.queues[pri] {
			j.mu.Lock()
			j.err = context.Canceled
			m.finishLocked(j, StateCancelled)
			j.mu.Unlock()
			j.cancel()
			cancelled = append(cancelled, j)
		}
		m.queues[pri] = nil
	}
	m.queued = 0
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range cancelled {
		m.observeTerminal(j)
	}
	m.stop()
	m.wg.Wait()
}

// worker is one pool goroutine: pop the best queued job, run it, repeat.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.run(j)
	}
}

// next blocks until a job is available (returning it marked Running) or the
// manager closes (returning nil).
func (m *Manager) next() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for pri := numPriorities - 1; pri >= 0; pri-- {
			q := m.queues[pri]
			if len(q) == 0 {
				continue
			}
			j := q[0]
			q[0] = nil
			m.queues[pri] = q[1:]
			if len(m.queues[pri]) == 0 {
				m.queues[pri] = nil
			}
			m.queued--
			j.mu.Lock()
			j.state = StateRunning
			j.started = time.Now()
			j.notifyLocked()
			j.mu.Unlock()
			m.met.queueWait.Observe(j.started.Sub(j.submitted).Seconds())
			return j
		}
		if m.closed {
			return nil
		}
		m.cond.Wait()
	}
}

// run executes one job and records its terminal transition.
func (m *Manager) run(j *Job) {
	m.busy.Add(1)
	defer m.busy.Add(-1)
	emit := func(e executor.Event) {
		j.mu.Lock()
		j.events = append(j.events, e)
		j.notifyLocked()
		j.mu.Unlock()
	}
	res, err := runTask(j, emit)
	st := StateDone
	switch {
	case err == nil:
		st = StateDone
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled):
		// The job's context died (Cancel or Close) and the task surfaced
		// it — the executor's EventCancelled path ends up here.
		st = StateCancelled
	default:
		st = StateFailed
	}
	m.mu.Lock()
	j.mu.Lock()
	j.result, j.err = res, err
	m.finishLocked(j, st)
	j.mu.Unlock()
	m.mu.Unlock()
	// Release the context's resources now that nothing can cancel it.
	j.cancel()
	m.observeTerminal(j)
}

// observeTerminal fires the OnTerminal hook with j's settled status. Always
// called with no manager or job locks held — the hook may call back into
// the Manager (Get, All, even Submit) without deadlocking.
func (m *Manager) observeTerminal(j *Job) {
	if m.opts.OnTerminal != nil {
		m.opts.OnTerminal(j.Status())
	}
}

// Restore inserts a job recovered from the durability layer: a settled
// record with no task, context, or queue presence. st must be terminal.
// Restored jobs are fully queryable (Status, EventsSince replay, Cancel
// no-op) and are retention-swept like any finished job, but they do not
// fire OnTerminal and do not count in the outcome metrics — both already
// happened in a previous incarnation. ok is false if the ID is already
// present, the state is non-terminal, or the manager is closed.
func (m *Manager) Restore(id, owner string, pri Priority, st State, submitted, started, finished time.Time, result any, jerr error) bool {
	if !st.Terminal() || id == "" {
		return false
	}
	if pri < PriorityLow || pri > PriorityHigh {
		pri = PriorityNormal
	}
	j := &Job{
		ID:        id,
		Owner:     owner,
		Priority:  pri,
		state:     st,
		submitted: submitted,
		started:   started,
		finished:  finished,
		result:    result,
		err:       jerr,
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	close(j.done)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if _, exists := m.jobs[id]; exists {
		return false
	}
	m.jobs[id] = j
	// m.finished must stay in finish order for the sweep's eviction-from-
	// the-front scan; recovery restores jobs sorted by finish time before
	// any live job can finish, so append preserves the invariant.
	m.finished = append(m.finished, j)
	return true
}

// runTask isolates the task call so a panicking job fails instead of
// killing its worker (and with it the whole pool's capacity).
func runTask(j *Job, emit func(executor.Event)) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job %s panicked: %v", j.ID, r)
		}
	}()
	return j.task(j.ctx, emit)
}

// finishLocked records j's terminal transition: state, finish time, outcome
// metrics, the retention queue, and the done broadcast. Callers hold both
// m.mu and j.mu (in that order), so every write to j.finished happens under
// both locks and readers may hold either.
func (m *Manager) finishLocked(j *Job, st State) {
	now := time.Now()
	j.state = st
	j.finished = now
	j.notifyLocked()
	close(j.done)
	m.finished = append(m.finished, j)
	m.met.outcome(st).Inc()
	if !j.started.IsZero() {
		m.met.duration.Observe(now.Sub(j.started).Seconds())
	}
	m.sweepLocked(now)
}

// unqueueLocked removes a queued job from its priority queue. Caller holds
// m.mu; the O(depth) scan is bounded by QueueDepth.
func (m *Manager) unqueueLocked(j *Job) {
	q := m.queues[j.Priority]
	for i, cand := range q {
		if cand == j {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			m.queues[j.Priority] = q[:len(q)-1]
			m.queued--
			return
		}
	}
}

// sweepLocked evicts finished jobs beyond the count bound or past the TTL.
// m.finished is in finish order, so eviction only ever eats from the front.
func (m *Manager) sweepLocked(now time.Time) {
	idx := 0
	for idx < len(m.finished) &&
		(len(m.finished)-idx > m.opts.MaxFinished ||
			now.Sub(m.finished[idx].finished) > m.opts.Retention) {
		delete(m.jobs, m.finished[idx].ID)
		m.finished[idx] = nil
		idx++
	}
	if idx > 0 {
		m.finished = append(m.finished[:0], m.finished[idx:]...)
	}
}

// newJobID returns a 96-bit random hex job identifier.
func newJobID() string {
	b := make([]byte, 12)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; panic beats
		// silently handing out colliding IDs.
		panic(fmt.Sprintf("jobs: id entropy: %v", err))
	}
	return hex.EncodeToString(b)
}
