package jobs

import "chatgraph/internal/metrics"

// managerMetrics are the pool's pre-resolved instrument handles: everything
// the submit/run path touches is created once here, so the hot path pays
// atomics only, never a registry lookup. The queue-depth / busy-workers /
// retained gauges are registered as scrape-time funcs in New — they read
// the manager's own bookkeeping, so no extra work happens per job.
type managerMetrics struct {
	submitted *metrics.Counter
	shed      *metrics.Counter
	done      *metrics.Counter
	failed    *metrics.Counter
	cancelled *metrics.Counter
	duration  *metrics.Histogram
	queueWait *metrics.Histogram
}

func newManagerMetrics(reg *metrics.Registry) *managerMetrics {
	outcomes := "Finished jobs by outcome."
	return &managerMetrics{
		submitted: reg.Counter("chatgraph_jobs_submitted_total",
			"Jobs accepted into the queue.", nil),
		shed: reg.Counter("chatgraph_jobs_shed_total",
			"Job submissions rejected because the queue was full.", nil),
		done: reg.Counter("chatgraph_jobs_total",
			outcomes, metrics.Labels{"outcome": "done"}),
		failed: reg.Counter("chatgraph_jobs_total",
			outcomes, metrics.Labels{"outcome": "failed"}),
		cancelled: reg.Counter("chatgraph_jobs_total",
			outcomes, metrics.Labels{"outcome": "cancelled"}),
		duration: reg.Histogram("chatgraph_job_duration_seconds",
			"Job execution time (start to terminal state), excluding queue wait.",
			DurationBuckets, nil),
		queueWait: reg.Histogram("chatgraph_job_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.",
			DurationBuckets, nil),
	}
}

// outcome maps a terminal state to its counter.
func (mm *managerMetrics) outcome(st State) *metrics.Counter {
	switch st {
	case StateFailed:
		return mm.failed
	case StateCancelled:
		return mm.cancelled
	default:
		return mm.done
	}
}
