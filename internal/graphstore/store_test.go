package graphstore

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

func graphJSON(t *testing.T, seed int64) []byte {
	t.Helper()
	data, err := json.Marshal(graph.PlantedCommunities(2, 6, 0.7, 0.1, rand.New(rand.NewSource(seed))))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func parse(t *testing.T, data []byte) *graph.Graph {
	t.Helper()
	g, err := graph.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInternDedupes(t *testing.T) {
	s := New(8)
	data := graphJSON(t, 1)
	g1 := s.Intern(parse(t, data))
	g2 := s.Intern(parse(t, data))
	if g1 != g2 {
		t.Fatal("identical content interned to distinct instances")
	}
	if !g1.Shared() {
		t.Fatal("interned graph not marked shared")
	}
	if hits, misses := s.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", hits, misses)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	other := s.Intern(parse(t, graphJSON(t, 2)))
	if other == g1 {
		t.Fatal("distinct content collapsed onto one instance")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestInternLRUEviction(t *testing.T) {
	s := New(2)
	a := s.Intern(parse(t, graphJSON(t, 1)))
	s.Intern(parse(t, graphJSON(t, 2)))
	// Touch a so content 2 is the LRU victim when 3 arrives.
	if got := s.Intern(parse(t, graphJSON(t, 1))); got != a {
		t.Fatal("re-intern missed")
	}
	s.Intern(parse(t, graphJSON(t, 3)))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
	if got := s.Intern(parse(t, graphJSON(t, 1))); got != a {
		t.Fatal("survivor was evicted instead of the LRU entry")
	}
	// Content 2 was evicted: re-interning it is a miss with a new instance.
	_, missesBefore := s.Counters()
	s.Intern(parse(t, graphJSON(t, 2)))
	if _, misses := s.Counters(); misses != missesBefore+1 {
		t.Fatal("evicted content should re-intern as a miss")
	}
}

// TestInternDiscriminatesCanonicalCollisions: graphs that collide under
// the canonical ContentHash (1-WL equivalent: a 6-cycle vs two disjoint
// triangles, identical labels) or that are permuted insertions of the same
// logical graph must intern to separate instances — they are observably
// different through node-ID APIs, so aliasing either pair would serve one
// session another session's graph.
func TestInternDiscriminatesCanonicalCollisions(t *testing.T) {
	mk := func(edges [][2]int) *graph.Graph {
		g := graph.New()
		for i := 0; i < 6; i++ {
			g.AddNode("C")
		}
		for _, e := range edges {
			if err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	cycle := mk([][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	triangles := mk([][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if cycle.ContentHash() != triangles.ContentHash() {
		t.Fatal("fixture assumption broken: WL twins no longer collide canonically")
	}
	s := New(8)
	a := s.Intern(cycle)
	b := s.Intern(triangles)
	if a == b {
		t.Fatal("canonical-hash collision aliased two different graphs")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Each representation keeps hitting its own instance.
	if s.Intern(mk([][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})) != a {
		t.Fatal("cycle re-upload missed its instance")
	}
	if s.Intern(mk([][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})) != b {
		t.Fatal("triangles re-upload missed its instance")
	}

	// Permuted node insertion: same canonical hash, different dense IDs —
	// separate instances, each stable for its own ordering.
	xy := graph.New()
	xy.AddNode("x")
	xy.AddNode("y")
	yx := graph.New()
	yx.AddNode("y")
	yx.AddNode("x")
	ix, iy := s.Intern(xy), s.Intern(yx)
	if ix == iy {
		t.Fatal("permuted insertions aliased onto one instance")
	}
	if ix.Node(0).Label != "x" || iy.Node(0).Label != "y" {
		t.Fatal("interned instances lost their own node-ID assignment")
	}
}

// TestInternByteBudget: the store is bounded by estimated bytes, not just
// entry count — varied large uploads must evict instead of pinning
// unbounded memory.
func TestInternByteBudget(t *testing.T) {
	s := NewSized(1024, 4096)
	var kept []*graph.Graph
	for i := int64(0); i < 8; i++ {
		g := graph.PlantedCommunities(2, 6, 0.7, 0.1, rand.New(rand.NewSource(100+i)))
		kept = append(kept, s.Intern(g))
	}
	if s.Bytes() > 4096 {
		t.Fatalf("Bytes = %d exceeds the 4096 budget", s.Bytes())
	}
	if s.Evictions() == 0 {
		t.Fatal("byte budget never evicted")
	}
	if s.Len() >= 8 {
		t.Fatalf("Len = %d, want fewer than the 8 interned graphs", s.Len())
	}
	// The newest content must have survived.
	if _, ok := s.Lookup(kept[7].ContentHash()); !ok {
		t.Fatal("most recent graph evicted")
	}
	// A single graph larger than the whole budget is still interned (the
	// store never evicts the entry it just inserted).
	huge := NewSized(4, 64)
	g := huge.Intern(parse(t, graphJSON(t, 1)))
	if huge.Len() != 1 {
		t.Fatalf("oversized graph not retained: Len = %d", huge.Len())
	}
	if got := huge.Intern(parse(t, graphJSON(t, 1))); got != g {
		t.Fatal("oversized graph not shared with identical upload")
	}
}

func TestNilStoreAndNilGraphPassThrough(t *testing.T) {
	var s *Store
	g := parse(t, graphJSON(t, 1))
	if s.Intern(g) != g {
		t.Fatal("nil store must pass the graph through")
	}
	if New(1).Intern(nil) != nil {
		t.Fatal("nil graph must pass through")
	}
}

func TestLookup(t *testing.T) {
	s := New(4)
	g := s.Intern(parse(t, graphJSON(t, 1)))
	got, ok := s.Lookup(g.ContentHash())
	if !ok || got != g {
		t.Fatal("Lookup missed an interned graph")
	}
	if _, ok := s.Lookup(graph.ContentHash{}); ok {
		t.Fatal("Lookup invented an entry")
	}
}

// TestInternRaceWithChains hammers the full shared-read contract under
// -race: many goroutines intern the same and different payloads while
// running memoizable analyses (shared CSR, stats memo, invocation cache)
// against whatever instance they got back.
func TestInternRaceWithChains(t *testing.T) {
	s := New(16)
	env := &apis.Env{Cache: apis.NewInvokeCache(64)}
	reg := apis.Default(env)
	payloads := [][]byte{graphJSON(t, 1), graphJSON(t, 2), graphJSON(t, 3)}
	steps := []chain.Step{
		{API: "graph.stats"},
		{API: "graph.classify"},
		{API: "structure.kcore"},
		{API: "centrality.pagerank"},
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// canonical records the one shared instance per payload.
		canonical = make(map[int]*graph.Graph)
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				pi := (w + i) % len(payloads)
				g := s.Intern(parse(t, payloads[pi]))
				mu.Lock()
				if prev, ok := canonical[pi]; ok && prev != g {
					mu.Unlock()
					t.Errorf("payload %d interned to two instances", pi)
					return
				}
				canonical[pi] = g
				mu.Unlock()
				st := steps[(w+i)%len(steps)]
				if _, err := reg.Invoke(st, apis.Input{Graph: g, Env: env, Args: st.Args}); err != nil {
					t.Errorf("%s: %v", st.API, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != len(payloads) {
		t.Fatalf("store holds %d graphs, want %d", s.Len(), len(payloads))
	}
}
