// Package graphstore interns uploaded graphs by content hash, so identical
// payloads arriving in different requests, sessions, or conversations
// resolve to one shared *graph.Graph instance — one frozen CSR, one stats
// memo, one pool of content-keyed invocation-cache entries — instead of N
// private copies that never share anything.
//
// The store is the serving layer's answer to the E12c finding: a loadgen
// workload that re-uploads the same graph on every chat request scored zero
// invocation-cache hits, because cache identity was the graph pointer and
// every upload parsed to a fresh pointer. Content identity
// (graph.ContentHash) makes the dedup possible; the store makes it cheap —
// one hash plus one mutex hop per upload.
//
// Interned graphs are marked Shared and must never mutate. The executor
// honors that contract by cloning a shared graph before running any chain
// that contains a mutating API; race-enabled builds panic if a mutation
// slips through anyway.
package graphstore

import (
	"container/list"
	"sync"

	"chatgraph/internal/graph"
	"chatgraph/internal/metrics"
)

// Process-wide intern instruments, aggregated across every Store (the
// per-instance accessors stay for tests and introspection).
var (
	mHits = metrics.Default().Counter("chatgraph_graphstore_hits_total",
		"Uploads deduplicated onto an already-interned graph.", nil)
	mMisses = metrics.Default().Counter("chatgraph_graphstore_misses_total",
		"Uploads interned as new graphs.", nil)
	mEvictions = metrics.Default().Counter("chatgraph_graphstore_evictions_total",
		"Interned graphs evicted for capacity.", nil)
)

// DefaultCapacity bounds the store an Engine installs when the caller does
// not say otherwise. Entries are whole graphs, so the bound is deliberately
// modest; the LRU keeps whatever the traffic actually re-uploads.
const DefaultCapacity = 1024

// DefaultMaxBytes bounds the store's estimated retained graph memory. The
// entry count alone is not a memory bound — the chat endpoint accepts
// multi-megabyte graph bodies, so capacity × max-body would let varied
// traffic pin gigabytes. Whichever bound trips first evicts.
const DefaultMaxBytes = 256 << 20

// Store is a bounded, concurrency-safe LRU of interned graphs keyed by
// content identity, limited by both entry count and estimated retained
// bytes. Intern is the only write path; everything it returns is shared
// and read-only by contract.
type Store struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64
	ll       *list.List // most-recent first; values are *entry
	entries  map[storeKey]*list.Element
	bytes    int64 // estimated retained bytes across entries

	hits      uint64
	misses    uint64
	evictions uint64
}

// storeKey pairs the canonical content hash with the index-order exact
// hash. The canonical hash is the identity the layer is named for; the
// exact hash is the equality witness that keeps a canonical-hash
// coincidence (WL-equivalent non-isomorphic graphs, permuted insertion
// orders — both observably different through node-ID-based APIs) from
// aliasing two uploads onto one instance. Non-identical uploads that
// merely share a canonical hash intern separately — they do not dedupe,
// which is the correct outcome, not a missed one.
type storeKey struct {
	content graph.ContentHash
	exact   graph.ExactHash
}

type entry struct {
	key   storeKey
	g     *graph.Graph
	bytes int64
}

// New returns a store holding at most capacity interned graphs
// (capacity <= 0 gets DefaultCapacity) within DefaultMaxBytes of estimated
// graph memory. The store's size is exported as the
// chatgraph_graphstore_size / chatgraph_graphstore_bytes gauges; with
// several stores in one process (tests), the most recently constructed one
// wins the gauges.
func New(capacity int) *Store {
	return NewSized(capacity, 0)
}

// NewSized is New with an explicit byte budget (maxBytes <= 0 gets
// DefaultMaxBytes).
func NewSized(capacity int, maxBytes int64) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[storeKey]*list.Element, capacity),
	}
	metrics.Default().GaugeFunc("chatgraph_graphstore_size",
		"Graphs currently interned.", nil,
		func() float64 { return float64(s.Len()) })
	metrics.Default().GaugeFunc("chatgraph_graphstore_bytes",
		"Estimated bytes retained by interned graphs.", nil,
		func() float64 { return float64(s.Bytes()) })
	return s
}

// approxBytes estimates what keeping g resident costs: node and edge
// records, label/attr strings, adjacency indexes, and the frozen CSR the
// shared instance will inevitably carry (~3 index arrays per edge
// direction). An estimate is enough — the budget exists to stop unbounded
// growth, not to account precisely.
func approxBytes(g *graph.Graph) int64 {
	n, m := int64(g.NumNodes()), int64(g.NumEdges())
	b := n*64 + m*96
	for _, nd := range g.Nodes() {
		b += int64(len(nd.Label))
		for k, v := range nd.Attrs {
			b += int64(len(k)+len(v)) + 32
		}
	}
	for i := range g.Edges() {
		b += int64(len(g.Edges()[i].Label))
	}
	return b
}

// Intern resolves g to the canonical shared instance for its content: the
// first graph interned with this content hash wins and is returned for
// every subsequent upload of equal content; g itself is returned (and
// becomes the canonical instance) on first sight. The returned graph is
// marked Shared — callers must treat it as immutable and clone before any
// mutation. A nil store or nil graph passes through untouched.
func (s *Store) Intern(g *graph.Graph) *graph.Graph {
	if s == nil || g == nil {
		return g
	}
	k := storeKey{content: g.ContentHash(), exact: g.ExactHash()}
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		shared := el.Value.(*entry).g
		s.mu.Unlock()
		mHits.Inc()
		return shared
	}
	g.MarkShared()
	e := &entry{key: k, g: g, bytes: approxBytes(g)}
	s.entries[k] = s.ll.PushFront(e)
	s.bytes += e.bytes
	// Evict from the cold end until both bounds hold again, always keeping
	// the entry just inserted (an oversized upload is still shared with
	// concurrent identical uploads until the next insert ages it out).
	for s.ll.Len() > 1 && (s.ll.Len() > s.capacity || s.bytes > s.maxBytes) {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		old := oldest.Value.(*entry)
		delete(s.entries, old.key)
		s.bytes -= old.bytes
		s.evictions++
		mEvictions.Inc()
	}
	s.misses++
	s.mu.Unlock()
	mMisses.Inc()
	return g
}

// Bytes reports the estimated bytes retained by interned graphs.
func (s *Store) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Lookup returns an interned graph with the given canonical content hash
// (scanning in recency order), without promoting it in the LRU or touching
// counters — introspection, not the hot path.
func (s *Store) Lookup(h graph.ContentHash) (*graph.Graph, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.ll.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.key.content == h {
			return e.g, true
		}
	}
	return nil, false
}

// Len reports the number of interned graphs.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Counters returns the lifetime intern hit and miss counts.
func (s *Store) Counters() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Evictions returns the lifetime capacity-eviction count.
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}
