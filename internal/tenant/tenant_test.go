package tenant

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func mustLoad(t *testing.T, cfg string) *Registry {
	t.Helper()
	r, err := Load([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

const twoTenantCfg = `{
  "tenants": [
    {"name": "compliant", "keys": ["ck-1", "ck-2"], "weight": 3, "rps": 30},
    {"name": "hostile", "keys": ["hk-1"], "weight": 1, "rps": 10, "burst": 2}
  ]
}`

func TestResolve(t *testing.T) {
	r := mustLoad(t, twoTenantCfg)

	got, err := r.Resolve("ck-2")
	if err != nil || got.Name != "compliant" {
		t.Fatalf("Resolve(ck-2) = %v, %v", got, err)
	}
	got, err = r.Resolve("")
	if err != nil || got.Name != AnonymousName {
		t.Fatalf("Resolve('') = %v, %v; want anonymous", got, err)
	}
	// An unknown key is an error, never a silent downgrade to anonymous.
	if _, err := r.Resolve("nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Resolve(nope) err = %v, want ErrUnknownKey", err)
	}
}

func TestResolveDisabled(t *testing.T) {
	r := mustLoad(t, `{
	  "tenants": [{"name": "off", "keys": ["ok-1"], "disabled": true}],
	  "anonymous": {"disabled": true}
	}`)
	if _, err := r.Resolve("ok-1"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("disabled tenant err = %v, want ErrDisabled", err)
	}
	if _, err := r.Resolve(""); !errors.Is(err, ErrKeyRequired) {
		t.Fatalf("anonymous-off err = %v, want ErrKeyRequired", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []string{
		`{"tenants": [{"keys": ["k"]}]}`,                                            // no name
		`{"tenants": [{"name": "a", "keys": ["k"]}, {"name": "a", "keys": ["j"]}]}`, // dup name
		`{"tenants": [{"name": "anonymous", "keys": ["k"]}]}`,                       // reserved name
		`{"tenants": [{"name": "a", "keys": ["k"]}, {"name": "b", "keys": ["k"]}]}`, // dup key
		`{"tenants": [{"name": "a"}]}`,                                              // no keys
		`{"tenants": [{"name": "a", "keys": ["k"], "weight": -1}]}`,                 // negative weight
		`{"tenants": [{"name": "a", "keys": ["k"], "rpz": 5}]}`,                     // unknown field
	}
	for _, cfg := range bad {
		if _, err := Load([]byte(cfg)); err == nil {
			t.Errorf("Load(%s) = nil error, want failure", cfg)
		}
	}
}

func TestNameForKeyBounded(t *testing.T) {
	r := mustLoad(t, twoTenantCfg)
	cases := map[string]string{"ck-1": "compliant", "hk-1": "hostile", "": AnonymousName, "random-junk": "unknown"}
	for key, want := range cases {
		if got := r.NameForKey(key); got != want {
			t.Errorf("NameForKey(%q) = %q, want %q", key, got, want)
		}
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "compliant" || names[1] != "hostile" || names[2] != AnonymousName {
		t.Fatalf("Names() = %v", names)
	}
}

func TestShares(t *testing.T) {
	r := mustLoad(t, `{
	  "tenants": [
	    {"name": "big", "keys": ["b"], "weight": 3},
	    {"name": "small", "keys": ["s"], "weight": 1}
	  ],
	  "anonymous": {"disabled": true}
	}`)
	r.SetCapacity(8)
	big, _ := r.Resolve("b")
	small, _ := r.Resolve("s")
	if big.Share() != 6 || small.Share() != 2 || r.Slack() != 0 {
		t.Fatalf("shares = %d/%d slack %d, want 6/2 slack 0", big.Share(), small.Share(), r.Slack())
	}
	// A capacity that does not divide evenly leaves the remainder as a
	// shared borrow pool, never over-assigns.
	r.SetCapacity(10)
	if big.Share() != 7 || small.Share() != 2 || r.Slack() != 1 {
		t.Fatalf("shares = %d/%d slack %d, want 7/2 slack 1", big.Share(), small.Share(), r.Slack())
	}
}

// TestFairGateIsolation pins the core invariant: with the hostile tenant
// holding every slot it can get, the compliant tenant still acquires its
// full guaranteed share.
func TestFairGateIsolation(t *testing.T) {
	r := mustLoad(t, `{
	  "tenants": [
	    {"name": "compliant", "keys": ["c"], "weight": 3},
	    {"name": "hostile", "keys": ["h"], "weight": 1}
	  ],
	  "anonymous": {"disabled": true}
	}`)
	r.SetCapacity(8)
	compliant, _ := r.Resolve("c")
	hostile, _ := r.Resolve("h")

	var releases []func()
	hostileAdmitted := 0
	for i := 0; i < 50; i++ {
		if rel, v := r.Acquire(hostile); v == Admitted {
			releases = append(releases, rel)
			hostileAdmitted++
		}
	}
	if hostileAdmitted != hostile.Share() {
		t.Fatalf("hostile admitted %d, want its share %d", hostileAdmitted, hostile.Share())
	}
	for i := 0; i < compliant.Share(); i++ {
		rel, v := r.Acquire(compliant)
		if v != Admitted {
			t.Fatalf("compliant shed at in-flight %d, under its share %d", i, compliant.Share())
		}
		releases = append(releases, rel)
	}
	// Every slot is now held; one more from either tenant must shed.
	if _, v := r.Acquire(compliant); v == Admitted {
		t.Fatal("compliant admitted past capacity")
	}
	for _, rel := range releases {
		rel()
	}
	if compliant.InFlight() != 0 || hostile.InFlight() != 0 || r.borrowed.Load() != 0 {
		t.Fatalf("leaked slots: compliant %d hostile %d borrowed %d",
			compliant.InFlight(), hostile.InFlight(), r.borrowed.Load())
	}
}

// TestFairGateBorrow checks the slack pool: flooring remainder slots are
// first-come shared, and releasing a borrowed slot returns it.
func TestFairGateBorrow(t *testing.T) {
	r := mustLoad(t, `{
	  "tenants": [
	    {"name": "big", "keys": ["b"], "weight": 3},
	    {"name": "small", "keys": ["s"], "weight": 1}
	  ],
	  "anonymous": {"disabled": true}
	}`)
	r.SetCapacity(10) // shares 7/2, slack 1
	small, _ := r.Resolve("s")

	var rels []func()
	admitted := 0
	for i := 0; i < 10; i++ {
		if rel, v := r.Acquire(small); v == Admitted {
			rels = append(rels, rel)
			admitted++
		}
	}
	if admitted != 3 { // share 2 + slack 1
		t.Fatalf("small admitted %d, want 3 (share 2 + slack 1)", admitted)
	}
	rels[len(rels)-1]() // free the borrowed slot
	if rel, v := r.Acquire(small); v != Admitted {
		t.Fatal("borrow slot not returned on release")
	} else {
		rel()
	}
}

func TestPerTenantMaxInFlight(t *testing.T) {
	r := mustLoad(t, `{"tenants": [{"name": "capped", "keys": ["k"], "max_in_flight": 2}]}`)
	// No gate capacity: only the tenant's own cap applies.
	capped, _ := r.Resolve("k")
	r1, v1 := r.Acquire(capped)
	r2, v2 := r.Acquire(capped)
	if v1 != Admitted || v2 != Admitted {
		t.Fatal("under-cap acquires shed")
	}
	if _, v := r.Acquire(capped); v != RejectedQuota {
		t.Fatal("want RejectedQuota past the tenant max_in_flight cap")
	}
	r1()
	r2()
}

func TestTakeTokenRetryAfter(t *testing.T) {
	r := mustLoad(t, `{"tenants": [{"name": "slow", "keys": ["k"], "rps": 2, "burst": 1}]}`)
	slow, _ := r.Resolve("k")
	now := time.Now()
	if ok, _ := slow.TakeToken(now); !ok {
		t.Fatal("first token should admit (full bucket)")
	}
	ok, retry := slow.TakeToken(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	// At 2 rps an empty bucket refills one token in 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry = %v, want (0, 500ms]", retry)
	}
	if ok, _ := slow.TakeToken(now.Add(time.Second)); !ok {
		t.Fatal("bucket did not refill after 1s")
	}
	// Unlimited tenants never block.
	if ok, _ := r.Anonymous().TakeToken(now); !ok {
		t.Fatal("unlimited tenant blocked")
	}
}

// TestAcquireConcurrent exercises the gate under racy load so the atomics
// are vetted by -race, and checks nothing leaks.
func TestAcquireConcurrent(t *testing.T) {
	r := mustLoad(t, twoTenantCfg)
	r.SetCapacity(4)
	compliant, _ := r.Resolve("ck-1")
	hostile, _ := r.Resolve("hk-1")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		tn := compliant
		if i%2 == 0 {
			tn = hostile
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if rel, v := r.Acquire(tn); v == Admitted {
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if compliant.InFlight() != 0 || hostile.InFlight() != 0 || r.borrowed.Load() != 0 {
		t.Fatalf("leaked slots after churn: %d/%d/%d",
			compliant.InFlight(), hostile.InFlight(), r.borrowed.Load())
	}
}
