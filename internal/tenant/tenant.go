// Package tenant is the multi-tenant admission layer: API-key → tenant
// resolution from a JSON config file, per-tenant token-bucket quotas
// (request rate and max-in-flight), and a weighted-fair in-flight gate
// that turns a server's single global max-in-flight semaphore into
// guaranteed per-tenant shares plus a small shared borrow pool.
//
// The fairness model is deliberately simple enough to state as an
// invariant: given capacity C and per-tenant weights w_i, each tenant is
// guaranteed share_i = floor(C·w_i/Σw) in-flight slots, and the remainder
// C−Σshare_i forms a borrow pool any tenant may draw from. A tenant
// running below its guaranteed share is therefore never shed by the gate,
// no matter how hard every other tenant is saturating — which is exactly
// the noisy-neighbor property the isolation tests pin.
//
// Identity is bounded by construction: the set of tenants is fixed at
// config-load time (plus the built-in anonymous tenant), so anything
// keyed by tenant name — metric labels, fair shares, ownership records —
// has known cardinality. Unknown API keys resolve to an error, never to a
// fresh tenant.
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// AnonymousName is the reserved name of the built-in tenant that owns
// unauthenticated traffic (and, for compatibility, everything recorded
// before tenancy existed).
const AnonymousName = "anonymous"

// Resolution errors, mapped by the server to 401/403.
var (
	// ErrKeyRequired means anonymous access is disabled and the request
	// carried no API key (HTTP 401).
	ErrKeyRequired = errors.New("tenant: api key required")
	// ErrUnknownKey means the presented API key matches no configured
	// tenant — never silently downgraded to anonymous (HTTP 401).
	ErrUnknownKey = errors.New("tenant: unknown api key")
	// ErrDisabled means the key resolved to a tenant that is switched off
	// (HTTP 403).
	ErrDisabled = errors.New("tenant: tenant disabled")
)

// Quota is one tenant's admission budget. Zero values mean "unlimited"
// for that axis; the weighted-fair share still applies regardless.
type Quota struct {
	// RPS is the tenant's token-bucket refill rate in requests/second
	// across all gated routes. 0 disables the per-tenant rate check.
	RPS float64 `json:"rps,omitempty"`
	// Burst is the bucket capacity (0 → one second's worth of tokens,
	// minimum 1).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps this tenant's concurrently admitted requests even
	// when the fair gate would allow more. 0 disables the cap.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// TenantConfig is one tenant entry in the config file.
type TenantConfig struct {
	Name   string   `json:"name"`
	Keys   []string `json:"keys"`
	Weight int      `json:"weight,omitempty"`
	Quota
	Disabled bool `json:"disabled,omitempty"`
}

// AnonymousConfig overrides the built-in anonymous tenant. Disabled
// makes unauthenticated requests fail with 401 instead of admitting
// them under the anonymous budget.
type AnonymousConfig struct {
	Weight int `json:"weight,omitempty"`
	Quota
	Disabled bool `json:"disabled,omitempty"`
}

// Config is the -tenants file shape.
type Config struct {
	Tenants   []TenantConfig   `json:"tenants"`
	Anonymous *AnonymousConfig `json:"anonymous,omitempty"`
}

// Tenant is one resolved tenant plus its live admission state. The
// identity fields are immutable after registry construction; the
// in-flight counter and rate bucket are the mutable hot-path state.
type Tenant struct {
	Name     string
	Weight   int
	Quota    Quota
	Disabled bool

	// share is the guaranteed in-flight slot count computed by
	// SetCapacity; 0 when no capacity is configured.
	share    int64
	inflight atomic.Int64
	bucket   bucket
}

// Share reports the tenant's guaranteed in-flight slots under the
// current gate capacity.
func (t *Tenant) Share() int { return int(t.share) }

// InFlight reports the tenant's currently admitted request count.
func (t *Tenant) InFlight() int64 { return t.inflight.Load() }

// TakeToken spends one token from the tenant's rate bucket, reporting
// how long until a token is available when the bucket is empty. Tenants
// without an RPS quota always admit.
func (t *Tenant) TakeToken(now time.Time) (ok bool, retryAfter time.Duration) {
	if t.Quota.RPS <= 0 {
		return true, 0
	}
	burst := float64(t.Quota.Burst)
	if burst <= 0 {
		burst = math.Max(1, math.Ceil(t.Quota.RPS))
	}
	return t.bucket.take(t.Quota.RPS, burst, now)
}

// Registry resolves API keys to tenants and runs the weighted-fair
// in-flight gate. Build it once from config; resolution and admission
// are lock-free afterwards.
type Registry struct {
	tenants []*Tenant // configured tenants, file order
	anon    *Tenant
	byKey   map[string]*Tenant

	capacity int
	slack    int64
	borrowed atomic.Int64
}

// New builds a registry from cfg. A nil cfg yields the default single-
// tenant world: only the anonymous tenant, unlimited quota, weight 1 —
// admission behaves exactly like the pre-tenancy global semaphore.
func New(cfg *Config) (*Registry, error) {
	r := &Registry{byKey: make(map[string]*Tenant)}
	anon := &Tenant{Name: AnonymousName, Weight: 1}
	if cfg != nil && cfg.Anonymous != nil {
		a := cfg.Anonymous
		anon.Quota = a.Quota
		anon.Disabled = a.Disabled
		if a.Weight > 0 {
			anon.Weight = a.Weight
		}
	}
	r.anon = anon
	if cfg == nil {
		return r, nil
	}
	seenName := map[string]bool{AnonymousName: true}
	for i, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("tenant: tenants[%d]: name is required", i)
		}
		if seenName[tc.Name] {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q (note %q is reserved; override it via the top-level anonymous field)", tc.Name, AnonymousName)
		}
		seenName[tc.Name] = true
		if tc.Weight < 0 || tc.RPS < 0 || tc.Burst < 0 || tc.MaxInFlight < 0 {
			return nil, fmt.Errorf("tenant: tenant %q: negative weight or quota", tc.Name)
		}
		if len(tc.Keys) == 0 && !tc.Disabled {
			return nil, fmt.Errorf("tenant: tenant %q: at least one key is required", tc.Name)
		}
		t := &Tenant{Name: tc.Name, Weight: tc.Weight, Quota: tc.Quota, Disabled: tc.Disabled}
		if t.Weight == 0 {
			t.Weight = 1
		}
		for _, k := range tc.Keys {
			if k == "" {
				return nil, fmt.Errorf("tenant: tenant %q: empty key", tc.Name)
			}
			if _, dup := r.byKey[k]; dup {
				return nil, fmt.Errorf("tenant: key %q assigned to more than one tenant", k)
			}
			r.byKey[k] = t
		}
		r.tenants = append(r.tenants, t)
	}
	return r, nil
}

// Load parses a Config from JSON bytes, rejecting unknown fields so a
// typo in a quota name fails loudly instead of silently unlimiting.
func Load(data []byte) (*Registry, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("tenant: parse config: %w", err)
	}
	return New(&cfg)
}

// LoadFile reads and parses the -tenants config file.
func LoadFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	return Load(data)
}

// Resolve maps an API key (empty = no key presented) to its tenant.
func (r *Registry) Resolve(key string) (*Tenant, error) {
	if key == "" {
		if r.anon.Disabled {
			return nil, ErrKeyRequired
		}
		return r.anon, nil
	}
	t, ok := r.byKey[key]
	if !ok {
		return nil, ErrUnknownKey
	}
	if t.Disabled {
		return nil, ErrDisabled
	}
	return t, nil
}

// NameForKey maps an API key to a bounded label value: the tenant's name
// for known keys, AnonymousName for no key, "unknown" otherwise. Routers
// use it to label per-tenant metrics without taking an admission
// decision (backends own enforcement).
func (r *Registry) NameForKey(key string) string {
	if key == "" {
		return AnonymousName
	}
	if t, ok := r.byKey[key]; ok {
		return t.Name
	}
	return "unknown"
}

// Names returns every tenant name the registry can produce — the
// configured tenants plus the anonymous tenant — which is exactly the
// bounded label set metric families may use.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.tenants)+1)
	for _, t := range r.tenants {
		out = append(out, t.Name)
	}
	return append(out, AnonymousName)
}

// Anonymous returns the built-in anonymous tenant.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Capacity reports the gate capacity set by SetCapacity.
func (r *Registry) Capacity() int { return r.capacity }

// Slack reports the shared borrow pool size (capacity − Σ shares).
func (r *Registry) Slack() int { return int(r.slack) }

// SetCapacity distributes capacity c into guaranteed per-tenant shares
// by weight: share_i = floor(c·w_i/Σw) over the enabled tenants, with
// the flooring remainder kept as a shared borrow pool. c ≤ 0 disables
// the fair gate (per-tenant MaxInFlight quotas still apply). Call it
// once at boot, before traffic — shares are read without locks.
func (r *Registry) SetCapacity(c int) {
	r.capacity = c
	r.slack = 0
	all := append(append([]*Tenant{}, r.tenants...), r.anon)
	if c <= 0 {
		for _, t := range all {
			t.share = 0
		}
		return
	}
	sumW := 0
	for _, t := range all {
		if !t.Disabled {
			sumW += t.Weight
		}
	}
	assigned := 0
	for _, t := range all {
		if t.Disabled || sumW == 0 {
			t.share = 0
			continue
		}
		t.share = int64(c * t.Weight / sumW)
		assigned += int(t.share)
	}
	r.slack = int64(c - assigned)
}

// Verdict is the fair gate's admission decision.
type Verdict int

const (
	// Admitted means the request holds a slot until release is called.
	Admitted Verdict = iota
	// RejectedQuota means the tenant hit its own MaxInFlight quota.
	RejectedQuota
	// RejectedShare means the tenant's guaranteed share and the shared
	// borrow pool are both exhausted.
	RejectedShare
)

// Acquire admits one request for t through the weighted-fair gate,
// returning the release to defer (nil unless Admitted). Admission order:
// the tenant's own MaxInFlight quota, then the guaranteed share, then
// the shared borrow pool. A tenant below its guaranteed share is always
// admitted — the invariant the noisy-neighbor isolation rests on.
func (r *Registry) Acquire(t *Tenant) (release func(), v Verdict) {
	n := t.inflight.Add(1)
	if q := int64(t.Quota.MaxInFlight); q > 0 && n > q {
		t.inflight.Add(-1)
		return nil, RejectedQuota
	}
	if r.capacity <= 0 || n <= t.share {
		return func() { t.inflight.Add(-1) }, Admitted
	}
	if b := r.borrowed.Add(1); b <= r.slack {
		return func() {
			r.borrowed.Add(-1)
			t.inflight.Add(-1)
		}, Admitted
	}
	r.borrowed.Add(-1)
	t.inflight.Add(-1)
	return nil, RejectedShare
}

// bucket is a continuous-refill token bucket (one per tenant, mutex
// per-tenant so tenants never contend with each other).
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	primed bool
}

func (b *bucket) take(rate, burst float64, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		b.tokens = burst
		b.last = now
		b.primed = true
	}
	// Only forward time refills: now is read before the lock, so a late-
	// arriving earlier timestamp must not rewind last.
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(burst, b.tokens+elapsed*rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rate * float64(time.Second))
}
