package durable

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWALDecode hammers the frame decoder with arbitrary bytes. The decoder
// must never panic, never over-read, and never report more valid bytes than
// it was given; whatever frames it does surface must re-frame to a prefix of
// a well-formed segment.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte(segMagic))
	f.Add(seg([]byte("hello"), []byte("world")))
	torn := seg([]byte("first"), []byte("second"))
	f.Add(torn[:len(torn)-3])
	flipped := bytes.Clone(seg([]byte("payload")))
	flipped[len(flipped)-1] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte("CGWAL001\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("CGWAL001\xff\xff\xff\xff\xff\xff\xff\xff"))
	rec, _ := json.Marshal(Record{Type: RecTurn, TS: 1, Turn: &TurnRecord{SessionID: "s", Answer: "a"}})
	f.Add(seg(rec))

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, err := DecodeFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0, %d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("clean decode but valid = %d != len %d", valid, len(data))
		}
		if len(data) >= MagicLen && err == nil && valid < MagicLen {
			t.Fatalf("clean decode with valid %d < magic", valid)
		}
		// Re-framing the surfaced payloads must reproduce the valid prefix
		// byte for byte: decode is the exact inverse of append.
		if valid >= MagicLen {
			reframed := seg(payloads...)
			if !bytes.Equal(reframed, data[:valid]) {
				t.Fatalf("reframe mismatch: %d frames, valid %d", len(payloads), valid)
			}
		}
		// Surfaced record payloads must be safe to hand to State.Apply even
		// when they are not JSON at all (Apply only sees unmarshalled
		// records, but recovery skips unreadable payloads the same way).
		st := NewState()
		for _, p := range payloads {
			var r Record
			if json.Unmarshal(p, &r) == nil {
				st.Apply(&r)
			}
		}
	})
}
