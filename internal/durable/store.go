package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chatgraph/internal/graph"
	"chatgraph/internal/metrics"
)

// SyncPolicy selects how eagerly WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs the active segment from a background ticker —
	// the default: bounded data loss (one interval) at near-SyncNone
	// append latency.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no committed record is lost
	// even to an OS crash, at the cost of one fsync per record.
	SyncAlways
	// SyncNone never fsyncs explicitly. Records still survive a process
	// kill -9 (the kernel has the written bytes); only an OS crash or
	// power loss can eat the un-flushed tail.
	SyncNone
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// ParseSyncPolicy reads a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "", "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("durable: unknown sync policy %q (want always, interval, or none)", s)
	}
}

// DefaultSyncInterval is the background fsync cadence for SyncInterval.
const DefaultSyncInterval = 100 * time.Millisecond

// Options configures Open.
type Options struct {
	// Dir is the data directory; Open creates it (plus wal/, blobs/,
	// snap/) as needed.
	Dir string
	// Sync is the WAL fsync policy (zero value → SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval
	// (0 → DefaultSyncInterval).
	SyncInterval time.Duration
	// Metrics is the registry the store instruments into (nil →
	// metrics.Default()).
	Metrics *metrics.Registry
}

// storeMetrics are the persistence instruments.
type storeMetrics struct {
	appends      *metrics.Counter
	appendErrs   *metrics.Counter
	walBytes     *metrics.Counter
	fsyncs       *metrics.Counter
	snapshots    *metrics.Counter
	snapshotErrs *metrics.Counter
	blobsWritten *metrics.Counter
	truncations  *metrics.Counter
	activeSeg    *metrics.Gauge
	snapSessions *metrics.Gauge
	snapGraphs   *metrics.Gauge
	snapJobs     *metrics.Gauge
}

func newStoreMetrics(reg *metrics.Registry, s *Store) *storeMetrics {
	m := &storeMetrics{
		appends: reg.Counter("chatgraph_wal_appends_total",
			"Records appended to the WAL.", nil),
		appendErrs: reg.Counter("chatgraph_wal_append_errors_total",
			"WAL appends that failed to reach the segment file.", nil),
		walBytes: reg.Counter("chatgraph_wal_bytes_total",
			"Bytes written to WAL segments (frames incl. headers).", nil),
		fsyncs: reg.Counter("chatgraph_wal_fsyncs_total",
			"fsync calls issued on the active WAL segment.", nil),
		snapshots: reg.Counter("chatgraph_snapshots_total",
			"Snapshot manifests written.", nil),
		snapshotErrs: reg.Counter("chatgraph_snapshot_errors_total",
			"Snapshot attempts that failed.", nil),
		blobsWritten: reg.Counter("chatgraph_blobs_written_total",
			"Content-addressed graph blobs written (first sight of a content).", nil),
		truncations: reg.Counter("chatgraph_replay_truncations_total",
			"WAL segments cut at the first invalid frame during replay.", nil),
		activeSeg: reg.Gauge("chatgraph_wal_active_segment",
			"Sequence number of the open WAL segment.", nil),
		snapSessions: reg.Gauge("chatgraph_snapshot_sessions",
			"Sessions captured by the latest snapshot.", nil),
		snapGraphs: reg.Gauge("chatgraph_snapshot_graphs",
			"Graph blobs referenced by the latest snapshot.", nil),
		snapJobs: reg.Gauge("chatgraph_snapshot_jobs",
			"Job records captured by the latest snapshot.", nil),
	}
	reg.GaugeFunc("chatgraph_replay_duration_seconds",
		"Wall-clock time boot recovery spent loading the snapshot and replaying the WAL.", nil,
		func() float64 { return math.Float64frombits(s.replayDur.Load()) })
	reg.GaugeFunc("chatgraph_snapshot_last_unix",
		"Unix time of the latest snapshot (0 = none since boot).", nil,
		func() float64 { return float64(s.lastSnap.Load()) })
	return m
}

// Store owns one data directory: the active WAL segment, the blob store,
// and the snapshot manifests. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	met  *storeMetrics

	// mu guards the active segment (file handle, sequence, dirty flag) and
	// snapshot rotation.
	mu      sync.Mutex
	seg     *os.File
	segSeq  uint64
	dirty   bool
	closed  bool
	snapSeq uint64

	// blobMu guards the blob indexes. blobByExact short-circuits repeat
	// uploads of a content this process has already persisted without
	// re-marshaling; blobSHAs is every blob known committed on disk, the
	// set the next manifest references.
	blobMu      sync.Mutex
	blobByExact map[graph.ExactHash]string
	blobSHAs    map[string]bool

	stopSync chan struct{}
	syncWG   sync.WaitGroup

	replayDur atomic.Uint64 // float64 bits
	lastSnap  atomic.Int64  // unix seconds
}

func (s *Store) walDir() string  { return filepath.Join(s.dir, "wal") }
func (s *Store) blobDir() string { return filepath.Join(s.dir, "blobs") }
func (s *Store) snapDir() string { return filepath.Join(s.dir, "snap") }

func segName(seq uint64) string  { return fmt.Sprintf("seg-%08d.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.json", seq) }

// parseSeq extracts the sequence number from a seg-/snap- filename.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open initializes the data directory, recovers the persisted state (latest
// valid snapshot + WAL replay with torn-tail truncation), opens a fresh WAL
// segment for this process's appends, and returns both. A brand-new
// directory yields an empty State.
func Open(opts Options) (*Store, *State, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("durable: data dir is required")
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	s := &Store{
		dir:         opts.Dir,
		opts:        opts,
		blobByExact: make(map[graph.ExactHash]string),
		blobSHAs:    make(map[string]bool),
		stopSync:    make(chan struct{}),
	}
	s.met = newStoreMetrics(reg, s)
	for _, d := range []string{s.dir, s.walDir(), s.blobDir(), s.snapDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("durable: %w", err)
		}
	}

	start := time.Now()
	st, maxSeq, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	s.replayDur.Store(math.Float64bits(time.Since(start).Seconds()))

	// Index the blobs the recovered state references so PersistGraph does
	// not rewrite (or re-log) a content that is already committed.
	s.blobMu.Lock()
	for _, sha := range st.Graphs {
		s.blobSHAs[sha] = true
	}
	s.blobMu.Unlock()

	// Appends from this incarnation go to a fresh segment — replayed
	// segments are never appended to, so their valid prefix is immutable.
	if err := s.openSegment(maxSeq + 1); err != nil {
		return nil, nil, err
	}
	if s.opts.Sync == SyncInterval {
		s.syncWG.Add(1)
		go s.syncLoop()
	}
	return s, st, nil
}

// recover loads the newest parseable snapshot and replays every WAL segment
// at or after its sequence. It returns the merged state and the highest
// sequence number seen (snapshot or segment), so the caller can open the
// next segment.
func (s *Store) recover() (*State, uint64, error) {
	st := NewState()
	var maxSeq uint64

	// Newest valid snapshot wins; older ones are only fallbacks for a
	// manifest torn mid-write by a crash (the temp+rename protocol makes
	// that nearly impossible, but reading is cheap insurance).
	snaps, err := os.ReadDir(s.snapDir())
	if err != nil {
		return nil, 0, fmt.Errorf("durable: %w", err)
	}
	var snapSeqs []uint64
	for _, e := range snaps {
		if seq, ok := parseSeq(e.Name(), "snap-", ".json"); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	for _, seq := range snapSeqs {
		data, err := os.ReadFile(filepath.Join(s.snapDir(), snapName(seq)))
		if err != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(data, &m) != nil || m.Version != manifestVersion {
			continue
		}
		st.loadManifest(&m)
		s.snapSeq = m.Seq
		if seq > maxSeq {
			maxSeq = seq
		}
		break
	}

	segs, err := os.ReadDir(s.walDir())
	if err != nil {
		return nil, 0, fmt.Errorf("durable: %w", err)
	}
	var segSeqs []uint64
	for _, e := range segs {
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok {
			segSeqs = append(segSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	for _, seq := range segSeqs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq < s.snapSeq {
			// Fully covered by the snapshot; a crash between manifest write
			// and pruning leaves these behind.
			continue
		}
		path := filepath.Join(s.walDir(), segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("durable: %w", err)
		}
		payloads, valid, decErr := DecodeFrames(data)
		for _, p := range payloads {
			var rec Record
			if json.Unmarshal(p, &rec) != nil {
				// An intact frame with an unreadable record is a version
				// skew problem, not corruption; skip it.
				continue
			}
			st.Apply(&rec)
		}
		if decErr != nil {
			// Torn tail (the expected crash artifact on the last segment)
			// or mid-file corruption: keep the valid prefix, cut the rest so
			// the next recovery does not re-detect it.
			st.Truncations++
			s.met.truncations.Inc()
			if valid < len(data) {
				if err := os.Truncate(path, int64(valid)); err != nil {
					return nil, 0, fmt.Errorf("durable: truncate torn segment %s: %w", path, err)
				}
			}
		}
	}
	return st, maxSeq, nil
}

// openSegment creates and syncs the new active segment. Caller must not
// hold mu (Open) or must hold it (rotation) — it touches only seg/segSeq,
// which the caller owns at both call sites.
func (s *Store) openSegment(seq uint64) error {
	path := filepath.Join(s.walDir(), segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	s.met.fsyncs.Inc()
	if err := syncDir(s.walDir()); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	s.segSeq = seq
	s.met.activeSeg.Set(int64(seq))
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives an OS crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", dir, err)
	}
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (s *Store) syncLoop() {
	defer s.syncWG.Done()
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			if s.dirty && !s.closed {
				s.dirty = false
				s.seg.Sync() //nolint:errcheck // best effort; append errors are counted
				s.met.fsyncs.Inc()
			}
			s.mu.Unlock()
		}
	}
}

// Append frames rec and writes it to the active segment under the
// configured sync policy. The serving layer treats append failures as
// log-and-continue (counted in chatgraph_wal_append_errors_total): losing
// durability must not take down serving.
func (s *Store) Append(rec *Record) error {
	if rec.TS == 0 {
		rec.TS = time.Now().UnixNano()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.met.appendErrs.Inc()
		return fmt.Errorf("durable: encode record: %w", err)
	}
	if len(payload) > MaxRecordLen {
		s.met.appendErrs.Inc()
		return fmt.Errorf("durable: record too large (%d bytes)", len(payload))
	}
	frame := AppendFrame(nil, payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.met.appendErrs.Inc()
		return fmt.Errorf("durable: store closed")
	}
	if _, err := s.seg.Write(frame); err != nil {
		s.met.appendErrs.Inc()
		return fmt.Errorf("durable: append: %w", err)
	}
	s.met.appends.Inc()
	s.met.walBytes.Add(uint64(len(frame)))
	switch s.opts.Sync {
	case SyncAlways:
		if err := s.seg.Sync(); err != nil {
			s.met.appendErrs.Inc()
			return fmt.Errorf("durable: fsync: %w", err)
		}
		s.met.fsyncs.Inc()
	case SyncInterval:
		s.dirty = true
	}
	return nil
}

// Typed append helpers — one per record type the serving layer emits.

// LogSessionCreate records a session coming alive under its owning
// tenant (empty tenant → anonymous).
func (s *Store) LogSessionCreate(id string, created time.Time, tenant string) error {
	return s.Append(&Record{Type: RecSessionCreate, Session: &SessionRecord{ID: id, CreatedUnixNS: created.UnixNano(), Tenant: tenant}})
}

// LogSessionDelete records an explicit session delete.
func (s *Store) LogSessionDelete(id string) error {
	return s.Append(&Record{Type: RecSessionDelete, Session: &SessionRecord{ID: id}})
}

// LogTurn records one completed chat exchange.
func (s *Store) LogTurn(t TurnRecord) error {
	return s.Append(&Record{Type: RecTurn, Turn: &t})
}

// LogJobSubmit records an accepted async job.
func (s *Store) LogJobSubmit(j JobRecord) error {
	return s.Append(&Record{Type: RecJobSubmit, Job: &j})
}

// LogJobDone records a job's terminal transition.
func (s *Store) LogJobDone(j JobRecord) error {
	return s.Append(&Record{Type: RecJobDone, Job: &j})
}

// PersistGraph commits g to the blob store and returns its durable identity
// (SHA-256 hex of the canonical JSON wire form). The blob is written once —
// repeat uploads of the same content return the recorded SHA without
// touching disk — and a graph record is appended to the WAL on first sight
// so recovery knows the blob is live. The in-memory exact hash only
// short-circuits re-marshaling; it never names anything on disk (it is
// per-process seeded by design).
func (s *Store) PersistGraph(g *graph.Graph) (string, error) {
	if g == nil {
		return "", nil
	}
	exact := g.ExactHash()
	s.blobMu.Lock()
	defer s.blobMu.Unlock()
	if sha, ok := s.blobByExact[exact]; ok {
		return sha, nil
	}
	data, err := g.MarshalJSON()
	if err != nil {
		return "", fmt.Errorf("durable: encode graph: %w", err)
	}
	sum := sha256.Sum256(data)
	sha := hex.EncodeToString(sum[:])
	if !s.blobSHAs[sha] {
		if err := writeFileAtomic(filepath.Join(s.blobDir(), sha+".json"), data); err != nil {
			return "", err
		}
		if err := syncDir(s.blobDir()); err != nil {
			return "", err
		}
		s.met.blobsWritten.Inc()
		s.blobSHAs[sha] = true
		// Log after the blob is durable, so a graph record never references
		// a blob that a crash could have eaten.
		if err := s.Append(&Record{Type: RecGraph, Graph: &GraphRecord{SHA: sha}}); err != nil {
			return "", err
		}
	}
	s.blobByExact[exact] = sha
	return sha, nil
}

// LoadGraph reads a blob back into a graph, verifying its content hash
// matches the filename it was addressed by.
func (s *Store) LoadGraph(sha string) (*graph.Graph, error) {
	data, err := os.ReadFile(filepath.Join(s.blobDir(), sha+".json"))
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != sha {
		return nil, fmt.Errorf("durable: blob %s content does not match its address", sha)
	}
	g, err := graph.ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("durable: blob %s: %w", sha, err)
	}
	return g, nil
}

// BlobSHAs returns every blob committed (written or recovered) so far, the
// set a manifest references.
func (s *Store) BlobSHAs() []string {
	s.blobMu.Lock()
	defer s.blobMu.Unlock()
	out := make([]string, 0, len(s.blobSHAs))
	for sha := range s.blobSHAs {
		out = append(out, sha)
	}
	sort.Strings(out)
	return out
}

// Snapshot checkpoints the serving state: it rotates the WAL to a fresh
// segment, asks build for the live sessions and jobs, writes the manifest
// atomically, and prunes WAL segments and snapshots the new manifest
// supersedes.
//
// Ordering makes this crash-safe at every step: the rotation happens
// *before* build runs, so the manifest is a superset of every record in the
// pruned segments (records landing in the new segment during build are
// replayed on top of the manifest, which is idempotent). A crash after
// rotation but before the manifest write just leaves one extra segment to
// replay.
func (s *Store) Snapshot(build func() ([]ManifestSession, []JobRecord)) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("durable: store closed")
	}
	if err := s.seg.Sync(); err != nil {
		s.mu.Unlock()
		s.met.snapshotErrs.Inc()
		return fmt.Errorf("durable: sync before rotate: %w", err)
	}
	s.met.fsyncs.Inc()
	if err := s.seg.Close(); err != nil {
		s.mu.Unlock()
		s.met.snapshotErrs.Inc()
		return fmt.Errorf("durable: close segment: %w", err)
	}
	newSeq := s.segSeq + 1
	if err := s.openSegment(newSeq); err != nil {
		// The old segment is closed; the store cannot continue. Callers
		// treat this as fatal.
		s.closed = true
		s.mu.Unlock()
		s.met.snapshotErrs.Inc()
		return err
	}
	s.mu.Unlock()

	sessions, jobsList := build()
	m := Manifest{
		Version:     manifestVersion,
		Seq:         newSeq,
		TakenUnixNS: time.Now().UnixNano(),
		Sessions:    sessions,
		Graphs:      s.BlobSHAs(),
		Jobs:        jobsList,
	}
	data, err := json.Marshal(&m)
	if err != nil {
		s.met.snapshotErrs.Inc()
		return fmt.Errorf("durable: encode manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.snapDir(), snapName(newSeq)), data); err != nil {
		s.met.snapshotErrs.Inc()
		return err
	}
	if err := syncDir(s.snapDir()); err != nil {
		s.met.snapshotErrs.Inc()
		return err
	}

	s.mu.Lock()
	s.snapSeq = newSeq
	s.mu.Unlock()
	s.met.snapshots.Inc()
	s.lastSnap.Store(time.Now().Unix())
	s.met.snapSessions.Set(int64(len(m.Sessions)))
	s.met.snapGraphs.Set(int64(len(m.Graphs)))
	s.met.snapJobs.Set(int64(len(m.Jobs)))

	// Prune: segments below the manifest's seq are fully covered by it;
	// snapshots below it are superseded. Failures here are cosmetic (extra
	// files, all ignored or deduped by the next recovery), so they are not
	// surfaced.
	if ents, err := os.ReadDir(s.walDir()); err == nil {
		for _, e := range ents {
			if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok && seq < newSeq {
				os.Remove(filepath.Join(s.walDir(), e.Name())) //nolint:errcheck
			}
		}
	}
	if ents, err := os.ReadDir(s.snapDir()); err == nil {
		for _, e := range ents {
			if seq, ok := parseSeq(e.Name(), "snap-", ".json"); ok && seq < newSeq {
				os.Remove(filepath.Join(s.snapDir(), e.Name())) //nolint:errcheck
			}
		}
	}
	return nil
}

// Close flushes and closes the active segment. Call it after the final
// Snapshot; appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.stopSync)
	s.mu.Unlock()
	s.syncWG.Wait()
	s.mu.Lock()
	if err := s.seg.Sync(); err != nil {
		s.seg.Close()
		return fmt.Errorf("durable: %w", err)
	}
	s.met.fsyncs.Inc()
	return s.seg.Close()
}

// Abort closes the store without flushing — the in-process stand-in for
// kill -9 in crash-recovery tests. Bytes already written to the segment
// survive (the OS has them); nothing else is promised.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.stopSync)
	s.seg.Close() //nolint:errcheck // crash semantics: no flush, no error handling
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so a crash leaves either the old file or the new one —
// never a torn half.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}
