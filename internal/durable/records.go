// Package durable is the persistence subsystem: an append-only WAL of
// CRC32C-framed JSON records for session lifecycle events, chat transcript
// entries, and job submissions/terminal states; content-addressed graph
// blobs (written once, never rewritten); and periodic snapshot manifests
// after which the WAL is rotated and old segments pruned. On boot, Open
// loads the latest valid snapshot, replays every surviving WAL segment on
// top of it (truncating a torn tail), and hands the merged State to the
// serving layer so a restart — graceful or kill -9 — loses nothing that
// reached the log.
//
// Identity note: the in-memory graph hashes (graph.ContentHash/ExactHash)
// are seeded with per-process entropy as cache-poisoning hardening, so they
// cannot name anything on disk. Durable graph identity is the SHA-256 of
// the canonical JSON wire form — a deliberate stable-key policy, echoing
// the entity-canonicalization lesson from the cross-lingual entity-linking
// work: durable identity is chosen, not inherited from process lifetime.
package durable

import (
	"encoding/json"
	"time"
)

// RecordType tags one WAL record's payload shape.
type RecordType string

// The record types the serving layer appends.
const (
	// RecSessionCreate marks a v1 session coming alive.
	RecSessionCreate RecordType = "session_create"
	// RecSessionDelete marks an explicit session delete (TTL expiry is not
	// logged; recovery re-applies the TTL against record timestamps).
	RecSessionDelete RecordType = "session_delete"
	// RecTurn is one completed chat exchange on a session.
	RecTurn RecordType = "turn"
	// RecGraph marks a graph blob committed to the blob store.
	RecGraph RecordType = "graph"
	// RecJobSubmit is an async job accepted into the queue.
	RecJobSubmit RecordType = "job_submit"
	// RecJobDone is an async job's terminal transition (done, failed, or
	// cancelled), carrying the result or error.
	RecJobDone RecordType = "job_done"
)

// Record is the envelope every WAL frame carries: a type tag, a timestamp,
// and exactly one populated payload field.
type Record struct {
	Type RecordType `json:"t"`
	// TS is the append wall-clock time in unix nanoseconds. Recovery uses
	// it to approximate each session's idle clock for TTL filtering.
	TS      int64          `json:"ts"`
	Session *SessionRecord `json:"session,omitempty"`
	Turn    *TurnRecord    `json:"turn,omitempty"`
	Graph   *GraphRecord   `json:"graph,omitempty"`
	Job     *JobRecord     `json:"job,omitempty"`
}

// SessionRecord identifies a session for create/delete events.
type SessionRecord struct {
	ID string `json:"id"`
	// CreatedUnixNS is set on RecSessionCreate only.
	CreatedUnixNS int64 `json:"created_unix_ns,omitempty"`
	// Tenant names the owning tenant on RecSessionCreate. Empty (all
	// pre-tenancy WALs) recovers as the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
}

// TurnRecord is one transcript entry in the same wire shape the transcript
// files use: the chain is stored in its text form and re-parsed on replay.
type TurnRecord struct {
	SessionID string `json:"session_id"`
	// Index is the turn's dense position in the session history; replay
	// appends a turn only when Index is the next free slot, which makes
	// records that overlap a snapshot harmless.
	Index     int    `json:"index"`
	Question  string `json:"question"`
	Kind      string `json:"kind"`
	Chain     string `json:"chain"`
	Answer    string `json:"answer"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// GraphRecord marks a content-addressed blob as committed. SHA is the
// SHA-256 hex of the graph's canonical JSON wire form — the blob filename.
type GraphRecord struct {
	SHA string `json:"sha"`
}

// JobRecord is an async job's durable form, written once at submission
// (state "queued") and once at the terminal transition (with result or
// error). A job whose submit record survives a crash without a matching
// terminal record is restored as failed ("interrupted by restart").
type JobRecord struct {
	ID string `json:"id"`
	// Tenant names the owning tenant (empty → anonymous).
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority"`
	Question string `json:"question,omitempty"`
	Chain    string `json:"chain,omitempty"`
	// GraphSHA names the job's uploaded graph blob, when it had one.
	GraphSHA string `json:"graph_sha,omitempty"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	// Result is the job's wire-form result (the chat response JSON) for
	// state "done".
	Result          json.RawMessage `json:"result,omitempty"`
	SubmittedUnixNS int64           `json:"submitted_unix_ns,omitempty"`
	StartedUnixNS   int64           `json:"started_unix_ns,omitempty"`
	FinishedUnixNS  int64           `json:"finished_unix_ns,omitempty"`
}

// ManifestSession is one live session's full state inside a snapshot.
type ManifestSession struct {
	ID             string       `json:"id"`
	Tenant         string       `json:"tenant,omitempty"`
	CreatedUnixNS  int64        `json:"created_unix_ns"`
	LastUsedUnixNS int64        `json:"last_used_unix_ns"`
	Turns          []TurnRecord `json:"turns,omitempty"`
}

// Manifest is one snapshot: the full serving state at a point in time plus
// the WAL sequence number replay must resume from. Graph blobs are not
// embedded — they are content-addressed files the manifest references by
// SHA.
type Manifest struct {
	Version int `json:"version"`
	// Seq is the first WAL segment whose records are NOT fully covered by
	// this manifest: recovery loads the manifest, then replays segments
	// with sequence >= Seq (overlapping records re-apply idempotently).
	Seq         uint64            `json:"seq"`
	TakenUnixNS int64             `json:"taken_unix_ns"`
	Sessions    []ManifestSession `json:"sessions"`
	Graphs      []string          `json:"graphs"`
	Jobs        []JobRecord       `json:"jobs"`
}

// manifestVersion guards the snapshot schema.
const manifestVersion = 1

// SessionState is one session's recovered state.
type SessionState struct {
	ID       string
	Tenant   string
	Created  time.Time
	LastUsed time.Time
	Turns    []TurnRecord
}

// State is the merged outcome of snapshot load plus WAL replay — everything
// the serving layer needs to rebuild itself.
type State struct {
	// Sessions maps session ID to its recovered state (creates minus
	// deletes; TTL filtering is the caller's policy, applied against
	// LastUsed).
	Sessions map[string]*SessionState
	// Graphs lists committed blob SHAs in first-seen order.
	Graphs []string
	// Jobs maps job ID to its latest record; non-terminal entries are jobs
	// whose submit record survived but whose terminal record did not.
	Jobs map[string]*JobRecord

	// Records counts replayed WAL records; Truncations counts segments
	// whose tail (or body) had to be cut at the first invalid frame.
	Records     int
	Truncations int

	graphSeen map[string]bool
}

// NewState returns an empty recovered state (what a fresh data dir yields).
func NewState() *State {
	return &State{
		Sessions:  make(map[string]*SessionState),
		Jobs:      make(map[string]*JobRecord),
		graphSeen: make(map[string]bool),
	}
}

// loadManifest seeds the state from a snapshot.
func (st *State) loadManifest(m *Manifest) {
	for i := range m.Sessions {
		ms := &m.Sessions[i]
		st.Sessions[ms.ID] = &SessionState{
			ID:       ms.ID,
			Tenant:   ms.Tenant,
			Created:  time.Unix(0, ms.CreatedUnixNS),
			LastUsed: time.Unix(0, ms.LastUsedUnixNS),
			Turns:    append([]TurnRecord(nil), ms.Turns...),
		}
	}
	for _, sha := range m.Graphs {
		st.addGraph(sha)
	}
	for i := range m.Jobs {
		j := m.Jobs[i]
		st.Jobs[j.ID] = &j
	}
}

func (st *State) addGraph(sha string) {
	if sha == "" || st.graphSeen[sha] {
		return
	}
	st.graphSeen[sha] = true
	st.Graphs = append(st.Graphs, sha)
}

// Apply merges one replayed record into the state. Every case is
// idempotent, so records that overlap the snapshot (or a double-applied
// rotation window) cannot corrupt the merge.
func (st *State) Apply(rec *Record) {
	st.Records++
	ts := time.Unix(0, rec.TS)
	switch rec.Type {
	case RecSessionCreate:
		if rec.Session == nil {
			return
		}
		if _, ok := st.Sessions[rec.Session.ID]; ok {
			return
		}
		created := ts
		if rec.Session.CreatedUnixNS != 0 {
			created = time.Unix(0, rec.Session.CreatedUnixNS)
		}
		st.Sessions[rec.Session.ID] = &SessionState{
			ID:       rec.Session.ID,
			Tenant:   rec.Session.Tenant,
			Created:  created,
			LastUsed: ts,
		}
	case RecSessionDelete:
		if rec.Session == nil {
			return
		}
		delete(st.Sessions, rec.Session.ID)
	case RecTurn:
		if rec.Turn == nil {
			return
		}
		s, ok := st.Sessions[rec.Turn.SessionID]
		if !ok {
			return
		}
		// Dense-index append: a turn replayed twice (snapshot overlap) or
		// out of order lands on an occupied slot and is dropped.
		if rec.Turn.Index == len(s.Turns) {
			s.Turns = append(s.Turns, *rec.Turn)
		}
		if ts.After(s.LastUsed) {
			s.LastUsed = ts
		}
	case RecGraph:
		if rec.Graph == nil {
			return
		}
		st.addGraph(rec.Graph.SHA)
	case RecJobSubmit:
		if rec.Job == nil {
			return
		}
		if _, ok := st.Jobs[rec.Job.ID]; ok {
			return
		}
		j := *rec.Job
		st.Jobs[rec.Job.ID] = &j
	case RecJobDone:
		if rec.Job == nil {
			return
		}
		// The terminal record always wins, but keep submission metadata the
		// terminal record does not re-carry.
		j := *rec.Job
		if prev, ok := st.Jobs[j.ID]; ok {
			if j.Question == "" {
				j.Question = prev.Question
			}
			if j.Chain == "" {
				j.Chain = prev.Chain
			}
			if j.GraphSHA == "" {
				j.GraphSHA = prev.GraphSHA
			}
			if j.Tenant == "" {
				j.Tenant = prev.Tenant
			}
			if j.SubmittedUnixNS == 0 {
				j.SubmittedUnixNS = prev.SubmittedUnixNS
			}
		}
		st.Jobs[j.ID] = &j
	}
}
