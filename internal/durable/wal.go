package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Segment layout: an 8-byte magic header, then frames back to back. Each
// frame is
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// A reader stops at the first frame that fails any check — short header,
// zero or oversized length, payload running past the data, or a CRC
// mismatch — and reports the byte offset of the end of the last intact
// frame, which is exactly where a torn tail is truncated to.

// segMagic opens every WAL segment; a file without it is not a segment.
const segMagic = "CGWAL001"

// MagicLen is the segment header size in bytes.
const MagicLen = len(segMagic)

// frameHeaderLen is the per-frame length + CRC prefix.
const frameHeaderLen = 8

// MaxRecordLen bounds one frame's payload. The largest legitimate record
// is a job-done carrying a chat response; 16 MiB leaves room above the
// 8 MiB request-body cap while keeping a corrupted length field from
// asking the reader to trust a gigabyte.
const MaxRecordLen = 16 << 20

// castagnoli is the CRC32C table (the checksum most WAL formats use; the
// stdlib computes it with SSE4.2/ARMv8 instructions where available).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed payload to buf and returns the extended
// slice. Framing never fails; oversized payloads are the append path's
// responsibility to reject before framing.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeFrames walks a full segment image (magic header included) and
// returns every intact payload in order, plus the byte offset of the end of
// the last intact frame — the length a torn segment should be truncated to.
// A segment that fails its magic check yields valid == 0. err describes the
// first corruption and is nil only when every byte was consumed by intact
// frames; the payloads before the corruption are still returned. Returned
// payloads alias data.
func DecodeFrames(data []byte) (payloads [][]byte, valid int, err error) {
	if len(data) < MagicLen || string(data[:MagicLen]) != segMagic {
		return nil, 0, fmt.Errorf("durable: bad segment magic")
	}
	off := MagicLen
	for off < len(data) {
		// All arithmetic below is int math on values bounded by
		// MaxRecordLen, so a hostile length field cannot overflow or
		// over-read.
		if len(data)-off < frameHeaderLen {
			return payloads, off, fmt.Errorf("durable: torn frame header at offset %d", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || n > MaxRecordLen {
			return payloads, off, fmt.Errorf("durable: implausible frame length %d at offset %d", n, off)
		}
		if len(data)-off-frameHeaderLen < n {
			return payloads, off, fmt.Errorf("durable: torn frame payload at offset %d", off)
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != want {
			return payloads, off, fmt.Errorf("durable: frame checksum mismatch at offset %d", off)
		}
		payloads = append(payloads, payload)
		off += frameHeaderLen + n
	}
	return payloads, off, nil
}
