package durable

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// seg builds a segment image: magic plus the given payloads framed.
func seg(payloads ...[]byte) []byte {
	buf := []byte(segMagic)
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	return buf
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		[]byte(""),
		bytes.Repeat([]byte{0xAB}, 4096),
		[]byte(`{"t":"turn","ts":1}`),
	}
	// Zero-length payloads are rejected on decode, so skip the empty one when
	// framing — Append never writes empty records (every Record marshals to
	// at least "{}").
	data := seg(payloads[0], payloads[2], payloads[3])
	got, valid, err := DecodeFrames(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if valid != len(data) {
		t.Fatalf("valid = %d, want %d", valid, len(data))
	}
	want := [][]byte{payloads[0], payloads[2], payloads[3]}
	if len(got) != len(want) {
		t.Fatalf("frames = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("CG"), []byte("NOTMAGIC" + "xxxx")} {
		if _, valid, err := DecodeFrames(data); err == nil || valid != 0 {
			t.Fatalf("DecodeFrames(%q) = valid %d, err %v; want error and 0", data, valid, err)
		}
	}
}

// TestDecodeTornTail verifies the crash-recovery contract: a segment whose
// final frame was cut mid-write decodes every intact frame and reports the
// byte offset recovery should truncate to.
func TestDecodeTornTail(t *testing.T) {
	a, b := []byte("first record"), []byte("second record")
	full := seg(a, b)
	intact := seg(a)
	for cut := len(intact) + 1; cut < len(full); cut++ {
		got, valid, err := DecodeFrames(full[:cut])
		if err == nil {
			t.Fatalf("cut %d: expected torn-tail error", cut)
		}
		if valid != len(intact) {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, len(intact))
		}
		if len(got) != 1 || !bytes.Equal(got[0], a) {
			t.Fatalf("cut %d: frames = %q", cut, got)
		}
	}
}

// TestDecodeBitFlip flips each byte of a framed payload in turn and checks
// the CRC catches it without surfacing a corrupt record.
func TestDecodeBitFlip(t *testing.T) {
	a := []byte("the payload under test")
	data := seg(a)
	for i := MagicLen; i < len(data); i++ {
		corrupt := bytes.Clone(data)
		corrupt[i] ^= 0x40
		got, _, err := DecodeFrames(corrupt)
		if err == nil {
			// A flip anywhere — length, CRC, or payload — must fail the
			// frame, never surface altered bytes as a valid record.
			t.Fatalf("flip at %d: decode succeeded with %d frames", i, len(got))
		}
		if len(got) != 0 {
			t.Fatalf("flip at %d: surfaced %d corrupt frames", i, len(got))
		}
	}
}

func TestDecodeOversizedFrame(t *testing.T) {
	data := []byte(segMagic)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordLen+1)
	binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	data = append(data, hdr[:]...)
	// No payload bytes follow: a naive decoder would try to slice 16MiB+1.
	got, valid, err := DecodeFrames(data)
	if err == nil {
		t.Fatal("expected error for oversized frame")
	}
	if valid != MagicLen {
		t.Fatalf("valid = %d, want %d", valid, MagicLen)
	}
	if len(got) != 0 {
		t.Fatalf("frames = %d, want 0", len(got))
	}
}

func TestDecodeZeroLengthFrame(t *testing.T) {
	data := []byte(segMagic)
	var hdr [frameHeaderLen]byte
	data = append(data, hdr[:]...)
	if _, valid, err := DecodeFrames(data); err == nil || valid != MagicLen {
		t.Fatalf("zero-length frame: valid %d, err %v", valid, err)
	}
}
