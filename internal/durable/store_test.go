package durable

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"chatgraph/internal/graph"
)

func openStore(t *testing.T, dir string, sync SyncPolicy) (*Store, *State) {
	t.Helper()
	st, state, err := Open(Options{Dir: dir, Sync: sync})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return st, state
}

func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	st, state := openStore(t, dir, SyncAlways)
	if len(state.Sessions) != 0 || state.Records != 0 {
		t.Fatalf("fresh dir state = %+v", state)
	}

	created := time.Now()
	if err := st.LogSessionCreate("sess-1", created, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogTurn(TurnRecord{SessionID: "sess-1", Index: 0, Question: "q0", Kind: "social", Chain: "graph.stats", Answer: "a0", ElapsedMS: 12}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogTurn(TurnRecord{SessionID: "sess-1", Index: 1, Question: "q1", Answer: "a1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogSessionCreate("sess-2", created, ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogSessionDelete("sess-2"); err != nil {
		t.Fatal(err)
	}
	if err := st.LogJobSubmit(JobRecord{ID: "job-1", Priority: "normal", Question: "count", State: "queued", SubmittedUnixNS: 100}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogJobDone(JobRecord{ID: "job-1", Priority: "normal", State: "done", Result: []byte(`{"answer":"42"}`), SubmittedUnixNS: 100, FinishedUnixNS: 200}); err != nil {
		t.Fatal(err)
	}

	g := graph.PlantedCommunities(2, 8, 0.5, 0.05, rand.New(rand.NewSource(7)))
	sha, err := st.PersistGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if sha == "" {
		t.Fatal("empty graph sha")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openStore(t, dir, SyncAlways)
	defer st2.Close()
	s1, ok := rec.Sessions["sess-1"]
	if !ok {
		t.Fatalf("sess-1 not recovered: %+v", rec.Sessions)
	}
	if len(s1.Turns) != 2 || s1.Turns[0].Answer != "a0" || s1.Turns[1].Question != "q1" {
		t.Fatalf("sess-1 turns = %+v", s1.Turns)
	}
	if _, ok := rec.Sessions["sess-2"]; ok {
		t.Fatal("deleted sess-2 resurrected")
	}
	j, ok := rec.Jobs["job-1"]
	if !ok || j.State != "done" || string(j.Result) != `{"answer":"42"}` || j.Question != "count" {
		t.Fatalf("job-1 = %+v", j)
	}
	if len(rec.Graphs) != 1 || rec.Graphs[0] != sha {
		t.Fatalf("graphs = %v, want [%s]", rec.Graphs, sha)
	}
	if rec.Truncations != 0 {
		t.Fatalf("truncations = %d", rec.Truncations)
	}
	g2, err := st2.LoadGraph(sha)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("blob graph = %d nodes/%d edges, want %d/%d", g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

// TestStoreTornTail cuts the active segment mid-frame (as a crash during a
// write would) and checks recovery keeps everything before the tear,
// truncates the file, and counts the truncation.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncAlways)
	if err := st.LogSessionCreate("kept", time.Now(), ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogTurn(TurnRecord{SessionID: "kept", Index: 0, Answer: "kept answer"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segPath := filepath.Join(dir, "wal", segName(1))
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	intact := info.Size()
	// A torn frame: a plausible header promising more bytes than exist.
	f, err := os.OpenFile(segPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0x99, 0x99, 0x99, 0x99, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, rec := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if rec.Truncations != 1 {
		t.Fatalf("truncations = %d, want 1", rec.Truncations)
	}
	s, ok := rec.Sessions["kept"]
	if !ok || len(s.Turns) != 1 || s.Turns[0].Answer != "kept answer" {
		t.Fatalf("recovered = %+v", rec.Sessions)
	}
	if info, err := os.Stat(segPath); err != nil || info.Size() != intact {
		t.Fatalf("segment not truncated back to %d: %v %v", intact, info, err)
	}
}

func TestStoreSnapshotRotatePrune(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncAlways)
	defer st.Close()
	if err := st.LogSessionCreate("pre", time.Now(), ""); err != nil {
		t.Fatal(err)
	}
	sessions := []ManifestSession{{
		ID:             "pre",
		CreatedUnixNS:  time.Now().UnixNano(),
		LastUsedUnixNS: time.Now().UnixNano(),
		Turns:          []TurnRecord{{SessionID: "pre", Index: 0, Answer: "from manifest"}},
	}}
	jobsList := []JobRecord{{ID: "done-job", Priority: "high", State: "done", FinishedUnixNS: 5}}
	if err := st.Snapshot(func() ([]ManifestSession, []JobRecord) { return sessions, jobsList }); err != nil {
		t.Fatal(err)
	}
	// After the snapshot: segment 1 pruned, segment 2 active, one manifest.
	walEnts, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(walEnts) != 1 || walEnts[0].Name() != segName(2) {
		t.Fatalf("wal dir after snapshot = %v", names(walEnts))
	}
	snapEnts, err := os.ReadDir(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snapEnts) != 1 || snapEnts[0].Name() != snapName(2) {
		t.Fatalf("snap dir after snapshot = %v", names(snapEnts))
	}

	// Records after the snapshot land in segment 2 and replay on top of it.
	if err := st.LogSessionCreate("post", time.Now(), ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(func() ([]ManifestSession, []JobRecord) { return sessions, jobsList }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openStore(t, dir, SyncAlways)
	defer st2.Close()
	s, ok := rec.Sessions["pre"]
	if !ok || len(s.Turns) != 1 || s.Turns[0].Answer != "from manifest" {
		t.Fatalf("manifest session = %+v", rec.Sessions)
	}
	j, ok := rec.Jobs["done-job"]
	if !ok || j.State != "done" {
		t.Fatalf("manifest job = %+v", rec.Jobs)
	}
	// "post" was created after the first snapshot; the second snapshot's
	// manifest (built from the same static fixture) does not carry it, but
	// its WAL record lives in a segment >= the manifest seq... it does not:
	// the second rotation pruned segment 2. That is exactly the durability
	// contract — the manifest must be built from live state, and this test's
	// fixture deliberately dropped "post" to prove pruned segments do not
	// resurrect records on their own.
	if _, ok := rec.Sessions["post"]; ok {
		t.Fatal("post survived although the manifest dropped it and its segment was pruned")
	}
}

func names(ents []os.DirEntry) []string {
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.Name()
	}
	return out
}

func TestPersistGraphDedup(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncAlways)
	defer st.Close()
	g1 := graph.PlantedCommunities(2, 8, 0.5, 0.05, rand.New(rand.NewSource(1)))
	g2 := graph.PlantedCommunities(2, 8, 0.5, 0.05, rand.New(rand.NewSource(1)))
	g3 := graph.PlantedCommunities(3, 9, 0.5, 0.05, rand.New(rand.NewSource(2)))

	sha1, err := st.PersistGraph(g1)
	if err != nil {
		t.Fatal(err)
	}
	// Same content through a distinct instance (different ExactHash identity
	// path) must land on the same blob.
	sha2, err := st.PersistGraph(g2)
	if err != nil {
		t.Fatal(err)
	}
	sha3, err := st.PersistGraph(g3)
	if err != nil {
		t.Fatal(err)
	}
	if sha1 != sha2 {
		t.Fatalf("same content, different shas: %s vs %s", sha1, sha2)
	}
	if sha1 == sha3 {
		t.Fatalf("different content, same sha %s", sha1)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("blob files = %v, want 2", names(ents))
	}
}

// TestAppendReplayProperty drives a random event sequence into the store —
// with crash/reopen cycles at random points — and checks the replayed state
// always matches a reference State fed the same records. This is the
// append→replay round-trip property the recovery path stands on.
func TestAppendReplayProperty(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			st, _ := openStore(t, dir, SyncNone)
			ref := NewState()
			sessions := []string{}
			turnCount := map[string]int{}
			now := time.Now().UnixNano()

			apply := func(rec *Record) {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
				// Append stamped rec.TS; the reference sees the same record.
				r := *rec
				ref.Apply(&r)
				ref.Records-- // replay count is not part of the property
			}

			for step := 0; step < 300; step++ {
				now += int64(rng.Intn(1000) + 1)
				switch op := rng.Intn(10); {
				case op < 3: // create
					id := fmt.Sprintf("s%d-%d", trial, step)
					sessions = append(sessions, id)
					apply(&Record{Type: RecSessionCreate, TS: now, Session: &SessionRecord{ID: id, CreatedUnixNS: now}})
				case op < 6 && len(sessions) > 0: // turn on a random session
					id := sessions[rng.Intn(len(sessions))]
					apply(&Record{Type: RecTurn, TS: now, Turn: &TurnRecord{
						SessionID: id,
						Index:     turnCount[id],
						Question:  fmt.Sprintf("q%d", step),
						Answer:    fmt.Sprintf("a%d", step),
					}})
					turnCount[id]++
				case op < 7 && len(sessions) > 0: // delete
					i := rng.Intn(len(sessions))
					id := sessions[i]
					sessions = append(sessions[:i], sessions[i+1:]...)
					delete(turnCount, id)
					apply(&Record{Type: RecSessionDelete, TS: now, Session: &SessionRecord{ID: id}})
				case op < 8: // job lifecycle, sometimes left non-terminal
					id := fmt.Sprintf("j%d-%d", trial, step)
					apply(&Record{Type: RecJobSubmit, TS: now, Job: &JobRecord{ID: id, Priority: "normal", Question: "q", State: "queued", SubmittedUnixNS: now}})
					if rng.Intn(3) > 0 {
						apply(&Record{Type: RecJobDone, TS: now + 1, Job: &JobRecord{ID: id, Priority: "normal", State: "done", Result: []byte(`{"ok":true}`), FinishedUnixNS: now + 1}})
					}
				case op < 9: // graph commit record (no blob needed for replay)
					apply(&Record{Type: RecGraph, TS: now, Graph: &GraphRecord{SHA: fmt.Sprintf("%064x", rng.Int63())}})
				default: // crash (no flush) and reopen mid-stream
					st.Abort()
					var rec *State
					st, rec = openStore(t, dir, SyncNone)
					compareStates(t, step, ref, rec)
				}
			}

			st.Abort()
			st2, rec := openStore(t, dir, SyncNone)
			st2.Close()
			compareStates(t, -1, ref, rec)
		})
	}
}

// compareStates checks the replayed state carries exactly the reference's
// sessions (with transcripts), jobs, and graph set.
func compareStates(t *testing.T, step int, ref, got *State) {
	t.Helper()
	if len(got.Sessions) != len(ref.Sessions) {
		t.Fatalf("step %d: sessions = %d, want %d", step, len(got.Sessions), len(ref.Sessions))
	}
	for id, want := range ref.Sessions {
		g, ok := got.Sessions[id]
		if !ok {
			t.Fatalf("step %d: session %s lost", step, id)
		}
		if !reflect.DeepEqual(g.Turns, want.Turns) {
			t.Fatalf("step %d: session %s turns = %+v, want %+v", step, id, g.Turns, want.Turns)
		}
		if !g.Created.Equal(want.Created) || !g.LastUsed.Equal(want.LastUsed) {
			t.Fatalf("step %d: session %s clocks = %v/%v, want %v/%v", step, id, g.Created, g.LastUsed, want.Created, want.LastUsed)
		}
	}
	if len(got.Jobs) != len(ref.Jobs) {
		t.Fatalf("step %d: jobs = %d, want %d", step, len(got.Jobs), len(ref.Jobs))
	}
	for id, want := range ref.Jobs {
		g, ok := got.Jobs[id]
		if !ok {
			t.Fatalf("step %d: job %s lost", step, id)
		}
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("step %d: job %s = %+v, want %+v", step, id, g, want)
		}
	}
	if !reflect.DeepEqual(got.Graphs, ref.Graphs) {
		t.Fatalf("step %d: graphs = %v, want %v", step, got.Graphs, ref.Graphs)
	}
}
