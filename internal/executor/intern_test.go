package executor

import (
	"context"
	"strings"
	"sync"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

// sharedSetup returns an executor plus a graph marked Shared, as the
// graphstore interning layer would hand it out.
func sharedSetup() (*Executor, *graph.Graph) {
	ex, g := setup()
	g.MarkShared()
	return ex, g
}

// TestRunClonesSharedGraphForMutatingChain: a chain containing a Mutates
// API must run against a private clone of an interned graph — the answer
// reflects the edit, the shared instance never changes.
func TestRunClonesSharedGraphForMutatingChain(t *testing.T) {
	ex, g := sharedSetup()
	edges, version := g.NumEdges(), g.Version()
	c := chain.Chain{chain.NewStep("graph.add_edge", "from", "0", "to", "4")}
	res, err := ex.Run(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Final.Text, "Added edge") {
		t.Fatalf("edit did not run: %q", res.Final.Text)
	}
	if g.NumEdges() != edges || g.Version() != version {
		t.Fatalf("shared graph mutated: edges %d→%d, version %d→%d",
			edges, g.NumEdges(), version, g.Version())
	}
	if g.HasEdge(0, 4) {
		t.Fatal("edit leaked into the shared instance")
	}
}

// TestRunKeepsSharedGraphForReadOnlyChain: read-only chains must keep the
// shared instance — cloning would defeat the CSR/stats/invoke-cache sharing
// interning exists for. The mutation guard (race builds panic on shared
// mutation) plus a stable version is the observable contract.
func TestRunKeepsSharedGraphForReadOnlyChain(t *testing.T) {
	ex, g := sharedSetup()
	version := g.Version()
	c := chain.Chain{chain.NewStep("graph.stats"), chain.NewStep("report.compose")}
	res, err := ex.Run(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Text == "" {
		t.Fatal("empty answer")
	}
	if g.Version() != version {
		t.Fatal("read-only chain bumped the shared graph's version")
	}
}

// TestRunMutatesPrivateGraphInPlace: non-shared graphs keep the historical
// behavior — edits land on the caller's instance.
func TestRunMutatesPrivateGraphInPlace(t *testing.T) {
	ex, g := setup()
	c := chain.Chain{chain.NewStep("graph.add_edge", "from", "0", "to", "4")}
	if _, err := ex.Run(context.Background(), g, c, Options{}); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 4) {
		t.Fatal("edit on a private graph did not stick")
	}
}

// TestRunConfirmEditToMutatingChain: the clone decision must look at the
// chain that actually executes, including confirmation edits that turn a
// read-only chain into a mutating one.
func TestRunConfirmEditToMutatingChain(t *testing.T) {
	ex, g := sharedSetup()
	edges := g.NumEdges()
	c := chain.Chain{chain.NewStep("graph.stats")}
	_, err := ex.Run(context.Background(), g, c, Options{
		Confirm: func(chain.Chain) (chain.Chain, bool) {
			return chain.Chain{chain.NewStep("graph.add_edge", "from", "0", "to", "4")}, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != edges {
		t.Fatal("confirmation-edited mutating chain ran on the shared instance")
	}
}

// TestSharedGraphConcurrentMixedChains hammers one interned graph with
// read-only and mutating chains from many goroutines (-race): readers share
// the instance and its caches, writers clone, nobody corrupts anybody.
func TestSharedGraphConcurrentMixedChains(t *testing.T) {
	ex, g := sharedSetup()
	edges, version := g.NumEdges(), g.Version()
	chains := []chain.Chain{
		{chain.NewStep("graph.stats")},
		{chain.NewStep("structure.kcore")},
		{chain.NewStep("graph.add_edge", "from", "0", "to", "4")},
		{chain.NewStep("graph.relabel_node", "node", "2", "label", "edited")},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c := chains[(w+i)%len(chains)]
				if _, err := ex.Run(context.Background(), g, c, Options{}); err != nil {
					t.Errorf("chain %s: %v", c, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if g.NumEdges() != edges || g.Version() != version {
		t.Fatalf("shared graph changed under concurrent chains: edges %d→%d, version %d→%d",
			edges, g.NumEdges(), version, g.Version())
	}
	if lbl := g.Node(2).Label; lbl != "v" {
		t.Fatalf("shared node label changed to %q", lbl)
	}
}

// TestChainMutates pins the registry-side classification, including the
// conservative answer for unknown APIs.
func TestChainMutates(t *testing.T) {
	env := &apis.Env{}
	reg := apis.Default(env)
	cases := []struct {
		c    chain.Chain
		want bool
	}{
		{chain.Chain{chain.NewStep("graph.stats")}, false},
		{chain.Chain{chain.NewStep("kg.detect_all")}, false},
		{chain.Chain{chain.NewStep("kg.detect_all"), chain.NewStep("graph.apply_edits")}, true},
		{chain.Chain{chain.NewStep("graph.add_edge", "from", "0", "to", "1")}, true},
		{chain.Chain{chain.NewStep("graph.remove_edge", "from", "0", "to", "1")}, true},
		{chain.Chain{chain.NewStep("graph.relabel_node", "node", "0", "label", "x")}, true},
		{chain.Chain{chain.NewStep("no.such.api")}, true},
		{nil, false},
	}
	for _, tc := range cases {
		if got := reg.ChainMutates(tc.c); got != tc.want {
			t.Errorf("ChainMutates(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}
