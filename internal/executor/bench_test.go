package executor

import (
	"context"
	"math/rand"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

// BenchmarkExecutorCached compares a chain re-executed against an unmutated
// graph (served by the invocation cache) with the same chain forced cold by
// a version bump every iteration.
func BenchmarkExecutorCached(b *testing.B) {
	env := &apis.Env{}
	reg := apis.Default(env)
	ex := New(reg, env)
	g := graph.BarabasiAlbert(400, 3, rand.New(rand.NewSource(1)))
	c := chain.Chain{chain.NewStep("graph.stats"), chain.NewStep("structure.kcore")}
	ctx := context.Background()

	b.Run("cached", func(b *testing.B) {
		if _, err := ex.Run(ctx, g, c, Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(ctx, g, c, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.SetNodeLabel(0, "v") // bump the version: full recompute
			if _, err := ex.Run(ctx, g, c, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
