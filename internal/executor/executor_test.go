package executor

import (
	"context"
	"errors"
	"strings"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

func setup() (*Executor, *graph.Graph) {
	env := &apis.Env{}
	reg := apis.Default(env)
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)) //nolint:errcheck
	}
	return New(reg, env), g
}

func TestRunPipesPrevBetweenSteps(t *testing.T) {
	ex, g := setup()
	c := chain.Chain{
		chain.NewStep("structure.density"),
		chain.NewStep("report.compose"),
	}
	res, err := ex.Run(context.Background(), g, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
	// report.compose embeds the previous step's text.
	if !strings.Contains(res.Final.Text, "Density") {
		t.Fatalf("prev not piped into report:\n%s", res.Final.Text)
	}
}

func TestRunEmitsEventsInOrder(t *testing.T) {
	ex, g := setup()
	var types []EventType
	c := chain.Chain{chain.NewStep("graph.stats")}
	_, err := ex.Run(context.Background(), g, c, Options{OnEvent: func(e Event) { types = append(types, e.Type) }})
	if err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventChainStart, EventStepStart, EventStepDone, EventChainDone}
	if len(types) != len(want) {
		t.Fatalf("events = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events = %v, want %v", types, want)
		}
	}
}

func TestRunValidatesBeforeExecuting(t *testing.T) {
	ex, g := setup()
	fired := false
	c := chain.Chain{chain.NewStep("graph.stats"), chain.NewStep("no.such.api")}
	_, err := ex.Run(context.Background(), g, c, Options{OnEvent: func(Event) { fired = true }})
	if err == nil {
		t.Fatal("invalid chain ran")
	}
	if fired {
		t.Fatal("events fired for a chain that never should have started")
	}
}

func TestRunConfirmReject(t *testing.T) {
	ex, g := setup()
	c := chain.Chain{chain.NewStep("graph.stats")}
	_, err := ex.Run(context.Background(), g, c, Options{
		Confirm: func(chain.Chain) (chain.Chain, bool) { return nil, false },
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestRunConfirmEdit(t *testing.T) {
	ex, g := setup()
	c := chain.Chain{chain.NewStep("graph.stats")}
	res, err := ex.Run(context.Background(), g, c, Options{
		Confirm: func(orig chain.Chain) (chain.Chain, bool) {
			return chain.Chain{chain.NewStep("structure.density")}, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed[0].API != "structure.density" {
		t.Fatalf("executed = %s", res.Executed)
	}
}

func TestRunConfirmEditInvalid(t *testing.T) {
	ex, g := setup()
	c := chain.Chain{chain.NewStep("graph.stats")}
	_, err := ex.Run(context.Background(), g, c, Options{
		Confirm: func(chain.Chain) (chain.Chain, bool) {
			return chain.Chain{chain.NewStep("nope")}, true
		},
	})
	if err == nil || !strings.Contains(err.Error(), "edited chain invalid") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunStepFailureStopsChain(t *testing.T) {
	ex, g := setup()
	var failed, doneAfterFail bool
	c := chain.Chain{
		chain.NewStep("graph.remove_edge", "from", "0", "to", "4"), // no such edge → error
		chain.NewStep("graph.stats"),
	}
	res, err := ex.Run(context.Background(), g, c, Options{OnEvent: func(e Event) {
		if e.Type == EventStepFailed {
			failed = true
		}
		if failed && e.Type == EventStepDone {
			doneAfterFail = true
		}
	}})
	if err == nil {
		t.Fatal("failing chain succeeded")
	}
	if !failed || doneAfterFail {
		t.Fatalf("failed=%v doneAfterFail=%v", failed, doneAfterFail)
	}
	if len(res.Outputs) != 0 {
		t.Fatalf("outputs = %d, want 0", len(res.Outputs))
	}
}

func TestRunCancelledContext(t *testing.T) {
	ex, g := setup()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sawCancel bool
	_, err := ex.Run(ctx, g, chain.Chain{chain.NewStep("graph.stats")}, Options{
		OnEvent: func(e Event) {
			if e.Type == EventCancelled {
				sawCancel = true
			}
		},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !sawCancel {
		t.Fatal("no cancelled event")
	}
}

func TestRunStepBudget(t *testing.T) {
	ex, g := setup()
	long := make(chain.Chain, 3)
	for i := range long {
		long[i] = chain.NewStep("graph.stats")
	}
	if _, err := ex.Run(context.Background(), g, long, Options{StepBudget: 2}); err == nil {
		t.Fatal("budget not enforced")
	}
	if _, err := ex.Run(context.Background(), g, long, Options{StepBudget: 3}); err != nil {
		t.Fatalf("within-budget chain failed: %v", err)
	}
}

func TestEventTypeString(t *testing.T) {
	for _, e := range []EventType{EventChainStart, EventStepStart, EventStepDone, EventStepFailed, EventChainDone, EventCancelled, EventType(99)} {
		if e.String() == "" {
			t.Fatal("empty event name")
		}
	}
}

func TestRunEmptyChain(t *testing.T) {
	ex, g := setup()
	res, err := ex.Run(context.Background(), g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Text != "" || len(res.Outputs) != 0 {
		t.Fatalf("empty chain result = %+v", res)
	}
}
