package executor

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

// TestRunCachedStep: repeating a chain step on an unmutated graph must be
// served from the Env invocation cache without re-running the API, and a
// mutation must invalidate it.
func TestRunCachedStep(t *testing.T) {
	env := &apis.Env{Cache: apis.NewInvokeCache(16)}
	reg := apis.Default(env)
	runs := 0
	if err := reg.Register(apis.API{
		Name:        "test.counted",
		Description: "counting analysis",
		Category:    "util",
		Memoizable:  true,
		Fn: func(in apis.Input) (apis.Output, error) {
			runs++
			return apis.Output{Text: "counted"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	ex := New(reg, env)
	g := graph.BarabasiAlbert(30, 2, rand.New(rand.NewSource(2)))
	c := chain.Chain{chain.NewStep("test.counted")}

	for i := 0; i < 3; i++ {
		res, err := ex.Run(context.Background(), g, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final.Text != "counted" {
			t.Fatalf("run %d: final %q", i, res.Final.Text)
		}
	}
	if runs != 1 {
		t.Fatalf("API ran %d times across 3 executor runs, want 1 (cache miss only)", runs)
	}

	// Mutate → version bump → the next run recomputes exactly once more.
	g.SetNodeLabel(0, "renamed")
	if _, err := ex.Run(context.Background(), g, c, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(context.Background(), g, c, Options{}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("API ran %d times after mutation, want 2", runs)
	}
}

// TestRunCachedStepStillEmitsEvents: cache hits keep the monitoring
// contract — every step still produces start/done events.
func TestRunCachedStepStillEmitsEvents(t *testing.T) {
	ex, g := setup()
	c := chain.Chain{chain.NewStep("graph.stats")}
	if _, err := ex.Run(context.Background(), g, c, Options{}); err != nil {
		t.Fatal(err)
	}
	var events []EventType
	_, err := ex.Run(context.Background(), g, c, Options{OnEvent: func(e Event) { events = append(events, e.Type) }})
	if err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventChainStart, EventStepStart, EventStepDone, EventChainDone}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestConcurrentRunsSharedFrozenGraph hammers concurrent chain executions
// over one shared graph (run with -race): all workers share the frozen CSR,
// its stats/kind memos, and the invocation LRU.
func TestConcurrentRunsSharedFrozenGraph(t *testing.T) {
	env := &apis.Env{}
	reg := apis.Default(env)
	ex := New(reg, env)
	g := graph.BarabasiAlbert(150, 3, rand.New(rand.NewSource(13)))
	chains := []chain.Chain{
		{chain.NewStep("graph.stats")},
		{chain.NewStep("structure.kcore")},
		{chain.NewStep("structure.center")},
		{chain.NewStep("centrality.pagerank"), chain.NewStep("report.compose")},
		{chain.NewStep("structure.triangles")},
		{chain.NewStep("structure.coloring")},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c := chains[(w+i)%len(chains)]
				if _, err := ex.Run(context.Background(), g, c, Options{}); err != nil {
					t.Errorf("chain %v: %v", c, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
