// Package executor runs API chains step by step, providing the confirmation
// and monitoring hooks of the paper's fourth demonstration scenario: a user
// confirms (and may edit) the generated chain before execution, then watches
// per-step progress events while it runs.
//
// Execution is memoizing: steps route through apis.Registry.Invoke, which
// serves Memoizable APIs from the Env's bounded invocation LRU keyed by
// (graph content hash, version, API, args). Re-running a chain against the
// same graph content — the same instance, or any re-upload of identical
// JSON in any session — emits the same events and outputs without
// recomputing anything; a mutation changes both hash and version, so every
// dependent lookup misses.
//
// Execution also honors the interning contract: a graph marked Shared (one
// instance served to every session that uploaded the same content) is
// cloned before any chain containing a Mutates API runs, so graph edits
// stay private to the requesting conversation.
package executor

import (
	"context"
	"fmt"
	"time"

	"chatgraph/internal/apis"
	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
	"chatgraph/internal/metrics"
)

// Process-wide execution instruments: resolved once so Run pays only atomic
// increments, never a registry lookup.
var (
	mChainsOK = metrics.Default().Counter("chatgraph_executor_chains_total",
		"Chain executions by outcome.", metrics.Labels{"outcome": "ok"})
	mChainsErr = metrics.Default().Counter("chatgraph_executor_chains_total",
		"Chain executions by outcome.", metrics.Labels{"outcome": "error"})
	mChainsCancelled = metrics.Default().Counter("chatgraph_executor_chains_total",
		"Chain executions by outcome.", metrics.Labels{"outcome": "cancelled"})
	mChainsRejected = metrics.Default().Counter("chatgraph_executor_chains_total",
		"Chain executions by outcome.", metrics.Labels{"outcome": "rejected"})
	mSteps = metrics.Default().Counter("chatgraph_executor_steps_total",
		"Chain steps executed.", nil)
	mStepFailures = metrics.Default().Counter("chatgraph_executor_step_failures_total",
		"Chain steps that returned an error.", nil)
)

// EventType enumerates progress notifications.
type EventType int

const (
	// EventChainStart fires once before the first step.
	EventChainStart EventType = iota
	// EventStepStart fires before each step executes.
	EventStepStart
	// EventStepDone fires after a step succeeds.
	EventStepDone
	// EventStepFailed fires when a step errors; execution stops.
	EventStepFailed
	// EventChainDone fires after the last step succeeds.
	EventChainDone
	// EventCancelled fires when the context is cancelled mid-chain.
	EventCancelled
)

// String names the event type for transcripts.
func (t EventType) String() string {
	switch t {
	case EventChainStart:
		return "chain_start"
	case EventStepStart:
		return "step_start"
	case EventStepDone:
		return "step_done"
	case EventStepFailed:
		return "step_failed"
	case EventChainDone:
		return "chain_done"
	case EventCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Event is one progress notification.
type Event struct {
	Type EventType
	// StepIndex is the 0-based step position (-1 for chain-level events).
	StepIndex int
	// Step is the step concerned (zero for chain-level events).
	Step chain.Step
	// Text carries the step output or error message.
	Text string
	// Err is set for EventStepFailed.
	Err error
	// Elapsed is the time since chain start.
	Elapsed time.Duration
}

// Confirmer reviews a chain before execution. It may return an edited chain;
// approve=false aborts without running anything. This implements the paper's
// "users need to confirm the API chain before it is executed and edit it if
// needed".
type Confirmer func(c chain.Chain) (edited chain.Chain, approve bool)

// Options configures one Run.
type Options struct {
	// Confirm reviews the chain first; nil auto-approves.
	Confirm Confirmer
	// OnEvent receives progress events; nil discards them.
	OnEvent func(Event)
	// StepBudget caps executed steps as a runaway guard (0 = 64).
	StepBudget int
}

// Result is the outcome of a completed chain.
type Result struct {
	// Outputs holds every step's output in order.
	Outputs []apis.Output
	// Final is the last step's output — the chat answer.
	Final apis.Output
	// Executed is the chain that actually ran (after confirmation edits).
	Executed chain.Chain
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// ErrRejected is returned when the confirmer declines the chain.
var ErrRejected = fmt.Errorf("executor: chain rejected by user")

// Executor validates and runs chains against a registry.
type Executor struct {
	reg *apis.Registry
	env *apis.Env
}

// New returns an Executor over the given registry and environment.
func New(reg *apis.Registry, env *apis.Env) *Executor {
	return &Executor{reg: reg, env: env}
}

// Run executes c against g. The chain is validated, offered to the
// confirmer, and then executed step by step with the output of each step
// piped into the next. Context cancellation is honored between steps.
func (e *Executor) Run(ctx context.Context, g *graph.Graph, c chain.Chain, opts Options) (Result, error) {
	emit := opts.OnEvent
	if emit == nil {
		emit = func(Event) {}
	}
	budget := opts.StepBudget
	if budget <= 0 {
		budget = 64
	}
	if err := chain.Validate(c, e.reg); err != nil {
		return Result{}, err
	}
	if opts.Confirm != nil {
		edited, ok := opts.Confirm(c)
		if !ok {
			mChainsRejected.Inc()
			return Result{}, ErrRejected
		}
		if edited != nil {
			if err := chain.Validate(edited, e.reg); err != nil {
				return Result{}, fmt.Errorf("executor: edited chain invalid: %w", err)
			}
			c = edited
		}
	}
	if len(c) > budget {
		return Result{}, fmt.Errorf("executor: chain has %d steps, budget is %d", len(c), budget)
	}
	if g != nil && g.Shared() && e.reg.ChainMutates(c) {
		// g is an interned graph shared across sessions; a chain that edits
		// it gets a private deep copy so no other conversation observes the
		// edits. Read-only chains keep the shared instance — that is what
		// makes the CSR, stats memo, and invoke-cache entries shared too.
		g = g.Clone()
	}
	start := time.Now()
	emit(Event{Type: EventChainStart, StepIndex: -1, Text: c.String()})
	res := Result{Executed: c, Outputs: make([]apis.Output, 0, len(c))}
	var prev apis.Output
	for i, s := range c {
		select {
		case <-ctx.Done():
			mChainsCancelled.Inc()
			emit(Event{Type: EventCancelled, StepIndex: i, Step: s, Elapsed: time.Since(start), Err: ctx.Err()})
			return res, fmt.Errorf("executor: cancelled at step %d: %w", i+1, ctx.Err())
		default:
		}
		emit(Event{Type: EventStepStart, StepIndex: i, Step: s, Elapsed: time.Since(start)})
		out, err := e.reg.Invoke(s, apis.Input{Graph: g, Prev: prev, Args: s.Args, Env: e.env})
		mSteps.Inc()
		if err != nil {
			mStepFailures.Inc()
			mChainsErr.Inc()
			emit(Event{Type: EventStepFailed, StepIndex: i, Step: s, Err: err, Elapsed: time.Since(start)})
			return res, fmt.Errorf("executor: step %d (%s): %w", i+1, s.API, err)
		}
		emit(Event{Type: EventStepDone, StepIndex: i, Step: s, Text: out.Text, Elapsed: time.Since(start)})
		res.Outputs = append(res.Outputs, out)
		prev = out
	}
	res.Final = prev
	res.Elapsed = time.Since(start)
	mChainsOK.Inc()
	emit(Event{Type: EventChainDone, StepIndex: -1, Text: res.Final.Text, Elapsed: res.Elapsed})
	return res, nil
}
