// Package retrieve implements the paper's API retrieval module: API
// descriptions are embedded into high-dimensional vectors and, given a user
// prompt, the most relevant APIs are found by ANN search over a τ-MG
// proximity-graph index (falling back to exact search for tiny registries,
// where an index buys nothing). The built Index is immutable, so single and
// batched lookups may run concurrently from any number of sessions.
package retrieve

import (
	"fmt"
	"sort"

	"chatgraph/internal/ann"
	"chatgraph/internal/apis"
	"chatgraph/internal/embed"
)

// Scored is one retrieval hit.
type Scored struct {
	Name string
	// Distance is the L2 distance between prompt and description
	// embeddings (smaller is more relevant).
	Distance float32
}

// Config tunes index construction.
type Config struct {
	// Dim is the embedding dimensionality (0 → 128).
	Dim int
	// Tau is the τ-MG parameter (0 is valid: MRNG).
	Tau float32
	// ExactThreshold: registries with at most this many APIs use brute
	// force instead of a proximity graph (0 → 64).
	ExactThreshold int
	// Quantize enables the int8 two-stage search tier on whichever index is
	// built: candidates rank on quantized codes (¼ the scanned bytes) and
	// the RerankFactor·k best are reranked with exact f32 distances.
	Quantize bool
	// RerankFactor is the quantized over-fetch multiple
	// (0 → ann.DefaultRerankFactor). Ignored unless Quantize is set.
	RerankFactor int
}

// Index retrieves APIs by embedding similarity.
type Index struct {
	emb    *embed.Hashing
	names  []string
	descs  map[string]string
	search ann.Index
}

// New embeds every registered API description and builds the ANN index.
func New(reg *apis.Registry, cfg Config) (*Index, error) {
	all := reg.All()
	if len(all) == 0 {
		return nil, fmt.Errorf("retrieve: empty registry")
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 512
	}
	if cfg.ExactThreshold <= 0 {
		cfg.ExactThreshold = 64
	}
	ix := &Index{
		emb:   embed.NewHashing(cfg.Dim),
		descs: make(map[string]string, len(all)),
	}
	corpus := make([]string, 0, len(all))
	for _, a := range all {
		text := a.Name + " " + a.Description
		corpus = append(corpus, text)
		ix.names = append(ix.names, a.Name)
		ix.descs[a.Name] = a.Description
	}
	ix.emb.Fit(corpus)
	vecs := ix.emb.EmbedBatch(corpus)
	quant := ann.QuantConfig{Enabled: cfg.Quantize, RerankFactor: cfg.RerankFactor}
	if len(vecs) <= cfg.ExactThreshold {
		ix.search = ann.NewBruteForceQuant(vecs, quant)
		return ix, nil
	}
	idx, err := ann.NewTauMG(vecs, ann.TauMGConfig{Tau: cfg.Tau, Quant: quant})
	if err != nil {
		return nil, fmt.Errorf("retrieve: build index: %w", err)
	}
	ix.search = idx
	return ix, nil
}

// Len reports the number of indexed APIs.
func (ix *Index) Len() int { return len(ix.names) }

// Description returns the indexed description of an API.
func (ix *Index) Description(name string) string { return ix.descs[name] }

// Descriptions returns a copy of the full name → description map. The copy
// is defensive: the underlying map is engine-shared state, so handing out
// the internal reference would let any caller corrupt every session's
// prompts.
func (ix *Index) Descriptions() map[string]string {
	out := make(map[string]string, len(ix.descs))
	for k, v := range ix.descs {
		out[k] = v
	}
	return out
}

// TopAPIs returns the k APIs whose descriptions are nearest to the query
// text, most relevant first. Equal distances are broken by name, so the
// ranking is deterministic across index types.
func (ix *Index) TopAPIs(query string, k int) []Scored {
	if k <= 0 {
		return nil
	}
	q := ix.emb.Embed(query)
	return ix.scored(ix.search.Search(q, k))
}

// TopAPIsBatch answers many queries in one pass: queries are embedded by
// embed.Hashing.EmbedBatch and searched by ann.Index.SearchBatch, both over
// bounded worker pools, so a service can amortize a burst of retrievals
// across cores instead of paying the one-at-a-time loop. out[i] is the
// ranked hit list for queries[i].
func (ix *Index) TopAPIsBatch(queries []string, k int) [][]Scored {
	out := make([][]Scored, len(queries))
	if k <= 0 || len(queries) == 0 {
		return out
	}
	qs := ix.emb.EmbedBatch(queries)
	for i, rs := range ix.search.SearchBatch(qs, k) {
		out[i] = ix.scored(rs)
	}
	return out
}

// scored converts raw ANN hits into the stable (Distance, Name) ranking.
func (ix *Index) scored(rs []ann.Result) []Scored {
	out := make([]Scored, 0, len(rs))
	for _, r := range rs {
		out = append(out, Scored{Name: ix.names[r.ID], Distance: r.Dist})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns just the API names of TopAPIs, in relevance order.
func (ix *Index) Names(query string, k int) []string {
	hits := ix.TopAPIs(query, k)
	names := make([]string, len(hits))
	for i, h := range hits {
		names[i] = h.Name
	}
	return names
}
