package retrieve

import (
	"fmt"
	"testing"

	"chatgraph/internal/apis"
)

func TestNewRejectsEmptyRegistry(t *testing.T) {
	if _, err := New(apis.NewRegistry(), Config{}); err == nil {
		t.Fatal("empty registry accepted")
	}
}

func TestTopAPIsRelevance(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		query string
		want  string
	}{
		{"detect the communities of this social network", "community.detect"},
		{"predict the toxicity of the molecule", "molecule.toxicity"},
		{"find similar molecules in the database", "similarity.search"},
		{"infer the missing edges of the knowledge graph", "kg.detect_missing"},
		{"shortest path between two nodes", "path.shortest"},
	}
	for _, c := range cases {
		hits := ix.Names(c.query, 5)
		found := false
		for _, h := range hits {
			if h == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("query %q top-5 = %v, want %s included", c.query, hits, c.want)
		}
	}
}

func TestTopAPIsSortedAndBounded(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.TopAPIs("graph analysis", 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Distance < hits[i-1].Distance {
			t.Fatal("hits not sorted by distance")
		}
	}
	if got := ix.TopAPIs("x", 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestDescriptionLookup(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Description("community.detect") == "" {
		t.Fatal("description missing")
	}
	if len(ix.Descriptions()) != ix.Len() {
		t.Fatal("Descriptions incomplete")
	}
}

// TestTauMGPathUsed forces the proximity-graph path by lowering the exact
// threshold and padding the registry past it.
func TestTauMGPathUsed(t *testing.T) {
	reg := apis.Default(nil)
	for i := 0; reg.Len() < 80; i++ {
		name := fmt.Sprintf("pad.api%d", i)
		if err := reg.Register(apis.API{
			Name:        name,
			Description: fmt.Sprintf("padding operation number %d for index scale testing", i),
			Category:    "util",
			Fn:          func(apis.Input) (apis.Output, error) { return apis.Output{Text: "pad"}, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := New(reg, Config{ExactThreshold: 16, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Names("detect communities in the social network", 5)
	found := false
	for _, h := range hits {
		if h == "community.detect" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tau-MG retrieval top-5 = %v", hits)
	}
}
