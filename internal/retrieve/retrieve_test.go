package retrieve

import (
	"fmt"
	"testing"

	"chatgraph/internal/apis"
)

func TestNewRejectsEmptyRegistry(t *testing.T) {
	if _, err := New(apis.NewRegistry(), Config{}); err == nil {
		t.Fatal("empty registry accepted")
	}
}

func TestTopAPIsRelevance(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		query string
		want  string
	}{
		{"detect the communities of this social network", "community.detect"},
		{"predict the toxicity of the molecule", "molecule.toxicity"},
		{"find similar molecules in the database", "similarity.search"},
		{"infer the missing edges of the knowledge graph", "kg.detect_missing"},
		{"shortest path between two nodes", "path.shortest"},
	}
	for _, c := range cases {
		hits := ix.Names(c.query, 5)
		found := false
		for _, h := range hits {
			if h == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("query %q top-5 = %v, want %s included", c.query, hits, c.want)
		}
	}
}

func TestTopAPIsSortedAndBounded(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.TopAPIs("graph analysis", 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Distance < hits[i-1].Distance {
			t.Fatal("hits not sorted by distance")
		}
	}
	if got := ix.TopAPIs("x", 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestDescriptionLookup(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Description("community.detect") == "" {
		t.Fatal("description missing")
	}
	if len(ix.Descriptions()) != ix.Len() {
		t.Fatal("Descriptions incomplete")
	}
}

// TestDescriptionsDefensiveCopy: the returned map must be a copy — mutating
// it must not corrupt the engine-shared index state.
func TestDescriptionsDefensiveCopy(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := ix.Description("community.detect")
	if want == "" {
		t.Fatal("fixture API missing")
	}
	m := ix.Descriptions()
	m["community.detect"] = "vandalized"
	delete(m, "graph.stats")
	if got := ix.Description("community.detect"); got != want {
		t.Fatalf("mutating the returned map changed index state: %q", got)
	}
	if ix.Description("graph.stats") == "" {
		t.Fatal("delete on the returned map reached index state")
	}
}

// TestTopAPIsBatchMatchesSequential: the batched path must rank exactly
// like the one-query-at-a-time loop.
func TestTopAPIsBatchMatchesSequential(t *testing.T) {
	ix, err := New(apis.Default(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"detect the communities of this social network",
		"predict the toxicity of the molecule",
		"shortest path between two nodes",
	}
	batch := ix.TopAPIsBatch(queries, 5)
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d lists", len(batch))
	}
	for i, q := range queries {
		want := ix.TopAPIs(q, 5)
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: %d hits, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("query %d hit %d: %+v, want %+v", i, j, batch[i][j], want[j])
			}
		}
	}
	if out := ix.TopAPIsBatch(nil, 5); len(out) != 0 {
		t.Fatalf("empty batch returned %d lists", len(out))
	}
	if out := ix.TopAPIsBatch(queries, 0); out[0] != nil {
		t.Fatalf("k=0 batch returned hits: %v", out[0])
	}
}

// TestTopAPIsTieBreakByName: APIs whose names tokenize to nothing and share
// one description embed identically, so their distances tie exactly; the
// ranking must fall back to name order instead of index insertion order.
func TestTopAPIsTieBreakByName(t *testing.T) {
	reg := apis.NewRegistry()
	noop := func(apis.Input) (apis.Output, error) { return apis.Output{Text: "x"}, nil }
	// Registered deliberately in reverse-alphabetical order; single-letter
	// name segments are dropped by the tokenizer, so both embed only the
	// shared description text.
	for _, name := range []string{"z.y", "x.w", "a.b"} {
		if err := reg.Register(apis.API{Name: name, Description: "identical twin operation", Category: "util", Fn: noop}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := New(reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.TopAPIs("identical twin operation", 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Distance != hits[1].Distance || hits[1].Distance != hits[2].Distance {
		t.Fatalf("fixture broken: distances differ: %+v", hits)
	}
	if hits[0].Name != "a.b" || hits[1].Name != "x.w" || hits[2].Name != "z.y" {
		t.Fatalf("tied hits not ordered by name: %+v", hits)
	}
}

// TestTauMGPathUsed forces the proximity-graph path by lowering the exact
// threshold and padding the registry past it.
func TestTauMGPathUsed(t *testing.T) {
	reg := apis.Default(nil)
	for i := 0; reg.Len() < 80; i++ {
		name := fmt.Sprintf("pad.api%d", i)
		if err := reg.Register(apis.API{
			Name:        name,
			Description: fmt.Sprintf("padding operation number %d for index scale testing", i),
			Category:    "util",
			Fn:          func(apis.Input) (apis.Output, error) { return apis.Output{Text: "pad"}, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := New(reg, Config{ExactThreshold: 16, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Names("detect communities in the social network", 5)
	found := false
	for _, h := range hits {
		if h == "community.detect" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tau-MG retrieval top-5 = %v", hits)
	}
}

// TestQuantizedRetrievalParity: with the int8 tier enabled, retrieval must
// keep recall ≥ 0.95 against the f32 index on both the brute-force path
// (default registry) and the τ-MG path (padded registry), and every hit must
// carry an exact f32 distance (stage 2 reranks exactly).
func TestQuantizedRetrievalParity(t *testing.T) {
	reg := apis.Default(nil)
	for i := 0; reg.Len() < 80; i++ {
		name := fmt.Sprintf("pad.api%d", i)
		if err := reg.Register(apis.API{
			Name:        name,
			Description: fmt.Sprintf("padding operation number %d for index scale testing", i),
			Category:    "util",
			Fn:          func(apis.Input) (apis.Output, error) { return apis.Output{Text: "pad"}, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"detect the communities of this social network",
		"predict the toxicity of the molecule",
		"shortest path between two nodes",
		"rank nodes by importance",
		"padding operation number 7",
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bruteforce", Config{}},
		{"taumg", Config{ExactThreshold: 16, Tau: 0.05}},
	} {
		f32Cfg, q8Cfg := tc.cfg, tc.cfg
		q8Cfg.Quantize = true
		f32, err := New(reg, f32Cfg)
		if err != nil {
			t.Fatal(err)
		}
		q8, err := New(reg, q8Cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := f32.TopAPIs(q, 10)
			got := q8.TopAPIs(q, 10)
			exact := map[string]float32{}
			for _, h := range f32.TopAPIs(q, reg.Len()) {
				exact[h.Name] = h.Distance
			}
			hit := 0
			for _, h := range got {
				if h.Distance != exact[h.Name] {
					t.Fatalf("%s: %q dist %v, exact %v", tc.name, h.Name, h.Distance, exact[h.Name])
				}
				for _, w := range want {
					if w.Name == h.Name {
						hit++
						break
					}
				}
			}
			if recall := float64(hit) / float64(len(want)); recall < 0.95 {
				t.Errorf("%s: query %q quantized recall@10 = %.2f, want ≥ 0.95", tc.name, q, recall)
			}
		}
	}
}
