package finetune

import (
	"math/rand"
	"testing"

	"chatgraph/internal/chain"
	"chatgraph/internal/graph"
)

func TestDecodeBeamWidthOneIsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := GenerateDataset(150, rng)
	m := Train(vocab(), ds, TrainConfig{Epochs: 1, Search: SearchConfig{Rollouts: 2}, Seed: 2})
	for _, ex := range GenerateDataset(20, rng) {
		greedy := m.Decode(ex.Question, ex.Kind, 8)
		beam1 := m.DecodeBeam(ex.Question, ex.Kind, 8, 1)
		if !sameAPIs(greedy, beam1) {
			t.Fatalf("width-1 beam %s != greedy %s", beam1, greedy)
		}
	}
}

func TestDecodeBeamRecoversTrainedChain(t *testing.T) {
	m := NewModel(vocab())
	truth := chain.Chain{chain.Step{API: "graph.classify"}, chain.Step{API: "similarity.search"}}
	for i := 0; i < 5; i++ {
		m.Observe("what molecules are similar to G", graph.KindMolecule, truth, 1)
	}
	got := m.DecodeBeam("what molecules are similar to G", graph.KindMolecule, 8, 4)
	if !sameAPIs(got, truth) {
		t.Fatalf("beam decode = %s, want %s", got, truth)
	}
}

func TestDecodeBeamNeverRepeatsAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := GenerateDataset(100, rng)
	m := Train(vocab(), ds, TrainConfig{Epochs: 0, Seed: 4})
	for _, ex := range GenerateDataset(20, rng) {
		c := m.DecodeBeam(ex.Question, ex.Kind, 8, 4)
		seen := make(map[string]bool)
		for _, s := range c {
			if seen[s.API] {
				t.Fatalf("repeated API in %s", c)
			}
			seen[s.API] = true
		}
		if len(c) == 0 || len(c) > 8 {
			t.Fatalf("beam chain length %d", len(c))
		}
	}
}

func TestEvaluateBeamAtLeastAsGoodOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := GenerateDataset(400, rng)
	train, test := SplitDataset(ds, 0.25, rng)
	m := Train(vocab(), train, TrainConfig{Epochs: 1, Search: SearchConfig{Rollouts: 2}, Seed: 6})
	greedy := Evaluate(m, test, 0.5)
	beam := EvaluateBeam(m, test, 0.5, 4)
	if beam.Examples != greedy.Examples {
		t.Fatal("example counts differ")
	}
	// Beam may tie greedy but should not be dramatically worse.
	if beam.ExactMatch < greedy.ExactMatch-0.1 {
		t.Fatalf("beam %.3f much worse than greedy %.3f", beam.ExactMatch, greedy.ExactMatch)
	}
}

func TestEvaluateBeamEmpty(t *testing.T) {
	m := NewModel(vocab())
	if res := EvaluateBeam(m, nil, 0.5, 4); res.Examples != 0 {
		t.Fatalf("empty = %+v", res)
	}
}
