package finetune

import (
	"math"
	"sort"

	"chatgraph/internal/chain"
	"chatgraph/internal/embed"
	"chatgraph/internal/graph"
)

// startToken and endToken frame every chain in the transition model.
const (
	startToken = "<start>"
	endToken   = "<end>"
)

// Model is the chain-generation model the finetuning produces: a smoothed
// bigram transition model over API tokens combined with question-keyword
// affinities and graph-kind priors. It is the offline stand-in for the
// finetuned LLM head — small, deterministic, and trained with exactly the
// signals the paper describes (node-matching loss via rollout search).
type Model struct {
	// trans[prev][next] are transition weights (pseudo-counts).
	trans map[string]map[string]float64
	// affinity[token][api] links question keywords to APIs.
	affinity map[string]map[string]float64
	// kindPrior[kind][api] links graph kinds to APIs.
	kindPrior map[graph.Kind]map[string]float64
	// vocab is every API name the model may emit.
	vocab []string
}

// NewModel returns an empty model over the given API vocabulary.
func NewModel(vocab []string) *Model {
	v := append([]string(nil), vocab...)
	sort.Strings(v)
	return &Model{
		trans:     make(map[string]map[string]float64),
		affinity:  make(map[string]map[string]float64),
		kindPrior: make(map[graph.Kind]map[string]float64),
		vocab:     v,
	}
}

// Vocab returns the API vocabulary (sorted).
func (m *Model) Vocab() []string { return m.vocab }

func bump(m map[string]map[string]float64, a, b string, w float64) {
	if m[a] == nil {
		m[a] = make(map[string]float64)
	}
	m[a][b] += w
}

// Observe reinforces the model with one (question, kind, chain) triple at
// weight w. Training calls this for ground-truth chains (w = 1) and for
// search-predicted chains scaled by their loss.
func (m *Model) Observe(question string, kind graph.Kind, c chain.Chain, w float64) {
	if len(c) == 0 || w <= 0 {
		return
	}
	prev := startToken
	for _, s := range c {
		bump(m.trans, prev, s.API, w)
		prev = s.API
		for _, tok := range embed.Tokenize(question) {
			bump(m.affinity, tok, s.API, w)
		}
		if m.kindPrior[kind] == nil {
			m.kindPrior[kind] = make(map[string]float64)
		}
		m.kindPrior[kind][s.API] += w
	}
	bump(m.trans, prev, endToken, w)
}

// score returns the model's (log-space) preference for api following prev
// given the question tokens and graph kind. Laplace smoothing keeps unseen
// transitions possible.
func (m *Model) score(prev, api string, qTokens []string, kind graph.Kind) float64 {
	const eps = 0.1
	row := m.trans[prev]
	var rowTotal float64
	for _, v := range row {
		rowTotal += v
	}
	transP := (row[api] + eps) / (rowTotal + eps*float64(len(m.vocab)+1))
	var aff float64
	for _, tok := range qTokens {
		if am := m.affinity[tok]; am != nil {
			var tot float64
			for _, v := range am {
				tot += v
			}
			if tot > 0 {
				aff += am[api] / tot
			}
		}
	}
	var prior float64
	if km := m.kindPrior[kind]; km != nil {
		var tot float64
		for _, v := range km {
			tot += v
		}
		if tot > 0 {
			prior = km[api] / tot
		}
	}
	// The affinity and prior weights must be strong enough that what the
	// question asks for overrides the raw transition mass of unrelated but
	// frequent tasks.
	return math.Log(transP) + 4*aff + 2*prior
}

// scoreEnd is the score of terminating after prev.
func (m *Model) scoreEnd(prev string) float64 {
	const eps = 0.1
	row := m.trans[prev]
	var rowTotal float64
	for _, v := range row {
		rowTotal += v
	}
	return math.Log((row[endToken] + eps) / (rowTotal + eps*float64(len(m.vocab)+1)))
}

// Decode greedily generates a chain for the question: at each position the
// highest-scoring next token (API or end) is taken. maxLen caps the length
// (0 means 8). Steps are emitted without arguments; the session layer fills
// scenario-specific arguments.
func (m *Model) Decode(question string, kind graph.Kind, maxLen int) chain.Chain {
	if maxLen <= 0 {
		maxLen = 8
	}
	qTokens := embed.Tokenize(question)
	var c chain.Chain
	used := make(map[string]bool, maxLen)
	prev := startToken
	for len(c) < maxLen {
		bestAPI, bestScore := "", math.Inf(-1)
		for _, api := range m.vocab {
			if used[api] {
				continue // API chains do not revisit an API
			}
			if s := m.score(prev, api, qTokens, kind); s > bestScore {
				bestAPI, bestScore = api, s
			}
		}
		// Terminate when ending beats every continuation (never on an
		// empty chain — every question needs at least one API).
		if len(c) > 0 && m.scoreEnd(prev) >= bestScore {
			break
		}
		if bestAPI == "" {
			break
		}
		c = append(c, chain.Step{API: bestAPI})
		used[bestAPI] = true
		prev = bestAPI
	}
	return c
}

// TopCandidates returns the k APIs the model ranks highest as successors of
// the current partial chain — the candidate set S of the paper's
// search-based prediction.
func (m *Model) TopCandidates(partial chain.Chain, question string, kind graph.Kind, k int) []string {
	prev := startToken
	used := make(map[string]bool, len(partial))
	for _, s := range partial {
		used[s.API] = true
	}
	if len(partial) > 0 {
		prev = partial[len(partial)-1].API
	}
	qTokens := embed.Tokenize(question)
	type scored struct {
		api string
		s   float64
	}
	ss := make([]scored, 0, len(m.vocab))
	for _, api := range m.vocab {
		if used[api] {
			continue // API chains do not revisit an API
		}
		ss = append(ss, scored{api, m.score(prev, api, qTokens, kind)})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		return ss[i].api < ss[j].api
	})
	if k > len(ss) {
		k = len(ss)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ss[i].api
	}
	return out
}
